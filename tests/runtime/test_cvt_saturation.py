"""cvt.w.s edge semantics: float->int casts of non-finite values must
saturate like MIPS cvt.w.s, not crash the interpreter."""

from __future__ import annotations

import pytest

from repro.minic.compile import compile_source
from repro.runtime.interp import run_program


def _result(expr: str) -> int:
    source = (
        "int main() {\n"
        "  float f;\n"
        "  int i;\n"
        f"  {expr}\n"
        "  return (int) f;\n"
        "}\n"
    )
    return run_program(compile_source(source)).value


def test_positive_overflow_saturates_to_int_max():
    # squaring 1e6 eight times overflows float range to +inf
    code = (
        "f = 1000000.0; i = 0; "
        "while (i < 8) { f = f * f; i = i + 1; }"
    )
    assert _result(code) == 0x7FFFFFFF


def test_negative_overflow_saturates_to_int_min():
    code = (
        "f = 1000000.0; i = 0; "
        "while (i < 8) { f = f * f; i = i + 1; } "
        "f = 0.0 - f;"
    )
    assert _result(code) == -0x80000000


def test_nan_converts_to_zero():
    # grow f to +inf, then inf - inf is NaN (this family of programs
    # used to abort the interpreter with a raw OverflowError — found by
    # the differential fuzzer)
    code = (
        "f = 1000000.0; i = 0; "
        "while (i < 8) { f = f * f; i = i + 1; } "
        "f = f - f;"
    )
    assert _result(code) == 0


@pytest.mark.parametrize("value,expected", [("2.9", 2), ("0.0 - 2.9", -2)])
def test_finite_casts_still_truncate_toward_zero(value, expected):
    assert _result(f"f = {value};") == expected
