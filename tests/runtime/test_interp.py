"""Interpreter tests: opcode semantics, calls, tracing, profiling."""

import pytest

from repro.errors import ExecutionError, FuelExhausted
from repro.ir.parser import parse_program
from repro.runtime.interp import run_program
from repro.runtime.trace import Subsystem, dynamic_mix


def _run_body(body, globals_text="", **kwargs):
    program = parse_program(
        f"""{globals_text}
func main(0) {{
entry:
{body}
}}
"""
    )
    return run_program(program, **kwargs)


def _eval(lines):
    """Run instruction lines ending with `ret vN` and return the value."""
    body = "\n".join(f"  {line}" for line in lines)
    return _run_body(body).value


class TestAluSemantics:
    @pytest.mark.parametrize(
        "lines,expected",
        [
            (["v0 = li 5", "v1 = addiu v0, -3", "ret v1"], 2),
            (["v0 = li 5", "v1 = li 3", "v2 = subu v0, v1", "ret v2"], 2),
            (["v0 = li 2147483647", "v1 = addiu v0, 1", "ret v1"], -2147483648),
            (["v0 = li 6", "v1 = li 3", "v2 = and v0, v1", "ret v2"], 2),
            (["v0 = li 6", "v1 = li 3", "v2 = nor v0, v1", "ret v2"], ~7),
            (["v0 = li -8", "v1 = sra v0, 1", "ret v1"], -4),
            (["v0 = li -8", "v1 = srl v0, 1", "ret v1"], 0x7FFFFFFC),
            (["v0 = li 3", "v1 = sll v0, 4", "ret v1"], 48),
            (["v0 = li -1", "v1 = sltiu v0, 1", "ret v1"], 0),  # unsigned
            (["v0 = li -1", "v1 = slti v0, 1", "ret v1"], 1),
            (["v0 = lui 2", "ret v0"], 0x20000),
            (["v0 = li -7", "v1 = li 2", "v2 = div v0, v1", "ret v2"], -3),
            (["v0 = li -7", "v1 = li 2", "v2 = rem v0, v1", "ret v2"], -1),
            (["v0 = li 5", "v1 = li 3", "v2 = sllv v0, v1", "ret v2"], 40),
            (["v0 = li -16", "v1 = li 2", "v2 = srav v0, v1", "ret v2"], -4),
        ],
    )
    def test_int_ops(self, lines, expected):
        assert _eval(lines) == expected

    def test_fpa_twins_match_int_semantics(self):
        int_result = _eval(["v0 = li 21", "v1 = addiu v0, 21", "ret v1"])
        program = parse_program(
            """
func main(0) {
entry:
  vf0 = li.a 21
  vf1 = addiu.a vf0, 21
  v2 = cp_from_comp vf1
  ret v2
}
"""
        )
        assert run_program(program).value == int_result == 42

    def test_float_ops(self):
        program = parse_program(
            """
func main(0) {
entry:
  vf0 = li.s 2.5
  vf1 = li.s 4.0
  vf2 = mul.s vf0, vf1
  vf3 = cvt.w.s vf2
  v4 = cp_from_comp vf3
  ret v4
}
"""
        )
        assert run_program(program).value == 10

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError, match="zero"):
            _eval(["v0 = li 1", "v1 = li 0", "v2 = div v0, v1", "ret v2"])

    def test_undefined_register_read_raises(self):
        with pytest.raises(ExecutionError, match="undefined"):
            _eval(["v1 = addiu v99, 1", "ret v1"])


class TestControlAndCalls:
    def test_branch_taken_and_not_taken(self):
        program = parse_program(
            """
func main(0) {
entry:
  v0 = li 5
  bltz v0, neg
pos:
  v1 = li 1
  ret v1
neg:
  v1 = li 2
  ret v1
}
"""
        )
        assert run_program(program).value == 1

    def test_fuel_exhaustion(self):
        program = parse_program(
            """
func main(0) {
entry:
  j entry
}
"""
        )
        with pytest.raises(FuelExhausted):
            run_program(program, fuel=100)

    def test_nested_calls_with_independent_frames(self):
        program = parse_program(
            """
func inner(1) returns {
entry:
  v0 = param 0
  v1 = addiu v0, 100
  ret v1
}

func outer(1) returns {
entry:
  v0 = param 0
  v1 = call inner(v0)
  v2 = addu v0, v1
  ret v2
}

func main(0) {
entry:
  v0 = li 5
  v1 = call outer(v0)
  ret v1
}
"""
        )
        # outer(5) = 5 + inner(5) = 5 + 105
        assert run_program(program).value == 110

    def test_recursion_depth(self):
        program = parse_program(
            """
func count(1) returns {
entry:
  v0 = param 0
  v1 = slti v0, 1
  v2 = li 0
  beq v1, v2, rec
base:
  ret v2
rec:
  v3 = addiu v0, -1
  v4 = call count(v3)
  v5 = addiu v4, 1
  ret v5
}

func main(0) {
entry:
  v0 = li 50
  v1 = call count(v0)
  ret v1
}
"""
        )
        assert run_program(program).value == 50

    def test_fell_off_function_end(self):
        program = parse_program(
            """
func main(0) {
entry:
  v0 = li 1
}
"""
        )
        with pytest.raises(ExecutionError, match="fell off"):
            run_program(program)


class TestProfileAndTrace:
    def test_profile_counts_block_entries(self, vector_sum_program):
        result = run_program(vector_sum_program)
        assert result.profile.block_count("main", "loop") == 16
        assert result.profile.block_count("main", "entry") == 1
        assert result.profile.block_count("main", "exit") == 1

    def test_trace_length_matches_dynamic_count(self, vector_sum_program):
        result = run_program(vector_sum_program, collect_trace=True)
        assert len(result.trace) == result.instructions

    def test_trace_has_memory_addresses(self, vector_sum_program):
        result = run_program(vector_sum_program, collect_trace=True)
        loads = [t for t in result.trace if t.instr.op.value == "lw"]
        assert loads and all(t.mem_addr is not None for t in loads)

    def test_trace_branch_outcomes(self, vector_sum_program):
        result = run_program(vector_sum_program, collect_trace=True)
        branches = [t for t in result.trace if t.instr.op.value == "bne"]
        assert len(branches) == 16
        assert sum(t.taken for t in branches) == 15  # falls out once

    def test_dependence_tokens_unique_per_frame(self):
        program = parse_program(
            """
func id(1) returns {
entry:
  v0 = param 0
  ret v0
}

func main(0) {
entry:
  v0 = li 1
  v1 = call id(v0)
  v2 = call id(v1)
  ret v2
}
"""
        )
        result = run_program(program, collect_trace=True)
        param_entries = [t for t in result.trace if t.instr.op.value == "param"]
        frames = {t.writes[0][0] for t in param_entries}
        assert len(frames) == 2  # two activations, two distinct frames

    def test_subsystem_classification(self):
        program = parse_program(
            """
global g 8

func main(0) {
entry:
  v0 = li @g
  vf1 = li.a 7
  s.s vf1, v0, 0
  vf2 = l.s v0, 0
  ret
}
"""
        )
        result = run_program(program, collect_trace=True)
        by_op = {t.instr.op.value: t for t in result.trace}
        assert by_op["li"].subsystem is Subsystem.INT
        assert by_op["li.a"].subsystem is Subsystem.FP
        # memory ops stay in INT even with FP data registers
        assert by_op["s.s"].subsystem is Subsystem.INT
        assert by_op["l.s"].subsystem is Subsystem.INT

    def test_dynamic_mix(self, vector_sum_program):
        result = run_program(vector_sum_program, collect_trace=True)
        mix = dynamic_mix(result.trace)
        assert mix["loads"] == 32
        assert mix["stores"] == 16
        assert mix["branches"] == 16
        assert mix["fp_executed"] == 0
        assert mix["total"] == result.instructions

    def test_global_initialization(self):
        result = _run_body(
            "  v0 = li @t\n  v1 = lw v0, 4\n  ret v1",
            globals_text="global t 12 = 7 8 9",
        )
        assert result.value == 8
