"""Tests for the sparse memory model."""

import pytest

from repro.errors import ExecutionError
from repro.runtime.state import Memory, s32


class TestS32:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, 0),
            (1, 1),
            (-1, -1),
            (0x7FFFFFFF, 0x7FFFFFFF),
            (0x80000000, -0x80000000),
            (0xFFFFFFFF, -1),
            (0x100000000, 0),
            (-0x80000001, 0x7FFFFFFF),
        ],
    )
    def test_wrapping(self, value, expected):
        assert s32(value) == expected


class TestWords:
    def test_default_zero(self):
        assert Memory().load_word(0x1000) == 0

    def test_store_load_roundtrip(self):
        mem = Memory()
        mem.store_word(0x1000, 12345)
        assert mem.load_word(0x1000) == 12345

    def test_negative_values(self):
        mem = Memory()
        mem.store_word(0x1000, -7)
        assert mem.load_word(0x1000) == -7

    def test_values_wrap_to_32_bits(self):
        mem = Memory()
        mem.store_word(0x1000, 0x1_0000_0005)
        assert mem.load_word(0x1000) == 5

    def test_float_values_stored_exactly(self):
        mem = Memory()
        mem.store_word(0x1000, 2.75)
        assert mem.load_word(0x1000) == 2.75

    def test_unaligned_word_access_rejected(self):
        mem = Memory()
        with pytest.raises(ExecutionError):
            mem.load_word(0x1002)
        with pytest.raises(ExecutionError):
            mem.store_word(0x1001, 1)

    def test_distinct_addresses_independent(self):
        mem = Memory()
        mem.store_word(0x1000, 1)
        mem.store_word(0x1004, 2)
        assert mem.load_word(0x1000) == 1
        assert mem.load_word(0x1004) == 2
        assert mem.words_used() == 2


class TestBytes:
    def test_byte_lanes(self):
        mem = Memory()
        for i, b in enumerate([0x11, 0x22, 0x33, 0x44]):
            mem.store_byte(0x1000 + i, b)
        assert mem.load_word(0x1000) == 0x44332211

    def test_signed_byte_load(self):
        mem = Memory()
        mem.store_byte(0x1000, 0xFF)
        assert mem.load_byte(0x1000, signed=True) == -1
        assert mem.load_byte(0x1000, signed=False) == 255

    def test_byte_store_preserves_neighbours(self):
        mem = Memory()
        mem.store_word(0x1000, 0x11223344)
        mem.store_byte(0x1001, 0xAA)
        assert mem.load_word(0x1000) == 0x1122AA44

    def test_byte_access_to_float_rejected(self):
        mem = Memory()
        mem.store_word(0x1000, 1.5)
        with pytest.raises(ExecutionError):
            mem.load_byte(0x1000)
        with pytest.raises(ExecutionError):
            mem.store_byte(0x1000, 3)
