"""Regression: a pre-existing conversion copy (cp_from_comp from an
int/float cast) feeding a call argument or return value must NOT be
treated as a back-copy site.

The copy already delivers its value into the INT file — its outgoing
edge is a cut edge.  Before the fix, the advanced scheme marked such
copies in back_copy_sites(), and the rewriter emitted a degenerate
``vN(INT) = cp_from_comp vN(INT)`` that failed the IR verifier; the
certifier's audit_edges had the matching blind spot for basic
partitions.  Found by the differential fuzzer (builder seed 8); the
shrunk program is committed as
``tests/corpus/regressions/cp-from-comp-back-copy.mc``.
"""

from __future__ import annotations

import pytest

from repro.analysis.certify import certify_partition
from repro.ir.verify import verify_program
from repro.minic.compile import compile_source
from repro.partition.advanced import advanced_partition
from repro.partition.basic import basic_partition
from repro.partition.program import partition_program
from repro.runtime.interp import run_program

#: A cast result feeding a call argument: codegen materializes the
#: float->int conversion as a cp_from_comp whose use is a convention
#: edge into the call.
SOURCE = """
int sink(int a, int b) {
  return a + b;
}

int main() {
  float f;
  f = 236.5;
  return sink(1, (int) f);
}
"""


@pytest.mark.parametrize("scheme", ["basic", "advanced"])
def test_partition_rewrites_verify(scheme):
    program = compile_source(SOURCE)
    baseline = run_program(program).value
    partitioned = compile_source(SOURCE)
    partition_program(partitioned, scheme)
    verify_program(partitioned)
    assert run_program(partitioned).value == baseline


def test_conversion_copy_is_not_a_back_copy_site():
    from repro.ir.opcodes import OpKind

    program = compile_source(SOURCE)
    profile = run_program(program).profile
    for func in program.functions.values():
        partition = advanced_partition(func, profile=profile)
        by_uid = {
            instr.uid: instr
            for block in func.blocks
            for instr in block.instructions
        }
        for node in partition.back_copies:
            instr = by_uid[node.uid]
            assert instr.kind is not OpKind.COPY, (
                f"{func.name}: conversion copy {instr} bookkept as a "
                "back-copy site"
            )


def test_certifier_accepts_basic_partition_with_fpa_conversion_copy():
    program = compile_source(SOURCE)
    profile = run_program(program).profile
    for func in program.functions.values():
        certificate = certify_partition(
            basic_partition(func), profile=profile
        )
        assert certificate.ok, certificate.violations
