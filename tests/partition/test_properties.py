"""Property-based tests: partitioning preserves semantics and legality.

Random MiniC programs (loops over locals and a global array, arbitrary
integer expressions) are compiled, partitioned with both schemes, and
re-executed: the checksum must be identical and the partition legal.
This is the end-to-end invariant the whole paper rests on — offloading
is a pure performance transformation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st, HealthCheck

from repro.minic.compile import compile_source
from repro.ir.verify import verify_program
from repro.lint import Severity, lint_program, partition_rule_ids, render_text
from repro.partition.advanced import advanced_partition
from repro.partition.basic import basic_partition
from repro.partition.cost import CostParams
from repro.partition.partition import check_partition, partition_stats
from repro.partition.rewrite import apply_partition
from repro.runtime.interp import run_program

_VARS = ["a", "b", "c", "d"]
_BINOPS = ["+", "-", "*", "&", "|", "^"]


@st.composite
def expression(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(st.integers(-100, 100)))
        if choice == 1:
            return draw(st.sampled_from(_VARS))
        return f"arr[{draw(st.sampled_from(_VARS))} & 31]"
    op = draw(st.sampled_from(_BINOPS + ["<<", ">>"]))
    left = draw(expression(depth=depth + 1))
    if op in ("<<", ">>"):
        return f"(({left}) {op} {draw(st.integers(0, 4))})"
    right = draw(expression(depth=depth + 1))
    return f"(({left}) {op} ({right}))"


@st.composite
def statement(draw, depth=0):
    kind = draw(st.integers(0, 3 if depth == 0 else 2))
    if kind == 0:
        return f"{draw(st.sampled_from(_VARS))} = {draw(expression())};"
    if kind == 1:
        return f"arr[{draw(st.sampled_from(_VARS))} & 31] = {draw(expression())};"
    if kind == 2:
        cmp_op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        cond = f"({draw(expression(depth=2))}) {cmp_op} ({draw(expression(depth=2))})"
        body = draw(statement(depth=depth + 1))
        return f"if ({cond}) {{ {body} }}"
    inner = " ".join(draw(st.lists(statement(depth=1), min_size=1, max_size=3)))
    return f"{{ {inner} }}"


@st.composite
def minic_program(draw):
    statements = draw(st.lists(statement(), min_size=1, max_size=5))
    body = "\n        ".join(statements)
    return f"""
int arr[32];

int main() {{
    int a = 3; int b = -7; int c = 11; int d = 0;
    int i;
    for (i = 0; i < 32; i = i + 1) {{ arr[i] = i * 5 - 64; }}
    for (i = 0; i < 6; i = i + 1) {{
        {body}
        d = d + 1;
    }}
    return (a ^ b ^ c ^ d ^ arr[3] ^ arr[17]) & 0xffffff;
}}
"""


def _partition_and_run(source: str, scheme: str, params=None):
    program = compile_source(source)
    for func in program.functions.values():
        if scheme == "basic":
            partition = basic_partition(func)
        else:
            partition = advanced_partition(func, params=params)
        check_partition(partition)
        apply_partition(func, partition)
    verify_program(program)
    return run_program(program, fuel=2_000_000).value


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(minic_program())
def test_basic_partition_preserves_semantics(source):
    baseline = run_program(compile_source(source), fuel=2_000_000).value
    assert _partition_and_run(source, "basic") == baseline


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(minic_program())
def test_advanced_partition_preserves_semantics(source):
    baseline = run_program(compile_source(source), fuel=2_000_000).value
    assert _partition_and_run(source, "advanced") == baseline


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(minic_program(), st.sampled_from([(3.0, 1.5), (4.0, 2.0), (6.0, 3.0), (6.0, 1.5)]))
def test_cost_parameters_never_break_semantics(source, params):
    """Any (o_copy, o_dupl) in the paper's ranges yields a correct
    program — the cost model only moves the performance needle."""
    o_copy, o_dupl = params
    baseline = run_program(compile_source(source), fuel=2_000_000).value
    got = _partition_and_run(source, "advanced", CostParams(o_copy=o_copy, o_dupl=o_dupl))
    assert got == baseline


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(minic_program(), st.sampled_from(["basic", "advanced"]))
def test_partitioned_programs_lint_clean(source, scheme):
    """Every partitioned+rewritten random program passes all lint rules:
    the partition-level rules on the pre-rewrite partitions and the
    dataflow rules on the rewritten IR."""
    program = compile_source(source)
    partitions = {}
    for name, func in program.functions.items():
        if scheme == "basic":
            partitions[name] = basic_partition(func)
        else:
            partitions[name] = advanced_partition(func)
    pre = lint_program(
        program, partitions=partitions, scheme=scheme, rules=partition_rule_ids()
    )
    assert not pre.diagnostics, render_text(pre)
    for name, func in program.functions.items():
        apply_partition(func, partitions[name])
    verify_program(program)
    post = lint_program(program, scheme=scheme)
    assert not post.failed(Severity.WARNING), render_text(post)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(minic_program())
def test_advanced_offloads_at_least_basic(source):
    """§6: copies and duplication can only grow the FPa partition."""
    program_b = compile_source(source)
    program_a = compile_source(source)
    basic_total = advanced_total = 0
    for name in program_b.functions:
        basic_total += partition_stats(basic_partition(program_b.functions[name]))[
            "offloaded_instructions"
        ]
        advanced_total += partition_stats(
            advanced_partition(program_a.functions[name])
        )["offloaded_instructions"]
    assert advanced_total >= basic_total
