"""Tests for the partition rewriter."""

import pytest

from repro.errors import PartitionError
from repro.ir.opcodes import Opcode, OPCODES
from repro.ir.parser import parse_function, parse_program
from repro.ir.registers import RegClass
from repro.ir.verify import verify_function, verify_program
from repro.partition.advanced import advanced_partition
from repro.partition.basic import basic_partition
from repro.partition.rewrite import apply_partition
from repro.runtime.interp import run_program


class TestRewriteMechanics:
    def test_stats_counts(self, figure3):
        partition = advanced_partition(figure3)
        stats = apply_partition(figure3, partition)
        assert stats.offloaded == 5
        assert stats.dups_inserted == 2
        assert stats.converted_loads == 1
        assert stats.converted_stores == 1
        assert stats.total_inserted == 2

    def test_wrong_function_rejected(self, figure3, straightline):
        partition = basic_partition(figure3)
        with pytest.raises(PartitionError, match="different function"):
            apply_partition(straightline, partition)

    def test_offloaded_defs_are_fp_class(self, figure3):
        partition = advanced_partition(figure3)
        apply_partition(figure3, partition)
        for instr in figure3.instructions():
            if OPCODES[instr.op].fp_subsystem:
                for reg in instr.defs:
                    assert reg.rclass is RegClass.FP
                for reg in instr.uses:
                    assert reg.rclass is RegClass.FP

    def test_uids_renumbered_dense(self, figure3):
        partition = advanced_partition(figure3)
        apply_partition(figure3, partition)
        uids = [i.uid for i in figure3.instructions()]
        assert uids == list(range(len(uids)))

    def test_param_copy_keeps_params_in_entry(self):
        """Copies of formal parameters may not displace param pseudo-ops
        out of the entry block."""
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  v9 = li 4096
loop:
  v1 = lw v9, 0
  v2 = addu v1, v0
  sw v2, v9, 4
  v4 = slti v0, 100
  v5 = li 0
  bne v4, v5, loop
exit:
  ret
}
"""
        )
        partition = advanced_partition(func)
        apply_partition(func, partition)
        verify_function(func)


class TestSemanticsPreserved:
    """The rewritten program must compute the same results."""

    @pytest.mark.parametrize("scheme", ["basic", "advanced"])
    def test_vector_sum(self, vector_sum_program, scheme):
        baseline = run_program(vector_sum_program)
        from repro.ir.parser import parse_program
        from repro.ir.printer import print_program

        rewritten = parse_program(print_program(vector_sum_program))
        for func in rewritten.functions.values():
            if scheme == "basic":
                partition = basic_partition(func)
            else:
                partition = advanced_partition(func)
            apply_partition(func, partition)
        verify_program(rewritten)
        result = run_program(rewritten)
        assert result.value == baseline.value

    def test_memory_communication_roundtrip(self):
        """Basic-scheme communication goes through memory: a value
        stored from the FP file must read back identically in INT."""
        program = parse_program(
            """
global cell 8

func main(0) {
entry:
  v0 = li @cell
  v1 = li 41
  sw v1, v0, 0
  v2 = lw v0, 0
  v3 = addiu v2, 1
  sw v3, v0, 4
  v4 = lw v0, 4
  ret v4
}
"""
        )
        baseline = run_program(program).value
        assert baseline == 42
        for func in program.functions.values():
            apply_partition(func, basic_partition(func))
        verify_program(program)
        assert run_program(program).value == 42
