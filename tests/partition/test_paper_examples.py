"""Reproduction of the paper's worked examples (Figures 2–6).

These tests pin the algorithms to the paper's own narrative:

* Figure 4 — the basic scheme offloads exactly the component computing
  the ``reg_tick[regno]++`` store value (load value -> bltz / addiu ->
  store value) and converts the memory ops to ``l.s``/``s.s``.
* Figures 5/6 — the advanced scheme additionally offloads the loop
  termination branch slice by duplicating the induction variable
  (``I1d``/``I15d`` in Figure 6), with the out-of-loop duplicate costing
  nothing per iteration.
"""

import pytest

from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_function
from repro.ir.verify import verify_function
from repro.partition.advanced import advanced_partition
from repro.partition.basic import basic_partition
from repro.partition.partition import partition_stats
from repro.partition.rewrite import apply_partition
from repro.rdg.graph import Part


def _ops(func):
    return [instr.op for instr in func.instructions()]


class TestFigure4Basic:
    def test_basic_offloads_store_value_component(self, figure3):
        partition = basic_partition(figure3)
        stats = partition_stats(partition)
        # the component {lw-value, bltz, addiu, sw-value}: two of those
        # are WHOLE instructions (bltz, addiu)
        assert stats["offloaded_instructions"] == 2
        assert stats["copies"] == 0 and stats["dups"] == 0

    def test_basic_never_inserts_instructions(self, figure3):
        before = figure3.instruction_count()
        partition = basic_partition(figure3)
        apply_partition(figure3, partition)
        assert figure3.instruction_count() == before

    def test_rewrite_converts_memory_ops(self, figure3):
        partition = basic_partition(figure3)
        apply_partition(figure3, partition)
        verify_function(figure3)
        ops = _ops(figure3)
        assert Opcode.LS in ops and Opcode.SS in ops
        assert Opcode.LW not in ops and Opcode.SW not in ops
        assert Opcode.BLTZ_A in ops and Opcode.ADDIU_A in ops

    def test_loop_branch_stays_int_in_basic(self, figure3):
        """The termination branch shares regno with addressing, so the
        basic scheme cannot offload it (paper §5.3)."""
        partition = basic_partition(figure3)
        apply_partition(figure3, partition)
        ops = _ops(figure3)
        assert Opcode.BNE in ops  # not bne.a
        assert Opcode.SLTI in ops  # not slti.a


class TestFigure6Advanced:
    def test_advanced_duplicates_induction_variable(self, figure3):
        partition = advanced_partition(figure3)
        stats = partition_stats(partition)
        assert stats["dups"] == 2  # li 0 (outside loop) + addiu regno,1
        assert stats["offloaded_instructions"] == 5  # bltz, addiu, slti, li, bne

    def test_rewrite_matches_figure6_shape(self, figure3):
        partition = advanced_partition(figure3)
        apply_partition(figure3, partition)
        verify_function(figure3)
        ops = _ops(figure3)
        # both maintained copies of regno exist: addiu and addiu.a
        assert Opcode.ADDIU in ops and Opcode.ADDIU_A in ops
        # the loop branch now executes in FPa
        assert Opcode.BNE_A in ops and Opcode.SLTI_A in ops
        # the out-of-loop duplicate (I1d) lives in the entry block
        entry_ops = [i.op for i in figure3.entry.instructions]
        assert Opcode.LI_A in entry_ops

    def test_duplicate_overhead_only_inside_loop(self, figure3):
        """Figure 6: overheads are incurred each iteration only for the
        in-loop duplicate; the entry-block duplicate runs once."""
        partition = advanced_partition(figure3)
        dup_blocks = {partition.rdg.block(node) for node in partition.dups}
        assert dup_blocks == {"entry", "skip"}

    def test_advanced_is_superset_of_basic(self, figure3):
        basic = basic_partition(figure3)
        advanced = advanced_partition(figure3)
        assert basic.fp <= advanced.fp


class TestCallingConventions:
    """§6.4: formal parameters get dummy INT nodes whose copies the
    algorithm prices; actual-argument producers may stay in FPa with a
    cp_from_comp."""

    def test_param_copy_enables_offload(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  v9 = li 4096
loop:
  v1 = lw v9, 0
  v2 = addu v1, v0
  sw v2, v9, 4
  v3 = addiu v0, 0
  v4 = slti v3, 100
  v5 = li 0
  bne v4, v5, loop
exit:
  ret
}
"""
        )
        partition = advanced_partition(func)
        stats = partition_stats(partition)
        # v0 (the formal) feeds FPa work; it must be copied or duplicated
        assert stats["copies"] + stats["dups"] >= 1
        apply_partition(func, partition)
        verify_function(func)

    def test_return_value_producer_gets_back_copy(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v9 = li 4096
  v1 = lw v9, 0
  v2 = addiu v1, 5
  sw v2, v9, 4
  ret v2
}
"""
        )
        partition = advanced_partition(func)
        if partition.back_copies:
            apply_partition(func, partition)
            verify_function(func)
            ops = _ops(func)
            assert Opcode.CP_FROM_COMP in ops

    def test_memoryless_function_moves_to_fpa(self):
        """§6.6: compress's run() performs no memory access, so the
        greedy schemes move the entire body to FPa."""
        func = parse_function(
            """
func rand_next(1) returns {
entry:
  v0 = param 0
  v1 = li 1103515245
  v2 = mult v0, v1
  v3 = addiu v2, 12345
  v4 = li 0x7fffffff
  v5 = and v3, v4
  v6 = sra v5, 8
  v7 = xor v6, v5
  v8 = sll v7, 3
  v9 = addu v8, v7
  v10 = srl v9, 1
  ret v10
}
"""
        )
        partition = advanced_partition(func)
        stats = partition_stats(partition)
        # everything except param/ret/mult glue lands in FPa
        offloadable = {"li", "and", "addiu", "sra", "xor", "sll", "addu", "srl"}
        offloaded_ops = {
            partition.rdg.instruction(n).op.value
            for n in partition.fp
            if n.part is Part.WHOLE
        }
        assert offloadable <= offloaded_ops
        assert stats["back_copies"] >= 1  # the return value flows back
