"""Independent verification of the §5.1 partitioning conditions.

The basic scheme is implemented with connected components; these tests
check its output against the *paper's own statement* of the conditions,
computed through the independent slice machinery:

    2. if v in F(G): Backward-Slice(G, v) ∩ I(G) = ∅
    3. if v in F(G): Forward-Slice(G, v)  ∩ I(G) = ∅

on randomly generated integer programs (where no pre-existing copy
instructions blur the picture).
"""

from hypothesis import given, settings, HealthCheck

from repro.minic.compile import compile_source
from repro.partition.basic import basic_partition
from repro.rdg.slices import backward_slice, forward_slice

from tests.partition.test_properties import minic_program


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(minic_program())
def test_condition_2_no_value_received_from_int(source):
    program = compile_source(source)
    for func in program.functions.values():
        partition = basic_partition(func)
        int_nodes = set(partition.int_nodes())
        for node in partition.fp:
            assert not (backward_slice(partition.rdg, node) & int_nodes), node


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(minic_program())
def test_condition_3_no_value_supplied_to_int(source):
    program = compile_source(source)
    for func in program.functions.values():
        partition = basic_partition(func)
        int_nodes = set(partition.int_nodes())
        for node in partition.fp:
            assert not (forward_slice(partition.rdg, node) & int_nodes), node


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(minic_program())
def test_basic_is_maximal(source):
    """§5.2 aims for the *largest* F(G): every INT component must contain
    a pinned node — nothing assignable was left behind."""
    from repro.rdg.graph import Pin

    program = compile_source(source)
    for func in program.functions.values():
        partition = basic_partition(func)
        rdg = partition.rdg
        for comp in rdg.undirected_components():
            if comp <= partition.fp:
                continue
            assert any(rdg.pin.get(n) is Pin.INT for n in comp), comp
