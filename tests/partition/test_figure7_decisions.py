"""Decision tests shaped after the paper's Figure 7 examples.

Figure 7 illustrates why Phase 1 alone is insufficient: examining nodes
``u`` and ``v`` one at a time (each fed by INT node ``x``) yields
``loss = 1`` for both, so neither is moved — yet whether *keeping* them
in FPa is profitable depends on how much hangs below them, which only
Phase 2's component-level Profit sees:

* Example 1 — ``u`` and ``v`` are leaves: one copy buys two cheap
  instructions; ``Profit < 0``; the component must be evicted to INT.
* Example 2 — ``u`` and ``v`` each feed further FPa work (``p``, ``q``
  chains): the same copy buys a large component; ``Profit > 0``; the
  component must stay in FPa.
"""

import pytest

from repro.ir.parser import parse_function
from repro.partition.advanced import advanced_partition
from repro.partition.cost import CostParams
from repro.partition.partition import partition_stats

# x = a loaded value that also feeds an address (so x is INT); u and v
# consume x and compute store values.
EXAMPLE1 = """
func ex1(0) {
entry:
  v9 = li 4096
loop:
  v0 = lw v9, 0
  v1 = sll v0, 2
  v2 = addu v9, v1
  v3 = lw v2, 4
  v4 = addiu v0, 1
  v5 = addiu v0, 2
  sw v4, v2, 8
  sw v5, v2, 12
  v6 = slti v3, 100
  v7 = li 0
  bne v6, v7, loop
exit:
  ret
}
"""

# same shape, but u and v head long offloadable chains
EXAMPLE2 = """
func ex2(0) {
entry:
  v9 = li 4096
loop:
  v0 = lw v9, 0
  v1 = sll v0, 2
  v2 = addu v9, v1
  v3 = lw v2, 4
  v4 = addiu v0, 1
  v5 = addiu v0, 2
  v10 = sll v4, 3
  v11 = xor v10, v4
  v12 = addu v11, v10
  v13 = sra v12, 1
  v14 = sll v5, 2
  v15 = xor v14, v5
  v16 = addu v15, v14
  v17 = addu v13, v16
  sw v17, v2, 8
  sw v16, v2, 12
  v6 = slti v3, 100
  v7 = li 0
  bne v6, v7, loop
exit:
  ret
}
"""

#: a deliberately copy-hostile setting so Example 1's two instructions
#: cannot pay for x's copy, while Example 2's nine can.
PARAMS = CostParams(o_copy=4.0, o_dupl=2.0)


def _offloaded_store_value_work(func_text):
    func = parse_function(func_text)
    partition = advanced_partition(func, params=PARAMS)
    stats = partition_stats(partition)
    # exclude the loop-exit branch slice (slti/li/bne on v3): count only
    # the u/v component by checking whether any copies were kept
    return partition, stats


class TestFigure7:
    def test_example1_component_evicted(self):
        partition, stats = _offloaded_store_value_work(EXAMPLE1)
        # the x -> {u, v} component is unprofitable: no copies survive
        assert stats["copies"] == 0
        assert stats["dups"] == 0
        ops = {
            partition.rdg.instruction(n).op.value
            for n in partition.fp
        }
        assert "addiu" not in ops  # u and v stayed in INT

    def test_example2_component_kept(self):
        partition, stats = _offloaded_store_value_work(EXAMPLE2)
        assert stats["copies"] + stats["dups"] >= 1
        ops = {
            partition.rdg.instruction(n).op.value for n in partition.fp
        }
        # the long chains execute in FPa
        assert "xor" in ops and "sra" in ops and "addiu" in ops

    def test_phase1_alone_does_not_distinguish(self):
        """Both examples survive Phase 1 identically (loss > 0 keeps the
        candidates); only Phase 2 separates them — mirroring the paper's
        point that Phase 1 uses only local information."""
        from repro.partition.advanced import _AdvancedPartitioner
        from repro.partition.cost import estimate_profile
        from repro.rdg.build import build_rdg

        kept = {}
        for name, text in (("ex1", EXAMPLE1), ("ex2", EXAMPLE2)):
            func = parse_function(text)
            p = _AdvancedPartitioner(
                func, build_rdg(func), estimate_profile(func), PARAMS
            )
            p.initial_int()
            p.phase1()
            fpa_ops = {
                p.rdg.instruction(n).op.value
                for n in p.rdg.nodes
                if n not in p.int_set
            }
            kept[name] = "addiu" in fpa_ops
        assert kept["ex1"] and kept["ex2"]  # both still in FPa after Phase 1
