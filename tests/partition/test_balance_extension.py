"""Tests for the load-balance extension (§6.6 future work)."""

import pytest

from repro.ir.parser import parse_function
from repro.ir.verify import verify_function
from repro.partition.advanced import advanced_partition
from repro.partition.partition import check_partition, partition_stats
from repro.partition.rewrite import apply_partition
from repro.rdg.graph import Part
from tests.conftest import FIGURE3_IR


def _fp_weight_fraction(partition):
    whole_fp = sum(1 for n in partition.fp if n.part is Part.WHOLE)
    whole_all = sum(1 for n in partition.rdg.nodes if n.part is Part.WHOLE)
    return whole_fp / whole_all


class TestBalanceLimit:
    def test_none_reproduces_published_behaviour(self, figure3):
        unlimited = advanced_partition(figure3)
        explicit = advanced_partition(
            parse_function(FIGURE3_IR), balance_limit=None
        )
        assert len(unlimited.fp) == len(explicit.fp)

    def test_zero_limit_evicts_all_movable_work(self, figure3):
        partition = advanced_partition(figure3, balance_limit=0.0)
        assert partition_stats(partition)["offloaded_instructions"] == 0
        check_partition(partition)

    def test_limit_monotone(self):
        sizes = []
        for limit in (0.05, 0.2, 0.5, 1.0):
            func = parse_function(FIGURE3_IR)
            partition = advanced_partition(func, balance_limit=limit)
            sizes.append(len(partition.fp))
        assert sizes == sorted(sizes)

    def test_balanced_partition_still_legal_and_correct(self, figure3):
        partition = advanced_partition(figure3, balance_limit=0.25)
        check_partition(partition)
        apply_partition(figure3, partition)
        verify_function(figure3)

    def test_memoryless_function_capped(self):
        """§6.6's backfire case: with a balance limit, the memory-less
        function no longer moves to FPa wholesale."""
        source = """
func rand_next(1) returns {
entry:
  v0 = param 0
  v1 = li 1103515245
  v2 = mult v0, v1
  v3 = addiu v2, 12345
  v4 = li 0x7fffffff
  v5 = and v3, v4
  v6 = sra v5, 8
  v7 = xor v6, v5
  v8 = sll v7, 3
  v9 = addu v8, v7
  v10 = srl v9, 1
  ret v10
}
"""
        greedy = advanced_partition(parse_function(source))
        capped = advanced_partition(parse_function(source), balance_limit=0.3)
        greedy_frac = _fp_weight_fraction(greedy)
        capped_frac = _fp_weight_fraction(capped)
        assert greedy_frac > 0.5  # greedy moves nearly everything
        assert capped_frac <= 0.35

    def test_pinned_fp_work_never_evicted(self):
        func = parse_function(
            """
func f(0) {
entry:
  vf0 = li.s 1.0
  vf1 = add.s vf0, vf0
  vf2 = mul.s vf1, vf1
  ret
}
"""
        )
        partition = advanced_partition(func, balance_limit=0.0)
        ops = {partition.rdg.instruction(n).op.value for n in partition.fp}
        assert {"add.s", "mul.s"} <= ops
