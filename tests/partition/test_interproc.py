"""Tests for the interprocedural FP-argument extension (§6.6)."""

import pytest

from repro.errors import ReproError
from repro.ir.parser import parse_program
from repro.ir.printer import print_program
from repro.ir.verify import verify_program
from repro.partition import partition_program
from repro.runtime.interp import run_program
from repro.runtime.trace import dynamic_mix

# caller computes the argument in FPa; callee consumes it only in FPa
GOOD_CASE = """
global acc 8
global data 64

func mix(1) {
entry:
  v0 = param 0
  v8 = li @acc
body:
  v1 = lw v8, 0
  v2 = addu v1, v0
  v3 = sll v2, 3
  v4 = xor v3, v0
  v5 = addu v4, v2
  v6 = sra v5, 1
  sw v6, v8, 0
  ret
}

func main(0) {
entry:
  v9 = li @data
  v0 = li 0
loop:
  v1 = sll v0, 2
  v2 = addu v9, v1
  v3 = lw v2, 0
  v4 = addiu v3, 5
  v5 = sll v4, 1
  v6 = addu v5, v4
  call mix(v6)
  v0 = addiu v0, 1
  v10 = slti v0, 16
  v11 = li 0
  bne v10, v11, loop
exit:
  ret
}
"""


def _run_with(src, interprocedural):
    program = parse_program(src)
    profile = run_program(program).profile
    program = parse_program(src)
    result = partition_program(
        program, "advanced", profile=profile, interprocedural=interprocedural
    )
    verify_program(program)
    run = run_program(program, collect_trace=True)
    return program, result, run


class TestGoodCase:
    def test_decision_made(self):
        program, result, _run = _run_with(GOOD_CASE, True)
        assert result.decisions.fp_params == {"mix": {0}}
        assert program.functions["mix"].fp_params == {0}

    def test_copies_eliminated_dynamically(self):
        _, _, base_run = _run_with(GOOD_CASE, False)
        _, result, ext_run = _run_with(GOOD_CASE, True)
        base_copies = dynamic_mix(base_run.trace)["copies"]
        ext_copies = dynamic_mix(ext_run.trace)["copies"]
        assert result.copies_eliminated == 2  # one per side of the call
        assert ext_copies < base_copies
        assert ext_run.instructions < base_run.instructions

    def test_semantics_preserved(self):
        reference = run_program(parse_program(GOOD_CASE)).value
        _, _, ext_run = _run_with(GOOD_CASE, True)
        assert ext_run.value == reference

    def test_header_roundtrips(self):
        program, _, _ = _run_with(GOOD_CASE, True)
        text = print_program(program)
        assert "func mix(1) fp[0]" in text
        again = parse_program(text)
        assert again.functions["mix"].fp_params == {0}
        verify_program(again)

    def test_call_argument_is_fp_class(self):
        program, _, _ = _run_with(GOOD_CASE, True)
        from repro.ir.opcodes import OpKind
        from repro.ir.registers import RegClass

        calls = [
            i
            for i in program.functions["main"].instructions()
            if i.kind is OpKind.CALL
        ]
        assert calls[0].uses[0].rclass is RegClass.FP


class TestVetoes:
    def test_int_producer_vetoes(self):
        """A call site whose argument comes from INT blocks the decision."""
        src = GOOD_CASE.replace(
            "  v6 = addu v5, v4\n  call mix(v6)",
            "  v6 = addu v5, v4\n  v7 = mult v0, v0\n  call mix(v7)",
        )
        _, result, _ = _run_with(src, True)
        assert result.decisions.fp_params == {}

    def test_int_consumer_in_callee_vetoes(self):
        """A callee that also uses the parameter in INT (addressing)
        keeps the integer convention."""
        src = GOOD_CASE.replace(
            "  v1 = lw v8, 0\n  v2 = addu v1, v0",
            "  v98 = andi v0, 4\n  v99 = addu v8, v98\n  v1 = lw v99, 0\n  v2 = addu v1, v0",
        )
        _, result, run = _run_with(src, True)
        assert result.decisions.fp_params == {}
        assert run.value == run_program(parse_program(src)).value

    def test_uncalled_function_untouched(self):
        src = GOOD_CASE.replace("func mix(1)", "func mix(1)").replace(
            "call mix(v6)", "call mix(v6)"
        )
        # add an orphan function with an offloadable param
        src += """
func orphan(1) {
entry:
  v0 = param 0
  v8 = li @acc
body:
  v1 = lw v8, 0
  v2 = addu v1, v0
  v3 = xor v2, v0
  sw v3, v8, 0
  ret
}
"""
        program, result, _ = _run_with(src, True)
        assert "orphan" not in result.decisions.fp_params
        assert program.functions["orphan"].fp_params == set()


class TestOrchestrator:
    def test_disabled_is_identity_to_per_function(self):
        _, result, run = _run_with(GOOD_CASE, False)
        assert result.decisions is None
        assert result.copies_eliminated == 0

    def test_totals(self):
        _, result, _ = _run_with(GOOD_CASE, True)
        assert result.total("offloaded_instructions") > 5

    def test_basic_scheme_rejects_interprocedural(self):
        program = parse_program(GOOD_CASE)
        with pytest.raises(ReproError, match="advanced"):
            partition_program(program, "basic", interprocedural=True)

    def test_unknown_scheme(self):
        program = parse_program(GOOD_CASE)
        with pytest.raises(ReproError, match="unknown scheme"):
            partition_program(program, "turbo")

    def test_works_on_workloads(self):
        """The extension must hold up on the full li surrogate (the most
        call-intensive benchmark)."""
        from repro.workloads import compile_workload, workload_source
        from repro.minic.compile import compile_source

        source = workload_source("li", 2)
        reference = run_program(compile_source(source)).value

        program = compile_source(source)
        profile = run_program(program).profile
        result = partition_program(
            program, "advanced", profile=profile, interprocedural=True
        )
        verify_program(program)
        assert run_program(program).value == reference
