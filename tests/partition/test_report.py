"""Tests for the partition reporting helpers."""

import pytest

from repro.partition.advanced import advanced_partition
from repro.partition.basic import basic_partition
from repro.partition.report import (
    annotate_partition,
    offload_by_opcode,
    partition_summary_table,
)


class TestAnnotate:
    def test_figure6_annotations(self, figure3):
        partition = advanced_partition(figure3)
        text = annotate_partition(figure3, partition)
        assert "[advanced scheme]" in text
        assert "FPa" in text
        assert "+dup" in text  # the duplicated induction variable
        assert "INT/fpa-data" in text  # converted load/store

    def test_basic_annotations(self, figure3):
        partition = basic_partition(figure3)
        text = annotate_partition(figure3, partition)
        assert "+dup" not in text and "+copy" not in text

    def test_wrong_function_rejected(self, figure3, straightline):
        partition = basic_partition(figure3)
        with pytest.raises(ValueError):
            annotate_partition(straightline, partition)

    def test_every_instruction_listed(self, figure3):
        partition = basic_partition(figure3)
        text = annotate_partition(figure3, partition)
        assert text.count(";") == figure3.instruction_count()


class TestSummaryTable:
    def test_addresses_all_int(self, figure3):
        partition = advanced_partition(figure3)
        table = partition_summary_table(partition)
        assert table["address"]["fpa"] == 0
        assert table["address"]["int"] == 2

    def test_branches_split_per_figure6(self, figure3):
        partition = advanced_partition(figure3)
        table = partition_summary_table(partition)
        # both bltz and bne offloaded by the advanced scheme
        assert table["branch"]["fpa"] == 2
        assert table["branch"]["int"] == 0

    def test_counts_cover_all_nodes(self, figure3):
        partition = basic_partition(figure3)
        table = partition_summary_table(partition)
        total = sum(v for sides in table.values() for v in sides.values())
        assert total == len(partition.rdg.nodes)


class TestOffloadByOpcode:
    def test_figure6_opcode_usage(self, figure3):
        partition = advanced_partition(figure3)
        usage = offload_by_opcode(partition)
        assert usage["addiu"] == 1  # the tick increment
        assert usage["slti"] == 1
        assert usage["bne"] == 1 and usage["bltz"] == 1

    def test_empty_for_unpartitioned_fp_code(self):
        from repro.ir.parser import parse_function

        func = parse_function(
            """
func f(0) {
entry:
  vf0 = li.s 1.0
  vf1 = add.s vf0, vf0
  ret
}
"""
        )
        partition = basic_partition(func)
        assert offload_by_opcode(partition) == {}
