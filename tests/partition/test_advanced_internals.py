"""White-box tests of the advanced scheme's phases (§6.3)."""

import pytest

from repro.ir.parser import parse_function
from repro.partition.advanced import _AdvancedPartitioner
from repro.partition.cost import CostParams, estimate_profile
from repro.partition.advanced import advanced_partition
from repro.partition.partition import partition_stats
from repro.rdg.build import build_rdg
from repro.rdg.graph import Part, Pin


def _partitioner(func, params=None):
    rdg = build_rdg(func)
    n_b = estimate_profile(func)
    return _AdvancedPartitioner(func, rdg, n_b, params or CostParams())


class TestInitialAssignment:
    def test_int_seed_is_backward_closed(self, figure3):
        p = _partitioner(figure3)
        p.initial_int()
        for node in p.int_set:
            for parent in p._real_parents(node):
                assert parent in p.int_set, (node, parent)

    def test_pinned_fp_never_in_int(self):
        func = parse_function(
            """
func f(0) {
entry:
  vf0 = li.s 1.0
  vf1 = add.s vf0, vf0
  ret
}
"""
        )
        p = _partitioner(func)
        p.initial_int()
        for node in p.int_set:
            assert p.rdg.pin.get(node) is not Pin.FP

    def test_actual_param_slices_start_in_fpa(self):
        """§6.4: computation of actual parameters is initially FPa."""
        from repro.ir.parser import parse_program

        program = parse_program(
            """
func g(1) returns {
entry:
  v0 = param 0
  ret v0
}

func main(0) {
entry:
  v1 = li 10
  v2 = addiu v1, 5
  v3 = call g(v2)
  ret
}
"""
        )
        main = program.functions["main"]
        p = _partitioner(main)
        p.initial_int()
        fpa = [n for n in p.rdg.nodes if n not in p.int_set]
        ops = {p.rdg.instruction(n).op.value for n in fpa}
        assert "addiu" in ops and "li" in ops


class TestPhase2Eviction:
    def test_tiny_unprofitable_component_evicted(self):
        """One offloadable instruction behind one copy never pays."""
        func = parse_function(
            """
func f(0) {
entry:
  v9 = li 4096
  v0 = lw v9, 0
  v1 = sll v0, 2
  v2 = addu v9, v1
  v3 = lw v2, 0
  v4 = addiu v3, 7
  v5 = addu v0, v4
  sw v5, v2, 4
  ret
}
"""
        )
        # v5's slice depends on v0 (address-feeding load value): needs a
        # copy; benefit is 2 instructions executed once -> unprofitable.
        partition = advanced_partition(func)
        stats = partition_stats(partition)
        assert stats["copies"] == 0 and stats["dups"] == 0

    def test_profitable_component_kept_in_loop(self, figure3):
        partition = advanced_partition(figure3)
        assert partition_stats(partition)["offloaded_instructions"] > 2

    def test_higher_copy_cost_shrinks_partition(self, figure3):
        cheap = advanced_partition(figure3, params=CostParams(o_copy=3.0, o_dupl=1.5))
        from repro.ir.parser import parse_function as pf
        from tests.conftest import FIGURE3_IR

        expensive_func = pf(FIGURE3_IR)
        expensive = advanced_partition(
            expensive_func, params=CostParams(o_copy=50.0, o_dupl=25.0)
        )
        assert len(expensive.fp) <= len(cheap.fp)


class TestCommunicationSets:
    def test_every_boundary_node_gets_copy_or_dup(self, figure3):
        partition = advanced_partition(figure3)
        rdg = partition.rdg
        for node in rdg.nodes:
            if node in partition.fp:
                continue
            if rdg.instruction(node).kind.value == "copy":
                continue
            has_fpa_child = any(
                child in partition.fp
                for child in rdg.succs[node]
                if (node, child) not in rdg.convention_edges
            )
            if has_fpa_child:
                assert node in partition.copies or node in partition.dups, node

    def test_dup_parents_available(self, figure3):
        partition = advanced_partition(figure3)
        rdg = partition.rdg
        for node in partition.dups:
            for parent in rdg.preds[node]:
                if parent == node:
                    continue
                assert (
                    parent in partition.fp
                    or parent in partition.copies
                    or parent in partition.dups
                ), (node, parent)

    def test_deterministic(self, figure3):
        from tests.conftest import FIGURE3_IR
        from repro.ir.parser import parse_function as pf

        a = advanced_partition(figure3)
        b = advanced_partition(pf(FIGURE3_IR))
        key = lambda p: (
            sorted((n.uid, n.part.value) for n in p.fp),
            sorted((n.uid, n.part.value) for n in p.copies),
            sorted((n.uid, n.part.value) for n in p.dups),
        )
        assert key(a) == key(b)
