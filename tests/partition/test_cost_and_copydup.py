"""Tests for the cost model (§6.1) and copy/duplicate heuristic (§6.2)."""

import math

import pytest

from repro.errors import PartitionError
from repro.ir.parser import parse_function
from repro.partition.copydup import CopyDupDecider, is_duplicable
from repro.partition.cost import (
    CostParams,
    ExecutionProfile,
    block_counts,
    estimate_profile,
)
from repro.rdg.build import build_rdg
from repro.rdg.graph import Part


class TestCostParams:
    def test_defaults_within_paper_ranges(self):
        params = CostParams()
        assert 3.0 <= params.o_copy <= 6.0
        assert 1.5 <= params.o_dupl <= 3.0

    def test_dupl_must_be_cheaper_than_copy(self):
        """§6.2: if o_dupl >= o_copy no node is ever duplicated."""
        with pytest.raises(PartitionError):
            CostParams(o_copy=3.0, o_dupl=3.0)
        with pytest.raises(PartitionError):
            CostParams(o_copy=3.0, o_dupl=4.0)

    def test_custom_params(self):
        params = CostParams(o_copy=6.0, o_dupl=3.0)
        assert params.o_copy == 6.0


class TestExecutionProfile:
    def test_record_accumulates(self):
        profile = ExecutionProfile()
        profile.record("f", "loop")
        profile.record("f", "loop", 4)
        assert profile.block_count("f", "loop") == 5.0

    def test_covers(self):
        profile = ExecutionProfile()
        profile.record("f", "entry")
        assert profile.covers("f")
        assert not profile.covers("g")

    def test_for_function_defaults_to_zero(self, figure3):
        profile = ExecutionProfile()
        profile.record("invalidate", "loop", 66)
        counts = profile.for_function(figure3)
        assert counts["loop"] == 66.0
        assert counts["exit"] == 0.0


class TestEstimatedProfile:
    def test_entry_probability_one(self, figure3):
        est = estimate_profile(figure3)
        assert est["entry"] == 1.0

    def test_loop_blocks_weighted_by_5_to_depth(self, figure3):
        """n_B = p_B * 5^d_B (§6.1)."""
        est = estimate_profile(figure3)
        assert est["loop"] == pytest.approx(5.0)  # p=1, depth=1
        assert est["body"] == pytest.approx(2.5)  # p=0.5 inside the loop
        assert est["skip"] == pytest.approx(5.0)  # rejoins both paths

    def test_branch_directions_equally_likely(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  blez v0, b
a:
  v1 = li 1
  j join
b:
  v1 = li 2
join:
  ret v1
}
"""
        )
        est = estimate_profile(func)
        assert est["a"] == pytest.approx(0.5)
        assert est["b"] == pytest.approx(0.5)
        assert est["join"] == pytest.approx(1.0)

    def test_block_counts_prefers_measured(self, figure3):
        profile = ExecutionProfile()
        profile.record("invalidate", "loop", 66)
        counts = block_counts(figure3, profile)
        assert counts["loop"] == 66.0

    def test_block_counts_falls_back_to_estimate(self, figure3):
        profile = ExecutionProfile()
        profile.record("someone_else", "entry", 1)
        counts = block_counts(figure3, profile)
        assert counts["loop"] == pytest.approx(5.0)


class TestCopyDupDecider:
    def _decider(self, func, params=None):
        rdg = build_rdg(func)
        n_b = estimate_profile(func)
        return rdg, CopyDupDecider(rdg, n_b, params or CostParams())

    def test_copy_cost_formula(self, figure3):
        rdg, decider = self._decider(figure3)
        for node in rdg.nodes:
            expected = CostParams().o_copy * decider.node_count(node)
            assert decider.copying_cost[node] == pytest.approx(expected)

    def test_loop_increment_duplicated(self, figure3):
        """The self-dependent regno increment duplicates (Figure 6)."""
        rdg, decider = self._decider(figure3)
        increments = [
            n
            for n in rdg.nodes
            if rdg.instruction(n).op.value == "addiu" and rdg.block(n) == "skip"
        ]
        assert increments and decider.should_duplicate(increments[0])

    def test_non_duplicable_nodes_have_infinite_dup_cost(self, figure3):
        rdg, decider = self._decider(figure3)
        for node in rdg.nodes:
            if not is_duplicable(rdg.instruction(node), node):
                assert math.isinf(decider.dupl_cost[node])

    def test_dup_chain_cost_fans_out(self):
        """Duplicating a node whose parent must also be made available
        charges the parent's cheaper mechanism."""
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 1
  v1 = addiu v0, 2
  v2 = addiu v1, 3
  ret v2
}
"""
        )
        rdg, decider = self._decider(func)
        nodes = {rdg.instruction(n).imm: n for n in rdg.nodes if rdg.instruction(n).op.value == "addiu"}
        li = [n for n in rdg.nodes if rdg.instruction(n).op.value == "li"][0]
        params = CostParams()
        assert decider.dupl_cost[li] == pytest.approx(params.o_dupl)
        assert decider.dupl_cost[nodes[2]] == pytest.approx(2 * params.o_dupl)
        assert decider.dupl_cost[nodes[3]] == pytest.approx(3 * params.o_dupl)

    def test_comm_cost_is_min_of_both(self, figure3):
        rdg, decider = self._decider(figure3)
        for node in rdg.nodes:
            assert decider.comm_cost(node) == pytest.approx(
                min(decider.copying_cost[node], decider.dupl_cost[node])
            )


class TestIsDuplicable:
    def test_alu_with_twin_duplicable(self, figure3):
        rdg = build_rdg(figure3)
        for node in rdg.nodes:
            instr = rdg.instruction(node)
            if instr.op.value == "slti":
                assert is_duplicable(instr, node)

    def test_memory_value_nodes_not_duplicable(self, figure3):
        """Duplicating a load would add a memory access."""
        rdg = build_rdg(figure3)
        for node in rdg.nodes:
            if node.part is Part.VALUE:
                assert not is_duplicable(rdg.instruction(node), node)

    def test_mult_not_duplicable(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 3
  v1 = mult v0, v0
  ret v1
}
"""
        )
        rdg = build_rdg(func)
        for node in rdg.nodes:
            if rdg.instruction(node).op.value == "mult":
                assert not is_duplicable(rdg.instruction(node), node)
