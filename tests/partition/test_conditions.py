"""Tests for partition legality (§5.1 conditions and their §6
generalization) and the Partition datatype."""

import pytest

from repro.errors import PartitionError
from repro.ir.parser import parse_function
from repro.partition.basic import basic_partition
from repro.partition.advanced import advanced_partition
from repro.partition.partition import Partition, check_partition
from repro.rdg.build import build_rdg
from repro.rdg.graph import Node, Part


def _node_for(rdg, mnemonic, part=Part.WHOLE):
    for node in rdg.nodes:
        if rdg.instruction(node).op.value == mnemonic and node.part is part:
            return node
    raise AssertionError(f"no node {mnemonic}/{part}")


class TestConditions:
    def test_empty_partition_is_legal(self, figure3):
        rdg = build_rdg(figure3)
        check_partition(Partition(rdg=rdg, fp=set()))

    def test_int_pinned_node_in_fp_rejected(self, figure3):
        rdg = build_rdg(figure3)
        addr = _node_for(rdg, "lw", Part.ADDR)
        with pytest.raises(PartitionError, match="INT-pinned"):
            check_partition(Partition(rdg=rdg, fp={addr}))

    def test_fp_pinned_node_in_int_rejected(self):
        func = parse_function(
            """
func f(0) {
entry:
  vf0 = li.s 1.0
  vf1 = add.s vf0, vf0
  ret
}
"""
        )
        rdg = build_rdg(func)
        with pytest.raises(PartitionError, match="FP-pinned"):
            check_partition(Partition(rdg=rdg, fp=set()))

    def test_uncompensated_crossing_edge_rejected(self, figure3):
        """Condition 2 of §5.1: an FPa node must not receive a register
        value from INT (without a copy)."""
        rdg = build_rdg(figure3)
        slti = _node_for(rdg, "slti")  # consumes v0 from INT
        with pytest.raises(PartitionError, match="uncompensated"):
            check_partition(Partition(rdg=rdg, fp={slti}))

    def test_fpa_to_int_edge_rejected(self, figure3):
        """Condition 3 of §5.1: an FPa node must not supply a register
        value to INT."""
        rdg = build_rdg(figure3)
        lw_value = _node_for(rdg, "lw", Part.VALUE)
        # lw value feeds both bltz and addiu; putting only the value node
        # in FPa leaves illegal FPa->INT edges
        with pytest.raises(PartitionError, match="FPa->INT"):
            check_partition(Partition(rdg=rdg, fp={lw_value}))

    def test_crossing_edge_with_copy_accepted(self, figure3):
        rdg = build_rdg(figure3)
        slti = _node_for(rdg, "slti")
        bne = _node_for(rdg, "bne")
        li0 = None
        for node in rdg.nodes:
            instr = rdg.instruction(node)
            if instr.op.value == "li" and instr.imm == 0:
                li0 = node
        v0_defs = [p for p in rdg.preds[slti]]
        check_partition(
            Partition(
                rdg=rdg,
                fp={slti, bne, li0},
                copies=set(v0_defs),
            )
        )

    def test_copy_site_must_define_register(self, figure3):
        rdg = build_rdg(figure3)
        sw_value = _node_for(rdg, "sw", Part.VALUE)
        with pytest.raises(PartitionError):
            check_partition(
                Partition(rdg=rdg, fp=set(), copies={sw_value})
            )

    def test_dup_site_must_be_duplicable(self, figure3):
        rdg = build_rdg(figure3)
        lw_value = _node_for(rdg, "lw", Part.VALUE)
        with pytest.raises(PartitionError, match="not duplicable"):
            check_partition(Partition(rdg=rdg, fp=set(), dups={lw_value}))

    def test_back_copy_site_must_be_fpa(self, figure3):
        rdg = build_rdg(figure3)
        sll = _node_for(rdg, "sll")
        with pytest.raises(PartitionError, match="back-copy"):
            check_partition(Partition(rdg=rdg, fp=set(), back_copies={sll}))


class TestSchemesProduceLegalPartitions:
    @pytest.mark.parametrize("scheme", ["basic", "advanced"])
    def test_schemes_self_check(self, figure3, scheme):
        if scheme == "basic":
            partition = basic_partition(figure3)
        else:
            partition = advanced_partition(figure3)
        check_partition(partition)  # re-check is idempotent
        assert partition.scheme == scheme

    def test_disjointness_by_construction(self, figure3):
        """Condition 1: F(G) and I(G) are disjoint."""
        partition = advanced_partition(figure3)
        int_nodes = set(partition.int_nodes())
        assert not (partition.fp & int_nodes)
        assert partition.fp | int_nodes == set(partition.rdg.nodes)

    def test_static_fraction(self, figure3):
        partition = basic_partition(figure3)
        assert 0.0 < partition.fp_fraction_static() < 1.0
