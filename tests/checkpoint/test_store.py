"""Checkpoint slots: defensive reads, atomic overwrites, env wiring.

The store's contract is asymmetric on purpose: ``save`` is best-effort
(an unwritable directory degrades to "no checkpoint", never an error),
while ``load`` refuses anything that is not a bit-perfect checkpoint
for exactly this simulation and returns ``None`` — a cold restart.
"""

from __future__ import annotations

import os

from repro.checkpoint import (
    CKPT_CYCLES_ENV,
    CKPT_DIR_ENV,
    CheckpointStore,
    config_sha256,
    slot_from_env,
)
from repro.sim.config import eight_way, four_way

KEY = "12" * 32
BINDINGS = {"trace_key": "t", "config_sha256": "c", "code_version": "v"}
STATE = {"now": 7, "stats": {"cycles": 7}}


class TestStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(KEY, STATE, BINDINGS)
        assert store.load(KEY, BINDINGS) == STATE

    def test_missing_slot_is_a_cold_restart(self, tmp_path):
        assert CheckpointStore(tmp_path).load(KEY, BINDINGS) is None

    def test_torn_file_is_a_cold_restart(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(KEY, STATE, BINDINGS)
        path = store.path_for(KEY)
        path.write_bytes(path.read_bytes()[:-9])
        assert store.load(KEY, BINDINGS) is None

    def test_foreign_bindings_are_a_cold_restart(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(KEY, STATE, BINDINGS)
        other = dict(BINDINGS, code_version="other")
        assert store.load(KEY, other) is None

    def test_save_overwrites_atomically(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(KEY, STATE, BINDINGS)
        newer = {"now": 9, "stats": {"cycles": 9}}
        store.save(KEY, newer, BINDINGS)
        assert store.load(KEY, BINDINGS) == newer
        parent = store.path_for(KEY).parent
        assert [p.name for p in parent.iterdir()] == [store.path_for(KEY).name]

    def test_failed_publish_keeps_previous_checkpoint(self, tmp_path, monkeypatch):
        """A writer dying between temp write and rename must leave the
        previous complete checkpoint in place (the SIGKILL model)."""
        store = CheckpointStore(tmp_path)
        store.save(KEY, STATE, BINDINGS)

        def exploding_replace(src, dst):
            raise OSError("killed mid-publish")

        monkeypatch.setattr(os, "replace", exploding_replace)
        store.save(KEY, {"now": 9}, BINDINGS)
        monkeypatch.undo()
        assert store.load(KEY, BINDINGS) == STATE

    def test_unwritable_store_is_a_no_op(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        store = CheckpointStore(blocker / "sub")  # parent is a file
        store.save(KEY, STATE, BINDINGS)  # must not raise

    def test_discard_removes_the_slot(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(KEY, STATE, BINDINGS)
        store.discard(KEY)
        assert store.load(KEY, BINDINGS) is None
        store.discard(KEY)  # idempotent


class TestSlotFromEnv:
    def test_disabled_without_env(self):
        assert slot_from_env("t", four_way()) is None

    def test_disabled_on_zero_or_garbage(self, monkeypatch):
        for value in ("0", "-5", "nope"):
            monkeypatch.setenv(CKPT_CYCLES_ENV, value)
            assert slot_from_env("t", four_way()) is None

    def test_enabled_slot_roundtrips(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CKPT_CYCLES_ENV, "500")
        monkeypatch.setenv(CKPT_DIR_ENV, str(tmp_path))
        slot = slot_from_env("t", four_way(), label="x")
        assert slot is not None and slot.interval == 500
        assert slot.load() is None
        slot.save(STATE)
        assert slot.load() == STATE
        slot.clear()
        assert slot.load() is None

    def test_machine_config_separates_slots(self, tmp_path, monkeypatch):
        """The same trace on different machines must never share a
        checkpoint — the slot key folds in the config hash."""
        monkeypatch.setenv(CKPT_CYCLES_ENV, "500")
        monkeypatch.setenv(CKPT_DIR_ENV, str(tmp_path))
        four = slot_from_env("t", four_way())
        eight = slot_from_env("t", eight_way())
        assert four.key != eight.key
        four.save(STATE)
        assert eight.load() is None

    def test_config_sha_covers_perfect_branches(self):
        config = four_way()
        assert config_sha256(config, False) != config_sha256(config, True)
