"""The ``repro-ckpt/1`` byte format: roundtrip, determinism, damage.

Every way a checkpoint file can be wrong — truncation, foreign magic,
a single flipped bit, a stale code version, a lying length field —
must surface as :class:`CheckpointError`, because the store turns that
error into a cold restart and anything that slips through would be
applied to live simulator state.
"""

from __future__ import annotations

import pytest

from repro.checkpoint import decode_checkpoint, encode_checkpoint
from repro.checkpoint.codec import CKPT_FORMAT_VERSION, MAGIC
from repro.errors import CheckpointError

STATE = {
    "n": 1000,
    "now": 41,
    "cursors": {"fetch_index": 64, "retired": 37},
    "dyns": [{"seq": 37, "complete": 44, "producers": []}],
    "stats": {"cycles": 41, "retired": 37},
}

BINDINGS = {
    "format_version": CKPT_FORMAT_VERSION,
    "trace_key": "ab" * 32,
    "config_sha256": "cd" * 32,
    "code_version": "ef" * 32,
}


class TestRoundtrip:
    def test_encode_decode_roundtrip(self):
        data = encode_checkpoint(STATE, BINDINGS)
        assert decode_checkpoint(data, BINDINGS) == STATE

    def test_decode_without_bindings_skips_the_check(self):
        data = encode_checkpoint(STATE, BINDINGS)
        assert decode_checkpoint(data) == STATE

    def test_encoding_is_deterministic(self):
        """Identical state encodes identically — the chaos suite diffs
        encodings taken in different processes."""
        a = encode_checkpoint(STATE, BINDINGS)
        b = encode_checkpoint(dict(reversed(list(STATE.items()))), BINDINGS)
        assert a == b

    def test_starts_with_magic(self):
        assert encode_checkpoint(STATE, BINDINGS).startswith(MAGIC)


class TestDamage:
    def test_empty_and_truncated_prefix(self):
        for data in (b"", MAGIC, MAGIC + b"\x00" * 10):
            with pytest.raises(CheckpointError):
                decode_checkpoint(data, BINDINGS)

    def test_foreign_magic(self):
        data = bytearray(encode_checkpoint(STATE, BINDINGS))
        data[:4] = b"ELF\x7f"
        with pytest.raises(CheckpointError, match="magic"):
            decode_checkpoint(bytes(data), BINDINGS)

    @pytest.mark.parametrize("offset_from_end", [1, 40, 200])
    def test_single_flipped_bit_is_detected(self, offset_from_end):
        data = bytearray(encode_checkpoint(STATE, BINDINGS))
        data[-offset_from_end] ^= 0x40
        with pytest.raises(CheckpointError):
            decode_checkpoint(bytes(data), BINDINGS)

    def test_truncated_payload_is_detected(self):
        data = encode_checkpoint(STATE, BINDINGS)
        with pytest.raises(CheckpointError):
            decode_checkpoint(data[:-7], BINDINGS)

    def test_bindings_mismatch_is_fatal(self):
        data = encode_checkpoint(STATE, BINDINGS)
        stale = dict(BINDINGS, code_version="00" * 32)
        with pytest.raises(CheckpointError, match="bindings"):
            decode_checkpoint(data, stale)

    def test_version_bump_refuses_old_files(self):
        old = dict(BINDINGS, format_version=CKPT_FORMAT_VERSION)
        data = encode_checkpoint(STATE, old)
        # same bytes, reader now expects a newer version
        import repro.checkpoint.codec as codec

        original = codec.CKPT_FORMAT_VERSION
        codec.CKPT_FORMAT_VERSION = original + 1
        try:
            with pytest.raises(CheckpointError, match="version"):
                decode_checkpoint(data)
        finally:
            codec.CKPT_FORMAT_VERSION = original

    def test_non_object_state_is_refused(self):
        import hashlib
        import json

        payload = json.dumps([1, 2, 3]).encode()
        header = json.dumps(
            {
                "format": "repro-ckpt",
                "version": CKPT_FORMAT_VERSION,
                "bindings": BINDINGS,
                "payload_bytes": len(payload),
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode()
        digest = hashlib.sha256(header + payload).digest()
        data = MAGIC + digest + len(header).to_bytes(4, "big") + header + payload
        with pytest.raises(CheckpointError, match="object"):
            decode_checkpoint(data, BINDINGS)
