"""Shared fixtures for the checkpoint/resume tests.

Interpretation is the slow part, so the smoke matrix is captured once
per module; every test starts with checkpointing disabled in the
environment so ``slot_from_env`` assertions are about *this* test's
configuration.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import clear_memo
from repro.checkpoint import CKPT_CYCLES_ENV, CKPT_DIR_ENV
from repro.experiments.runner import SCHEMES, prepare_program
from repro.runtime.interp import run_program
from repro.trace.pack import pack_entries
from repro.trace.store import TRACE_CACHE_ENV, clear_trace_pool

#: The smoke matrix (mirrors ``repro.bench.matrix``'s smoke suite).
SMOKE = {"compress": 150, "m88ksim": 2}

CELLS = [
    (workload, scale, scheme)
    for workload, scale in sorted(SMOKE.items())
    for scheme in SCHEMES
]
IDS = [f"{w}@{s}/{scheme}" for w, s, scheme in CELLS]


@pytest.fixture(autouse=True)
def no_env_checkpointing(monkeypatch):
    monkeypatch.delenv(CKPT_CYCLES_ENV, raising=False)
    monkeypatch.delenv(CKPT_DIR_ENV, raising=False)
    monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
    clear_memo()
    clear_trace_pool()
    yield
    clear_memo()
    clear_trace_pool()


@pytest.fixture(scope="module")
def packs():
    """(workload, scheme) -> packed trace; each cell interpreted once."""
    runs = {}
    for workload, scale, scheme in CELLS:
        artifacts = prepare_program(workload, scheme, scale=scale)
        run = run_program(artifacts.program, collect_trace=True)
        runs[(workload, scheme)] = pack_entries(run.trace, value=run.value)
    return runs
