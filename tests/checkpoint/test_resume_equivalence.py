"""The checkpoint differential guarantee, as a test.

For every cell of the smoke matrix, on both Table 1 machine widths:
kill a checkpointing simulation mid-run, resume it from the slot, and
the final ``SimStats`` must be **bit-identical** — every counter — to
an uninterrupted run of the same trace.  This is what licenses the
harness to retry a crashed cell from its checkpoint: resumption can
make a rerun cheaper, never different.
"""

from __future__ import annotations

import pytest

from repro.checkpoint import CheckpointSlot, CheckpointStore
from repro.checkpoint.codec import CKPT_FORMAT_VERSION
from repro.errors import CheckpointError, SimulationError
from repro.sim.config import eight_way, four_way
from repro.sim.pipeline import TimingSimulator

from tests.checkpoint.conftest import CELLS, IDS

BINDINGS = {
    "format_version": CKPT_FORMAT_VERSION,
    "trace_key": "t" * 8,
    "config_sha256": "c" * 8,
    "code_version": "v" * 8,
}


def make_slot(tmp_path, interval: int) -> CheckpointSlot:
    return CheckpointSlot(
        CheckpointStore(tmp_path), "77" * 32, BINDINGS, interval=interval
    )


def run_killed_then_resumed(pack, config_factory, slot, kill_at: int):
    """Simulate a worker killed at ``kill_at`` cycles, then the retry."""
    with pytest.raises(SimulationError):
        TimingSimulator(config_factory(), checkpoint=slot).run(
            pack, max_cycles=kill_at
        )
    resumed = TimingSimulator(config_factory(), checkpoint=slot)
    stats = resumed.run(pack)
    return resumed, stats


@pytest.mark.parametrize(("workload", "scale", "scheme"), CELLS, ids=IDS)
@pytest.mark.parametrize("config", [four_way, eight_way], ids=["4way", "8way"])
def test_resumed_stats_bit_identical(packs, tmp_path, workload, scale, scheme, config):
    pack = packs[(workload, scheme)]
    clean = TimingSimulator(config()).run(pack).to_counters()
    total = clean["cycles"]
    slot = make_slot(tmp_path, max(1, total // 9))
    sim, stats = run_killed_then_resumed(pack, config, slot, total // 2)
    assert sim.resumed_from is not None and sim.resumed_from > 0
    counters = stats.to_counters()
    for field, value in clean.items():
        assert counters[field] == value, (
            f"{workload}/{scheme}: SimStats.{field} diverges between "
            f"checkpoint-resumed and uninterrupted runs"
        )
    assert counters == clean
    # a finished simulation has no use for its slot
    assert slot.load() is None


@pytest.mark.parametrize("fraction", [0.15, 0.5, 0.9], ids=["early", "mid", "late"])
def test_kill_point_does_not_matter(packs, tmp_path, fraction):
    pack = packs[("compress", "advanced")]
    clean = TimingSimulator(four_way()).run(pack).to_counters()
    total = clean["cycles"]
    slot = make_slot(tmp_path, max(1, total // 13))
    _, stats = run_killed_then_resumed(
        pack, four_way, slot, max(1, int(total * fraction))
    )
    assert stats.to_counters() == clean


def test_double_kill_still_converges(packs, tmp_path):
    """Crash, resume, crash again later, resume again: still identical."""
    pack = packs[("m88ksim", "basic")]
    clean = TimingSimulator(four_way()).run(pack).to_counters()
    total = clean["cycles"]
    slot = make_slot(tmp_path, max(1, total // 11))
    with pytest.raises(SimulationError):
        TimingSimulator(four_way(), checkpoint=slot).run(
            pack, max_cycles=max(1, total // 3)
        )
    with pytest.raises(SimulationError):
        TimingSimulator(four_way(), checkpoint=slot).run(
            pack, max_cycles=max(2, (2 * total) // 3)
        )
    stats = TimingSimulator(four_way(), checkpoint=slot).run(pack)
    assert stats.to_counters() == clean


def test_uninterrupted_checkpointing_run_is_unchanged(packs, tmp_path):
    """Snapshotting must be observation, not perturbation."""
    pack = packs[("compress", "conventional")]
    clean = TimingSimulator(four_way()).run(pack).to_counters()
    slot = make_slot(tmp_path, max(1, clean["cycles"] // 5))
    stats = TimingSimulator(four_way(), checkpoint=slot).run(pack)
    assert stats.to_counters() == clean


def test_corrupt_slot_is_a_cold_restart_with_correct_result(packs, tmp_path):
    pack = packs[("compress", "basic")]
    clean = TimingSimulator(four_way()).run(pack).to_counters()
    total = clean["cycles"]
    slot = make_slot(tmp_path, max(1, total // 7))
    with pytest.raises(SimulationError):
        TimingSimulator(four_way(), checkpoint=slot).run(
            pack, max_cycles=total // 2
        )
    path = slot.store.path_for(slot.key)
    damaged = bytearray(path.read_bytes())
    damaged[len(damaged) // 2] ^= 0xFF
    path.write_bytes(bytes(damaged))
    sim = TimingSimulator(four_way(), checkpoint=slot)
    stats = sim.run(pack)
    assert sim.resumed_from is None  # refused the damaged file
    assert stats.to_counters() == clean


def test_record_timeline_refuses_checkpointing(tmp_path):
    slot = make_slot(tmp_path, 100)
    with pytest.raises(CheckpointError):
        TimingSimulator(four_way(), record_timeline=True, checkpoint=slot)
