"""Qualitative shape checks of the paper's headline results, at reduced
scales so they stay test-suite-fast.  The full-scale numbers live in the
benchmark harness and EXPERIMENTS.md."""

import pytest

from repro.experiments.runner import run_benchmark, run_pair

#: reduced scales for shape tests
FAST = {"compress": 300, "m88ksim": 4, "li": 6, "go": 2, "swim": 2, "ear": 1}


class TestHeadlineShapes:
    def test_advanced_offloads_more_than_basic(self):
        basic = run_benchmark("compress", "basic", scale=FAST["compress"])
        advanced = run_benchmark("compress", "advanced", scale=FAST["compress"])
        assert advanced.offload_fraction >= basic.offload_fraction

    def test_offload_fraction_in_paper_band(self):
        """Figure 8 band: the advanced scheme offloads 9-41% (we accept
        a slightly wider band at reduced scales)."""
        result = run_benchmark("m88ksim", "advanced", scale=FAST["m88ksim"])
        assert 0.05 <= result.offload_fraction <= 0.55

    def test_partitioning_speeds_up_m88ksim(self):
        _, _, speedup = run_pair("m88ksim", "advanced", width=4, scale=FAST["m88ksim"])
        assert speedup > 1.05  # the paper's 23% best case

    def test_li_gains_little(self):
        """§7.2/Figure 9: call-intensive li barely benefits."""
        _, li_result, li_speedup = run_pair("li", "advanced", width=4, scale=FAST["li"])
        _, _, m88k_speedup = run_pair("m88ksim", "advanced", width=4, scale=FAST["m88ksim"])
        assert li_speedup < m88k_speedup

    def test_eight_way_gains_smaller_than_four_way(self):
        """Figure 10: with 4 INT units the extra FPa bandwidth matters
        much less."""
        _, _, four = run_pair("m88ksim", "advanced", width=4, scale=FAST["m88ksim"])
        _, _, eight = run_pair("m88ksim", "advanced", width=8, scale=FAST["m88ksim"])
        assert eight < four

    def test_overhead_small(self):
        """§7.2: the advanced scheme adds only a few percent dynamic
        instructions."""
        baseline = run_benchmark("compress", "conventional", scale=FAST["compress"])
        advanced = run_benchmark("compress", "advanced", scale=FAST["compress"])
        increase = (
            advanced.dynamic_instructions - baseline.dynamic_instructions
        ) / baseline.dynamic_instructions
        assert 0.0 <= increase < 0.10

    def test_fp_program_not_hurt(self):
        """§7.5: partitioning must not slow down FP programs materially."""
        _, _, speedup = run_pair("swim", "advanced", width=4, scale=FAST["swim"])
        assert speedup > 0.97

    def test_conventional_equals_basic_when_nothing_offloaded(self):
        """swim's basic partition finds nothing new (all FP work is
        already in FP); cycle counts must match exactly."""
        baseline = run_benchmark("swim", "conventional", scale=FAST["swim"])
        basic = run_benchmark("swim", "basic", scale=FAST["swim"])
        assert basic.offload_fraction == pytest.approx(
            baseline.offload_fraction, abs=0.02
        )
