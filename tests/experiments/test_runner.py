"""Tests for the experiment pipeline (small scales)."""

import pytest

from repro.errors import ReproError
from repro.experiments.runner import (
    BenchmarkResult,
    prepare_program,
    run_benchmark,
    run_pair,
)

SCALE = {"compress": 150, "m88ksim": 1}


class TestPrepare:
    def test_conventional_has_no_partition(self):
        artifacts = prepare_program("compress", "conventional", scale=SCALE["compress"])
        assert artifacts.partition_summary == {}
        assert artifacts.static_instructions > 0

    def test_partitioned_has_summary(self):
        artifacts = prepare_program("compress", "advanced", scale=SCALE["compress"])
        assert artifacts.partition_summary["offloaded_instructions"] > 0

    def test_unknown_scheme(self):
        with pytest.raises(ReproError, match="scheme"):
            prepare_program("compress", "hyper", scale=10)

    def test_profile_optional(self):
        with_profile = prepare_program(
            "compress", "advanced", scale=SCALE["compress"], use_profile=True
        )
        without = prepare_program(
            "compress", "advanced", scale=SCALE["compress"], use_profile=False
        )
        assert with_profile.profile is not None
        assert without.profile is None

    def test_regalloc_toggle(self):
        raw = prepare_program("compress", "conventional", scale=100, regalloc=False)
        allocated = prepare_program("compress", "conventional", scale=100, regalloc=True)
        # spill code may add instructions but virtual regs must be gone
        for func in allocated.program.functions.values():
            for instr in func.instructions():
                assert all(not r.virtual for r in instr.defs + instr.uses)
        assert any(
            any(r.virtual for r in i.defs + i.uses)
            for f in raw.program.functions.values()
            for i in f.instructions()
        )


class TestRunBenchmark:
    def test_result_fields(self):
        result = run_benchmark("m88ksim", "advanced", width=4, scale=SCALE["m88ksim"])
        assert isinstance(result, BenchmarkResult)
        assert result.cycles > 0
        assert result.dynamic_instructions > 0
        assert 0.0 < result.offload_fraction < 0.6
        assert result.machine == "4-way"
        assert result.mix["total"] == result.dynamic_instructions

    def test_conventional_offloads_nothing(self):
        result = run_benchmark("m88ksim", "conventional", width=4, scale=1)
        assert result.offload_fraction == 0.0
        assert result.stats.fp_issued == 0

    def test_run_pair_speedup(self):
        baseline, partitioned, speedup = run_pair(
            "m88ksim", "advanced", width=4, scale=SCALE["m88ksim"]
        )
        assert baseline.checksum == partitioned.checksum
        assert speedup == pytest.approx(baseline.cycles / partitioned.cycles)
        assert speedup > 1.0  # m88ksim is the paper's best case

    def test_checksum_mismatch_detected(self):
        a = run_benchmark("m88ksim", "conventional", width=4, scale=1)
        b = run_benchmark("compress", "conventional", width=4, scale=150)
        with pytest.raises(ReproError, match="checksum"):
            b.speedup_over(a)

    def test_eight_way_machine(self):
        result = run_benchmark("m88ksim", "conventional", width=8, scale=1)
        assert result.machine == "8-way"
