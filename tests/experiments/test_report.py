"""Tests for experiment formatting and the report CLI."""

import pytest

from repro.experiments import figure8, figure9, figure10, table_fp, table_overhead
from repro.experiments.report import format_table1, format_table2, main


class TestStaticTables:
    def test_table1_mentions_both_machines(self):
        text = format_table1()
        assert "4-way" in text and "8-way" in text
        assert "2 Int + 2 Fp" in text and "4 Int + 4 Fp" in text
        assert "gshare" in text

    def test_table2_lists_all_benchmarks(self):
        text = format_table2()
        for name in ("compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "ear", "swim"):
            assert name in text


class TestRowFormatting:
    def test_figure8_format(self):
        rows = [
            figure8.Figure8Row("compress", 12.0, 27.6, 14.0, 27.0),
        ]
        text = figure8.format_table(rows)
        assert "compress" in text
        assert "27.6%" in text and "27.0%" in text

    def test_figure9_format(self):
        rows = [
            figure9.SpeedupRow("m88ksim", 29.9, 34.2, 10.0, 23.0, 1000, 745),
        ]
        text = figure9.format_table(rows)
        assert "+34.2%" in text

    def test_figure10_uses_8way_title(self):
        rows = [
            figure9.SpeedupRow("li", 0.9, 0.7, 1.0, 1.0, 100, 99),
        ]
        assert "8-way" in figure10.format_table(rows)

    def test_overhead_format(self):
        rows = [
            table_overhead.OverheadRow(
                "compress", 4.91, 1.71, 3.20, 8.97, 0.00005, 0.00005, 10, 20
            )
        ]
        text = table_overhead.format_table(rows)
        assert "4.91%" in text

    def test_fp_format(self):
        rows = [table_fp.FpRow("ear", 0.238, 1.0, 15.9, 44.9)]
        text = table_fp.format_table(rows)
        assert "ear" in text and "+15.9%" in text


class TestReportCli:
    def test_static_experiments_run(self, capsys):
        assert main(["table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["figNaN"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_paper_reference_values_cover_all_int_benchmarks(self):
        from repro.workloads import INT_BENCHMARKS

        for name in INT_BENCHMARKS:
            assert name in figure8.PAPER_FIGURE8
            assert name in figure9.PAPER_FIGURE9
            assert name in figure10.PAPER_FIGURE10
