"""Tests for ASCII charts and the slice-characterization experiment."""

import pytest

from repro.experiments import charts, figure8, slices


class TestBars:
    def test_bar_scaling(self):
        assert charts.bar(10, 10, width=20) == "#" * 20
        assert charts.bar(5, 10, width=20) == "#" * 10
        assert charts.bar(0, 10) == ""

    def test_half_units(self):
        assert charts.bar(5.25, 10, width=20).endswith("+")

    def test_negative_clamped(self):
        assert charts.bar(-3, 10) == ""

    def test_zero_scale(self):
        assert charts.bar(5, 0) == ""

    def test_grouped_bars_layout(self):
        text = charts.grouped_bars(
            "demo",
            [("alpha", {"basic": 10.0, "advanced": 20.0}),
             ("beta", {"basic": 5.0, "advanced": 40.0})],
        )
        assert "demo" in text
        assert text.count("|") == 4
        # the largest value owns the full axis
        longest = max(line.split("|")[1] for line in text.splitlines() if "|" in line)
        assert len(longest) == 40

    def test_figure_chart_uses_row_attrs(self):
        rows = [figure8.Figure8Row("compress", 12.0, 27.6, 14.0, 27.0)]
        text = charts.figure_chart(
            rows,
            {"basic": "basic_percent", "advanced": "advanced_percent"},
            "t",
        )
        assert "compress" in text and "27.6" in text

    def test_empty_rows(self):
        assert charts.grouped_bars("t", []) == "t"


class TestSliceCharacterization:
    @pytest.fixture(scope="class")
    def row(self):
        return slices.characterize("m88ksim", scale=1)

    def test_fractions_partition_the_stream(self, row):
        total = (
            row.ldst_fraction
            + row.memory_ops_fraction
            + row.offloadable_fraction
            + row.call_glue_fraction
            + row.other_fraction
        )
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_all_fractions_nonnegative(self, row):
        for value in (
            row.ldst_fraction,
            row.memory_ops_fraction,
            row.offloadable_fraction,
            row.call_glue_fraction,
            row.other_fraction,
        ):
            assert value >= 0.0

    def test_memory_bound_band(self, row):
        assert 0.3 < row.ldst_fraction + row.memory_ops_fraction < 0.7

    def test_format_table(self, row):
        text = slices.format_table([row])
        assert "m88ksim" in text and "%" in text
