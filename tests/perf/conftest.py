"""Fabricated, schema-valid BENCH documents for the perf-history tests.

Running the real pipeline for a 50-run synthetic history would dwarf
the suite's runtime; these helpers build ``repro-bench/1`` documents
directly (they pass :func:`repro.bench.results.validate_document`)
with exactly the fields the detectors read — per-cell cycles, wall
times, host identity and repeat data.
"""

from __future__ import annotations

import pytest

from repro.bench.results import host_fingerprint, validate_document
from repro.perf.history import HistoryEntry

TEST_HOST = {
    "platform": "test-linux",
    "machine": "riscv128",
    "python": "3.12.0",
    "cpu_count": 4,
}


def make_result(workload: str, scheme: str, width: int, cycles: int) -> dict:
    instructions = 100_000
    return {
        "name": workload,
        "scheme": scheme,
        "machine": f"{width}-way",
        "checksum": 1_234_567,
        "dynamic_instructions": instructions,
        "offload_fraction": 0.12,
        "cycles": cycles,
        "ipc": instructions / cycles,
        "static_instructions": 150,
        "partition_summary": {"nodes": 170, "fp_nodes": 20},
        "mix": {"total": instructions, "fp_executed": 12_000},
        "stats": {"cycles": cycles, "retired": instructions},
    }


def make_cell(
    workload: str = "compress",
    scheme: str = "advanced",
    width: int = 4,
    cycles: int = 50_000,
    *,
    wall: float = 1.0,
    cached: bool = False,
    attempt_seconds: list[float] | None = None,
) -> dict:
    doc = {
        "workload": workload,
        "scheme": scheme,
        "width": width,
        "scale": None,
        "key": f"{workload}-{scheme}-{width}",
        "cached": cached,
        "source": "cache" if cached else "computed",
        "status": "ok",
        "attempts": 1,
        "seconds": 0.0 if cached else wall,
        "compute_seconds": wall,
        "throughput_ips": 100_000 / wall,
        "result": make_result(workload, scheme, width, cycles),
    }
    if attempt_seconds:
        doc["attempt_seconds"] = list(attempt_seconds)
    return doc


def make_document(
    cells: list[dict],
    *,
    suite: str = "fig8",
    code_version: str = "codev-1",
    created: float = 1_754_000_000.0,
    host: dict | None = None,
) -> dict:
    host = dict(host or TEST_HOST)
    host["fingerprint"] = host_fingerprint(host)
    doc = {
        "schema": "repro-bench/1",
        "suite": suite,
        "created_unix": created,
        "code_version": code_version,
        "host": host,
        "jobs": 1,
        "total_seconds": sum(c["seconds"] for c in cells),
        "cache": {"dir": None, "hits": 0, "misses": len(cells),
                  "hit_rate": 0.0},
        "cells": cells,
        "failures": [],
    }
    validate_document(doc)
    return doc


def make_entry(
    cells: list[dict],
    *,
    sha: str,
    suite: str = "fig8",
    branch: str = "main",
    code_version: str = "codev-1",
    created: float = 1_754_000_000.0,
    host: dict | None = None,
) -> HistoryEntry:
    document = make_document(
        cells, suite=suite, code_version=code_version, created=created,
        host=host,
    )
    return HistoryEntry.from_document(document, sha=sha, branch=branch)


def series_entries(
    cycle_values: list[int],
    *,
    suite: str = "fig8",
    workload: str = "compress",
    wall_values: list[float] | None = None,
) -> list[HistoryEntry]:
    """One history entry per value: a single-cell suite whose cycle
    count follows ``cycle_values`` run by run (each run its own sha and
    code version, like real commits)."""
    entries = []
    for index, cycles in enumerate(cycle_values):
        wall = wall_values[index] if wall_values else 1.0
        entries.append(
            make_entry(
                [make_cell(workload=workload, cycles=cycles, wall=wall)],
                sha=f"sha{index:04d}" + "0" * 32,
                suite=suite,
                code_version=f"codev-{index}",
                created=1_754_000_000.0 + 3600.0 * index,
            )
        )
    return entries


@pytest.fixture
def history_path(tmp_path):
    return tmp_path / "main.jsonl"
