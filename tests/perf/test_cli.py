"""``repro perf`` end to end: a synthetic 50-run history flags an
injected 15% regression with exit code 23 (correct cell, correct
change-point sha), stays quiet on honest noise, and the verdict
document validates."""

from __future__ import annotations

import json
import random

import pytest

from repro.bench.results import (
    load_document as load_bench_document,
    save_document,
    validate_document,
)
from repro.errors import EXIT_PERF_DEGRADED
from repro.perf.cli import main as perf_main
from repro.perf.history import PerfHistory
from repro.perf.report import PERF_SCHEMA, validate_verdict_document
from tests.perf.conftest import make_cell, make_document, series_entries

BASE = 50_000


def write_history(path, cycle_values, **kwargs):
    history = PerfHistory(path)
    for entry in series_entries(cycle_values, **kwargs):
        history.append(entry)
    return history


@pytest.fixture
def degraded_history(history_path):
    # 30 runs at the base cycle count, then a +15% step for 20 runs
    write_history(history_path, [BASE] * 30 + [int(BASE * 1.15)] * 20)
    return history_path


@pytest.fixture
def noisy_wall_history(history_path):
    # deterministic cycles, +-3% Gaussian noise on wall time: the kind
    # of history an honest run produces on shared CI runners
    rng = random.Random(7)
    walls = [1.0 * (1.0 + rng.gauss(0.0, 0.03)) for _ in range(50)]
    write_history(history_path, [BASE] * 50, wall_values=walls)
    return history_path


class TestCheck:
    def test_injected_regression_exits_23(self, degraded_history, capsys):
        status = perf_main(["check", "--history", str(degraded_history)])
        assert status == EXIT_PERF_DEGRADED == 23
        err = capsys.readouterr().err
        assert "compress/advanced/4-way" in err
        assert "+15.0%" in err
        assert "sha0030" in err  # first run showing the new behaviour

    def test_clean_noisy_history_exits_0(self, noisy_wall_history, capsys):
        status = perf_main(["check", "--history", str(noisy_wall_history)])
        assert status == 0
        assert "DEGRADED" not in capsys.readouterr().out

    def test_json_verdict_document(self, degraded_history, capsys):
        status = perf_main(
            ["check", "--history", str(degraded_history), "--json"]
        )
        assert status == EXIT_PERF_DEGRADED
        doc = json.loads(capsys.readouterr().out)
        validate_verdict_document(doc)
        assert doc["schema"] == PERF_SCHEMA
        assert doc["status"] == "degraded"
        assert doc["gated_metrics"] == ["cycles"]
        [verdict] = [
            v for v in doc["verdicts"]
            if v["status"] == "degraded" and v["metric"] == "cycles"
        ]
        assert verdict["cell"] == "compress/advanced/4-way"
        assert verdict["change_sha"].startswith("sha0030")

    def test_report_file_written(self, degraded_history, tmp_path, capsys):
        report = tmp_path / "perf-report.txt"
        perf_main(
            ["check", "--history", str(degraded_history),
             "--report", str(report)]
        )
        text = report.read_text()
        assert "DEGRADED [cycles] compress/advanced/4-way" in text
        assert text == capsys.readouterr().out

    def test_empty_history_is_clean(self, history_path, capsys):
        assert perf_main(["check", "--history", str(history_path)]) == 0
        assert "nothing to check" in capsys.readouterr().err

    def test_wall_degradation_gates_only_with_flag(self, history_path):
        # cycles flat, wall time stepped +60%: reported, but exit 0
        # unless --gate-wall asks wall time to gate the run
        walls = [1.0] * 30 + [1.6] * 20
        write_history(history_path, [BASE] * 50, wall_values=walls)
        assert perf_main(["check", "--history", str(history_path)]) == 0
        status = perf_main(
            ["check", "--history", str(history_path), "--gate-wall"]
        )
        assert status == EXIT_PERF_DEGRADED


class TestAppendAndLog:
    def test_round_trip_through_the_main_cli(
        self, history_path, tmp_path, capsys
    ):
        from repro.__main__ import main as repro_main

        bench = tmp_path / "BENCH_fig8.json"
        save_document(make_document([make_cell()]), bench)
        status = repro_main(
            ["perf", "append", str(bench), "--history", str(history_path),
             "--sha", "f" * 40, "--branch", "main"]
        )
        assert status == 0
        status = repro_main(["perf", "log", "--history", str(history_path)])
        assert status == 0
        out = capsys.readouterr().out
        assert "f" * 12 in out
        assert "fig8" in out

    def test_append_rejects_invalid_document(self, history_path, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "repro-bench/1"}')
        status = perf_main(
            ["append", str(bad), "--history", str(history_path),
             "--sha", "a" * 40, "--branch", "main"]
        )
        assert status != 0
        assert not history_path.exists()

    def test_log_shows_cell_trajectory(self, degraded_history, capsys):
        perf_main(
            ["log", "--history", str(degraded_history),
             "--cell", "compress/advanced/4-way"]
        )
        out = capsys.readouterr().out
        assert f"{BASE} cycles" in out
        assert f"{int(BASE * 1.15)} cycles" in out


class TestRefreshBaseline:
    def test_accepted_improvement_regenerates_baseline(
        self, history_path, tmp_path, capsys
    ):
        write_history(
            history_path, [BASE] * 10 + [int(BASE * 0.85)] * 10
        )
        output = tmp_path / "baseline.json"
        status = perf_main(
            ["refresh-baseline", "--history", str(history_path),
             "--output", str(output)]
        )
        assert status == 0
        baseline = load_bench_document(output)
        validate_document(baseline)
        [cell] = baseline["cells"]
        assert cell["result"]["cycles"] == int(BASE * 0.85)

    def test_degradation_refused_without_flag(
        self, degraded_history, tmp_path
    ):
        output = tmp_path / "baseline.json"
        status = perf_main(
            ["refresh-baseline", "--history", str(degraded_history),
             "--output", str(output)]
        )
        assert status == EXIT_PERF_DEGRADED
        assert not output.exists()

    def test_degradation_accepted_with_flag(
        self, degraded_history, tmp_path
    ):
        output = tmp_path / "baseline.json"
        status = perf_main(
            ["refresh-baseline", "--history", str(degraded_history),
             "--output", str(output), "--allow-regression"]
        )
        assert status == 0
        [cell] = load_bench_document(output)["cells"]
        assert cell["result"]["cycles"] == int(BASE * 1.15)
