"""Detector behaviour on synthetic series: a real step is found and
localized, honest noise never flags, drift is drift."""

from __future__ import annotations

import random

import pytest

from repro.perf.detect import (
    KIND_DRIFT,
    KIND_STEP,
    METRIC_CYCLES,
    METRIC_WALL,
    STATUS_DEGRADED,
    STATUS_IMPROVED,
    STATUS_INSUFFICIENT,
    STATUS_OK,
    best_model,
    check_history,
    extract_series,
    judge_series,
    noise_floor,
)
from tests.perf.conftest import make_cell, make_entry, series_entries

BASE = 50_000.0


class TestModelSelection:
    def test_flat_series_is_constant(self):
        fit = best_model([BASE] * 20)
        assert fit.model == "constant"

    def test_step_series_localized(self):
        values = [BASE] * 12 + [BASE * 1.2] * 8
        fit = best_model(values)
        assert fit.model == "step"
        assert fit.change_index == 12

    def test_ramp_series_is_linear(self):
        fit = best_model([BASE + 100.0 * i for i in range(20)])
        assert fit.model == "linear"
        assert fit.slope == pytest.approx(100.0)


class TestJudgeSeries:
    @pytest.mark.parametrize("k", [10, 25, 40])
    def test_fifteen_percent_step_found_at_k(self, k):
        values = [BASE] * k + [BASE * 1.15] * (50 - k)
        judgment = judge_series(values)
        assert judgment.status == STATUS_DEGRADED
        assert judgment.kind == KIND_STEP
        assert judgment.change_index == k
        assert judgment.delta_rel == pytest.approx(0.15, rel=1e-6)

    def test_step_on_the_last_run_still_flags(self):
        values = [BASE] * 49 + [BASE * 1.15]
        judgment = judge_series(values)
        assert judgment.status == STATUS_DEGRADED
        assert judgment.change_index == 49

    def test_three_percent_noise_never_flags(self):
        # 50 independent 50-run histories of honest +-3% Gaussian noise:
        # every one must judge clean (the threshold is derived from the
        # measured spread, so the band sits far outside the noise)
        rng = random.Random(1998)
        flagged = 0
        for _ in range(50):
            values = [BASE * (1.0 + rng.gauss(0.0, 0.03)) for _ in range(50)]
            judgment = judge_series(values, noise_rel=0.03)
            if judgment.status != STATUS_OK:
                flagged += 1
        assert flagged == 0

    def test_linear_drift_reported_as_drift_not_step(self):
        values = [BASE * (1.0 + 0.004 * i) for i in range(50)]
        judgment = judge_series(values)
        assert judgment.status == STATUS_DEGRADED
        assert judgment.kind == KIND_DRIFT
        assert judgment.model == "linear"

    def test_improvement_step_reported_as_improved(self):
        values = [BASE] * 30 + [BASE * 0.85] * 20
        judgment = judge_series(values)
        assert judgment.status == STATUS_IMPROVED
        assert judgment.kind == KIND_STEP
        assert judgment.change_index == 30

    def test_short_series_is_insufficient(self):
        judgment = judge_series([BASE] * 3)
        assert judgment.status == STATUS_INSUFFICIENT

    def test_step_below_noise_floor_is_ok(self):
        # a 2% step is real but indistinguishable from a 3% noise floor
        values = [BASE] * 30 + [BASE * 1.02] * 20
        judgment = judge_series(values, noise_rel=0.03)
        assert judgment.status == STATUS_OK


class TestSeriesExtraction:
    def test_cycles_from_every_clean_cell(self):
        entries = series_entries([50_000, 51_000, 52_000])
        series = extract_series(entries, METRIC_CYCLES)
        assert list(series) == ["compress/advanced/4-way"]
        assert [p.value for p in series["compress/advanced/4-way"]] == [
            50_000.0, 51_000.0, 52_000.0,
        ]
        assert [p.sha for p in series["compress/advanced/4-way"]] == [
            e.sha for e in entries
        ]

    def test_wall_skips_cached_cells(self):
        fresh = make_entry([make_cell(wall=2.0)], sha="a" * 40)
        cached = make_entry([make_cell(wall=2.0, cached=True)], sha="b" * 40)
        series = extract_series([fresh, cached], METRIC_WALL)
        assert [p.sha for p in series["compress/advanced/4-way"]] == ["a" * 40]

    def test_wall_partitioned_by_host(self):
        here = make_entry([make_cell(wall=2.0)], sha="a" * 40)
        other_host = dict(platform="other-os", machine="arm64",
                          python="3.11.0", cpu_count=64)
        there = make_entry(
            [make_cell(wall=9.0)], sha="b" * 40, host=other_host
        )
        series = extract_series(
            [here, there], METRIC_WALL, host=here.host_fingerprint
        )
        assert [p.value for p in series["compress/advanced/4-way"]] == [2.0]


class TestNoiseFloor:
    def test_cycles_noise_floor_is_zero_for_deterministic_runs(self):
        entries = series_entries([50_000, 51_000, 52_000])
        assert noise_floor(entries, METRIC_CYCLES) == 0.0

    def test_wall_noise_floor_from_attempt_seconds(self):
        cells = [make_cell(wall=1.0, attempt_seconds=[0.9, 1.0, 1.1])]
        entries = [make_entry(cells, sha="a" * 40)]
        floor = noise_floor(entries, METRIC_WALL)
        assert 0.05 < floor < 0.2  # ~10% relative spread of the repeats

    def test_wall_noise_floor_from_same_code_reruns(self):
        # two runs of the same code version on the same host: their wall
        # scatter is pure noise and must feed the floor
        entries = [
            make_entry([make_cell(wall=1.0)], sha="a" * 40,
                       code_version="same"),
            make_entry([make_cell(wall=1.1)], sha="b" * 40,
                       code_version="same"),
        ]
        assert noise_floor(entries, METRIC_WALL) > 0.0


class TestCheckHistory:
    def test_degraded_cell_named_with_change_sha(self):
        values = [50_000] * 30 + [57_500] * 20  # +15% at run 30
        entries = series_entries(values)
        report = check_history(entries, suite="fig8")
        [verdict] = report.degraded(METRIC_CYCLES)
        assert verdict.cell == "compress/advanced/4-way"
        assert verdict.status == STATUS_DEGRADED
        assert verdict.kind == KIND_STEP
        assert verdict.change_sha == entries[30].sha
        assert verdict.delta_pct == pytest.approx(15.0, rel=1e-6)

    def test_clean_history_produces_no_verdicts(self):
        entries = series_entries([50_000] * 20)
        report = check_history(entries, suite="fig8")
        assert report.degraded() == []
        assert report.improved() == []
        cycles = [
            v for v in report.verdicts if v.metric == METRIC_CYCLES
        ]
        assert [v.status for v in cycles] == [STATUS_OK]

    def test_unknown_suite_is_empty(self):
        entries = series_entries([50_000] * 10)
        report = check_history(entries, suite="nope")
        assert report.runs == 0
        assert report.verdicts == []
