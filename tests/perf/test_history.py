"""Crash safety and durability of the append-only history store."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.perf.history import (
    HISTORY_SCHEMA,
    HistoryEntry,
    PerfHistory,
    branch_slug,
    default_history_path,
)
from tests.perf.conftest import make_cell, make_entry, series_entries


def entry(sha: str = "a" * 40, cycles: int = 50_000) -> HistoryEntry:
    return make_entry([make_cell(cycles=cycles)], sha=sha)


class TestRoundTrip:
    def test_append_then_load(self, history_path):
        history = PerfHistory(history_path)
        first, second = series_entries([50_000, 51_000])[:2]
        history.append(first)
        history.append(second)
        header, entries = history.load()
        assert header == {"schema": HISTORY_SCHEMA, "branch": "main"}
        assert [e.sha for e in entries] == [first.sha, second.sha]
        assert entries[0].document == first.document
        assert entries[0].host_fingerprint == first.host_fingerprint

    def test_missing_file_is_empty(self, history_path):
        assert PerfHistory(history_path).load() == (None, [])
        assert PerfHistory(history_path).entries() == []

    def test_entries_filters_by_suite(self, history_path):
        history = PerfHistory(history_path)
        history.append(make_entry([make_cell()], sha="a" * 40, suite="fig8"))
        history.append(make_entry([make_cell()], sha="b" * 40, suite="smoke"))
        assert [e.suite for e in history.entries("smoke")] == ["smoke"]
        assert history.suites() == ["fig8", "smoke"]

    def test_foreign_header_rejected(self, history_path):
        history_path.write_text('{"schema": "something-else/1"}\n')
        assert PerfHistory(history_path).load() == (None, [])

    def test_invalid_wrapped_document_skipped(self, history_path):
        history = PerfHistory(history_path)
        good = entry()
        history.append(good)
        bad = good.as_dict()
        bad["document"] = {"schema": "repro-bench/1"}  # fails validation
        with open(history_path, "a") as handle:
            handle.write(json.dumps(bad) + "\n")
        _, entries = history.load()
        assert [e.sha for e in entries] == [good.sha]

    def test_append_revalidates_document(self, history_path):
        good = entry()
        broken = HistoryEntry(
            suite=good.suite, sha=good.sha, branch=good.branch,
            host_fingerprint=good.host_fingerprint, unix=good.unix,
            code_version=good.code_version, document={"schema": "nope"},
        )
        with pytest.raises(ReproError, match="schema"):
            PerfHistory(history_path).append(broken)
        assert not history_path.exists()

    def test_malformed_entry_dict_raises(self):
        with pytest.raises(ReproError, match="malformed history entry"):
            HistoryEntry.from_dict({"suite": "fig8"})


class TestCrashSafety:
    def test_torn_last_line_tolerated(self, history_path):
        history = PerfHistory(history_path)
        kept = series_entries([50_000, 50_100, 50_200])
        for e in kept:
            history.append(e)
        # a crash mid-append leaves a torn, newline-less tail
        with open(history_path, "a") as handle:
            handle.write('{"suite": "fig8", "sha": "deadbeef", "docu')
        _, entries = history.load()
        assert [e.sha for e in entries] == [e.sha for e in kept]

    def test_append_after_torn_tail_repairs_it(self, history_path):
        history = PerfHistory(history_path)
        first, second = series_entries([50_000, 51_000])[:2]
        history.append(first)
        with open(history_path, "a") as handle:
            handle.write('{"torn":')
        history.append(second)
        _, entries = history.load()
        # the torn line is lost (skipped), never merged into the new one
        assert [e.sha for e in entries] == [first.sha, second.sha]

    def test_damaged_middle_line_costs_only_that_entry(self, history_path):
        history = PerfHistory(history_path)
        a, b, c = series_entries([50_000, 50_100, 50_200])
        for e in (a, b, c):
            history.append(e)
        lines = history_path.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # corrupt entry b
        history_path.write_text("\n".join(lines) + "\n")
        _, entries = history.load()
        assert [e.sha for e in entries] == [a.sha, c.sha]

    def test_every_append_is_one_complete_line(self, history_path):
        history = PerfHistory(history_path)
        for e in series_entries([50_000, 50_100, 50_200]):
            history.append(e)
            text = history_path.read_text()
            assert text.endswith("\n")
            for line in text.splitlines():
                json.loads(line)  # each durable line parses on its own


class TestPaths:
    def test_branch_slug_sanitizes(self):
        assert branch_slug("feat/perf-gate") == "feat-perf-gate"
        assert branch_slug("weird   name!!") == "weird-name"
        assert branch_slug("///") == "unknown"

    def test_default_history_path_uses_slug(self):
        path = default_history_path("feat/x", root="h")
        assert path.as_posix() == "h/feat-x.jsonl"
