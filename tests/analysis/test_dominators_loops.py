"""Tests for dominators, natural loops, and nesting depth."""

import pytest

from repro.analysis.dominators import compute_dominators
from repro.analysis.loops import find_loops, loop_nesting_depth
from repro.errors import AnalysisError
from repro.ir.parser import parse_function

NESTED = """
func f(0) {
entry:
  v0 = li 0
outer:
  v1 = li 0
inner:
  v1 = addiu v1, 1
  v2 = slti v1, 10
  v3 = li 0
  bne v2, v3, inner
after_inner:
  v0 = addiu v0, 1
  v4 = slti v0, 10
  v5 = li 0
  bne v4, v5, outer
exit:
  ret
}
"""


@pytest.fixture
def nested():
    return parse_function(NESTED)


class TestDominators:
    def test_entry_dominates_everything(self, nested):
        dom = compute_dominators(nested)
        for label in ("outer", "inner", "after_inner", "exit"):
            assert dom.dominates("entry", label)

    def test_loop_header_dominates_body(self, nested):
        dom = compute_dominators(nested)
        assert dom.dominates("outer", "inner")
        assert not dom.dominates("inner", "outer")

    def test_reflexive(self, nested):
        dom = compute_dominators(nested)
        assert dom.dominates("inner", "inner")

    def test_idom_chain(self, nested):
        dom = compute_dominators(nested)
        assert dom.dominators_of("inner") == ["inner", "outer", "entry"]

    def test_diamond_join_dominated_by_fork_only(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  blez v0, left
right:
  j join
left:
  v1 = li 0
join:
  ret v0
}
"""
        )
        dom = compute_dominators(func)
        assert dom.idom["join"] == "entry"

    def test_unreachable_block_raises(self):
        func = parse_function(
            """
func f(0) {
entry:
  ret
island:
  ret
}
"""
        )
        dom = compute_dominators(func)
        with pytest.raises(AnalysisError):
            dom.dominates("entry", "island")


class TestLoops:
    def test_two_nested_loops_found(self, nested):
        loops = find_loops(nested)
        headers = {loop.header for loop in loops}
        assert headers == {"outer", "inner"}

    def test_inner_loop_body(self, nested):
        loops = {loop.header: loop for loop in find_loops(nested)}
        assert loops["inner"].body == {"inner"}
        assert "inner" in loops["outer"].body
        assert "after_inner" in loops["outer"].body

    def test_nesting_depth(self, nested):
        depth = loop_nesting_depth(nested)
        assert depth["entry"] == 0
        assert depth["outer"] == 1
        assert depth["inner"] == 2
        assert depth["after_inner"] == 1
        assert depth["exit"] == 0

    def test_figure3_single_loop(self, figure3):
        depth = loop_nesting_depth(figure3)
        assert depth["loop"] == 1
        assert depth["body"] == 1
        assert depth["skip"] == 1
        assert depth["entry"] == 0

    def test_no_loops_in_straightline(self, straightline):
        assert find_loops(straightline) == []
