"""API-level tests for the independent profit certifier."""

from __future__ import annotations

import pytest

from repro.analysis.certify import PROFIT_TOLERANCE, certify_partition
from repro.partition.advanced import advanced_partition
from repro.partition.basic import basic_partition
from repro.runtime.interp import run_program
from repro.workloads import compile_workload


@pytest.fixture(scope="module")
def compress():
    program = compile_workload("compress", scale=3)
    profile = run_program(program).profile
    return program, profile


class TestCertificate:
    def test_advanced_workload_certifies(self, compress):
        program, profile = compress
        for name, func in program.functions.items():
            partition = advanced_partition(func, profile=profile)
            cert = certify_partition(partition, profile=profile)
            assert cert.ok, cert.violations
            assert cert.function == name
            assert cert.scheme == "advanced"

    def test_basic_scheme_has_no_profit_bound(self, compress):
        """The basic scheme ignores the cost model by design; the
        certifier still audits its bookkeeping but never applies the §6
        eviction contract."""
        program, profile = compress
        for func in program.functions.values():
            cert = certify_partition(basic_partition(func), profile=profile)
            assert cert.ok, cert.violations
            assert cert.scheme == "basic"

    def test_total_profit_positive_on_offloading_function(self, compress):
        program, profile = compress
        profits = {}
        for name, func in program.functions.items():
            partition = advanced_partition(func, profile=profile)
            if partition.fp:
                cert = certify_partition(partition, profile=profile)
                profits[name] = cert.total_profit()
        assert profits  # compress offloads something
        # every communicating component individually cleared the bound,
        # so the unpinned total can't be meaningfully negative
        assert all(p >= -PROFIT_TOLERANCE for p in profits.values())

    def test_summary_is_json_ready(self, compress):
        program, profile = compress
        func = next(iter(program.functions.values()))
        cert = certify_partition(
            advanced_partition(func, profile=profile), profile=profile
        )
        summary = cert.summary()
        assert set(summary) == {
            "function",
            "scheme",
            "ok",
            "components",
            "communicating_components",
            "total_profit",
            "violations",
        }
        assert summary["ok"] is True
        assert summary["violations"] == 0
        assert summary["communicating_components"] <= summary["components"]

    def test_components_partition_the_fp_set(self, compress):
        program, profile = compress
        for func in program.functions.values():
            partition = advanced_partition(func, profile=profile)
            cert = certify_partition(partition, profile=profile)
            audited = [node for c in cert.components for node in c.nodes]
            assert len(audited) == len(set(audited))  # disjoint
            assert set(audited) == set(partition.fp)  # exhaustive
