"""Flow-conservation properties of the static frequency estimate, checked
on every registered workload (satellite of the dataflow-framework issue).

The estimator promises (see :mod:`repro.analysis.freq`):

* outgoing edge probabilities of every branching block sum to 1;
* at every reachable join fed only by forward edges, the block frequency
  equals the sum of the incoming edge flows (``n_B`` is conserved);
* a loop header amplifies its forward inflow by a trip factor in
  ``[1, MAX_TRIP]`` per enclosing-loop level.

These are re-derived here from the public outputs alone, so a change to
the propagation order or the loop condensation that silently breaks
conservation fails this suite even if the unit tests still pass.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.freq import MAX_TRIP, block_frequencies, edge_probabilities
from repro.analysis.loops import find_loops
from repro.ir.cfg import predecessors, reachable_blocks, successor_map
from repro.workloads import WORKLOADS, compile_workload

SCALE = 3


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def program(request):
    return compile_workload(request.param, scale=SCALE)


def _back_edges(func):
    preds = predecessors(func)
    edges = set()
    for loop in find_loops(func):
        for tail in preds[loop.header]:
            if tail in loop.body:
                edges.add((tail, loop.header))
    return edges


def test_edge_probabilities_normalized(program):
    for func in program.functions.values():
        probs = edge_probabilities(func)
        succ = successor_map(func)
        for blk in func.blocks:
            out = succ[blk.label]
            if not out:
                continue
            total = sum(probs[(blk.label, dst)] for dst in out)
            assert math.isclose(total, 1.0, rel_tol=1e-9), (
                func.name,
                blk.label,
            )


def test_block_frequencies_flow_conserving_at_joins(program):
    for func in program.functions.values():
        freq = block_frequencies(func)
        probs = edge_probabilities(func)
        preds = predecessors(func)
        back = _back_edges(func)
        headers = {loop.header for loop in find_loops(func)}
        reachable = reachable_blocks(func)
        for blk in func.blocks:
            label = blk.label
            if label not in reachable or label == func.entry.label:
                continue
            if label in headers:
                continue  # amplified by the trip factor, checked below
            inflow = sum(
                freq[p] * probs.get((p, label), 0.0)
                for p in preds[label]
                if (p, label) not in back
            )
            assert math.isclose(freq[label], inflow, rel_tol=1e-9, abs_tol=1e-12), (
                func.name,
                label,
            )


def test_loop_headers_amplify_within_trip_cap(program):
    for func in program.functions.values():
        freq = block_frequencies(func)
        probs = edge_probabilities(func)
        preds = predecessors(func)
        back = _back_edges(func)
        reachable = reachable_blocks(func)
        for loop in find_loops(func):
            label = loop.header
            if label not in reachable:
                continue
            inflow = 1.0 if label == func.entry.label else 0.0
            inflow += sum(
                freq[p] * probs.get((p, label), 0.0)
                for p in preds[label]
                if (p, label) not in back
            )
            if inflow <= 0.0:
                continue  # header only reachable around the loop itself
            factor = freq[label] / inflow
            assert 1.0 - 1e-9 <= factor <= MAX_TRIP + 1e-6, (func.name, label)


def test_frequencies_nonnegative_and_entry_is_covered(program):
    for func in program.functions.values():
        freq = block_frequencies(func)
        assert all(f >= 0.0 for f in freq.values())
        assert freq[func.entry.label] >= 1.0 - 1e-9
