"""Static-vs-measured profile agreement: metrics, experiment, CLI."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.analysis.freq import static_profile
from repro.analysis.profilecmp import compare_profiles
from repro.experiments.profile_agreement import characterize, format_table
from repro.runtime.interp import run_program
from repro.workloads import compile_workload

SCALE = 3


@pytest.fixture(scope="module")
def compress():
    return compile_workload("compress", scale=SCALE)


class TestCompareProfiles:
    def test_profile_agrees_with_itself(self, compress):
        measured = run_program(compress).profile
        agreement = compare_profiles(compress, measured, measured)
        assert agreement.weighted_overlap == pytest.approx(1.0)
        assert agreement.hottest_match_fraction == pytest.approx(1.0)
        assert not agreement.uncovered

    def test_static_vs_measured_bounded(self, compress):
        static = static_profile(compress)
        measured = run_program(compress).profile
        agreement = compare_profiles(compress, static, measured)
        assert 0.0 <= agreement.weighted_overlap <= 1.0
        assert 0.0 <= agreement.hottest_match_fraction <= 1.0
        for fn in agreement.functions:
            assert -1.0 - 1e-9 <= fn.correlation <= 1.0 + 1e-9
            assert 0.0 <= fn.overlap <= 1.0 + 1e-9

    def test_uncovered_functions_listed(self, compress):
        from repro.partition.cost import ExecutionProfile

        static = static_profile(compress)
        empty = ExecutionProfile()
        agreement = compare_profiles(compress, static, empty)
        assert set(agreement.uncovered) == set(compress.functions)
        assert not agreement.functions

    def test_to_dict_round_trips_through_json(self, compress):
        static = static_profile(compress)
        measured = run_program(compress).profile
        document = compare_profiles(compress, static, measured).to_dict()
        assert json.loads(json.dumps(document)) == document


class TestExperiment:
    def test_characterize_row(self):
        row = characterize("compress", SCALE)
        assert row.benchmark == "compress"
        assert 0.0 <= row.weighted_overlap <= 1.0
        assert 0.0 <= row.decision_agreement <= 1.0
        assert row.offloaded_static >= 0
        assert row.offloaded_measured >= 0

    def test_format_table(self):
        row = characterize("compress", SCALE)
        table = format_table([row])
        assert "compress" in table
        assert "decisions" in table


class TestAnalyzeCli:
    def test_compare_profile_json_document(self, tmp_path, capsys):
        path = tmp_path / "prog.mc"
        path.write_text(
            """
int arr[64];

int main() {
    int i;
    int s = 0;
    for (i = 0; i < 32; i = i + 1) {
        arr[i] = (i * 7) & 255;
        s = s + arr[i];
    }
    return s;
}
"""
        )
        assert main(["analyze", "--compare-profile", "--json", str(path)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "repro-analyze/1"
        (entry,) = document["programs"]
        assert entry["warnings"] == []
        assert "weighted_overlap" in entry["agreement"]
        impact = entry["partition_impact"]
        assert set(impact) == {
            "offloaded_static",
            "offloaded_measured",
            "decision_agreement",
        }
        assert 0.0 <= impact["decision_agreement"] <= 1.0

    def test_compare_profile_on_workload_source(self, capsys):
        assert main(["analyze", "--compare-profile", "workload:compress"]) == 0
        out = capsys.readouterr().out
        assert "agreement: weighted overlap" in out
        assert "decision agreement" in out
