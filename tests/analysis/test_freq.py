"""Static branch-probability and block-frequency estimation."""

from __future__ import annotations

import math

from repro.analysis.freq import (
    LOOP_BACK,
    MAX_TRIP,
    block_frequencies,
    call_site_counts,
    edge_probabilities,
    entry_counts,
    static_profile,
)
from repro.ir.parser import parse_function, parse_program

STRAIGHT = """
func f(0) returns {
entry:
  v0 = li 1
  j mid
mid:
  v1 = addiu v0, 1
  j exit
exit:
  ret v1
}
"""

DIAMOND = """
func f(1) returns {
entry:
  v0 = param 0
  blez v0, low
high:
  v1 = li 10
  j join
low:
  v1 = li 20
join:
  ret v1
}
"""

LOOP = """
func f(0) {
entry:
  v0 = li 0
loop:
  v0 = addiu v0, 1
  v1 = slti v0, 10
  v2 = li 0
  bne v1, v2, loop
exit:
  ret
}
"""

NESTED = """
func f(0) {
entry:
  v0 = li 0
outer:
  v1 = li 0
inner:
  v1 = addiu v1, 1
  v2 = slti v1, 8
  v3 = li 0
  bne v2, v3, inner
after:
  v0 = addiu v0, 1
  v4 = slti v0, 8
  v5 = li 0
  bne v4, v5, outer
exit:
  ret
}
"""


class TestEdgeProbabilities:
    def test_single_successor_is_certain(self):
        func = parse_function(STRAIGHT)
        probs = edge_probabilities(func)
        assert probs[("entry", "mid")] == 1.0
        assert probs[("mid", "exit")] == 1.0

    def test_branch_outgoing_sum_to_one(self):
        func = parse_function(DIAMOND)
        probs = edge_probabilities(func)
        total = probs[("entry", "low")] + probs[("entry", "high")]
        assert math.isclose(total, 1.0)

    def test_blez_prior_favours_fallthrough(self):
        func = parse_function(DIAMOND)
        probs = edge_probabilities(func)
        assert probs[("entry", "low")] < probs[("entry", "high")]

    def test_back_edge_dominates(self):
        func = parse_function(LOOP)
        probs = edge_probabilities(func)
        assert probs[("loop", "loop")] >= LOOP_BACK - 0.05
        assert probs[("loop", "loop")] <= 0.99


class TestBlockFrequencies:
    def test_straight_line_is_all_ones(self):
        freq = block_frequencies(parse_function(STRAIGHT))
        assert all(math.isclose(f, 1.0) for f in freq.values())

    def test_diamond_join_recovers_entry_flow(self):
        freq = block_frequencies(parse_function(DIAMOND))
        assert math.isclose(freq["join"], 1.0, rel_tol=1e-9)
        assert math.isclose(freq["high"] + freq["low"], 1.0, rel_tol=1e-9)

    def test_loop_header_spins(self):
        func = parse_function(LOOP)
        freq = block_frequencies(func)
        probs = edge_probabilities(func)
        assert freq["loop"] > 1.0
        assert freq["loop"] <= MAX_TRIP
        # exit flow is conserved: header frequency times the exit edge
        assert math.isclose(
            freq["exit"], freq["loop"] * probs[("loop", "exit")], rel_tol=1e-9
        )

    def test_nested_loop_multiplies(self):
        freq = block_frequencies(parse_function(NESTED))
        assert freq["inner"] > freq["outer"] > 1.0
        assert freq["inner"] <= MAX_TRIP * MAX_TRIP

    def test_unreachable_block_is_zero(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 1
  ret v0
dead:
  v1 = li 2
  ret v1
}
"""
        )
        assert block_frequencies(func)["dead"] == 0.0


INTERPROC = """
func helper(1) returns {
entry:
  v0 = param 0
  v1 = addiu v0, 1
  ret v1
}
func main(0) returns {
entry:
  v0 = li 0
loop:
  v1 = call helper(v0)
  v0 = move v1
  v2 = slti v0, 10
  v3 = li 0
  bne v2, v3, loop
exit:
  ret v0
}
"""


class TestInterprocedural:
    def test_call_site_counts_follow_block_frequency(self):
        program = parse_program(INTERPROC)
        main = program.functions["main"]
        freq = block_frequencies(main)
        calls = call_site_counts(main, freq)
        assert math.isclose(calls["helper"], freq["loop"])

    def test_entry_counts_scale_callee(self):
        program = parse_program(INTERPROC)
        counts = entry_counts(program)
        assert counts["main"] == 1.0
        assert counts["helper"] > 1.0  # called once per loop iteration

    def test_static_profile_covers_every_function(self):
        program = parse_program(INTERPROC)
        profile = static_profile(program)
        for name in program.functions:
            assert profile.covers(name)
        # the callee's counts carry its entry count
        assert profile.block_count("helper", "entry") > 1.0
