"""Compiler warnings from the abstract-interpretation engine."""

from __future__ import annotations

from repro.analysis.warnings import analyze_function, analyze_program
from repro.ir.parser import parse_function, parse_program
from repro.minic.compile import compile_source


class TestUnreachable:
    def test_cfg_unreachable_block(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 1
  ret v0
dead:
  v1 = li 2
  ret v1
}
"""
        )
        warnings = analyze_function(func)
        assert [w.kind for w in warnings] == ["unreachable-block"]
        assert warnings[0].block == "dead"
        assert "no control-flow path" in warnings[0].message

    def test_interval_proved_unreachable_block(self):
        """CFG-reachable, but the branch comparing a register against
        itself can never take the edge."""
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 0
  bne v0, v0, dead
live:
  v1 = li 3
  ret v1
dead:
  v2 = li 9
  ret v2
}
"""
        )
        warnings = analyze_function(func)
        assert [w.kind for w in warnings] == ["unreachable-block"]
        assert warnings[0].block == "dead"
        assert "value analysis proves" in warnings[0].message

    def test_clean_function_has_no_warnings(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  blez v0, low
high:
  ret v0
low:
  ret v0
}
"""
        )
        assert analyze_function(func) == []


class TestUnboundedLoops:
    def test_loop_without_exit_edge(self):
        func = parse_function(
            """
func f(0) {
entry:
  v0 = li 0
spin:
  v0 = addiu v0, 1
  j spin
}
"""
        )
        warnings = analyze_function(func)
        assert any(w.kind == "unbounded-loop" for w in warnings)
        loop_warning = next(w for w in warnings if w.kind == "unbounded-loop")
        assert loop_warning.block == "spin"
        assert "no exit edge" in loop_warning.message

    def test_loop_with_infeasible_exit(self):
        """The exit branch tests a register the interval analysis pins to
        a constant, so the loop provably never leaves."""
        func = parse_function(
            """
func f(0) {
entry:
  v0 = li 1
loop:
  v1 = addiu v1, 1
  bgtz v0, loop
exit:
  ret
}
"""
        )
        warnings = analyze_function(func)
        kinds = {w.kind for w in warnings}
        assert "unbounded-loop" in kinds
        loop_warning = next(w for w in warnings if w.kind == "unbounded-loop")
        assert "infeasible" in loop_warning.message

    def test_terminating_loop_is_silent(self):
        func = parse_function(
            """
func f(0) {
entry:
  v0 = li 0
loop:
  v0 = addiu v0, 1
  v1 = slti v0, 10
  v2 = li 0
  bne v1, v2, loop
exit:
  ret
}
"""
        )
        assert analyze_function(func) == []


class TestProgramLevel:
    def test_function_definition_order(self):
        program = parse_program(
            """
func second(0) returns {
entry:
  v0 = li 1
  ret v0
dead:
  v1 = li 2
  ret v1
}
func first(0) returns {
entry:
  v0 = li 1
  ret v0
gone:
  v1 = li 2
  ret v1
}
"""
        )
        warnings = analyze_program(program)
        assert [w.function for w in warnings] == ["second", "first"]

    def test_compile_source_surfaces_warnings(self):
        """The compiler runs the analysis when asked and reports through
        the caller-provided sink."""
        sink: list = []
        compile_source(
            """
int main() {
    int i = 0;
    while (1) { i = i + 1; }
    return i;
}
""",
            warnings=sink,
        )
        assert any(w.kind == "unbounded-loop" for w in sink)

    def test_render_format(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 1
  ret v0
dead:
  ret v0
}
"""
        )
        (warning,) = analyze_function(func)
        rendered = warning.render()
        assert rendered.startswith("warning: unreachable-block: f:dead: ")
