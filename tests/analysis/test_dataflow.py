"""Tests for the generic dataflow solver on hand-built problems."""

from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.ir.parser import parse_function

LOOPY = """
func f(0) {
entry:
  v0 = li 0
loop:
  v0 = addiu v0, 1
  v1 = slti v0, 3
  v2 = li 0
  bne v1, v2, loop
exit:
  ret
}
"""


class TestForwardMay:
    def test_gen_propagates_forward(self):
        func = parse_function(LOOPY)
        problem = DataflowProblem(
            forward=True,
            may=True,
            gen={"entry": 0b01, "loop": 0b10},
            kill={},
        )
        result = solve_dataflow(func, problem)
        assert result.out_facts["entry"] == 0b01
        assert result.in_facts["loop"] == 0b11  # entry fact + loop's own via back edge
        assert result.in_facts["exit"] == 0b11

    def test_kill_blocks_propagation(self):
        func = parse_function(LOOPY)
        problem = DataflowProblem(
            forward=True,
            may=True,
            gen={"entry": 0b01},
            kill={"loop": 0b01},
        )
        result = solve_dataflow(func, problem)
        assert result.in_facts["exit"] == 0

    def test_entry_fact_injected(self):
        func = parse_function(LOOPY)
        problem = DataflowProblem(
            forward=True, may=True, gen={}, kill={}, entry_fact=0b100
        )
        result = solve_dataflow(func, problem)
        assert result.in_facts["exit"] == 0b100


class TestBackwardMay:
    def test_facts_flow_backwards(self):
        func = parse_function(LOOPY)
        problem = DataflowProblem(
            forward=False,
            may=True,
            gen={"exit": 0b1},
            kill={},
        )
        result = solve_dataflow(func, problem)
        # exit's fact is visible at loop and entry outs
        assert result.in_facts["exit"] == 0b1
        assert result.out_facts["loop"] & 0b1
        assert result.out_facts["entry"] & 0b1


class TestForwardMust:
    def test_intersection_at_join(self):
        func = parse_function(
            """
func f(1) {
entry:
  v0 = param 0
  blez v0, b
a:
  j join
b:
  v1 = li 0
join:
  ret
}
"""
        )
        problem = DataflowProblem(
            forward=True,
            may=False,
            gen={"a": 0b1, "b": 0b10},
            kill={},
            entry_fact=0,
            universe=0b11,
        )
        result = solve_dataflow(func, problem)
        # neither fact is available on *all* paths into join
        assert result.in_facts["join"] == 0
