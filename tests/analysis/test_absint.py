"""The generic abstract-interpretation engine."""

from __future__ import annotations

import pytest

from repro.analysis.absint import (
    AbstractDomain,
    interpret,
    states_at_instructions,
)
from repro.ir.opcodes import Opcode, OpKind
from repro.ir.parser import parse_function

DIAMOND = """
func f(1) returns {
entry:
  v0 = param 0
  v1 = li 0
  blez v0, low
high:
  v2 = li 10
  j join
low:
  v2 = li 20
join:
  v3 = addu v2, v1
  ret v3
}
"""

LOOP = """
func f(0) {
entry:
  v0 = li 0
loop:
  v0 = addiu v0, 1
  v1 = slti v0, 10
  v2 = li 0
  bne v1, v2, loop
exit:
  ret
}
"""

UNREACHABLE = """
func f(0) returns {
entry:
  v0 = li 1
  ret v0
dead:
  v1 = li 2
  ret v1
}
"""


class DefCountDomain(AbstractDomain[int]):
    """Counts definitions along the path (joins with max)."""

    def entry_state(self, func):
        return 0

    def join(self, a, b):
        return max(a, b)

    def transfer_instruction(self, instr, state):
        return state + len(instr.defs)


class WideningProbe(AbstractDomain[int]):
    """Strictly increasing transfer: terminates only through widening
    (join = max, widen jumps to a sentinel top)."""

    TOP = 1 << 20

    def entry_state(self, func):
        return 0

    def join(self, a, b):
        return max(a, b)

    def widen(self, old, new):
        return self.TOP if new > old else old

    def transfer_instruction(self, instr, state):
        return min(state + 1, self.TOP)


class LiveDefsBackward(AbstractDomain[frozenset]):
    """Backward toy analysis: registers read below this point."""

    forward = False

    def entry_state(self, func):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer_instruction(self, instr, state):
        state = state - frozenset(instr.defs)
        return state | frozenset(instr.uses)


class BranchPruner(DefCountDomain):
    """Marks every branch-taken edge infeasible."""

    def transfer_edge(self, func, src, dst_label, state):
        term = src.terminator
        if term is not None and term.kind is OpKind.BRANCH and term.target == dst_label:
            return None
        return state


class TestForward:
    def test_diamond_joins(self):
        func = parse_function(DIAMOND)
        result = interpret(func, DefCountDomain())
        # both arms define 2 (entry) + 1 values before the join
        assert result.in_states["join"] == 3
        assert result.out_states["join"] == 4

    def test_all_blocks_reachable(self):
        func = parse_function(DIAMOND)
        result = interpret(func, DefCountDomain())
        assert all(result.reachable(b.label) for b in func.blocks)

    def test_cfg_unreachable_block_is_bottom(self):
        func = parse_function(UNREACHABLE)
        result = interpret(func, DefCountDomain())
        assert not result.reachable("dead")
        assert result.in_states["dead"] is None

    def test_widening_terminates_infinite_ascent(self):
        func = parse_function(LOOP)
        result = interpret(func, WideningProbe())
        assert result.reachable("exit")
        assert result.iterations < 50

    def test_infeasible_edge_prunes_block(self):
        func = parse_function(DIAMOND)
        result = interpret(func, BranchPruner())
        assert not result.reachable("low")  # only reached via the taken edge
        assert result.reachable("high")
        assert result.reachable("join")


class TestBackward:
    def test_live_registers(self):
        func = parse_function(DIAMOND)
        result = interpret(func, LiveDefsBackward())
        # backward: out_states holds the state at the block *start*
        live_into_join = result.out_states["join"]
        names = {reg.name for reg in live_into_join}
        assert "v2" in names and "v1" in names

    def test_states_at_instructions_rejects_backward(self):
        func = parse_function(DIAMOND)
        domain = LiveDefsBackward()
        result = interpret(func, domain)
        with pytest.raises(ValueError):
            states_at_instructions(func, domain, result)


class TestPerInstruction:
    def test_pre_states_replay(self):
        func = parse_function(DIAMOND)
        domain = DefCountDomain()
        result = interpret(func, domain)
        states = states_at_instructions(func, domain, result)
        rets = [i for i in func.instructions() if i.op is Opcode.RET]
        assert states[rets[0].uid] == 4  # after v3's def

    def test_unreachable_instructions_absent(self):
        func = parse_function(UNREACHABLE)
        domain = DefCountDomain()
        states = states_at_instructions(func, domain, interpret(func, domain))
        dead_uids = {
            i.uid
            for blk in func.blocks
            if blk.label == "dead"
            for i in blk.instructions
        }
        assert not dead_uids & set(states)
