"""Interval + origin-class abstract interpretation."""

from __future__ import annotations

from repro.analysis.valueclass import (
    Interval,
    add_interval,
    analyze_values,
    const,
    join_interval,
    meet_interval,
    mul_interval,
    shift_left_interval,
    sub_interval,
    widen_interval,
)
from repro.ir.opcodes import Opcode, OpKind
from repro.ir.parser import parse_function, parse_program


def instr_named(func, op):
    return next(i for i in func.instructions() if i.op is op)


class TestIntervalAlgebra:
    def test_join(self):
        assert join_interval(const(3), const(7)) == Interval(3, 7)
        assert join_interval(Interval(None, 5), const(7)) == Interval(None, 7)

    def test_meet_empty(self):
        assert meet_interval(Interval(0, 3), Interval(5, 9)) is None
        assert meet_interval(Interval(0, 5), Interval(5, 9)) == const(5)

    def test_arith(self):
        assert add_interval(Interval(1, 2), Interval(10, 20)) == Interval(11, 22)
        assert sub_interval(Interval(1, 2), Interval(10, 20)) == Interval(-19, -8)
        assert mul_interval(Interval(-2, 3), Interval(4, 5)) == Interval(-10, 15)
        assert shift_left_interval(Interval(1, 3), 4) == Interval(16, 48)

    def test_widen(self):
        assert widen_interval(Interval(0, 10), Interval(0, 11)) == Interval(0, None)
        assert widen_interval(Interval(0, 10), Interval(-1, 10)) == Interval(None, 10)
        assert widen_interval(Interval(0, 10), Interval(0, 10)) == Interval(0, 10)

    def test_overflow_clamps_to_infinity(self):
        big = Interval(1, (1 << 31) - 1)
        out = add_interval(big, const(1))
        assert out.hi is None  # wrapped bound dropped, stays sound
        assert out.lo == 2


class TestTransfer:
    def test_constant_propagation(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 5
  v1 = addiu v0, 3
  v2 = sll v1, 1
  ret v2
}
"""
        )
        values = analyze_values(func)
        ret = instr_named(func, Opcode.RET)
        assert values.value_at(ret, ret.uses[0]).interval == const(16)

    def test_branch_refinement(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  blez v0, nonpos
pos:
  ret v0
nonpos:
  ret v0
}
"""
        )
        values = analyze_values(func)
        rets = [i for i in func.instructions() if i.op is Opcode.RET]
        block_of = func.block_of()
        for ret in rets:
            interval = values.value_at(ret, ret.uses[0]).interval
            if block_of[ret.uid] == "pos":
                assert interval.lo == 1 and interval.hi is None
            else:
                assert interval.hi == 0 and interval.lo is None

    def test_loop_widening_keeps_lower_bound(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 0
loop:
  v0 = addiu v0, 1
  v1 = slti v0, 10
  v2 = li 0
  bne v1, v2, loop
exit:
  ret v0
}
"""
        )
        values = analyze_values(func)
        ret = instr_named(func, Opcode.RET)
        interval = values.value_at(ret, ret.uses[0]).interval
        assert interval.lo is not None and interval.lo >= 0

    def test_infeasible_branch_prunes_block(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 0
  bne v0, v0, dead
live:
  v1 = li 3
  ret v1
dead:
  v2 = li 9
  ret v2
}
"""
        )
        values = analyze_values(func)
        assert values.reachable("live")
        assert not values.reachable("dead")


class TestOrigins:
    def test_fpa_def_tags_origin(self):
        program = parse_program(
            """
global g 8
func main(0) returns {
entry:
  vf0 = li.a 5
  v1 = cp_from_comp vf0
  ret v1
}
"""
        )
        func = program.functions["main"]
        values = analyze_values(func)
        ret = instr_named(func, Opcode.RET)
        origins = values.value_at(ret, ret.uses[0]).origins
        li_a = instr_named(func, Opcode.LI_A)
        assert li_a.uid in origins

    def test_origins_survive_laundering_chain(self):
        program = parse_program(
            """
global g 64
func main(0) returns {
entry:
  vf0 = li.a @g
  vf1 = addiu.a vf0, 4
  v2 = cp_from_comp vf1
  v3 = addiu v2, 0
  v4 = move v3
  ret v4
}
"""
        )
        func = program.functions["main"]
        values = analyze_values(func)
        ret = instr_named(func, Opcode.RET)
        origins = values.value_at(ret, ret.uses[0]).origins
        assert len(origins) == 2  # li.a and addiu.a

    def test_load_is_fresh_barrier(self):
        program = parse_program(
            """
global g 64
func main(0) returns {
entry:
  vf0 = li.a @g
  v1 = cp_from_comp vf0
  v2 = lw v1, 0
  ret v2
}
"""
        )
        func = program.functions["main"]
        values = analyze_values(func)
        ret = instr_named(func, Opcode.RET)
        assert not values.value_at(ret, ret.uses[0]).origins

    def test_cp_to_comp_is_a_pure_move(self):
        """cp_to_comp writes the FP file but creates no FPa *value*: it
        only relays its INT input, so it contributes no origin itself."""
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 5
  vf1 = cp_to_comp v0
  v2 = cp_from_comp vf1
  ret v2
}
"""
        )
        values = analyze_values(func)
        ret = instr_named(func, Opcode.RET)
        assert not values.value_at(ret, ret.uses[0]).origins

    def test_copy_interval_follows_source(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 7
  vf1 = cp_to_comp v0
  v2 = cp_from_comp vf1
  ret v2
}
"""
        )
        values = analyze_values(func)
        ret = instr_named(func, Opcode.RET)
        assert values.value_at(ret, ret.uses[0]).interval == const(7)
