"""Tests for reaching definitions."""

from repro.analysis.reaching import ReachingDefinitions
from repro.ir.parser import parse_function


def _uses_of(func, mnemonic):
    for instr in func.instructions():
        if instr.op.value == mnemonic:
            return instr
    raise AssertionError(f"no {mnemonic} in function")


class TestStraightLine:
    def test_single_def_reaches_use(self, straightline):
        reaching = ReachingDefinitions(straightline)
        addu = _uses_of(straightline, "addu")
        defs0 = reaching.reaching_defs_of_use(addu, 0)
        assert len(defs0) == 1
        assert defs0[0].reg.name == "v0"

    def test_du_edges_complete(self, straightline):
        reaching = ReachingDefinitions(straightline)
        edges = list(reaching.du_edges())
        # v0->addu, v1->addu, v2->sll, v3->ret
        assert len(edges) == 4

    def test_redefinition_kills(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 1
  v0 = li 2
  v1 = move v0
  ret v1
}
"""
        )
        reaching = ReachingDefinitions(func)
        move = _uses_of(func, "move")
        defs = reaching.reaching_defs_of_use(move, 0)
        assert len(defs) == 1
        assert defs[0].uid == list(func.instructions())[1].uid


class TestLoops:
    def test_loop_variable_has_two_reaching_defs(self, figure3):
        reaching = ReachingDefinitions(figure3)
        sll = _uses_of(figure3, "sll")
        defs = reaching.reaching_defs_of_use(sll, 0)
        # v0 defined by entry `li 0` and by `addiu v0, 1` in skip
        assert len(defs) == 2
        assert {d.block for d in defs} == {"entry", "skip"}

    def test_defs_of_reg(self, figure3):
        reaching = ReachingDefinitions(figure3)
        from repro.ir.registers import parse_reg

        defs = reaching.defs_of_reg(parse_reg("v0"))
        assert len(defs) == 2

    def test_reaching_in_loop_header(self, figure3):
        reaching = ReachingDefinitions(figure3)
        regs = {site.reg.name for site in reaching.reaching_in("loop")}
        assert "v0" in regs

    def test_zero_register_has_no_defs(self):
        func = parse_function(
            """
func f(0) {
entry:
  v0 = addu $zero, $zero
  ret
}
"""
        )
        reaching = ReachingDefinitions(func)
        instr = next(iter(func.instructions()))
        assert reaching.reaching_defs_of_use(instr, 0) == []
        assert reaching.reaching_defs_of_use(instr, 1) == []


class TestBranchingPaths:
    def test_both_arms_reach_join(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  blez v0, other
one:
  v1 = li 1
  j join
other:
  v1 = li 2
join:
  v2 = move v1
  ret v2
}
"""
        )
        reaching = ReachingDefinitions(func)
        move = _uses_of(func, "move")
        defs = reaching.reaching_defs_of_use(move, 0)
        assert {d.block for d in defs} == {"one", "other"}
