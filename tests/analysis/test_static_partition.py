"""End-to-end: profile-driven partitioning **without running the program**.

``partition_program(..., static_profile=True)`` must produce partitions
that are lint-clean, certified, semantics-preserving, and that retire
legally on both simulated machines.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.partition.program import partition_program
from repro.regalloc.linear_scan import allocate_program
from repro.runtime.interp import run_program
from repro.sim.config import eight_way, four_way
from repro.sim.pipeline import simulate_trace
from repro.workloads import compile_workload

SCALE = 3


def _static_partitioned(name: str):
    program = compile_workload(name, scale=SCALE)
    # lint=True raises on any error diagnostic: this asserts the
    # static-profile partitions stay clean under all eight rules
    result = partition_program(program, "advanced", static_profile=True, lint=True)
    allocate_program(program)
    return program, result


class TestStaticProfilePartition:
    def test_exclusive_with_measured_profile(self):
        program = compile_workload("compress", scale=SCALE)
        profile = run_program(program).profile
        with pytest.raises(ReproError, match="exclusive"):
            partition_program(
                program, "advanced", profile=profile, static_profile=True
            )

    def test_semantics_preserved(self):
        baseline = run_program(compile_workload("compress", scale=SCALE))
        program, _ = _static_partitioned("compress")
        run = run_program(program)
        assert run.value == baseline.value

    def test_offloads_something(self):
        _, result = _static_partitioned("compress")
        offloaded = sum(
            stats["offloaded_instructions"] for stats in result.stats.values()
        )
        assert offloaded > 0

    def test_deterministic(self):
        _, first = _static_partitioned("compress")
        _, second = _static_partitioned("compress")
        for name in first.partitions:
            fp_a = {n.uid for n in first.partitions[name].fp}
            fp_b = {n.uid for n in second.partitions[name].fp}
            assert fp_a == fp_b

    @pytest.mark.parametrize("config", [four_way, eight_way])
    def test_legal_retirement_on_both_machines(self, config):
        program, _ = _static_partitioned("compress")
        run = run_program(program, collect_trace=True)
        stats = simulate_trace(run.trace, config())
        assert stats.retired == len(run.trace)
        assert stats.cycles > 0

    @pytest.mark.parametrize("name", ["li", "perl"])
    def test_more_workloads_stay_clean(self, name):
        program, _ = _static_partitioned(name)
        baseline = run_program(compile_workload(name, scale=SCALE))
        assert run_program(program).value == baseline.value
