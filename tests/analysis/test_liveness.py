"""Tests for liveness analysis."""

from repro.analysis.liveness import compute_liveness
from repro.ir.parser import parse_function
from repro.ir.registers import parse_reg


class TestLiveness:
    def test_loop_carried_register_live_through(self, figure3):
        liveness = compute_liveness(figure3)
        v0 = parse_reg("v0")
        assert v0 in liveness.live_in["loop"]
        assert v0 in liveness.live_out["skip"]
        assert v0 in liveness.live_through("loop")

    def test_dead_after_last_use(self, figure3):
        liveness = compute_liveness(figure3)
        v4 = parse_reg("v4")  # loaded value: used in loop/body only
        assert v4 not in liveness.live_in["loop"]
        assert v4 not in liveness.live_out["skip"]

    def test_nothing_live_at_exit(self, figure3):
        liveness = compute_liveness(figure3)
        assert liveness.live_out["exit"] == set()

    def test_straightline_chain(self, straightline):
        liveness = compute_liveness(straightline)
        assert liveness.live_in["entry"] == set()
        assert liveness.live_out["entry"] == set()

    def test_branch_operand_live_into_block(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  j test
test:
  blez v0, out
mid:
  j test
out:
  ret v0
}
"""
        )
        liveness = compute_liveness(func)
        v0 = parse_reg("v0")
        assert v0 in liveness.live_in["test"]
        assert v0 in liveness.live_in["out"]
        assert v0 in liveness.live_out["mid"]

    def test_zero_never_live(self):
        func = parse_function(
            """
func f(0) {
entry:
  v0 = addu $zero, $zero
  ret
}
"""
        )
        liveness = compute_liveness(func)
        zero = parse_reg("$zero")
        assert zero not in liveness.live_in["entry"]

    def test_defined_before_use_not_upward_exposed(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 1
  v1 = addiu v0, 1
  ret v1
}
"""
        )
        liveness = compute_liveness(func)
        assert liveness.live_in["entry"] == set()
