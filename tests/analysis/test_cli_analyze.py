"""The ``repro analyze`` subcommand: warnings, exit codes, --fail-on."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main

CLEAN = """
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 8; i = i + 1) { s = s + i; }
    return s;
}
"""

# while (1) survives optimization as a loop with no feasible exit
UNBOUNDED = """
int main() {
    int i = 0;
    while (1) { i = i + 1; }
    return i;
}
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.mc"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def unbounded_file(tmp_path):
    path = tmp_path / "unbounded.mc"
    path.write_text(UNBOUNDED)
    return str(path)


class TestAnalyzeCommand:
    def test_clean_program_exits_zero(self, clean_file, capsys):
        assert main(["analyze", clean_file]) == 0
        assert "no analysis warnings" in capsys.readouterr().out

    def test_warning_printed_but_exit_zero_by_default(self, unbounded_file, capsys):
        assert main(["analyze", unbounded_file]) == 0
        out = capsys.readouterr().out
        assert "warning: unbounded-loop:" in out

    def test_fail_on_warning_exits_one(self, unbounded_file):
        assert main(["analyze", "--fail-on", "warning", unbounded_file]) == 1

    def test_fail_on_warning_clean_program_exits_zero(self, clean_file):
        assert main(["analyze", "--fail-on", "warning", clean_file]) == 0

    def test_json_document(self, unbounded_file, capsys):
        assert main(["analyze", "--json", unbounded_file]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "repro-analyze/1"
        assert document["summary"]["warnings"] >= 1
        (entry,) = document["programs"]
        (warning,) = [
            w for w in entry["warnings"] if w["kind"] == "unbounded-loop"
        ]
        assert warning["function"] == "main"
        assert set(warning) == {"kind", "function", "block", "message"}

    def test_workload_corpus_is_warning_free(self, capsys):
        """Every registered workload compiles without analysis warnings
        (the strongest --fail-on level must pass on the corpus)."""
        assert main(["analyze", "--fail-on", "warning", "--scale", "3"]) == 0
        out = capsys.readouterr().out
        assert "== workload:compress ==" in out
