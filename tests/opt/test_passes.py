"""Per-pass tests for the machine-independent optimizer."""

import pytest

from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_function
from repro.ir.verify import verify_function
from repro.opt.coalesce import coalesce_moves
from repro.opt.constfold import fold_constants
from repro.opt.copyprop import propagate_copies
from repro.opt.cse import local_cse
from repro.opt.dce import eliminate_dead_code
from repro.opt.jumpopt import simplify_jumps
from repro.opt.remat import rematerialize_constants


def _ops(func):
    return [i.op for i in func.instructions()]


class TestConstFold:
    def test_alu_folds_to_li(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 6
  v1 = li 7
  v2 = mult v0, v1
  ret v2
}
"""
        )
        assert fold_constants(func) == 1
        mult = [i for i in func.instructions() if i.defs and i.defs[0].name == "v2"][0]
        assert mult.op is Opcode.LI and mult.imm == 42

    def test_fold_through_move(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 5
  v1 = move v0
  v2 = addiu v1, 1
  ret v2
}
"""
        )
        fold_constants(func)
        target = [i for i in func.instructions() if i.defs and i.defs[0].name == "v2"][0]
        assert target.op is Opcode.LI and target.imm == 6

    def test_symbolic_immediates_not_folded(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li @glob
  v1 = addiu v0, 4
  ret v1
}
"""
        )
        assert fold_constants(func) == 0

    def test_division_by_zero_left_for_runtime(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 1
  v1 = li 0
  v2 = div v0, v1
  ret v2
}
"""
        )
        fold_constants(func)
        assert Opcode.DIV in _ops(func)

    def test_taken_branch_becomes_jump(self):
        func = parse_function(
            """
func f(0) {
entry:
  v0 = li 1
  v1 = li 1
  beq v0, v1, target
mid:
  ret
target:
  ret
}
"""
        )
        fold_constants(func)
        assert Opcode.J in _ops(func) and Opcode.BEQ not in _ops(func)

    def test_not_taken_branch_becomes_nop(self):
        func = parse_function(
            """
func f(0) {
entry:
  v0 = li 1
  v1 = li 2
  beq v0, v1, target
mid:
  ret
target:
  ret
}
"""
        )
        fold_constants(func)
        assert Opcode.NOP in _ops(func) and Opcode.BEQ not in _ops(func)

    def test_redefinition_invalidates(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v9 = param 0
  v0 = li 5
  v0 = move v9
  v1 = addiu v0, 1
  ret v1
}
"""
        )
        fold_constants(func)
        assert Opcode.ADDIU in _ops(func)  # not folded


class TestCopyProp:
    def test_use_rewritten(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  v1 = move v0
  v2 = addiu v1, 1
  ret v2
}
"""
        )
        assert propagate_copies(func) >= 1
        addiu = [i for i in func.instructions() if i.op is Opcode.ADDIU][0]
        assert addiu.uses[0].name == "v0"

    def test_chain_chased(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  v1 = move v0
  v2 = move v1
  v3 = addiu v2, 1
  ret v3
}
"""
        )
        propagate_copies(func)
        addiu = [i for i in func.instructions() if i.op is Opcode.ADDIU][0]
        assert addiu.uses[0].name == "v0"

    def test_kill_on_source_redefinition(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  v1 = move v0
  v0 = addiu v0, 1
  v2 = addiu v1, 1
  ret v2
}
"""
        )
        propagate_copies(func)
        second = [i for i in func.instructions() if i.op is Opcode.ADDIU][1]
        assert second.uses[0].name == "v1"  # stale copy not propagated

    def test_cross_file_copies_not_propagated(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  vf1 = cp_to_comp v0
  vf2 = addiu.a vf1, 1
  ret v0
}
"""
        )
        propagate_copies(func)
        fpa = [i for i in func.instructions() if i.op is Opcode.ADDIU_A][0]
        assert fpa.uses[0].name == "vf1"


class TestCSE:
    def test_duplicate_expression_becomes_move(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  v1 = addiu v0, 4
  v2 = addiu v0, 4
  v3 = addu v1, v2
  ret v3
}
"""
        )
        assert local_cse(func) == 1
        assert _ops(func).count(Opcode.MOVE) == 1

    def test_different_imm_not_merged(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  v1 = addiu v0, 4
  v2 = addiu v0, 5
  v3 = addu v1, v2
  ret v3
}
"""
        )
        assert local_cse(func) == 0

    def test_invalidation_on_operand_redefinition(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  v1 = addiu v0, 4
  v0 = addiu v0, 1
  v2 = addiu v0, 4
  ret v2
}
"""
        )
        assert local_cse(func) == 0

    def test_loads_never_merged(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 4096
  v1 = lw v0, 0
  sw v1, v0, 4
  v2 = lw v0, 0
  ret v2
}
"""
        )
        assert local_cse(func) == 0


class TestDCE:
    def test_dead_chain_removed(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 1
  v1 = addiu v0, 1
  v2 = addiu v1, 1
  v9 = li 42
  ret v9
}
"""
        )
        assert eliminate_dead_code(func) == 3
        assert len(list(func.instructions())) == 2

    def test_stores_and_calls_kept(self):
        func = parse_function(
            """
func f(0) {
entry:
  v0 = li 4096
  v1 = li 1
  sw v1, v0, 0
  v2 = call f()
  ret
}
"""
        )
        assert eliminate_dead_code(func) == 0

    def test_params_kept_even_if_dead(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  v1 = li 3
  ret v1
}
"""
        )
        eliminate_dead_code(func)
        assert Opcode.PARAM in _ops(func)
        verify_function(func)

    def test_loop_carried_value_kept(self, figure3):
        before = figure3.instruction_count()
        removed = eliminate_dead_code(figure3)
        assert removed == 0
        assert figure3.instruction_count() == before


class TestJumpOpt:
    def test_fallthrough_jump_removed(self):
        func = parse_function(
            """
func f(0) {
entry:
  v0 = li 1
  j next
next:
  ret
}
"""
        )
        simplify_jumps(func)
        assert Opcode.J not in _ops(func)
        assert len(func.blocks) == 1  # merged

    def test_unreachable_removed(self):
        func = parse_function(
            """
func f(0) {
entry:
  ret
island:
  v0 = li 1
  ret
}
"""
        )
        simplify_jumps(func)
        assert [b.label for b in func.blocks] == ["entry"]

    def test_jump_threading(self):
        func = parse_function(
            """
func f(1) {
entry:
  v0 = param 0
  blez v0, hop
direct:
  ret
hop:
  j final
final:
  ret
}
"""
        )
        simplify_jumps(func)
        branch = [i for i in func.instructions() if i.op is Opcode.BLEZ][0]
        assert branch.target == "final"

    def test_nops_removed(self):
        func = parse_function(
            """
func f(0) {
entry:
  nop
  nop
  ret
}
"""
        )
        simplify_jumps(func)
        assert Opcode.NOP not in _ops(func)

    def test_self_loop_not_merged(self):
        func = parse_function(
            """
func f(0) {
entry:
  v0 = li 0
spin:
  v0 = addiu v0, 1
  v1 = slti v0, 5
  v2 = li 0
  bne v1, v2, spin
out:
  ret
}
"""
        )
        simplify_jumps(func)
        verify_function(func)
        assert any(b.label == "spin" for b in func.blocks)


class TestCoalesce:
    def test_increment_pattern_collapsed(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v1 = li 0
  v0 = addiu v1, 1
  v1 = move v0
  ret v1
}
"""
        )
        assert coalesce_moves(func) == 1
        addiu = [i for i in func.instructions() if i.op is Opcode.ADDIU][0]
        assert addiu.defs[0].name == "v1"
        assert Opcode.MOVE not in _ops(func)

    def test_multi_use_temp_not_coalesced(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v1 = li 0
  v0 = addiu v1, 1
  v1 = move v0
  v2 = addu v0, v1
  ret v2
}
"""
        )
        assert coalesce_moves(func) == 0

    def test_class_mismatch_not_coalesced(self):
        func = parse_function(
            """
func f(0) {
entry:
  v0 = li 3
  vf1 = cp_to_comp v0
  vf2 = mov.s vf1
  ret
}
"""
        )
        # cp_to_comp def is FP and the move is FP: this IS coalescable
        assert coalesce_moves(func) == 1


class TestRemat:
    def test_shared_constant_split(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 7
  v1 = addiu v0, 1
  v2 = addiu v0, 2
  v3 = addu v1, v2
  ret v3
}
"""
        )
        assert rematerialize_constants(func) == 1
        lis = [i for i in func.instructions() if i.op is Opcode.LI]
        assert len(lis) == 2
        verify_function(func)

    def test_single_user_untouched(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 7
  v1 = addiu v0, 1
  ret v1
}
"""
        )
        assert rematerialize_constants(func) == 0

    def test_multi_def_not_split(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v9 = param 0
  v0 = li 7
  v0 = move v9
  v1 = addiu v0, 1
  v2 = addiu v0, 2
  v3 = addu v1, v2
  ret v3
}
"""
        )
        assert rematerialize_constants(func) == 0
