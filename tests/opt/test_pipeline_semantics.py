"""Optimizer end-to-end: semantics preservation on random programs."""

from hypothesis import given, settings, strategies as st

from repro.minic.codegen import generate
from repro.minic.parser import parse
from repro.minic.sema import analyze
from repro.ir.verify import verify_program
from repro.opt.pipeline import optimize_program
from repro.runtime.interp import run_program


def _compile_unoptimized(source):
    unit = parse(source)
    info = analyze(unit)
    program = generate(unit, info)
    verify_program(program)
    return program


@st.composite
def small_program(draw):
    consts = [draw(st.integers(-50, 50)) for _ in range(4)]
    shift = draw(st.integers(0, 3))
    mask = draw(st.integers(1, 255))
    bound = draw(st.integers(1, 12))
    consts_c = [f"(0 - {-c})" if c < 0 else str(c) for c in consts]
    return f"""
int out[16];
int main() {{
    int i; int a = {consts_c[0]}; int b = {consts_c[1]};
    for (i = 0; i < {bound}; i = i + 1) {{
        a = (a + b * {consts_c[2]}) ^ (i << {shift});
        if ((a & {mask}) > 64) {{ b = b - 1; }} else {{ b = b + {consts_c[3]}; }}
        out[i & 15] = a + b;
    }}
    return (a ^ b ^ out[0] ^ out[7]) & 0xffffff;
}}
"""


@settings(max_examples=40, deadline=None)
@given(small_program())
def test_optimizer_preserves_semantics(source):
    unopt = _compile_unoptimized(source)
    baseline = run_program(unopt, fuel=1_000_000).value

    opt = _compile_unoptimized(source)
    optimize_program(opt)
    verify_program(opt)
    assert run_program(opt, fuel=1_000_000).value == baseline


@settings(max_examples=20, deadline=None)
@given(small_program())
def test_optimizer_never_grows_code(source):
    unopt = _compile_unoptimized(source)
    opt = _compile_unoptimized(source)
    optimize_program(opt)
    # rematerialization can add a few `li`s, but the pipeline must still
    # be a net win (or at worst neutral) on these simple programs
    assert opt.instruction_count() <= unopt.instruction_count()


@settings(max_examples=20, deadline=None)
@given(small_program())
def test_optimizer_idempotent(source):
    program = _compile_unoptimized(source)
    optimize_program(program)
    first = program.instruction_count()
    changed = optimize_program(program)
    assert program.instruction_count() == first
    # a second run may shuffle nothing of substance
    assert changed == 0 or program.instruction_count() == first
