"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main

SOURCE = """
int t[16];
int main() {
    int i; int s = 0;
    for (i = 0; i < 16; i = i + 1) { t[i] = i ^ 5; }
    for (i = 0; i < 16; i = i + 1) { s = s + t[i]; }
    return s;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(SOURCE)
    return str(path)


class TestCli:
    def test_compile(self, source_file, capsys):
        assert main(["compile", source_file]) == 0
        out = capsys.readouterr().out
        assert "func main(0) returns {" in out
        assert "global t 64" in out

    def test_compile_no_opt_is_larger(self, source_file, capsys):
        main(["compile", source_file])
        optimized = capsys.readouterr().out
        main(["compile", "--no-opt", source_file])
        raw = capsys.readouterr().out
        assert len(raw.splitlines()) >= len(optimized.splitlines())

    def test_run(self, source_file, capsys):
        assert main(["run", source_file]) == 0
        out = capsys.readouterr().out
        expected = sum(i ^ 5 for i in range(16))
        assert f"result: {expected}" in out

    def test_partition_annotations(self, source_file, capsys):
        assert main(["partition", source_file]) == 0
        out = capsys.readouterr().out
        assert "FPa" in out and "offloaded" in out
        assert "opcodes:" in out

    def test_partition_basic_scheme(self, source_file, capsys):
        assert main(["partition", "--scheme", "basic", source_file]) == 0
        assert "[basic scheme]" in capsys.readouterr().out

    def test_partition_with_balance_limit(self, source_file, capsys):
        assert main(["partition", "--balance-limit", "0.1", source_file]) == 0

    def test_partition_interprocedural_flag(self, source_file, capsys):
        assert main(["partition", "--interprocedural", source_file]) == 0
        assert "interprocedural:" in capsys.readouterr().out

    def test_simulate(self, source_file, capsys):
        assert main(["simulate", source_file]) == 0
        out = capsys.readouterr().out
        assert "conventional" in out and "advanced" in out
        assert "speedup" in out

    def test_simulate_8way(self, source_file, capsys):
        assert main(["simulate", "--width", "8", source_file]) == 0
        assert "8-way" in capsys.readouterr().out

    def test_simulate_timeline(self, source_file, capsys):
        assert main(["simulate", "--timeline", "8", source_file]) == 0
        out = capsys.readouterr().out
        assert "pipeline timeline" in out
        assert "cycle" in out

    def test_report_static(self, capsys):
        assert main(["report", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        from repro.errors import EXIT_IO

        assert main(["run", "/nonexistent/prog.mc"]) == EXIT_IO
        assert "error" in capsys.readouterr().err

    def test_directory_input_prints_clean_error(self, tmp_path, capsys):
        """IsADirectoryError (any OSError) gets a message, not a traceback."""
        from repro.errors import EXIT_IO

        assert main(["run", str(tmp_path)]) == EXIT_IO
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_semantic_error_reported(self, tmp_path, capsys):
        from repro.errors import SemanticError

        path = tmp_path / "bad.mc"
        path.write_text("int main() { return ghost; }")
        assert main(["run", str(path)]) == SemanticError.exit_code
        assert "undeclared" in capsys.readouterr().err

    def test_parse_error_exit_code(self, tmp_path, capsys):
        from repro.errors import ParseError

        path = tmp_path / "bad.mc"
        path.write_text("int main( { return 1; }")
        assert main(["run", str(path)]) == ParseError.exit_code
        assert "error" in capsys.readouterr().err

    def test_exit_codes_are_distinct_and_documented(self):
        """Every error class maps to its own CLI exit status."""
        from repro.errors import EXIT_CODES, EXIT_BENCH_FAILURES, EXIT_IO

        codes = list(EXIT_CODES.values())
        assert len(set(codes)) == len(codes)
        reserved = {0, 2, EXIT_IO, EXIT_BENCH_FAILURES}
        assert reserved.isdisjoint(set(codes))

    def test_stdin_input(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("int main() { return 9; }"))
        assert main(["run", "-"]) == 0
        assert "result: 9" in capsys.readouterr().out

    def test_workload_source_spec(self, capsys):
        """``workload:<name>`` compiles a registered workload's generated
        source — the spelling CI uses to lint every benchmark input."""
        assert main(["compile", "workload:perl"]) == 0
        assert "func main" in capsys.readouterr().out

    def test_workload_source_spec_lints(self, capsys):
        assert (
            main(["lint", "workload:perl", "--scheme", "basic", "--fail-on", "warning"])
            == 0
        )
        assert "0 error(s)" in capsys.readouterr().out

    def test_unknown_workload_spec(self, capsys):
        from repro.errors import WorkloadError

        assert main(["compile", "workload:doom"]) == WorkloadError.exit_code
        assert "unknown workload" in capsys.readouterr().err
