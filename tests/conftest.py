"""Shared fixtures.

Workload-based fixtures use reduced scales so the suite stays fast; the
benchmark harness (``benchmarks/``) runs the full default scales.
"""

from __future__ import annotations

import pytest

from repro.ir.parser import parse_function, parse_program
from repro.minic.compile import compile_source

#: The paper's Figure 3 fragment (invalidate_for_call loop), hand-lowered
#: the way our MiniC compiler would.  Used by the RDG/slice/partition
#: tests that mirror the paper's worked example.
FIGURE3_IR = """
func invalidate(0) {
entry:
  v0 = li 0
loop:
  v1 = li @reg_tick
  v2 = sll v0, 2
  v3 = addu v1, v2
  v4 = lw v3, 0
  bltz v4, skip
body:
  v6 = addiu v4, 1
  sw v6, v3, 0
skip:
  v0 = addiu v0, 1
  v7 = slti v0, 66
  v8 = li 0
  bne v7, v8, loop
exit:
  ret
}
"""

STRAIGHTLINE_IR = """
func f(0) returns {
entry:
  v0 = li 5
  v1 = li 7
  v2 = addu v0, v1
  v3 = sll v2, 1
  ret v3
}
"""


@pytest.fixture
def figure3():
    """Fresh Figure-3-style function (callers may mutate it)."""
    return parse_function(FIGURE3_IR)


@pytest.fixture
def straightline():
    return parse_function(STRAIGHTLINE_IR)


@pytest.fixture
def vector_sum_program():
    """The paper's Figure 2 example as a full program."""
    return parse_program(
        """
global a 64
global b 64
global c 64

func main(0) {
entry:
  v0 = li 0
  v1 = li @a
  v2 = li @b
  v3 = li @c
loop:
  v4 = sll v0, 2
  v5 = addu v1, v4
  v6 = lw v5, 0
  v7 = addu v2, v4
  v8 = lw v7, 0
  v9 = addu v6, v8
  v10 = addu v3, v4
  sw v9, v10, 0
  v0 = addiu v0, 1
  v11 = slti v0, 16
  v12 = li 0
  bne v11, v12, loop
exit:
  ret v0
}
"""
    )


MINIC_SMOKE = """
int table[32];

int twice(int x) {
    return x * 2;
}

int main() {
    int i;
    int total = 0;
    for (i = 0; i < 32; i = i + 1) {
        table[i] = twice(i) + 1;
    }
    for (i = 0; i < 32; i = i + 1) {
        total = total + table[i];
    }
    return total;
}
"""


@pytest.fixture
def minic_smoke_program():
    return compile_source(MINIC_SMOKE)
