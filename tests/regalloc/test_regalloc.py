"""Tests for live intervals and the linear-scan allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.liveness import compute_liveness
from repro.ir.parser import parse_function
from repro.ir.registers import RegClass
from repro.ir.verify import verify_function, verify_program
from repro.minic.compile import compile_source
from repro.regalloc.intervals import compute_intervals
from repro.regalloc.linear_scan import (
    FP_POOL,
    INT_POOL,
    allocate_function,
    allocate_program,
)
from repro.runtime.interp import run_program


class TestIntervals:
    def test_straightline_ordering(self, straightline):
        intervals = {iv.reg.name: iv for iv in compute_intervals(straightline)[RegClass.INT]}
        assert intervals["v0"].start < intervals["v2"].start
        assert intervals["v0"].end >= intervals["v2"].start - 1

    def test_loop_variable_spans_loop(self, figure3):
        intervals = {iv.reg.name: iv for iv in compute_intervals(figure3)[RegClass.INT]}
        v0 = intervals["v0"]
        v4 = intervals["v4"]
        assert v0.start < v4.start
        assert v0.end > v4.end  # v0 lives across the whole loop

    def test_sorted_by_start(self, figure3):
        for bucket in compute_intervals(figure3).values():
            starts = [iv.start for iv in bucket]
            assert starts == sorted(starts)

    def test_classes_separated(self):
        func = parse_function(
            """
func f(0) {
entry:
  v0 = li 1
  vf1 = li.a 2
  ret
}
"""
        )
        intervals = compute_intervals(func)
        assert len(intervals[RegClass.INT]) == 1
        assert len(intervals[RegClass.FP]) == 1

    def test_overlap_predicate(self, straightline):
        ivs = compute_intervals(straightline)[RegClass.INT]
        assert ivs[0].overlaps(ivs[0])


class TestAllocation:
    def test_no_virtual_registers_remain(self, figure3):
        allocate_function(figure3)
        for instr in figure3.instructions():
            for reg in list(instr.defs) + list(instr.uses):
                assert not reg.virtual, f"{instr!r} kept {reg}"
        verify_function(figure3)

    def test_semantics_preserved_simple(self, minic_smoke_program):
        baseline = run_program(minic_smoke_program).value
        allocate_program(minic_smoke_program)
        verify_program(minic_smoke_program)
        assert run_program(minic_smoke_program).value == baseline

    def test_interfering_values_get_distinct_registers(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 1
  v1 = li 2
  v2 = li 3
  v3 = addu v0, v1
  v4 = addu v3, v2
  ret v4
}
"""
        )
        allocate_function(func)
        instrs = list(func.instructions())
        first_addu = [i for i in instrs if i.op.value == "addu"][0]
        assert first_addu.uses[0] != first_addu.uses[1]

    def test_spilling_kicks_in_under_pressure(self):
        n = len(INT_POOL) + 6
        decls = " ".join(f"int x{i} = {i};" for i in range(n))
        uses = " + ".join(f"x{i}" for i in range(n))
        bumps = " ".join(f"x{i} = x{i} + 1;" for i in range(n))
        source = f"""
int main() {{
    {decls}
    int k;
    for (k = 0; k < 3; k = k + 1) {{
        {bumps}
    }}
    return {uses};
}}
"""
        program = compile_source(source)
        baseline = run_program(program).value
        results = allocate_program(program)
        assert results["main"].spilled, "expected spills under pressure"
        assert results["main"].frame_size > 0
        verify_program(program)
        assert run_program(program).value == baseline

    def test_frame_size_recorded_on_function(self, minic_smoke_program):
        results = allocate_program(minic_smoke_program)
        for name, result in results.items():
            assert minic_smoke_program.functions[name].frame_size == result.frame_size

    def test_fp_class_allocated_from_fp_pool(self):
        source = """
float acc;
int main() {
    int i;
    acc = 0.0;
    for (i = 0; i < 4; i = i + 1) { acc = acc + 1.5; }
    return (int)acc;
}
"""
        program = compile_source(source)
        baseline = run_program(program).value
        allocate_program(program)
        assert run_program(program).value == baseline
        fp_names = {r.name for r in FP_POOL}
        used_fp = {
            reg.name
            for f in program.functions.values()
            for i in f.instructions()
            for reg in list(i.defs) + list(i.uses)
            if reg.rclass is RegClass.FP
        }
        assert used_fp and used_fp <= fp_names | {"$f26", "$f27"}

    def test_recursion_with_spills_is_safe(self):
        """Spill slots are $sp-relative, so recursion must not clobber."""
        n = len(INT_POOL) + 4
        decls = " ".join(f"int x{i} = n + {i};" for i in range(n))
        uses = " + ".join(f"x{i}" for i in range(n))
        source = f"""
int deep(int n) {{
    {decls}
    if (n > 0) {{
        x0 = x0 + deep(n - 1);
    }}
    return ({uses}) & 0xffff;
}}
int main() {{ return deep(5); }}
"""
        program = compile_source(source)
        baseline = run_program(program).value
        results = allocate_program(program)
        assert results["deep"].spilled
        verify_program(program)
        assert run_program(program).value == baseline


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 40), st.integers(1, 5))
def test_allocation_preserves_accumulation(n_vars, rounds):
    decls = " ".join(f"int x{i} = {i * 3 + 1};" for i in range(n_vars))
    bumps = " ".join(f"x{i} = x{i} + x{(i + 1) % n_vars};" for i in range(n_vars))
    total = " + ".join(f"x{i}" for i in range(n_vars))
    source = f"""
int main() {{
    {decls}
    int r;
    for (r = 0; r < {rounds}; r = r + 1) {{ {bumps} }}
    return ({total}) & 0xffffff;
}}
"""
    program = compile_source(source)
    baseline = run_program(program).value
    allocate_program(program)
    assert run_program(program).value == baseline
