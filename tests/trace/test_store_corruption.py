"""Trace-store defenses: damaged or stale packs are misses, never errors.

Truncation, bit flips, wrong format versions, foreign byte order and
stale code/program fingerprints must all be *rejected* by the read
path, and the caller must fall back to fresh interpretation with a
correct result.  Keys are machine-independent (that is the whole point)
but sensitive to everything upstream of the simulator.
"""

from __future__ import annotations

import pytest

from repro.errors import TracePackError
from repro.experiments.runner import run_benchmark
from repro.trace.pack import (
    MAGIC,
    PackedTrace,
    pack_entries,
    program_fingerprint,
)
from repro.trace.store import (
    TRACE_CACHE_ENV,
    TracePool,
    TraceStore,
    clear_trace_pool,
    trace_key,
)

SCALE = 150  # compress smoke scale: sub-second cells


def _small_pack() -> PackedTrace:
    from repro.ir.instructions import Instruction
    from repro.ir.opcodes import Opcode
    from repro.ir.registers import virtual_reg
    from repro.runtime.trace import Subsystem, TraceEntry

    alu = Instruction(Opcode.ADDU, defs=[virtual_reg(1)], uses=[virtual_reg(0)] * 2)
    entries = [
        TraceEntry(alu, 0x400000 + 4 * i, Subsystem.INT,
                   ((0, "r0"),), ((0, "r1"),))
        for i in range(5)
    ]
    return pack_entries(entries, value=7, meta={"program_sha256": "x" * 64})


KEY = "ab" + "0" * 62


class TestKeys:
    def test_key_is_stable_and_machine_independent(self):
        a = trace_key("compress", "basic", SCALE)
        assert a == trace_key("compress", "basic", SCALE)
        # no machine parameter exists to vary: the signature itself is
        # the guarantee; options that change the program change the key
        assert a != trace_key("compress", "advanced", SCALE)
        assert a != trace_key("compress", "basic", SCALE + 1)
        assert a != trace_key("compress", "basic", SCALE, regalloc=False)
        assert a != trace_key("compress", "basic", SCALE, degraded=True)

    def test_code_version_invalidates(self):
        assert trace_key("compress", "basic", SCALE) != trace_key(
            "compress", "basic", SCALE, code_version="deadbeef"
        )

    def test_format_version_invalidates(self, monkeypatch):
        current = trace_key("compress", "basic", SCALE)
        monkeypatch.setattr("repro.trace.store.TRACE_FORMAT_VERSION", 999)
        assert trace_key("compress", "basic", SCALE) != current


class TestStoreRejection:
    def test_round_trip(self, tmp_path):
        store = TraceStore(tmp_path)
        pack = _small_pack()
        store.put(KEY, pack)
        got = store.get(KEY)
        assert got is not None
        assert got.to_bytes() == pack.to_bytes()
        assert store.hits == 1

    def test_missing_is_a_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.get(KEY) is None
        assert store.misses == 1

    def test_truncated_file_is_a_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(KEY, _small_pack())
        path = store.path_for(KEY)
        data = path.read_bytes()
        for cut in (0, 7, len(MAGIC) + 10, len(data) // 2, len(data) - 1):
            path.write_bytes(data[:cut])
            assert store.get(KEY) is None, f"accepted a {cut}-byte prefix"

    @pytest.mark.parametrize("offset_frac", [0.0, 0.2, 0.5, 0.9])
    def test_bit_flip_anywhere_is_a_miss(self, tmp_path, offset_frac):
        store = TraceStore(tmp_path)
        store.put(KEY, _small_pack())
        path = store.path_for(KEY)
        data = bytearray(path.read_bytes())
        index = min(len(data) - 1, int(len(data) * offset_frac))
        data[index] ^= 0x40
        path.write_bytes(bytes(data))
        assert store.get(KEY) is None

    def test_wrong_format_version_is_a_miss(self, tmp_path, monkeypatch):
        store = TraceStore(tmp_path)
        monkeypatch.setattr("repro.trace.pack.TRACE_FORMAT_VERSION", 999)
        store.put(KEY, _small_pack())  # written as a "future" version
        monkeypatch.undo()
        assert store.get(KEY) is None

    def test_stale_code_fingerprint_is_a_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        pack = _small_pack()
        pack.meta["code_version"] = "deadbeef"  # not this build
        store.put(KEY, pack)
        assert store.get(KEY) is None

    def test_decoder_raises_cleanly_when_used_directly(self):
        with pytest.raises(TracePackError):
            PackedTrace.from_bytes(b"not a trace pack at all")
        with pytest.raises(TracePackError):
            PackedTrace.from_bytes(MAGIC + b"\x00" * 10)

    def test_unwritable_store_degrades_to_noop(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the store dir should be")
        store = TraceStore(target)
        store.put(KEY, _small_pack())  # must not raise
        assert store.get(KEY) is None

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
        assert TraceStore.from_env() is None
        monkeypatch.setenv(TRACE_CACHE_ENV, "0")
        assert TraceStore.from_env() is None
        monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
        store = TraceStore.from_env()
        assert store is not None and store.root == tmp_path


class TestPool:
    def test_lru_eviction(self):
        pool = TracePool(cap=2)
        packs = {k: _small_pack() for k in ("a", "b", "c")}
        pool.put("a", packs["a"])
        pool.put("b", packs["b"])
        assert pool.get("a") is packs["a"]  # refresh a
        pool.put("c", packs["c"])  # evicts b
        assert pool.get("b") is None
        assert pool.get("a") is packs["a"]
        assert pool.get("c") is packs["c"]

    def test_cap_zero_disables(self):
        pool = TracePool(cap=0)
        pool.put("a", _small_pack())
        assert len(pool) == 0 and pool.get("a") is None


class TestFallback:
    """Damaged store contents must never change benchmark results."""

    def test_stale_program_fingerprint_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
        fresh = run_benchmark("compress", "conventional", scale=SCALE)
        clear_trace_pool()

        # poison the stored pack: right key, wrong program fingerprint
        key = trace_key("compress", "conventional", SCALE)
        store = TraceStore(tmp_path)
        poisoned = store.get(key)
        assert poisoned is not None
        poisoned.meta["program_sha256"] = "0" * 64
        store.put(key, poisoned)
        clear_trace_pool()

        again = run_benchmark("compress", "conventional", scale=SCALE)
        assert again.checksum == fresh.checksum
        assert again.stats.to_counters() == fresh.stats.to_counters()
        # and the fallback repaired the store with a good pack
        clear_trace_pool()
        repaired = TraceStore(tmp_path).get(key)
        assert repaired is not None
        assert repaired.meta["program_sha256"] != "0" * 64

    def test_flipped_bits_on_disk_fall_back(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
        fresh = run_benchmark("compress", "conventional", scale=SCALE)
        clear_trace_pool()

        key = trace_key("compress", "conventional", SCALE)
        path = TraceStore(tmp_path).path_for(key)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))

        again = run_benchmark("compress", "conventional", scale=SCALE)
        assert again.checksum == fresh.checksum
        assert again.stats.to_counters() == fresh.stats.to_counters()

    def test_disk_replay_is_bit_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
        fresh = run_benchmark("compress", "basic", scale=SCALE)
        clear_trace_pool()  # force the disk path, as a new process would
        replayed = run_benchmark("compress", "basic", scale=SCALE)
        assert replayed.stats.to_counters() == fresh.stats.to_counters()
        assert replayed.checksum == fresh.checksum
        assert replayed.mix == fresh.mix


def test_program_fingerprint_tracks_the_program():
    from repro.workloads import compile_workload

    a = program_fingerprint(compile_workload("compress", SCALE))
    b = program_fingerprint(compile_workload("compress", SCALE))
    c = program_fingerprint(compile_workload("compress", SCALE + 5))
    assert a == b != c
