"""Property-based pack/unpack losslessness over random MiniC programs.

Reuses the MiniC generators from the frontend test suites
(``tests.minic``): random expression trees drive program shapes —
straight-line arithmetic, loops over arrays, and recursion-heavy call
chains that exercise the per-activation frame-id token interning.  For
every generated program: ``pack(trace)`` → ``unpack`` must reproduce
the original entry stream exactly (pc, subsystem, reads, writes,
mem_addr, taken), the encoding must round-trip byte-stably, and the
packed summary/simulation must match the entry-stream ones.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.minic.compile import compile_source
from repro.runtime.interp import run_program
from repro.runtime.trace import dynamic_mix
from repro.sim.config import four_way
from repro.sim.pipeline import simulate_trace
from repro.trace.pack import PackedTrace, pack_entries

from tests.minic.test_properties import int_expr


def _capture(source: str):
    program = compile_source(source)
    run = run_program(program, collect_trace=True)
    return program, run


def _assert_lossless(program, entries) -> PackedTrace:
    pack = pack_entries(entries)
    unpacked = pack.unpack_entries(program)
    assert len(unpacked) == len(entries)
    for got, want in zip(unpacked, entries):
        assert got.pc == want.pc
        assert got.subsystem is want.subsystem
        assert got.reads == want.reads
        assert got.writes == want.writes
        assert got.mem_addr == want.mem_addr
        assert got.taken == want.taken
    data = pack.to_bytes()
    assert PackedTrace.from_bytes(data).to_bytes() == data
    assert pack.dynamic_mix() == dynamic_mix(list(entries))
    return pack


@settings(max_examples=25, deadline=None)
@given(int_expr())
def test_straightline_roundtrip(expr):
    source = f"int main() {{ return ({expr.text}) & 0xffff; }}"
    program, run = _capture(source)
    _assert_lossless(program, run.trace)


@settings(max_examples=15, deadline=None)
@given(int_expr(), st.integers(1, 12))
def test_loopy_program_roundtrip_and_replay(expr, n):
    """Loops + array traffic: packed replay must also be bit-identical."""
    source = f"""
int a[16];
int main() {{
    int i;
    int acc;
    acc = ({expr.text}) & 255;
    for (i = 0; i < {n}; i = i + 1) {{
        a[i] = acc + i;
        acc = acc + a[i];
    }}
    return acc & 0xffff;
}}
"""
    program, run = _capture(source)
    pack = _assert_lossless(program, run.trace)
    fresh = simulate_trace(list(run.trace), four_way())
    replayed = simulate_trace(pack, four_way())
    assert replayed.to_counters() == fresh.to_counters()


@settings(max_examples=15, deadline=None)
@given(int_expr(), st.integers(2, 10))
def test_recursive_program_exercises_frame_interning(expr, depth):
    """Recursion gives the same register name a fresh frame id per
    activation; interning must keep those tokens distinct."""
    source = f"""
int rec(int n, int acc) {{
    if (n <= 0) {{
        return acc + (({expr.text}) & 63);
    }}
    return rec(n - 1, acc + n);
}}
int main() {{
    return rec({depth}, 0) & 0xffff;
}}
"""
    program, run = _capture(source)
    pack = _assert_lossless(program, run.trace)
    frames = {frame for frame, _name in
              (pack.token(t) for t in range(len(pack.token_frames)))}
    assert len(frames) > depth, "recursive activations share frame ids"
    fresh = simulate_trace(list(run.trace), four_way())
    replayed = simulate_trace(pack, four_way())
    assert replayed.to_counters() == fresh.to_counters()


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1), st.booleans())
def test_mem_addr_and_taken_sentinels_roundtrip(addr, taken):
    """-1 sentinels never collide with real values: None, 0 and real
    addresses/outcomes all survive the dynamic columns."""
    from repro.ir.instructions import Instruction
    from repro.ir.opcodes import Opcode
    from repro.ir.registers import virtual_reg
    from repro.runtime.trace import Subsystem, TraceEntry

    load = Instruction(Opcode.LW, defs=[virtual_reg(1)], uses=[virtual_reg(0)])
    branch = Instruction(Opcode.BNE, uses=[virtual_reg(1)] * 2, target="x")
    alu = Instruction(Opcode.ADDU, defs=[virtual_reg(2)], uses=[virtual_reg(1)] * 2)
    entries = [
        TraceEntry(load, 0x400000, Subsystem.INT, ((0, "r0"),), ((0, "r1"),),
                   mem_addr=addr),
        TraceEntry(branch, 0x400004, Subsystem.INT, ((0, "r1"),), (),
                   taken=taken),
        TraceEntry(alu, 0x400008, Subsystem.INT, ((0, "r1"),), ((0, "r2"),)),
    ]
    pack = pack_entries(entries)
    assert pack.mem_addr[0] == addr
    assert pack.mem_addr[1] == -1 and pack.mem_addr[2] == -1
    assert pack.taken[1] == (1 if taken else 0)
    assert pack.taken[0] == -1 and pack.taken[2] == -1
    data = pack.to_bytes()
    assert PackedTrace.from_bytes(data).to_bytes() == data
