"""Shared fixtures for the trace capture/replay tests.

Every test starts with an empty in-process replay pool and no
``REPRO_TRACE_CACHE`` opt-in, so pool/store hit assertions are about
*this* test's actions.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import clear_memo
from repro.trace.store import TRACE_CACHE_ENV, clear_trace_pool


@pytest.fixture(autouse=True)
def fresh_trace_state(monkeypatch):
    monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
    clear_memo()
    clear_trace_pool()
    yield
    clear_memo()
    clear_trace_pool()
