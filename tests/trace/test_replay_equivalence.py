"""The differential net over the interpret→simulate hot path.

For every (workload, scheme) cell of the smoke matrix, simulating the
packed columnar trace must be **bit-identical** — every ``SimStats``
counter, compared field by field — to simulating the original
``TraceEntry`` stream, on both Table 1 machine widths; and the on-disk
encoding must round-trip byte-stably.  This is the suite CI runs as the
``trace-equivalence`` step: it is what licenses the fast replay path to
substitute for fresh interpretation.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import SCHEMES, prepare_program
from repro.runtime.interp import run_program
from repro.runtime.trace import dynamic_mix
from repro.sim.config import eight_way, four_way
from repro.sim.pipeline import simulate_trace
from repro.trace.pack import PackedTrace, pack_entries
from repro.trace.store import TRACE_CACHE_ENV, clear_trace_pool

#: The smoke matrix (mirrors ``repro.bench.matrix``'s smoke suite).
SMOKE = {"compress": 150, "m88ksim": 2}

CELLS = [
    (workload, scale, scheme)
    for workload, scale in sorted(SMOKE.items())
    for scheme in SCHEMES
]
IDS = [f"{w}@{s}/{scheme}" for w, s, scheme in CELLS]


@pytest.fixture(scope="module")
def captured():
    """(workload, scheme) -> (program, entries, pack); interpreted once."""
    runs = {}
    for workload, scale, scheme in CELLS:
        artifacts = prepare_program(workload, scheme, scale=scale)
        run = run_program(artifacts.program, collect_trace=True)
        pack = pack_entries(run.trace, value=run.value)
        runs[(workload, scheme)] = (artifacts.program, run.trace, pack)
    return runs


@pytest.mark.parametrize(("workload", "scale", "scheme"), CELLS, ids=IDS)
@pytest.mark.parametrize("config", [four_way, eight_way], ids=["4way", "8way"])
def test_packed_replay_is_bit_identical(captured, workload, scale, scheme, config):
    _, entries, pack = captured[(workload, scheme)]
    fresh = simulate_trace(list(entries), config())
    replayed = simulate_trace(pack, config())
    fresh_counters = fresh.to_counters()
    replayed_counters = replayed.to_counters()
    for field, value in fresh_counters.items():
        assert replayed_counters[field] == value, (
            f"{workload}/{scheme}: SimStats.{field} diverges between "
            f"fresh interpretation and packed replay"
        )
    assert replayed_counters == fresh_counters


@pytest.mark.parametrize(("workload", "scale", "scheme"), CELLS, ids=IDS)
def test_encode_decode_encode_is_byte_stable(captured, workload, scale, scheme):
    _, _, pack = captured[(workload, scheme)]
    data = pack.to_bytes()
    decoded = PackedTrace.from_bytes(data)
    assert decoded.to_bytes() == data


@pytest.mark.parametrize(("workload", "scale", "scheme"), CELLS, ids=IDS)
def test_decoded_pack_still_replays_identically(captured, workload, scale, scheme):
    """Equivalence must survive the disk encoding, not just in-memory
    packing — the store hands the simulator decoded packs."""
    _, entries, pack = captured[(workload, scheme)]
    decoded = PackedTrace.from_bytes(pack.to_bytes())
    fresh = simulate_trace(list(entries), four_way())
    replayed = simulate_trace(decoded, four_way())
    assert replayed.to_counters() == fresh.to_counters()


@pytest.mark.parametrize(("workload", "scale", "scheme"), CELLS, ids=IDS)
def test_dynamic_mix_matches(captured, workload, scale, scheme):
    _, entries, pack = captured[(workload, scheme)]
    assert pack.dynamic_mix() == dynamic_mix(list(entries))


@pytest.mark.parametrize(("workload", "scale", "scheme"), CELLS, ids=IDS)
def test_unpack_reconstructs_the_entry_stream(captured, workload, scale, scheme):
    program, entries, pack = captured[(workload, scheme)]
    unpacked = pack.unpack_entries(program)
    assert len(unpacked) == len(entries)
    for got, want in zip(unpacked, entries):
        assert got.pc == want.pc
        assert got.subsystem is want.subsystem
        assert got.reads == want.reads
        assert got.writes == want.writes
        assert got.mem_addr == want.mem_addr
        assert got.taken == want.taken
        assert got.instr is want.instr


class TestInterpretOnce:
    """The acceptance property: one interpretation feeds every config."""

    def test_second_config_replays_from_the_pool(self, monkeypatch):
        from repro.experiments import runner

        monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
        clear_trace_pool()
        traced_runs = 0
        real_run_program = runner.run_program

        def counting_run_program(*args, **kwargs):
            nonlocal traced_runs
            if kwargs.get("collect_trace"):
                traced_runs += 1
            return real_run_program(*args, **kwargs)

        monkeypatch.setattr(runner, "run_program", counting_run_program)
        four = runner.run_benchmark(
            "compress", "conventional", width=4, scale=SMOKE["compress"]
        )
        eight = runner.run_benchmark(
            "compress", "conventional", width=8, scale=SMOKE["compress"]
        )
        clear_trace_pool()
        assert traced_runs == 1, "second machine config re-ran the interpreter"
        assert four.checksum == eight.checksum
        assert four.dynamic_instructions == eight.dynamic_instructions

    def test_pool_replay_is_bit_identical_end_to_end(self, monkeypatch):
        from repro.experiments import runner

        monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
        clear_trace_pool()
        first = runner.run_benchmark(
            "compress", "basic", width=4, scale=SMOKE["compress"]
        )
        replayed = runner.run_benchmark(
            "compress", "basic", width=4, scale=SMOKE["compress"]
        )
        clear_trace_pool()
        fresh = runner.run_benchmark(
            "compress", "basic", width=4, scale=SMOKE["compress"]
        )
        assert replayed.stats.to_counters() == first.stats.to_counters()
        assert fresh.stats.to_counters() == first.stats.to_counters()
        assert fresh.checksum == first.checksum
        assert fresh.mix == first.mix
