"""Byte-level determinism of lint output.

Diagnostics must not depend on set/dict iteration order: the same input
linted under different ``PYTHONHASHSEED`` values has to produce
byte-identical ``--json`` documents.  This is what makes the JSON output
usable as a CI regression artifact.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import lint_program
from repro.minic.compile import compile_source

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO / "examples").glob("*.mc"))
FIXTURES = Path(__file__).parent / "fixtures"


def _lint_json(target: str, hashseed: str, *extra: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--json", *extra, target],
        capture_output=True,
        env=env,
        cwd=str(REPO),
        timeout=600,
    )
    assert proc.returncode in (0, 1), proc.stderr.decode()
    return proc.stdout


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_examples_lint_bytes_stable_across_hash_seeds(example):
    runs = {_lint_json(str(example), seed) for seed in ("0", "1")}
    assert len(runs) == 1


def test_workload_lint_bytes_stable_across_hash_seeds():
    # --profile static keeps the subprocess from executing the workload,
    # and exercises the new estimator under both seeds too
    runs = {
        _lint_json("workload:compress", seed, "--profile", "static")
        for seed in ("0", "1")
    }
    assert len(runs) == 1


def test_diagnostics_are_emitted_in_sort_key_order():
    from repro.ir.parser import parse_program

    for fixture in sorted(FIXTURES.glob("*.ir")):
        program = parse_program(fixture.read_text())
        result = lint_program(program)
        keys = [d.sort_key() for d in result.diagnostics]
        assert keys == sorted(keys), fixture.name


def test_repeated_in_process_runs_identical():
    source = """
int arr[32];

int main() {
    int i;
    for (i = 0; i < 32; i = i + 1) { arr[i] = i * 3; }
    return arr[31];
}
"""

    def render(result) -> list[tuple]:
        return [d.sort_key() for d in result.diagnostics] + [
            tuple(result.rules_run)
        ]

    first = render(lint_program(compile_source(source)))
    second = render(lint_program(compile_source(source)))
    assert first == second
