"""Unit tests for the diagnostics framework and renderers."""

import json

import pytest

from repro.lint import (
    Diagnostic,
    JSON_SCHEMA_VERSION,
    LintResult,
    Severity,
    render_json,
    render_text,
)


def _diag(**overrides):
    base = dict(
        rule="subsystem-consistency",
        severity=Severity.ERROR,
        message="vf3 is produced in the FP file but consumed from the INT file",
        function="main",
        block="loop",
        uid=12,
        instruction="v4 = addu v1, vf3",
        hint="route the value through cp_from_comp (§4)",
    )
    base.update(overrides)
    return Diagnostic(**base)


class TestSeverity:
    def test_ordering(self):
        assert Severity.NOTE < Severity.WARNING < Severity.ERROR
        assert max([Severity.WARNING, Severity.ERROR]) is Severity.ERROR

    def test_str_lowercase(self):
        assert str(Severity.WARNING) == "warning"

    def test_from_name(self):
        assert Severity.from_name("error") is Severity.ERROR
        assert Severity.from_name("WARNING") is Severity.WARNING
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.from_name("fatal")


class TestDiagnostic:
    def test_location(self):
        assert _diag().location == "main:loop:#12"
        assert _diag(block=None, uid=None).location == "main"
        assert _diag(function=None, block=None, uid=None).location == "<program>"

    def test_to_dict_key_order(self):
        keys = list(_diag().to_dict())
        assert keys == [
            "rule", "severity", "function", "block", "uid",
            "instruction", "message", "hint",
        ]

    def test_sort_is_by_location_then_rule(self):
        first = _diag(uid=3, rule="zzz")
        second = _diag(uid=40, rule="aaa")
        assert first.sort_key() < second.sort_key()


class TestLintResult:
    def test_queries(self):
        result = LintResult(rules_run=["a", "b"])
        result.add(_diag())
        result.add(_diag(severity=Severity.WARNING, rule="copy-hygiene"))
        assert len(result.errors) == 1
        assert len(result.warnings) == 1
        assert not result.ok
        assert result.max_severity() is Severity.ERROR
        assert result.counts() == {"note": 0, "warning": 1, "error": 1}
        assert result.rules_with_findings() == [
            "copy-hygiene", "subsystem-consistency",
        ]

    def test_failed_threshold(self):
        result = LintResult()
        assert not result.failed()
        result.add(_diag(severity=Severity.WARNING))
        assert result.ok
        assert not result.failed(Severity.ERROR)
        assert result.failed(Severity.WARNING)

    def test_finalize_orders_deterministically(self):
        result = LintResult()
        result.add(_diag(function="zeta", uid=1))
        result.add(_diag(function="main", uid=9))
        result.add(_diag(function="main", uid=2))
        result.finalize()
        assert [(d.function, d.uid) for d in result.diagnostics] == [
            ("main", 2), ("main", 9), ("zeta", 1),
        ]

    def test_extend_merges_rules_run(self):
        left = LintResult(rules_run=["a"])
        right = LintResult(rules_run=["a", "b"])
        right.add(_diag())
        left.extend(right)
        assert left.rules_run == ["a", "b"]
        assert len(left) == 1


class TestRenderers:
    def test_text_contains_location_hint_and_summary(self):
        result = LintResult(rules_run=["subsystem-consistency"])
        result.add(_diag())
        text = render_text(result)
        assert "error: subsystem-consistency: main:loop:#12:" in text
        assert "| v4 = addu v1, vf3" in text
        assert "-> route the value through cp_from_comp" in text
        assert "1 error(s), 0 warning(s), 0 note(s) from 1 rule(s)" in text

    def test_text_can_suppress_hints(self):
        result = LintResult()
        result.add(_diag())
        assert "->" not in render_text(result, hints=False)

    def test_json_schema(self):
        result = LintResult(rules_run=["subsystem-consistency"])
        result.add(_diag())
        document = json.loads(render_json(result))
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["summary"]["errors"] == 1
        assert document["summary"]["ok"] is False
        assert document["summary"]["rules_run"] == ["subsystem-consistency"]
        [entry] = document["diagnostics"]
        assert entry["rule"] == "subsystem-consistency"
        assert entry["severity"] == "error"
        assert entry["uid"] == 12

    def test_json_is_stable_across_runs(self):
        def build():
            result = LintResult(rules_run=["subsystem-consistency"])
            result.add(_diag(uid=7))
            result.add(_diag(uid=2))
            return render_json(result.finalize())

        assert build() == build()
