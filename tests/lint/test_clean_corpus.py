"""The acceptance bar: every example program and benchmark workload
lints clean — partition-level rules on the pre-rewrite partitions,
program-level rules on the rewritten IR — under both schemes."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.ir.verify import verify_program
from repro.lint import Severity, lint_program, partition_rule_ids, render_text
from repro.minic.compile import compile_source
from repro.partition.advanced import advanced_partition
from repro.partition.basic import basic_partition
from repro.partition.program import partition_program
from repro.partition.rewrite import apply_partition
from repro.workloads import WORKLOADS, compile_workload

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.mc"))


def test_examples_exist():
    assert EXAMPLES, "examples/*.mc is the lint CI corpus; do not remove it"


@pytest.mark.parametrize("scheme", ["basic", "advanced"])
@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_examples_lint_clean(path, scheme):
    program = compile_source(path.read_text())
    partitions = {}
    for name, func in program.functions.items():
        partitions[name] = (
            basic_partition(func) if scheme == "basic" else advanced_partition(func)
        )
    pre = lint_program(
        program, partitions=partitions, scheme=scheme, rules=partition_rule_ids()
    )
    assert not pre.diagnostics, render_text(pre)
    for name, func in program.functions.items():
        apply_partition(func, partitions[name])
    verify_program(program)
    post = lint_program(program, scheme=scheme)
    assert not post.failed(Severity.WARNING), render_text(post)


@pytest.mark.parametrize("scheme", ["basic", "advanced"])
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workloads_lint_clean(name, scheme):
    program = compile_workload(name, scale=3)
    # lint=True makes partition_program itself run the partition-level
    # rules pre-rewrite and the dataflow rules post-rewrite, raising on
    # any error diagnostic.
    partition_program(program, scheme, lint=True)
    result = lint_program(program, scheme=scheme)
    assert result.ok, render_text(result)


def test_interprocedural_pipeline_lints_clean():
    program = compile_workload("li", scale=3)
    partition_program(program, "advanced", interprocedural=True, lint=True)
    result = lint_program(program, scheme="advanced")
    assert result.ok, render_text(result)
