"""The ``repro lint`` subcommand and the ``--verify`` flags."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main

SOURCE = """
int t[16];

int twice(int x) {
    return x * 2;
}

int main() {
    int i; int s = 0;
    for (i = 0; i < 16; i = i + 1) { t[i] = twice(i) ^ 5; }
    for (i = 0; i < 16; i = i + 1) { s = s + t[i]; }
    return s;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(SOURCE)
    return str(path)


class TestLintCommand:
    def test_clean_program_exits_zero(self, source_file, capsys):
        assert main(["lint", source_file]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s), 0 note(s) from 8 rule(s)" in out

    def test_basic_scheme(self, source_file, capsys):
        assert main(["lint", "--scheme", "basic", source_file]) == 0
        assert "from 8 rule(s)" in capsys.readouterr().out

    def test_scheme_none_skips_partition_rules(self, source_file, capsys):
        assert main(["lint", "--scheme", "none", "--json", source_file]) == 0
        document = json.loads(capsys.readouterr().out)
        assert "partition-legality" not in document["summary"]["rules_run"]
        assert "subsystem-consistency" in document["summary"]["rules_run"]

    def test_json_output_schema(self, source_file, capsys):
        assert main(["lint", "--json", source_file]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert document["summary"]["ok"] is True
        assert document["summary"]["errors"] == 0
        assert document["diagnostics"] == []
        assert set(document["summary"]["rules_run"]) == {
            "partition-legality",
            "cost-consistency",
            "profit-certification",
            "subsystem-consistency",
            "address-slice-int",
            "calling-convention",
            "copy-hygiene",
            "value-range",
        }

    def test_rules_filter(self, source_file, capsys):
        assert (
            main(["lint", "--json", "--rules", "copy-hygiene", source_file]) == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["rules_run"] == ["copy-hygiene"]

    def test_unknown_rule_exits_nonzero(self, source_file, capsys):
        assert main(["lint", "--rules", "bogus-rule", source_file]) == 1
        assert "unknown lint rule" in capsys.readouterr().err

    def test_fail_on_note_still_clean(self, source_file):
        assert main(["lint", "--fail-on", "note", source_file]) == 0


class TestVerifyFlags:
    def test_partition_verify(self, source_file, capsys):
        assert main(["partition", "--verify", source_file]) == 0
        out = capsys.readouterr().out
        assert "verify: structural checks and all lint rules clean" in out

    def test_partition_verify_basic(self, source_file, capsys):
        assert main(["partition", "--scheme", "basic", "--verify", source_file]) == 0
        assert "lint rules clean" in capsys.readouterr().out

    def test_partition_verify_interprocedural(self, source_file, capsys):
        assert (
            main(["partition", "--interprocedural", "--verify", source_file]) == 0
        )
        assert "lint rules clean" in capsys.readouterr().out

    def test_simulate_verify(self, source_file, capsys):
        assert main(["simulate", "--verify", source_file]) == 0
        assert "speedup" in capsys.readouterr().out
