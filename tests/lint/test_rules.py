"""Per-rule tests: one violating and one clean fixture for each rule.

The program-level rules run on hand-written IR fixtures under
``fixtures/`` (parsed without verification, so the violating ones can
exist at all).  The partition-level rules run on partitions of a small
MiniC substrate that the tests tamper with in targeted ways.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.ir.opcodes import OpKind
from repro.ir.parser import parse_program
from repro.ir.verify import verify_program
from repro.lint import Severity, lint_program, partition_rule_ids
from repro.lint.registry import all_rules, get_rule
from repro.minic.compile import compile_source
from repro.partition.advanced import advanced_partition
from repro.partition.basic import basic_partition
from repro.rdg.graph import Part, Pin

FIXTURES = Path(__file__).parent / "fixtures"


def load(name: str):
    return parse_program((FIXTURES / name).read_text())


def run_rule(rule_id: str, program, **kwargs):
    return lint_program(program, rules=[rule_id], **kwargs)


class TestRegistry:
    def test_all_eight_rules_registered(self):
        ids = {rule.id for rule in all_rules()}
        assert ids == {
            "subsystem-consistency",
            "address-slice-int",
            "calling-convention",
            "copy-hygiene",
            "partition-legality",
            "cost-consistency",
            "profit-certification",
            "value-range",
        }

    def test_partition_rule_ids(self):
        assert set(partition_rule_ids()) == {
            "partition-legality",
            "cost-consistency",
            "profit-certification",
        }

    def test_unknown_rule_rejected(self):
        with pytest.raises(ReproError, match="unknown lint rule"):
            get_rule("no-such-rule")

    def test_rules_have_descriptions(self):
        for rule in all_rules():
            assert rule.description


PROGRAM_RULE_CASES = [
    ("subsystem-consistency", "subsystem_bad.ir", "subsystem_clean.ir"),
    ("address-slice-int", "address_bad.ir", "address_clean.ir"),
    ("calling-convention", "convention_bad.ir", "convention_clean.ir"),
    ("copy-hygiene", "copies_bad.ir", "copies_clean.ir"),
]


class TestProgramRules:
    @pytest.mark.parametrize("rule_id,bad,_clean", PROGRAM_RULE_CASES)
    def test_violating_fixture_is_flagged(self, rule_id, bad, _clean):
        result = run_rule(rule_id, load(bad))
        assert result.diagnostics, f"{rule_id} missed the violation in {bad}"
        assert all(d.rule == rule_id for d in result.diagnostics)

    @pytest.mark.parametrize("rule_id,_bad,clean", PROGRAM_RULE_CASES)
    def test_clean_fixture_passes(self, rule_id, _bad, clean):
        result = run_rule(rule_id, load(clean))
        assert not result.diagnostics

    def test_subsystem_violation_names_both_files(self):
        [diag] = run_rule("subsystem-consistency", load("subsystem_bad.ir")).diagnostics
        assert "FP file" in diag.message and "INT file" in diag.message
        assert "cp_from_comp" in diag.hint
        assert diag.severity is Severity.ERROR

    def test_address_violation_reports_propagation_chain(self):
        [diag] = run_rule("address-slice-int", load("address_bad.ir")).diagnostics
        assert "li.a" in diag.message
        assert "via addu" in diag.message

    def test_copy_rule_finds_dead_and_redundant(self):
        result = run_rule("copy-hygiene", load("copies_bad.ir"))
        assert len(result.diagnostics) == 2
        messages = " / ".join(d.message for d in result.diagnostics)
        assert "never read" in messages
        assert "repeats the dominating copy" in messages
        assert all(d.severity is Severity.WARNING for d in result.diagnostics)

    def test_flow_rule_is_stronger_than_structural_verifier(self):
        # An FP-class register read with no reaching definition: every
        # instruction is locally well-formed (verify passes), but the
        # def-use chain is broken — the signature of a rewrite that
        # renamed a def into the shadow file and lost a reader.
        program = parse_program(
            """
func main(0) returns {
entry:
  vf2 = addiu.a vf9, 1
  v3 = cp_from_comp vf2
  ret v3
}
"""
        )
        verify_program(program)
        result = run_rule("subsystem-consistency", program)
        assert result.errors
        assert "no definition reaches" in result.errors[0].message


#: Substrate whose advanced partition needs duplicates (the loop
#: induction variable feeds both the address slice and offloadable
#: work, Figures 5/6) so the cost-consistency tests have non-empty
#: communication sets to perturb.
SUBSTRATE = """
int arr[64];

int main() {
    int i;
    int s = 0;
    for (i = 0; i < 32; i = i + 1) {
        arr[i] = (i * 7) & 255;
        s = s + arr[i];
    }
    return s;
}
"""


def _partitions(program, scheme):
    out = {}
    for name, func in program.functions.items():
        out[name] = (
            basic_partition(func) if scheme == "basic" else advanced_partition(func)
        )
    return out


def _int_node_with_def(partition, *, avoid_fp_children=False):
    """An INT-assigned WHOLE node defining a register, outside every
    communication set (a safe thing to tamper with)."""
    rdg = partition.rdg
    for node in rdg.nodes:
        instr = rdg.instruction(node)
        if (
            node.part is Part.WHOLE
            and node not in partition.fp
            and node not in partition.copies
            and node not in partition.dups
            and instr.defs
            and instr.kind not in (OpKind.STORE, OpKind.CALL)
            and (
                not avoid_fp_children
                or all(succ not in partition.fp for succ in rdg.succs[node])
            )
        ):
            return node
    raise AssertionError("substrate has no tamperable INT node")


class TestPartitionLegalityRule:
    def test_clean_partitions_pass(self):
        for scheme in ("basic", "advanced"):
            program = compile_source(SUBSTRATE)
            parts = _partitions(program, scheme)
            result = run_rule(
                "partition-legality", program, partitions=parts, scheme=scheme
            )
            assert not result.diagnostics

    def test_skipped_without_partitions(self):
        result = run_rule("partition-legality", compile_source(SUBSTRATE))
        assert result.rules_run == []
        assert not result.diagnostics

    def test_int_pinned_node_in_fpa_is_flagged(self):
        program = compile_source(SUBSTRATE)
        parts = _partitions(program, "advanced")
        partition = parts["main"]
        pinned = next(
            node
            for node, pin in partition.rdg.pin.items()
            if pin is Pin.INT and node not in partition.fp
        )
        partition.fp.add(pinned)
        result = run_rule(
            "partition-legality", program, partitions=parts, scheme="advanced"
        )
        assert any("INT-pinned but assigned to FPa" in d.message for d in result.errors)

    def test_basic_scheme_rejects_communication_sets(self):
        program = compile_source(SUBSTRATE)
        parts = _partitions(program, "basic")
        partition = parts["main"]
        partition.copies.add(_int_node_with_def(partition))
        result = run_rule(
            "partition-legality", program, partitions=parts, scheme="basic"
        )
        assert any(
            "basic-scheme partition carries a copy site" in d.message
            for d in result.errors
        )


class TestCostConsistencyRule:
    def test_clean_advanced_partitions_pass(self):
        program = compile_source(SUBSTRATE)
        parts = _partitions(program, "advanced")
        assert any(p.copies or p.dups for p in parts.values()), (
            "substrate must exercise the communication sets"
        )
        result = run_rule(
            "cost-consistency", program, partitions=parts, scheme="advanced"
        )
        assert not result.diagnostics

    def test_basic_partitions_are_ignored(self):
        program = compile_source(SUBSTRATE)
        parts = _partitions(program, "basic")
        result = run_rule(
            "cost-consistency", program, partitions=parts, scheme="basic"
        )
        assert result.rules_run == ["cost-consistency"]
        assert not result.diagnostics

    def test_spurious_copy_site_is_flagged(self):
        program = compile_source(SUBSTRATE)
        parts = _partitions(program, "advanced")
        partition = parts["main"]
        partition.copies.add(_int_node_with_def(partition, avoid_fp_children=True))
        result = run_rule(
            "cost-consistency", program, partitions=parts, scheme="advanced"
        )
        assert any(
            "S_copy contains" in d.message and "does not need it" in d.message
            for d in result.errors
        )

    def test_dropped_site_is_flagged(self):
        program = compile_source(SUBSTRATE)
        parts = _partitions(program, "advanced")
        partition = next(p for p in parts.values() if p.copies or p.dups)
        if partition.dups:
            partition.dups.pop()
            expected = "S_dupl is missing"
        else:
            partition.copies.pop()
            expected = "S_copy is missing"
        result = run_rule(
            "cost-consistency", program, partitions=parts, scheme="advanced"
        )
        assert any(expected in d.message for d in result.errors)
