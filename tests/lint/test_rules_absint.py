"""The abstract-interpretation lint rules (profit-certification and
value-range)."""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.ir.parser import parse_program
from repro.lint import Severity, lint_program
from repro.minic.compile import compile_source
from repro.partition.advanced import advanced_partition
from repro.rdg.graph import Node, Part
from repro.runtime.interp import run_program
from repro.workloads import compile_workload

FIXTURES = Path(__file__).parent / "fixtures"


def load(name: str):
    return parse_program((FIXTURES / name).read_text())


def run_rule(rule_id: str, program, **kwargs):
    return lint_program(program, rules=[rule_id], **kwargs)


class TestValueRangeAddresses:
    def test_laundered_flow_caught(self):
        """FPa value -> cp_from_comp -> address: value-range errors."""
        result = run_rule("value-range", load("address_laundered.ir"))
        assert not result.ok
        assert result.errors  # one per FPa def in the laundered slice
        for diag in result.errors:
            assert diag.rule == "value-range"
            assert "originating from the FP-file def" in diag.message

    def test_laundered_flow_missed_by_taint_walk(self):
        """The same fixture passes the PR-1 reachability rule — the
        taint stops at the legal cp_from_comp crossing."""
        result = run_rule("address-slice-int", load("address_laundered.ir"))
        assert result.ok
        assert not result.diagnostics

    def test_direct_flow_still_caught(self):
        """value-range subsumes the direct (unlaundered) case too."""
        result = run_rule("value-range", load("address_bad.ir"))
        assert not result.ok

    def test_strictly_stronger_on_old_clean_fixture(self):
        """address_clean.ir is the canonical laundered flow: clean for
        the reachability rule (the crossing is legal def-use-wise) but
        an FPa-origin address for value-range."""
        program = load("address_clean.ir")
        assert run_rule("address-slice-int", program).ok
        assert not run_rule("value-range", program).ok

    def test_clean_program(self):
        result = run_rule("value-range", compile_source(PROFITABLE_SOURCE))
        assert not result.diagnostics


class TestValueRangeCopies:
    def test_dead_branch_copies_warn(self):
        result = run_rule("value-range", load("copies_dead_branch.ir"))
        warnings = result.warnings
        assert len(warnings) == 2  # cp_to_comp and cp_from_comp in `dead`
        assert all("never executed" in d.message for d in warnings)
        assert {d.block for d in warnings} == {"dead"}

    def test_constant_copy_notes(self):
        result = run_rule("value-range", load("copies_constant.ir"))
        notes = result.by_severity(Severity.NOTE)
        assert notes
        assert any("constant 41" in d.message for d in notes)
        assert any(
            d.hint is not None and "li.a" in d.hint for d in notes
        )
        assert result.ok  # notes never fail the run


PROFITABLE_SOURCE = """
int arr[64];

int main() {
    int i;
    int s = 0;
    for (i = 0; i < 32; i = i + 1) {
        arr[i] = (i * 7) & 255;
        s = s + arr[i];
    }
    return s;
}
"""


def _partitioned(source: str = PROFITABLE_SOURCE):
    program = compile_source(source)
    profile = run_program(program).profile
    partitions = {
        name: advanced_partition(func, profile=profile)
        for name, func in program.functions.items()
    }
    return program, partitions, profile


class TestProfitCertification:
    def test_clean_partition_passes(self):
        program, partitions, profile = _partitioned()
        result = run_rule(
            "profit-certification",
            program,
            partitions=partitions,
            profile=profile,
            scheme="advanced",
        )
        assert not result.diagnostics

    def test_skipped_without_partitions(self):
        program, _, _ = _partitioned()
        result = run_rule("profit-certification", program)
        assert "profit-certification" not in result.rules_run

    def test_dropped_copy_site_rejected(self):
        """Seeded mutation: discard one bookkept communication site; the
        INT->FPa edge it paid for becomes unpaid."""
        program, partitions, profile = _partitioned()
        rng = random.Random(1998)
        name, partition = next(
            (n, p)
            for n, p in sorted(partitions.items())
            if p.copies | p.dups
        )
        victim = rng.choice(sorted(partition.copies | partition.dups, key=lambda n: n.uid))
        partition.copies.discard(victim)
        partition.dups.discard(victim)
        result = run_rule(
            "profit-certification",
            program,
            partitions=partitions,
            profile=profile,
            scheme="advanced",
        )
        assert not result.ok
        assert any("unpaid INT" in d.message for d in result.errors)

    def test_phantom_site_rejected(self):
        """Tampered bookkeeping: charge overhead for a copy that feeds
        nothing in FPa."""
        program, partitions, profile = _partitioned()
        name, partition = next(
            (n, p) for n, p in sorted(partitions.items()) if p.fp
        )
        phantom = next(
            node
            for node in sorted(partition.rdg.nodes, key=lambda n: n.uid)
            if node not in partition.fp
            and node not in (partition.copies | partition.dups)
            and node.part is not Part.ADDR
            and partition.rdg.instruction(node).defs
            and not any(
                c in partition.fp for c in partition.rdg.succs[node]
            )
        )
        partition.copies.add(phantom)
        result = run_rule(
            "profit-certification",
            program,
            partitions=partitions,
            profile=profile,
            scheme="advanced",
        )
        assert not result.ok
        assert any("phantom copy site" in d.message for d in result.errors)

    def test_inflated_benefit_rejected(self):
        """Tampered assignment: force an unprofitable component into FPa
        (an INT-only node with no FPa twin pricing support) and the
        certified Profit bound goes negative."""
        program, partitions, profile = _partitioned()
        name, partition = next(
            (n, p) for n, p in sorted(partitions.items()) if p.fp
        )
        # drop every bookkept site but keep the FPa assignment: the
        # components now have unpaid edges AND any component whose
        # feeders were discarded no longer balances its books
        partition.copies.clear()
        partition.dups.clear()
        result = run_rule(
            "profit-certification",
            program,
            partitions=partitions,
            profile=profile,
            scheme="advanced",
        )
        assert not result.ok


@pytest.mark.parametrize("name", ["compress", "li", "perl"])
@pytest.mark.parametrize("scheme", ["basic", "advanced"])
def test_workloads_certify_clean(name, scheme):
    from repro.partition.basic import basic_partition

    program = compile_workload(name, scale=3)
    profile = run_program(program).profile if scheme == "advanced" else None
    partitions = {}
    for fname, func in program.functions.items():
        if scheme == "basic":
            partitions[fname] = basic_partition(func)
        else:
            partitions[fname] = advanced_partition(func, profile=profile)
    result = run_rule(
        "profit-certification",
        program,
        partitions=partitions,
        profile=profile,
        scheme=scheme,
    )
    assert not result.diagnostics
