"""The debug-mode lint hook inside :func:`partition_program`."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.minic.compile import compile_source
from repro.partition.program import partition_program
from repro.rdg.graph import Pin

SOURCE = """
int arr[64];

int main() {
    int i;
    int s = 0;
    for (i = 0; i < 32; i = i + 1) {
        arr[i] = (i * 7) & 255;
        s = s + arr[i];
    }
    return s;
}
"""


def _sabotaging_advanced_partition(monkeypatch):
    """Patch the partitioner so its result assigns an INT-pinned node to
    FPa — an illegal partition the pre-rewrite lint must reject."""
    import repro.partition.program as program_module

    real = program_module.advanced_partition

    def sabotage(func, **kwargs):
        partition = real(func, **kwargs)
        pinned = next(
            (
                node
                for node, pin in partition.rdg.pin.items()
                if pin is Pin.INT and node not in partition.fp
            ),
            None,
        )
        if pinned is not None:
            partition.fp.add(pinned)
        return partition

    monkeypatch.setattr(program_module, "advanced_partition", sabotage)


def test_lint_flag_accepts_clean_pipeline():
    partition_program(compile_source(SOURCE), "advanced", lint=True)


def test_lint_flag_rejects_illegal_partition(monkeypatch):
    # certify=False so the lint stage (not the earlier independent
    # certifier, which also catches this) is what rejects the partition
    _sabotaging_advanced_partition(monkeypatch)
    with pytest.raises(ReproError, match="pre-rewrite lint failed"):
        partition_program(
            compile_source(SOURCE), "advanced", lint=True, certify=False
        )


def test_lint_failure_message_carries_diagnostics(monkeypatch):
    _sabotaging_advanced_partition(monkeypatch)
    with pytest.raises(ReproError, match="INT-pinned but assigned to FPa"):
        partition_program(
            compile_source(SOURCE), "advanced", lint=True, certify=False
        )


def test_env_var_enables_lint(monkeypatch):
    _sabotaging_advanced_partition(monkeypatch)
    monkeypatch.setenv("REPRO_LINT", "1")
    with pytest.raises(ReproError, match="pre-rewrite lint failed"):
        partition_program(compile_source(SOURCE), "advanced", certify=False)


def test_certifier_rejects_illegal_partition_by_default(monkeypatch):
    _sabotaging_advanced_partition(monkeypatch)
    with pytest.raises(ReproError, match="failed independent profit"):
        partition_program(compile_source(SOURCE), "advanced")


def test_lint_false_overrides_env_var(monkeypatch):
    monkeypatch.setenv("REPRO_LINT", "1")
    # lint=False must win over the environment; the clean pipeline is
    # used so the run succeeds either way and only the flag is probed.
    partition_program(compile_source(SOURCE), "advanced", lint=False)
