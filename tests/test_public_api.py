"""Top-level package surface tests."""

import pytest

import repro
from repro.errors import (
    AnalysisError,
    ExecutionError,
    FuelExhausted,
    IRError,
    ParseError,
    PartitionError,
    RegAllocError,
    ReproError,
    SemanticError,
    SimulationError,
    WorkloadError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            IRError,
            ParseError,
            SemanticError,
            AnalysisError,
            PartitionError,
            RegAllocError,
            ExecutionError,
            SimulationError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_fuel_is_execution_error(self):
        assert issubclass(FuelExhausted, ExecutionError)

    def test_parse_error_location(self):
        err = ParseError("bad token", line=3, column=7)
        assert "line 3" in str(err) and "column 7" in str(err)
        assert err.line == 3 and err.column == 7

    def test_parse_error_without_location(self):
        assert str(ParseError("oops")) == "oops"


class TestTopLevelHelpers:
    def test_version(self):
        assert repro.__version__

    def test_compile_minic(self):
        program = repro.compile_minic("int main() { return 7; }")
        from repro.runtime import run_program

        assert run_program(program).value == 7

    def test_partition_helpers(self):
        program = repro.compile_minic(
            """
int t[8];
int main() {
    int i;
    for (i = 0; i < 8; i = i + 1) { t[i] = t[i] + 1; }
    return t[0];
}
"""
        )
        main = program.functions["main"]
        basic = repro.partition_basic(main)
        assert basic.scheme == "basic"
        advanced = repro.partition_advanced(program.functions["main"])
        assert advanced.scheme == "advanced"
        assert len(advanced.fp) >= len(basic.fp)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
