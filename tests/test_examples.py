"""The example scripts must stay runnable (they are documentation)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(script, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "speedup" in result.stdout
        assert "offloaded to FPa" in result.stdout

    def test_paper_walkthrough(self):
        result = _run("paper_walkthrough.py")
        assert result.returncode == 0, result.stderr
        assert "LdSt slice" in result.stdout
        assert "basic scheme" in result.stdout
        assert "advanced scheme" in result.stdout
        # Figure 6's duplicated induction variable must be visible
        assert "addiu.a" in result.stdout
        assert "bne.a" in result.stdout

    def test_custom_workload_demo(self):
        result = _run("custom_workload.py")
        assert result.returncode == 0, result.stderr
        assert "basic scheme" in result.stdout
        assert "advanced scheme" in result.stdout
        assert "dynamic offload" in result.stdout

    def test_benchmark_report_rejects_unknown(self):
        result = _run("benchmark_report.py", "quake3")
        assert result.returncode == 2
        assert "unknown benchmark" in result.stdout

    def test_benchmark_report_runs_small(self):
        result = _run("benchmark_report.py", "li", "2")
        assert result.returncode == 0, result.stderr
        assert "4-way" in result.stdout and "8-way" in result.stdout
        assert "advanced" in result.stdout
