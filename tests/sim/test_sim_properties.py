"""Property-based timing-simulator tests: random well-formed traces must
simulate without deadlock and obey basic throughput/latency bounds."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.registers import RegClass, virtual_reg
from repro.runtime.trace import Subsystem, TraceEntry
from repro.sim.config import eight_way, four_way
from repro.sim.pipeline import simulate_trace

_PC = 0x400000


@st.composite
def random_trace(draw, max_len=120):
    """A dependence-correct trace: every read refers to an earlier write
    (or is omitted), memory addresses are aligned, branches carry
    outcomes."""
    n = draw(st.integers(1, max_len))
    entries = []
    written: list[str] = []
    for i in range(n):
        kind = draw(st.integers(0, 9))
        reads = ()
        if written and draw(st.booleans()):
            reads = (
                (0, written[draw(st.integers(0, len(written) - 1))]),
            )
        pc = _PC + 4 * (i % 24)  # loop-ish pc reuse
        name = f"r{i}"
        if kind <= 4:  # int ALU
            instr = Instruction(Opcode.ADDU, defs=[virtual_reg(0)],
                                uses=[virtual_reg(1)] * 2)
            entry = TraceEntry(instr, pc, Subsystem.INT, reads, ((0, name),))
        elif kind <= 6:  # fpa ALU
            instr = Instruction(
                Opcode.ADDU_A,
                defs=[virtual_reg(0, RegClass.FP)],
                uses=[virtual_reg(1, RegClass.FP)] * 2,
            )
            entry = TraceEntry(instr, pc, Subsystem.FP, reads, ((0, name),))
        elif kind == 7:  # load
            instr = Instruction(Opcode.LW, defs=[virtual_reg(0)],
                                uses=[virtual_reg(1)], imm=0)
            addr = 0x1000 + 4 * draw(st.integers(0, 63))
            entry = TraceEntry(instr, pc, Subsystem.INT, reads, ((0, name),),
                               mem_addr=addr)
        elif kind == 8:  # store
            instr = Instruction(Opcode.SW, uses=[virtual_reg(0), virtual_reg(1)], imm=0)
            addr = 0x1000 + 4 * draw(st.integers(0, 63))
            entry = TraceEntry(instr, pc, Subsystem.INT, reads, (),
                               mem_addr=addr)
        else:  # branch
            instr = Instruction(Opcode.BNE, uses=[virtual_reg(0)] * 2, target="x")
            entry = TraceEntry(instr, pc, Subsystem.INT, reads, (),
                               taken=draw(st.booleans()))
        entries.append(entry)
        if entry.writes:
            written.append(name)
    return entries


@settings(max_examples=40, deadline=None)
@given(random_trace())
def test_every_instruction_retires(trace):
    stats = simulate_trace(trace, four_way())
    assert stats.retired == len(trace)


@settings(max_examples=40, deadline=None)
@given(random_trace())
def test_cycle_bounds(trace):
    """Cycles are bounded below by fetch bandwidth and above by a
    fully-serialized worst case."""
    stats = simulate_trace(trace, four_way())
    lower = math.ceil(len(trace) / 4)
    assert stats.cycles >= lower
    # worst case: every instruction serialized with a miss + mispredict
    assert stats.cycles <= 40 * len(trace) + 100


@settings(max_examples=25, deadline=None)
@given(random_trace())
def test_eight_way_never_slower(trace):
    four = simulate_trace(list(trace), four_way())
    eight = simulate_trace(list(trace), eight_way())
    assert eight.cycles <= four.cycles + 2


@settings(max_examples=25, deadline=None)
@given(random_trace())
def test_issue_counts_partition_correctly(trace):
    stats = simulate_trace(trace, four_way())
    fp_expected = sum(1 for e in trace if e.subsystem is Subsystem.FP)
    assert stats.fp_issued == fp_expected
    assert stats.int_issued == len(trace) - fp_expected


@settings(max_examples=25, deadline=None)
@given(random_trace())
def test_simulation_is_deterministic(trace):
    a = simulate_trace(list(trace), four_way())
    b = simulate_trace(list(trace), four_way())
    assert a.cycles == b.cycles
    assert a.branch_mispredicts == b.branch_mispredicts
