"""Tests for pipeline timeline recording and rendering."""

import pytest

from repro.ir.parser import parse_program
from repro.runtime.interp import run_program
from repro.sim.config import four_way
from repro.sim.timeline import render_timeline, simulate_with_timeline


@pytest.fixture
def small_trace():
    program = parse_program(
        """
global g 16

func main(0) {
entry:
  v0 = li @g
  v1 = li 5
  sw v1, v0, 0
  v2 = lw v0, 0
  v3 = addiu v2, 1
  v4 = mult v3, v3
  sw v4, v0, 4
  ret
}
"""
    )
    return run_program(program, collect_trace=True).trace


class TestRecording:
    def test_timeline_covers_every_instruction(self, small_trace):
        stats, timeline = simulate_with_timeline(small_trace, four_way())
        assert len(timeline) == len(small_trace)
        assert stats.retired == len(small_trace)

    def test_stage_ordering_invariants(self, small_trace):
        _, timeline = simulate_with_timeline(small_trace, four_way())
        for dyn in timeline:
            assert 0 < dyn.fetched_at <= dyn.dispatched_at
            assert dyn.dispatched_at < dyn.issued_at  # dispatch->issue takes a cycle
            assert dyn.issued_at < dyn.complete
            assert dyn.complete <= dyn.retired_at

    def test_retirement_in_program_order(self, small_trace):
        _, timeline = simulate_with_timeline(small_trace, four_way())
        retire_cycles = [dyn.retired_at for dyn in timeline]
        assert retire_cycles == sorted(retire_cycles)

    def test_multiply_latency_visible(self, small_trace):
        _, timeline = simulate_with_timeline(small_trace, four_way())
        mult = next(d for d in timeline if d.entry.instr.op.value == "mult")
        assert mult.complete - mult.issued_at == 6

    def test_dependent_load_waits_for_store(self, small_trace):
        _, timeline = simulate_with_timeline(small_trace, four_way())
        store = next(d for d in timeline if d.entry.instr.op.value == "sw")
        load = next(d for d in timeline if d.entry.instr.op.value == "lw")
        assert load.issued_at > store.issued_at

    def test_not_recorded_by_default(self, small_trace):
        from repro.sim.pipeline import TimingSimulator

        sim = TimingSimulator(four_way())
        sim.run(small_trace)
        assert sim.timeline == []


class TestRendering:
    def test_render_contains_stage_letters(self, small_trace):
        _, timeline = simulate_with_timeline(small_trace, four_way())
        text = render_timeline(timeline)
        for letter in "FDICR":
            assert letter in text
        assert "mult" in text

    def test_render_empty(self):
        assert "empty" in render_timeline([])

    def test_render_truncates(self, small_trace):
        _, timeline = simulate_with_timeline(small_trace, four_way())
        text = render_timeline(timeline, max_instructions=2)
        assert "more instructions" in text
