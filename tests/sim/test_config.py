"""Tests for Table 1 machine configurations."""

import pytest

from repro.errors import ReproError
from repro.sim.config import eight_way, four_way


class TestTable1:
    def test_four_way_parameters(self):
        config = four_way()
        assert config.fetch_width == 4
        assert config.decode_width == 4
        assert config.retire_width == 4
        assert config.int_window == 32 and config.fp_window == 32
        assert config.max_inflight == 32
        assert config.int_units == 2 and config.fp_units == 2
        assert config.ls_ports == 1
        assert config.phys_int == 48 and config.phys_fp == 48

    def test_eight_way_parameters(self):
        config = eight_way()
        assert config.fetch_width == 8
        assert config.max_inflight == 64
        assert config.int_units == 4 and config.fp_units == 4
        assert config.ls_ports == 2
        assert config.phys_int == 80 and config.phys_fp == 80

    def test_shared_parameters(self):
        for config in (four_way(), eight_way()):
            assert config.icache.size_bytes == 64 * 1024
            assert config.icache.line_bytes == 128
            assert config.icache.miss_penalty == 6
            assert config.dcache.size_bytes == 32 * 1024
            assert config.dcache.line_bytes == 32
            assert config.mul_latency == 6
            assert config.div_latency == 12
            assert config.predictor.table_entries == 32 * 1024
            assert config.predictor.history_bits == 15

    def test_rename_register_derivation(self):
        assert four_way().rename_int == 16
        assert eight_way().rename_int == 48

    def test_overrides(self):
        config = four_way(int_window=64, name="4-way-big")
        assert config.int_window == 64
        assert config.name == "4-way-big"

    def test_width_validation_in_runner(self):
        from repro.experiments.runner import run_benchmark

        with pytest.raises(ReproError, match="width"):
            run_benchmark("compress", "conventional", width=6, scale=4)
