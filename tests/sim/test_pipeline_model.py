"""Pipeline-model tests on handcrafted traces with known timing."""

import pytest

from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.registers import RegClass, virtual_reg
from repro.runtime.trace import Subsystem, TraceEntry
from repro.sim.config import four_way
from repro.sim.pipeline import simulate_trace

_PC = 0x400000


def _alu(dst, srcs=(), op=Opcode.ADDU, pc=None, fp=False):
    """One ALU trace entry writing token dst, reading tokens srcs."""
    if fp:
        op = Opcode.ADDU_A
    n_uses = 2 if op in (Opcode.ADDU, Opcode.ADDU_A, Opcode.MULT) else 1
    rclass = RegClass.FP if fp else RegClass.INT
    instr = Instruction(
        op,
        defs=[virtual_reg(0, rclass)],
        uses=[virtual_reg(1, rclass)] * min(n_uses, 2),
        imm=0 if op is Opcode.ADDIU else None,
    )
    return TraceEntry(
        instr=instr,
        pc=pc if pc is not None else _PC,
        subsystem=Subsystem.FP if fp else Subsystem.INT,
        reads=tuple((0, s) for s in srcs),
        writes=((0, dst),),
    )


def _load(dst, addr, srcs=(), pc=None):
    instr = Instruction(Opcode.LW, defs=[virtual_reg(0)], uses=[virtual_reg(1)], imm=0)
    return TraceEntry(
        instr=instr,
        pc=pc if pc is not None else _PC,
        subsystem=Subsystem.INT,
        reads=tuple((0, s) for s in srcs),
        writes=((0, dst),),
        mem_addr=addr,
    )


def _store(addr, srcs=(), pc=None):
    instr = Instruction(Opcode.SW, uses=[virtual_reg(0), virtual_reg(1)], imm=0)
    return TraceEntry(
        instr=instr,
        pc=pc if pc is not None else _PC,
        subsystem=Subsystem.INT,
        reads=tuple((0, s) for s in srcs),
        writes=(),
        mem_addr=addr,
    )


def _branch(taken, pc, srcs=(), fp=False):
    op = Opcode.BNE_A if fp else Opcode.BNE
    rclass = RegClass.FP if fp else RegClass.INT
    instr = Instruction(op, uses=[virtual_reg(0, rclass)] * 2, target="x")
    return TraceEntry(
        instr=instr,
        pc=pc,
        subsystem=Subsystem.FP if fp else Subsystem.INT,
        reads=tuple((0, s) for s in srcs),
        writes=(),
        taken=taken,
    )


def _sequential_pcs(entries, start=_PC):
    for i, entry in enumerate(entries):
        entry.pc = start + 4 * i
    return entries


class TestLatencyAndWidth:
    def test_serial_chain_runs_at_one_ipc(self):
        n = 200
        trace = _sequential_pcs(
            [_alu(f"r{i}", srcs=(f"r{i-1}",) if i else ()) for i in range(n)]
        )
        stats = simulate_trace(trace, four_way())
        assert stats.retired == n
        # ~1 instruction per cycle plus pipeline fill
        assert n <= stats.cycles <= n + 30

    def test_independent_work_limited_by_int_units(self):
        n = 200
        trace = _sequential_pcs([_alu(f"r{i}") for i in range(n)])
        stats = simulate_trace(trace, four_way())
        # 2 INT units: about n/2 cycles
        assert stats.cycles == pytest.approx(n / 2, abs=25)

    def test_partitioned_work_uses_both_subsystems(self):
        """The paper's whole point: with half the work in FPa, both
        subsystems run concurrently and the busy time halves (cold
        I-cache misses affect both runs equally)."""
        n = 200
        mixed = _sequential_pcs([_alu(f"r{i}", fp=bool(i % 2)) for i in range(n)])
        int_only = _sequential_pcs([_alu(f"r{i}") for i in range(n)])
        mixed_stats = simulate_trace(mixed, four_way())
        int_stats = simulate_trace(int_only, four_way())
        assert mixed_stats.fp_issued == n / 2
        assert mixed_stats.int_busy_cycles == pytest.approx(n / 4, abs=10)
        assert mixed_stats.int_busy_cycles < int_stats.int_busy_cycles / 1.8
        assert mixed_stats.cycles < int_stats.cycles

    def test_eight_way_faster_on_wide_parallelism(self):
        from repro.sim.config import eight_way

        n = 400
        trace_fn = lambda: _sequential_pcs([_alu(f"r{i}") for i in range(n)])
        four = simulate_trace(trace_fn(), four_way())
        eight = simulate_trace(trace_fn(), eight_way())
        assert eight.cycles < four.cycles

    def test_multiply_latency_on_critical_path(self):
        n = 50
        chain = [
            _alu(f"r{i}", srcs=(f"r{i-1}",) if i else (), op=Opcode.MULT)
            for i in range(n)
        ]
        stats = simulate_trace(_sequential_pcs(chain), four_way())
        assert stats.cycles >= 6 * n  # mul latency 6

    def test_int_idle_while_fp_busy_counted(self):
        n = 100
        trace = _sequential_pcs([_alu(f"r{i}", fp=True) for i in range(n)])
        stats = simulate_trace(trace, four_way())
        assert stats.fp_busy_cycles > 0
        assert stats.int_idle_fp_busy_cycles == stats.fp_busy_cycles


class TestMemorySystem:
    def test_single_ls_port_serializes_loads(self):
        n = 100
        trace = _sequential_pcs(
            [_load(f"r{i}", addr=0x1000 + 4 * (i % 8)) for i in range(n)]
        )
        stats = simulate_trace(trace, four_way())
        assert stats.cycles >= n  # one load per cycle max
        assert stats.loads == n

    def test_dcache_miss_penalty_visible(self):
        # serial dependent loads, each to a fresh line -> miss every time
        n = 50
        trace = _sequential_pcs(
            [_load(f"r{i}", addr=0x1000 + 64 * i, srcs=(f"r{i-1}",) if i else ())
             for i in range(n)]
        )
        miss_stats = simulate_trace(trace, four_way())
        trace2 = _sequential_pcs(
            [_load(f"r{i}", addr=0x1000, srcs=(f"r{i-1}",) if i else ())
             for i in range(n)]
        )
        hit_stats = simulate_trace(trace2, four_way())
        assert miss_stats.cycles > hit_stats.cycles + 5 * n / 2
        assert miss_stats.dcache_misses >= n - 1

    def test_load_waits_for_matching_store(self):
        trace = _sequential_pcs(
            [
                _alu("v"),
                _store(0x2000, srcs=("v",)),
                _load("w", 0x2000),
                _alu("x", srcs=("w",)),
            ]
        )
        stats = simulate_trace(trace, four_way())
        assert stats.retired == 4  # completes without deadlock

    def test_store_counted(self):
        trace = _sequential_pcs([_alu("v"), _store(0x2000, srcs=("v",))])
        stats = simulate_trace(trace, four_way())
        assert stats.stores == 1


class TestBranches:
    def _branchy(self, pattern, fp=False):
        """A loop-shaped trace: the same two static instructions (compare
        + branch) re-execute once per pattern element, so the predictor
        sees a single hot branch as in real loops."""
        entries = []
        for i, taken in enumerate(pattern):
            entries.append(_alu(f"c{i}", fp=fp, pc=_PC))
            entries.append(_branch(taken, pc=_PC + 4, srcs=(f"c{i}",), fp=fp))
        return entries

    def test_predictable_branches_cheap(self):
        stats = simulate_trace(self._branchy([True] * 200), four_way())
        assert stats.branch_accuracy > 0.9

    def test_mispredictions_cost_cycles(self):
        import random

        rng = random.Random(7)
        pattern = [rng.random() < 0.5 for _ in range(200)]
        noisy = simulate_trace(self._branchy(pattern), four_way())
        steady = simulate_trace(self._branchy([True] * 200), four_way())
        assert noisy.branch_mispredicts > steady.branch_mispredicts
        assert noisy.cycles > steady.cycles

    def test_perfect_predictor_ablation(self):
        import random

        rng = random.Random(7)
        pattern = [rng.random() < 0.5 for _ in range(200)]
        real = simulate_trace(self._branchy(pattern), four_way())
        oracle = simulate_trace(
            self._branchy(pattern), four_way(), perfect_branches=True
        )
        assert oracle.cycles < real.cycles
        assert oracle.branch_mispredicts == 0

    def test_fpa_branches_resolve_in_fp_subsystem(self):
        stats = simulate_trace(self._branchy([True] * 50, fp=True), four_way())
        assert stats.retired == 100
        assert stats.fp_issued == 100


class TestBookkeeping:
    def test_empty_trace(self):
        stats = simulate_trace([], four_way())
        assert stats.cycles == 0 and stats.retired == 0

    def test_all_instructions_retired_exactly_once(self):
        trace = _sequential_pcs([_alu(f"r{i}") for i in range(333)])
        stats = simulate_trace(trace, four_way())
        assert stats.retired == 333

    def test_ipc_derivation(self):
        trace = _sequential_pcs([_alu(f"r{i}") for i in range(100)])
        stats = simulate_trace(trace, four_way())
        assert stats.ipc == pytest.approx(stats.retired / stats.cycles)

    def test_as_dict_contains_all_keys(self):
        trace = _sequential_pcs([_alu("a")])
        stats = simulate_trace(trace, four_way())
        d = stats.as_dict()
        assert {"cycles", "ipc", "fp_fraction", "int_idle_while_fp_busy"} <= set(d)
