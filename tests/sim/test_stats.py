"""Edge cases for SimStats derived metrics."""

from repro.sim.stats import SimStats


class TestDerivedMetrics:
    def test_zero_division_guards(self):
        stats = SimStats()
        assert stats.ipc == 0.0
        assert stats.fp_fraction == 0.0
        assert stats.branch_accuracy == 1.0
        assert stats.icache_miss_rate == 0.0
        assert stats.dcache_miss_rate == 0.0
        assert stats.int_idle_while_fp_busy_fraction == 0.0

    def test_fractions(self):
        stats = SimStats(
            cycles=100,
            retired=150,
            fp_issued=30,
            branches=50,
            branch_mispredicts=5,
            icache_hits=90,
            icache_misses=10,
            dcache_hits=45,
            dcache_misses=5,
            fp_busy_cycles=40,
            int_idle_fp_busy_cycles=10,
        )
        assert stats.ipc == 1.5
        assert stats.fp_fraction == 0.2
        assert stats.branch_accuracy == 0.9
        assert stats.icache_miss_rate == 0.1
        assert stats.dcache_miss_rate == 0.1
        assert stats.int_idle_while_fp_busy_fraction == 0.25

    def test_as_dict_matches_properties(self):
        stats = SimStats(cycles=10, retired=20, fp_issued=4)
        d = stats.as_dict()
        assert d["ipc"] == stats.ipc
        assert d["fp_fraction"] == stats.fp_fraction
        assert d["cycles"] == 10


class TestPipelineDeterminism:
    def test_run_benchmark_is_deterministic(self):
        from repro.experiments.runner import run_benchmark

        a = run_benchmark("m88ksim", "advanced", scale=1)
        b = run_benchmark("m88ksim", "advanced", scale=1)
        assert a.cycles == b.cycles
        assert a.checksum == b.checksum
        assert a.offload_fraction == b.offload_fraction
        assert a.partition_summary == b.partition_summary
