"""Tests for the cache model and gshare predictor."""

import pytest

from repro.errors import SimulationError
from repro.sim.branch_pred import GSharePredictor, PerfectPredictor
from repro.sim.cache import Cache
from repro.sim.config import CacheConfig, PredictorConfig


def _tiny_cache(assoc=2):
    # 4 sets x assoc x 16B lines
    return Cache(CacheConfig(size_bytes=4 * assoc * 16, assoc=assoc, line_bytes=16))


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = _tiny_cache()
        assert cache.access(0x1000) == 7  # 1 + 6
        assert cache.access(0x1000) == 1
        assert cache.access(0x100C) == 1  # same line
        assert cache.misses == 1 and cache.hits == 2

    def test_lru_eviction(self):
        cache = _tiny_cache(assoc=2)
        a, b, c = 0x0, 0x40, 0x80  # all map to set 0 (16B lines, 4 sets)
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a
        cache.access(c)  # evicts b (LRU)
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_sets_are_independent(self):
        cache = _tiny_cache()
        cache.access(0x0)
        cache.access(0x10)  # next set
        assert cache.probe(0x0) and cache.probe(0x10)

    def test_miss_rate(self):
        cache = _tiny_cache()
        cache.access(0x0)
        cache.access(0x0)
        assert cache.miss_rate == pytest.approx(0.5)
        assert Cache(CacheConfig(64, 2, 16)).miss_rate == 0.0

    def test_geometry_validation(self):
        with pytest.raises(SimulationError):
            CacheConfig(size_bytes=100, assoc=2, line_bytes=16)
        with pytest.raises(SimulationError):
            CacheConfig(size_bytes=3 * 2 * 16, assoc=2, line_bytes=16)

    def test_paper_caches_have_correct_set_counts(self):
        icache = CacheConfig(64 * 1024, 2, 128)
        dcache = CacheConfig(32 * 1024, 2, 32)
        assert icache.n_sets == 256
        assert dcache.n_sets == 512


class TestGShare:
    def test_learns_always_taken(self):
        pred = GSharePredictor(PredictorConfig(table_entries=1024, history_bits=4))
        for _ in range(8):
            pred.update(0x400000, True)
        assert pred.predict(0x400000)

    def test_learns_alternating_pattern_via_history(self):
        pred = GSharePredictor(PredictorConfig(table_entries=1024, history_bits=8))
        outcomes = [True, False] * 200
        for taken in outcomes[:100]:
            pred.update(0x400100, taken)
        correct = sum(pred.update(0x400100, t) for t in outcomes[100:])
        assert correct / len(outcomes[100:]) > 0.95

    def test_accuracy_counter(self):
        pred = GSharePredictor()
        for i in range(10):
            pred.update(0x400000, True)
        assert pred.predictions == 10
        assert 0.0 <= pred.accuracy <= 1.0

    def test_counters_saturate(self):
        pred = GSharePredictor(PredictorConfig(table_entries=16, history_bits=0))
        for _ in range(100):
            pred.update(0x40, True)
        # one not-taken shouldn't flip a saturated counter
        pred.update(0x40, False)
        assert pred.predict(0x40)

    def test_initial_prediction_not_taken(self):
        pred = GSharePredictor()
        assert not pred.predict(0x400000)


class TestPerfect:
    def test_never_mispredicts(self):
        pred = PerfectPredictor()
        assert pred.update(0x400000, True)
        assert pred.update(0x400000, False)
        assert pred.accuracy == 1.0
        assert pred.mispredictions == 0
