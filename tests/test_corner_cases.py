"""Cross-cutting corner cases discovered while reading the code."""

import pytest

from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_function, parse_program
from repro.ir.verify import verify_function, verify_program
from repro.minic.compile import compile_source
from repro.runtime.interp import run_program


class TestMiniCCorners:
    def test_infinite_for_with_break(self):
        source = """
int main() {
    int i = 0;
    for (;;) {
        i = i + 1;
        if (i == 12) { break; }
    }
    return i;
}
"""
        assert run_program(compile_source(source)).value == 12

    def test_for_without_step(self):
        source = """
int main() {
    int i; int s = 0;
    for (i = 0; i < 5;) { s = s + i; i = i + 1; }
    return s;
}
"""
        assert run_program(compile_source(source)).value == 10

    def test_deeply_nested_expressions(self):
        expr = "1"
        for _ in range(40):
            expr = f"({expr} + 1)"
        source = f"int main() {{ return {expr}; }}"
        assert run_program(compile_source(source)).value == 41

    def test_logical_ops_as_values_inside_arithmetic(self):
        source = """
int main() {
    int a = 5; int b = 0;
    return (a && 3) * 10 + (b || a) + (!a) * 100;
}
"""
        assert run_program(compile_source(source)).value == 11

    def test_empty_function_bodies(self):
        source = """
void noop() { }
int main() { noop(); noop(); return 1; }
"""
        assert run_program(compile_source(source)).value == 1

    def test_comparison_chain_materialized(self):
        # (a < b) == (c < d) — comparisons as first-class values
        source = """
int main() {
    int a = 1; int b = 2; int c = 3; int d = 4;
    return (a < b) == (c < d);
}
"""
        assert run_program(compile_source(source)).value == 1

    def test_float_zero_division_does_not_crash(self):
        source = """
float x;
int main() {
    x = 1.0;
    x = x / 0.0;
    if (x > 1000000.0) { return 1; }
    return 0;
}
"""
        assert run_program(compile_source(source)).value == 1


class TestRegallocFpSpills:
    def test_fp_pressure_spills_and_preserves_results(self):
        n = 28
        decls = " ".join(f"float f{i} = {i}.5;" for i in range(n))
        bumps = " ".join(f"f{i} = f{i} + 0.5;" for i in range(n))
        total = " + ".join(f"(int)f{i}" for i in range(n))
        source = f"""
int main() {{
    {decls}
    int k;
    for (k = 0; k < 2; k = k + 1) {{ {bumps} }}
    return ({total}) & 0xffff;
}}
"""
        from repro.regalloc.linear_scan import allocate_program

        program = compile_source(source)
        reference = run_program(program).value
        results = allocate_program(program)
        verify_program(program)
        assert run_program(program).value == reference
        fp_spills = [
            vreg for vreg in results["main"].spilled if vreg.rclass.value == "fp"
        ]
        assert fp_spills, "expected FP-class spills under pressure"


class TestOptCorners:
    def test_remat_splits_float_constants(self):
        from repro.opt.remat import rematerialize_constants

        func = parse_function(
            """
func f(0) {
entry:
  vf0 = li.s 2.5
  vf1 = add.s vf0, vf0
  vf2 = mul.s vf0, vf1
  vf3 = sub.s vf0, vf2
  ret
}
"""
        )
        assert rematerialize_constants(func) == 2
        verify_function(func)

    def test_constfold_handles_remainder_sign(self):
        from repro.opt.constfold import fold_constants

        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li -7
  v1 = li 3
  v2 = rem v0, v1
  ret v2
}
"""
        )
        fold_constants(func)
        folded = [i for i in func.instructions() if i.defs and i.defs[0].name == "v2"][0]
        assert folded.op is Opcode.LI and folded.imm == -1

    def test_dce_keeps_copies_feeding_live_values(self):
        from repro.opt.dce import eliminate_dead_code

        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 5
  vf1 = cp_to_comp v0
  vf2 = addiu.a vf1, 1
  v3 = cp_from_comp vf2
  ret v3
}
"""
        )
        assert eliminate_dead_code(func) == 0


class TestInterpCorners:
    def test_byte_ops_roundtrip_through_program(self):
        program = parse_program(
            """
global buf 8

func main(0) {
entry:
  v0 = li @buf
  v1 = li 0x7FC3
  sb v1, v0, 1
  v2 = lb v0, 1
  v3 = lbu v0, 1
  v4 = subu v3, v2
  ret v4
}
"""
        )
        # 0xC3 stored: signed -61, unsigned 195, difference 256
        assert run_program(program).value == 256

    def test_deep_recursion_within_fuel(self):
        program = parse_program(
            """
func down(1) returns {
entry:
  v0 = param 0
  v1 = slti v0, 1
  v2 = li 0
  beq v1, v2, more
done:
  ret v2
more:
  v3 = addiu v0, -1
  v4 = call down(v3)
  v5 = addiu v4, 1
  ret v5
}

func main(0) {
entry:
  v0 = li 400
  v1 = call down(v0)
  ret v1
}
"""
        )
        assert run_program(program).value == 400

    def test_sp_visible_to_loads(self):
        """Spill-style $sp-relative access works without regalloc."""
        program = parse_program(
            """
func main(0) {
entry:
  v0 = li 123
  sw v0, $sp, 8
  v1 = lw $sp, 8
  ret v1
}
"""
        )
        assert run_program(program).value == 123
