"""Property-based MiniC correctness: compiled arithmetic must agree with
a Python reference evaluator (C 32-bit semantics)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.minic.compile import compile_source
from repro.runtime.interp import run_program


def _s32(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


class _Expr:
    """A random expression as both MiniC text and a Python evaluation."""

    def __init__(self, text: str, value: int):
        self.text = text
        self.value = _s32(value)


@st.composite
def int_expr(draw, depth=0):
    if depth >= 4 or draw(st.integers(0, 2)) == 0:
        n = draw(st.integers(-(2**20), 2**20))
        if n < 0:
            return _Expr(f"(0 - {-n})", n)
        return _Expr(str(n), n)
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>"]))
    left = draw(int_expr(depth=depth + 1))
    if op == "<<":
        k = draw(st.integers(0, 8))
        return _Expr(f"(({left.text}) << {k})", left.value << k)
    if op == ">>":
        k = draw(st.integers(0, 8))
        return _Expr(f"(({left.text}) >> {k})", left.value >> k)
    right = draw(int_expr(depth=depth + 1))
    py = {
        "+": left.value + right.value,
        "-": left.value - right.value,
        "*": left.value * right.value,
        "&": left.value & right.value,
        "|": left.value | right.value,
        "^": left.value ^ right.value,
    }[op]
    return _Expr(f"(({left.text}) {op} ({right.text}))", py)


@settings(max_examples=60, deadline=None)
@given(int_expr())
def test_expression_evaluation_matches_reference(expr):
    source = f"int main() {{ return ({expr.text}) & 0xffffff; }}"
    result = run_program(compile_source(source)).value
    assert result == (_s32(expr.value) & 0xFFFFFF)


@settings(max_examples=40, deadline=None)
@given(int_expr(), int_expr())
def test_comparison_materialization(a, b):
    source = f"""
int main() {{
    int lt = ({a.text}) < ({b.text});
    int ge = ({a.text}) >= ({b.text});
    int eq = ({a.text}) == ({b.text});
    return lt * 100 + ge * 10 + eq;
}}
"""
    expected = (
        (1 if a.value < b.value else 0) * 100
        + (1 if a.value >= b.value else 0) * 10
        + (1 if a.value == b.value else 0)
    )
    assert run_program(compile_source(source)).value == expected


@settings(max_examples=30, deadline=None)
@given(st.integers(-1000, 1000), st.integers(1, 100))
def test_division_and_modulo_truncate_toward_zero(a, b):
    source = f"""
int main() {{
    int a = 0 - {-a} ; int b = {b};
    return (a / b) * 1000 + (a % b);
}}
""" if a < 0 else f"""
int main() {{
    int a = {a}; int b = {b};
    return (a / b) * 1000 + (a % b);
}}
"""
    q = abs(a) // b
    q = -q if a < 0 else q
    r = a - q * b
    assert run_program(compile_source(source)).value == q * 1000 + r


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(-100, 100), min_size=1, max_size=12))
def test_array_sum_loop(values):
    n = len(values)
    inits = " ".join(f"t[{i}] = 0 - {-v};" if v < 0 else f"t[{i}] = {v};" for i, v in enumerate(values))
    source = f"""
int t[16];
int main() {{
    int i; int s = 0;
    {inits}
    for (i = 0; i < {n}; i = i + 1) {{ s = s + t[i]; }}
    return s;
}}
"""
    assert run_program(compile_source(source)).value == sum(values)
