"""Robustness fuzzing: arbitrary input must produce a clean diagnostic
(ParseError / SemanticError), never an internal exception."""

from hypothesis import given, settings, strategies as st

from repro.errors import ParseError, SemanticError
from repro.minic.compile import compile_source
from repro.minic.lexer import tokenize

_TOKEN_SOUP = st.lists(
    st.sampled_from(
        [
            "int", "float", "void", "if", "else", "while", "for", "return",
            "break", "continue", "main", "x", "t", "f", "0", "1", "42",
            "1.5", "(", ")", "{", "}", "[", "]", ";", ",", "=", "+", "-",
            "*", "/", "%", "<", ">", "<=", ">=", "==", "!=", "&&", "||",
            "&", "|", "^", "!", "~", "<<", ">>",
        ]
    ),
    max_size=40,
)


@settings(max_examples=150, deadline=None)
@given(_TOKEN_SOUP)
def test_token_soup_never_crashes_the_frontend(tokens):
    source = " ".join(tokens)
    try:
        compile_source(source)
    except (ParseError, SemanticError):
        pass  # clean diagnostics are the expected outcome


@settings(max_examples=150, deadline=None)
@given(st.text(max_size=60))
def test_arbitrary_text_never_crashes_the_lexer(text):
    try:
        tokenize(text)
    except ParseError:
        pass


@settings(max_examples=80, deadline=None)
@given(st.text(alphabet="abcxyz0123456789(){};=+-*/<>!&|,. \n", max_size=80))
def test_c_flavoured_noise_never_crashes_the_frontend(text):
    try:
        compile_source(text)
    except (ParseError, SemanticError):
        pass


@settings(max_examples=100, deadline=None)
@given(st.text(alphabet="vf0123456789 =,@.$#:\nliadusw", max_size=80))
def test_ir_parser_never_crashes(text):
    from repro.ir.parser import parse_program

    try:
        parse_program(text)
    except ParseError:
        pass
