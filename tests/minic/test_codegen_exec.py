"""Execution tests for compiled MiniC: the compiler + interpreter must
agree with ordinary C semantics."""

import pytest

from repro.ir.opcodes import Opcode
from repro.minic.compile import compile_source
from repro.runtime.interp import run_program


def run_main(source, optimize=True):
    return run_program(compile_source(source, optimize=optimize)).value


def expr_main(expr):
    return run_main(f"int main() {{ return {expr}; }}")


class TestArithmetic:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("10 - 4 - 3", 3),
            ("7 / 2", 3),
            ("-7 / 2", -3),  # C truncates toward zero
            ("7 % 3", 1),
            ("-7 % 3", -1),
            ("1 << 10", 1024),
            ("-8 >> 1", -4),  # arithmetic shift
            ("6 & 3", 2),
            ("6 | 3", 7),
            ("6 ^ 3", 5),
            ("~5", -6),
            ("!3", 0),
            ("!0", 1),
            ("-(-5)", 5),
        ],
    )
    def test_int_expressions(self, expr, expected):
        assert expr_main(expr) == expected

    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("3 < 4", 1),
            ("4 < 3", 0),
            ("3 <= 3", 1),
            ("3 > 3", 0),
            ("4 >= 3", 1),
            ("3 == 3", 1),
            ("3 != 3", 0),
            ("1 && 2", 1),
            ("0 && 1", 0),
            ("0 || 0", 0),
            ("0 || 7", 1),
            ("(3 < 4) + (5 > 2)", 2),
        ],
    )
    def test_comparisons_and_logic(self, expr, expected):
        assert expr_main(expr) == expected

    def test_wrapping_32bit(self):
        assert expr_main("2147483647 + 1") == -2147483648

    def test_short_circuit_prevents_division_by_zero(self):
        source = """
int zero;
int main() {
    if (zero != 0 && (10 / zero) > 0) { return 1; }
    return 2;
}
"""
        assert run_main(source) == 2


class TestControlFlow:
    def test_if_else_chain(self):
        source = """
int classify(int x) {
    if (x < 0) { return -1; }
    else { if (x == 0) { return 0; } else { return 1; } }
}
int main() { return classify(-5) * 100 + classify(0) * 10 + classify(7); }
"""
        assert run_main(source) == -99  # -1*100 + 0*10 + 1

    def test_while_loop(self):
        assert run_main(
            "int main() { int i = 0; int s = 0; while (i < 10) { s = s + i; i = i + 1; } return s; }"
        ) == 45

    def test_for_with_break_continue(self):
        source = """
int main() {
    int i; int s = 0;
    for (i = 0; i < 100; i = i + 1) {
        if (i == 10) { break; }
        if (i & 1) { continue; }
        s = s + i;
    }
    return s;
}
"""
        assert run_main(source) == 0 + 2 + 4 + 6 + 8

    def test_nested_loops(self):
        source = """
int main() {
    int i; int j; int s = 0;
    for (i = 0; i < 5; i = i + 1) {
        for (j = 0; j < i; j = j + 1) { s = s + 1; }
    }
    return s;
}
"""
        assert run_main(source) == 10

    def test_implicit_return_zero(self):
        assert run_main("int main() { int x = 3; x = x + 1; }") == 0


class TestFunctionsAndGlobals:
    def test_recursion(self):
        source = """
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
"""
        assert run_main(source) == 144

    def test_mutual_recursion(self):
        source = """
int is_odd(int n);
int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
int main() { return is_even(10) * 10 + is_odd(7); }
"""
        # forward declarations are not in the grammar; reorder instead
        source = """
int is_even(int n) { if (n == 0) { return 1; } if (n == 1) { return 0; } return is_even(n - 2); }
int main() { return is_even(10) * 10 + is_even(8); }
"""
        assert run_main(source) == 11

    def test_globals_persist_across_calls(self):
        source = """
int counter;
void bump() { counter = counter + 1; }
int main() {
    int i;
    for (i = 0; i < 7; i = i + 1) { bump(); }
    return counter;
}
"""
        assert run_main(source) == 7

    def test_global_array_init(self):
        source = """
int t[4] = {10, 20, 30};
int main() { return t[0] + t[1] + t[2] + t[3]; }
"""
        assert run_main(source) == 60

    def test_array_index_expressions(self):
        source = """
int t[16];
int main() {
    int i;
    for (i = 0; i < 16; i = i + 1) { t[i] = i * i; }
    return t[3] + t[(1 + 2) * 2];
}
"""
        assert run_main(source) == 9 + 36


class TestFloats:
    def test_float_arithmetic_via_cast(self):
        assert run_main("int main() { return (int)(1.5 * 4.0); }") == 6

    def test_int_to_float_promotion(self):
        assert run_main("float g; int main() { g = 3; return (int)(g * 2.0); }") == 6

    def test_float_comparison_branches(self):
        source = """
float x;
int main() {
    x = 2.5;
    if (x > 2.0 && x < 3.0) { return 1; }
    return 0;
}
"""
        assert run_main(source) == 1

    def test_float_global_array(self):
        source = """
float a[8];
int main() {
    int i;
    for (i = 0; i < 8; i = i + 1) { a[i] = (float)i * 0.5; }
    return (int)(a[7] * 2.0);
}
"""
        assert run_main(source) == 7

    def test_negative_float(self):
        assert run_main("int main() { return (int)(-2.5 * -2.0); }") == 5

    def test_truncation_toward_zero(self):
        assert run_main("int main() { return (int)(-1.9); }") == -1


class TestLoweringChoices:
    """Codegen promises (docstring of repro.minic.codegen)."""

    def test_no_bgtz_bgez_emitted(self):
        program = compile_source(
            "int main() { int x = 5; if (x > 0) { return 1; } if (x >= 2) { return 2; } return 0; }"
        )
        ops = {i.op for f in program.functions.values() for i in f.instructions()}
        assert Opcode.BGTZ not in ops and Opcode.BGEZ not in ops

    def test_no_zero_register_operands(self):
        program = compile_source("int main() { int x = 0; return x == 0; }")
        for func in program.functions.values():
            for instr in func.instructions():
                assert all(u.name != "$zero" for u in instr.uses)

    def test_unopt_and_opt_agree(self):
        source = """
int t[8];
int main() {
    int i; int acc = 1;
    for (i = 0; i < 8; i = i + 1) { t[i] = (i * 3) ^ (i << 2); }
    for (i = 0; i < 8; i = i + 1) { acc = acc * 2 + t[i] % 5; }
    return acc & 0xffff;
}
"""
        assert run_main(source, optimize=False) == run_main(source, optimize=True)
