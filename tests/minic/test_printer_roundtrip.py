"""Property: the MiniC printer is a normal form — ``parse -> print``
reaches a fixpoint after one round trip, for both the hand-written
surrogates and the generator/fuzzer program families."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.gen import GeneratorSpec, generate_source
from repro.gen.build import build_program
from repro.minic.parser import parse
from repro.minic.printer import print_unit
from repro.workloads import WORKLOADS, workload_source


def _round_trip_is_idempotent(source: str) -> None:
    printed = print_unit(parse(source))
    again = print_unit(parse(printed))
    assert printed == again


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_fuzzer_programs_round_trip(seed):
    _round_trip_is_idempotent(build_program(seed))


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=1000),
    st.sampled_from(["mixer", "chains"]),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_generated_workloads_round_trip(seed, generator, fp):
    spec = GeneratorSpec(generator, seed=seed, fp=round(fp, 2))
    _round_trip_is_idempotent(generate_source(spec, scale=5))


def test_surrogate_workloads_round_trip():
    for name in WORKLOADS:
        _round_trip_is_idempotent(workload_source(name, scale=2))
