"""Tests for the MiniC lexer."""

import pytest

from repro.errors import ParseError
from repro.minic.lexer import Token, TokenKind, tokenize


def _kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        toks = tokenize("int intx if iffy")
        assert toks[0].kind is TokenKind.KEYWORD
        assert toks[1].kind is TokenKind.IDENT
        assert toks[2].kind is TokenKind.KEYWORD
        assert toks[3].kind is TokenKind.IDENT

    def test_integer_literals(self):
        toks = tokenize("42 0x2A 0")
        assert [t.value for t in toks[:-1]] == [42, 42, 0]

    def test_float_literals(self):
        toks = tokenize("1.5 .25 2. 3e2")
        assert toks[0].kind is TokenKind.FLOAT_LIT
        assert [t.value for t in toks[:-1]] == [1.5, 0.25, 2.0, 300.0]

    def test_char_literals(self):
        toks = tokenize(r"'a' '\n' '\\' '\0'")
        assert [t.value for t in toks[:-1]] == [97, 10, 92, 0]
        assert all(t.kind is TokenKind.INT_LIT for t in toks[:-1])

    def test_two_char_operators(self):
        texts = [t.text for t in tokenize("<= >= == != && || << >>")[:-1]]
        assert texts == ["<=", ">=", "==", "!=", "&&", "||", "<<", ">>"]

    def test_comments_skipped(self):
        toks = _kinds("a // comment\n b /* multi\nline */ c")
        assert [text for _, text in toks] == ["a", "b", "c"]

    def test_line_numbers_track_newlines(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 4]

    def test_column_numbers(self):
        toks = tokenize("ab cd")
        assert toks[0].column == 1
        assert toks[1].column == 4

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind is TokenKind.EOF

    def test_unknown_character_rejected(self):
        with pytest.raises(ParseError):
            tokenize("a $ b")

    def test_unknown_escape_rejected(self):
        with pytest.raises(ParseError):
            tokenize(r"'\q'")
