"""Tests for the MiniC parser and semantic analysis."""

import pytest

from repro.errors import ParseError, SemanticError
from repro.minic.astnodes import Binary, Call, Cast, For, If, IntLit, While
from repro.minic.parser import parse
from repro.minic.sema import analyze


def _analyze(source):
    unit = parse(source)
    return unit, analyze(unit)


MINIMAL = "int main() { return 0; }"


class TestParser:
    def test_minimal(self):
        unit = parse(MINIMAL)
        assert len(unit.functions) == 1
        assert unit.functions[0].name == "main"

    def test_precedence(self):
        unit = parse("int main() { return 1 + 2 * 3; }")
        expr = unit.functions[0].body.statements[0].value
        assert isinstance(expr, Binary) and expr.op == "+"
        assert isinstance(expr.right, Binary) and expr.right.op == "*"

    def test_parentheses_override(self):
        unit = parse("int main() { return (1 + 2) * 3; }")
        expr = unit.functions[0].body.statements[0].value
        assert expr.op == "*"

    def test_comparison_below_logic(self):
        unit = parse("int main() { return 1 < 2 && 3 < 4; }")
        expr = unit.functions[0].body.statements[0].value
        assert expr.op == "&&"

    def test_cast_expression(self):
        unit = parse("float g; int main() { return (int)g; }")
        expr = unit.functions[0].body.statements[0].value
        assert isinstance(expr, Cast) and expr.target == "int"

    def test_cast_vs_parenthesized_expr(self):
        unit = parse("int x; int main() { return (x); }")
        expr = unit.functions[0].body.statements[0].value
        assert not isinstance(expr, Cast)

    def test_for_loop_parts(self):
        unit = parse("int main() { int i; for (i = 0; i < 3; i = i + 1) { } return 0; }")
        stmt = unit.functions[0].body.statements[1]
        assert isinstance(stmt, For)
        assert stmt.cond is not None and stmt.step is not None

    def test_dangling_else_binds_inner(self):
        unit = parse(
            "int main() { if (1) if (0) return 1; else return 2; return 3; }"
        )
        outer = unit.functions[0].body.statements[0]
        assert isinstance(outer, If)
        inner = outer.then_body.statements[0]
        assert isinstance(inner, If) and inner.else_body is not None
        assert outer.else_body is None

    def test_global_array_with_init(self):
        unit = parse("int t[4] = {1, 2, -3};\nint main() { return 0; }")
        decl = unit.globals[0]
        assert decl.array_size == 4
        assert decl.init == [1, 2, -3]

    def test_call_args(self):
        unit = parse("int f(int a, int b) { return a; } int main() { return f(1, 2); }")
        expr = unit.functions[1].body.statements[0].value
        assert isinstance(expr, Call) and len(expr.args) == 2

    @pytest.mark.parametrize(
        "bad",
        [
            "int main() { return 0 }",  # missing ;
            "int main() { 3 = x; }",  # bad assignment target
            "int main( { return 0; }",
            "void x;",  # void variable
            "int main() { int t[3]; return 0; }",  # local arrays unsupported
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse(bad)


class TestSema:
    def test_types_annotated(self):
        unit, _info = _analyze("float g; int main() { g = g + 1; return 0; }")
        assign = unit.functions[0].body.statements[0]
        assert assign.value.type == "float"  # int promoted

    def test_undeclared_variable(self):
        with pytest.raises(SemanticError, match="undeclared"):
            _analyze("int main() { return ghost; }")

    def test_array_used_without_index(self):
        with pytest.raises(SemanticError, match="without an index"):
            _analyze("int a[4]; int main() { return a; }")

    def test_index_on_scalar(self):
        with pytest.raises(SemanticError, match="not a global array"):
            _analyze("int a; int main() { return a[0]; }")

    def test_call_arity(self):
        with pytest.raises(SemanticError, match="expects 1"):
            _analyze("int f(int x) { return x; } int main() { return f(); }")

    def test_unknown_function(self):
        with pytest.raises(SemanticError, match="undeclared function"):
            _analyze("int main() { return ghost(); }")

    def test_float_narrowing_requires_cast(self):
        with pytest.raises(SemanticError, match="cast"):
            _analyze("float g; int main() { int x; x = g; return x; }")

    def test_float_widening_implicit(self):
        _analyze("float g; int main() { g = 3; return 0; }")

    def test_modulo_int_only(self):
        with pytest.raises(SemanticError, match="requires int"):
            _analyze("float g; int main() { g = g % 2.0; return 0; }")

    def test_float_params_rejected(self):
        with pytest.raises(SemanticError, match="parameters must be int"):
            _analyze("int f(float x) { return 0; } int main() { return 0; }")

    def test_float_return_rejected(self):
        with pytest.raises(SemanticError, match="int or void"):
            _analyze("float f() { } int main() { return 0; }")

    def test_missing_main(self):
        with pytest.raises(SemanticError, match="no main"):
            _analyze("int f() { return 0; }")

    def test_main_with_params(self):
        with pytest.raises(SemanticError, match="no parameters"):
            _analyze("int main(int argc) { return 0; }")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError, match="break"):
            _analyze("int main() { break; return 0; }")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError, match="continue"):
            _analyze("int main() { continue; return 0; }")

    def test_void_value_in_expression(self):
        with pytest.raises(SemanticError):
            _analyze("void f() { } int main() { return f() + 1; }")

    def test_return_value_from_void(self):
        with pytest.raises(SemanticError, match="returns void"):
            _analyze("void f() { return 3; } int main() { return 0; }")

    def test_bare_return_from_int(self):
        with pytest.raises(SemanticError, match="must return a value"):
            _analyze("int f() { return; } int main() { return 0; }")

    def test_redeclaration(self):
        with pytest.raises(SemanticError, match="redeclaration"):
            _analyze("int main() { int x; int x; return 0; }")

    def test_shadowing_global_rejected(self):
        with pytest.raises(SemanticError, match="shadows"):
            _analyze("int g; int main() { int g; return 0; }")

    def test_duplicate_global(self):
        with pytest.raises(SemanticError, match="duplicate global"):
            _analyze("int g; int g; int main() { return 0; }")

    def test_duplicate_function(self):
        with pytest.raises(SemanticError, match="duplicate definition"):
            _analyze("int f() { return 0; } int f() { return 1; } int main() { return 0; }")
