"""Tests for CFG utilities."""

import pytest

from repro.ir.cfg import (
    block_order,
    predecessors,
    reachable_blocks,
    reverse_postorder,
    successor_map,
    successors,
)
from repro.ir.parser import parse_function

DIAMOND = """
func f(1) returns {
entry:
  v0 = param 0
  blez v0, left
right:
  v1 = li 1
  j join
left:
  v1 = li 2
join:
  ret v1
}
"""


@pytest.fixture
def diamond():
    return parse_function(DIAMOND)


class TestSuccessors:
    def test_conditional_branch_has_two_successors(self, diamond):
        succ = successors(diamond, diamond.block("entry"))
        assert set(succ) == {"left", "right"}

    def test_jump_has_one_successor(self, diamond):
        assert successors(diamond, diamond.block("right")) == ["join"]

    def test_ret_has_none(self, diamond):
        assert successors(diamond, diamond.block("join")) == []

    def test_fallthrough(self, diamond):
        assert successors(diamond, diamond.block("left")) == ["join"]

    def test_branch_to_unknown_label_raises_in_predecessors(self):
        func = parse_function(
            """
func f(0) {
entry:
  j nowhere
}
"""
        )
        with pytest.raises(KeyError):
            predecessors(func)


class TestPredecessors:
    def test_join_has_both(self, diamond):
        preds = predecessors(diamond)
        assert set(preds["join"]) == {"left", "right"}
        assert preds["entry"] == []


class TestOrders:
    def test_rpo_starts_at_entry(self, diamond):
        rpo = reverse_postorder(diamond)
        assert rpo[0] == "entry"
        assert set(rpo) == {"entry", "left", "right", "join"}
        # join must come after both of its predecessors
        assert rpo.index("join") > rpo.index("left")
        assert rpo.index("join") > rpo.index("right")

    def test_unreachable_blocks_appended(self):
        func = parse_function(
            """
func f(0) {
entry:
  ret
island:
  ret
}
"""
        )
        rpo = reverse_postorder(func)
        assert rpo == ["entry", "island"]
        assert reachable_blocks(func) == {"entry"}

    def test_block_order(self, diamond):
        order = block_order(diamond)
        assert order["entry"] == 0
        assert order["join"] == 3

    def test_successor_map_covers_all_blocks(self, diamond):
        assert set(successor_map(diamond)) == {"entry", "left", "right", "join"}

    def test_loop_rpo(self, figure3):
        rpo = reverse_postorder(figure3)
        assert rpo[0] == "entry"
        assert rpo.index("loop") < rpo.index("skip")
