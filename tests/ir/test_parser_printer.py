"""Parser / printer round-trip tests (example-based and property-based)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode, OpKind, OPCODES
from repro.ir.parser import parse_instruction, parse_program
from repro.ir.printer import print_instruction, print_program
from repro.ir.registers import RegClass, virtual_reg


class TestInstructionRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "v0 = li 5",
            "v0 = li -5",
            "v0 = li @glob",
            "v1 = addu v0, v2",
            "v1 = addiu v0, -1",
            "v1 = sll v0, 2",
            "v1 = lw v0, 8",
            "sw v1, v0, 4",
            "vf1 = l.s v0, 0",
            "s.s vf1, v0, 0",
            "beq v0, v1, somewhere",
            "blez v0, somewhere",
            "j exit",
            "ret",
            "ret v0",
            "v0 = param 0",
            "v0 = call f(v1, v2)",
            "call f()",
            "vf0 = cp_to_comp v0",
            "v0 = cp_from_comp vf0",
            "vf2 = addu.a vf0, vf1",
            "bne.a vf0, vf1, top",
            "vf0 = li.s 1.5",
            "nop",
        ],
    )
    def test_roundtrip(self, text):
        instr = parse_instruction(text)
        assert print_instruction(instr) == text

    def test_unknown_opcode(self):
        with pytest.raises(ParseError):
            parse_instruction("v0 = bogus v1")

    def test_wrong_arity(self):
        with pytest.raises(ParseError):
            parse_instruction("v0 = addu v1")

    def test_bad_immediate(self):
        with pytest.raises(ParseError):
            parse_instruction("v0 = li banana")

    def test_comments_stripped(self):
        instr = parse_instruction("v0 = li 5 # hello")
        assert instr.imm == 5


class TestProgramRoundTrip:
    def test_program_roundtrip(self, vector_sum_program):
        text = print_program(vector_sum_program)
        again = parse_program(text)
        assert print_program(again) == text

    def test_globals_with_init(self):
        program = parse_program(
            """
global table 16 = 1 2 3 4

func main(0) {
entry:
  ret
}
"""
        )
        assert program.globals["table"].init == [1, 2, 3, 4]
        assert "= 1 2 3 4" in print_program(program)

    def test_unterminated_function(self):
        with pytest.raises(ParseError):
            parse_program("func main(0) {\nentry:\n  ret\n")

    def test_instruction_before_label(self):
        with pytest.raises(ParseError):
            parse_program("func main(0) {\n  ret\n}")

    def test_junk_at_top_level(self):
        with pytest.raises(ParseError):
            parse_program("hello world")


# property-based: synthesize ALU instructions and round-trip them
_ALU_OPS = [
    op
    for op, info in OPCODES.items()
    if info.kind in (OpKind.ALU, OpKind.MUL, OpKind.DIV) and info.n_uses >= 0
]


@st.composite
def alu_instruction(draw):
    op = draw(st.sampled_from(_ALU_OPS))
    info = OPCODES[op]
    rclass = RegClass.FP if info.fp_subsystem else RegClass.INT
    uses = [
        virtual_reg(draw(st.integers(0, 30)), rclass) for _ in range(info.n_uses)
    ]
    imm = None
    if info.has_imm:
        if op is Opcode.LI_S:
            imm = draw(st.floats(allow_nan=False, allow_infinity=False, width=32))
        else:
            imm = draw(st.integers(-(2**31), 2**31 - 1))
    dest_class = RegClass.FP if info.fp_subsystem else RegClass.INT
    if op in (Opcode.LI_S,):
        dest_class = RegClass.FP
    defs = [virtual_reg(draw(st.integers(0, 30)), dest_class)] if info.n_defs else []
    return Instruction(op, defs=defs, uses=uses, imm=imm)


@settings(max_examples=200)
@given(alu_instruction())
def test_alu_print_parse_roundtrip(instr):
    text = print_instruction(instr)
    parsed = parse_instruction(text)
    assert parsed.op is instr.op
    assert parsed.defs == instr.defs
    assert parsed.uses == instr.uses
    assert parsed.imm == instr.imm or (
        isinstance(instr.imm, float) and parsed.imm == pytest.approx(instr.imm)
    )
