"""Tests for the IR verifier."""

import pytest

from repro.errors import IRError
from repro.ir.parser import parse_function, parse_program
from repro.ir.verify import verify_function, verify_program


def _verify_text(text):
    verify_function(parse_function(text))


class TestStructure:
    def test_valid_function_passes(self, figure3):
        verify_function(figure3)

    def test_control_mid_block_rejected(self):
        with pytest.raises(IRError, match="mid-block"):
            _verify_text(
                """
func f(0) {
entry:
  j out
  v0 = li 1
out:
  ret
}
"""
            )

    def test_branch_to_unknown_label(self):
        with pytest.raises(IRError, match="unknown label"):
            _verify_text(
                """
func f(0) {
entry:
  v0 = li 1
  blez v0, nowhere
last:
  ret
}
"""
            )

    def test_param_count_mismatch(self):
        with pytest.raises(IRError, match="param"):
            _verify_text(
                """
func f(2) {
entry:
  v0 = param 0
  ret
}
"""
            )

    def test_param_outside_entry_block(self):
        with pytest.raises(IRError, match="outside the entry block"):
            _verify_text(
                """
func f(1) {
entry:
  v0 = param 0
  j next
next:
  v1 = param 0
  ret
}
"""
            )

    def test_writes_zero_rejected(self):
        with pytest.raises(IRError, match="zero"):
            _verify_text(
                """
func f(0) {
entry:
  $zero = li 1
  ret
}
"""
            )


class TestClassConstraints:
    def test_fpa_op_with_int_operand_rejected(self):
        with pytest.raises(IRError, match="FP-class"):
            _verify_text(
                """
func f(0) {
entry:
  v0 = li 1
  vf1 = addiu.a v0, 1
  ret
}
"""
            )

    def test_int_op_with_fp_operand_rejected(self):
        with pytest.raises(IRError, match="INT-class"):
            _verify_text(
                """
func f(0) {
entry:
  vf0 = li.a 1
  v1 = addiu vf0, 1
  ret
}
"""
            )

    def test_load_base_must_be_int(self):
        with pytest.raises(IRError, match="base must be INT"):
            _verify_text(
                """
func f(0) {
entry:
  vf0 = li.a 4096
  v1 = lw vf0, 0
  ret
}
"""
            )

    def test_ss_value_must_be_fp(self):
        with pytest.raises(IRError, match="FP-class"):
            _verify_text(
                """
func f(0) {
entry:
  v0 = li 4096
  v1 = li 3
  s.s v1, v0, 0
  ret
}
"""
            )

    def test_call_arguments_must_be_int(self):
        program = parse_program(
            """
func g(1) {
entry:
  v0 = param 0
  ret
}

func main(0) {
entry:
  vf0 = li.a 3
  call g(vf0)
  ret
}
"""
        )
        with pytest.raises(IRError, match="INT-class"):
            verify_program(program)

    def test_copy_direction_checked(self):
        with pytest.raises(IRError, match="cp_to_comp"):
            _verify_text(
                """
func f(0) {
entry:
  vf0 = li.a 1
  vf1 = cp_to_comp vf0
  ret
}
"""
            )


class TestProgramLevel:
    def test_missing_entry(self):
        program = parse_program(
            """
func helper(0) {
entry:
  ret
}
"""
        )
        with pytest.raises(IRError, match="entry"):
            verify_program(program)

    def test_call_to_unknown_function(self):
        program = parse_program(
            """
func main(0) {
entry:
  call ghost()
  ret
}
"""
        )
        with pytest.raises(IRError, match="unknown function"):
            verify_program(program)

    def test_call_arity_mismatch(self):
        program = parse_program(
            """
func g(2) {
entry:
  v0 = param 0
  v1 = param 1
  ret
}

func main(0) {
entry:
  v0 = li 1
  call g(v0)
  ret
}
"""
        )
        with pytest.raises(IRError, match="expected 2"):
            verify_program(program)

    def test_call_def_requires_returning_callee(self):
        program = parse_program(
            """
func g(0) {
entry:
  ret
}

func main(0) {
entry:
  v0 = call g()
  ret
}
"""
        )
        with pytest.raises(IRError, match="does not return"):
            verify_program(program)

    def test_unknown_global_reference(self):
        program = parse_program(
            """
func main(0) {
entry:
  v0 = li @ghost
  ret
}
"""
        )
        with pytest.raises(IRError, match="unknown global"):
            verify_program(program)

    def test_entry_with_params_rejected(self):
        program = parse_program(
            """
func main(1) {
entry:
  v0 = param 0
  ret
}
"""
        )
        with pytest.raises(IRError, match="no parameters"):
            verify_program(program)
