"""Tests for the Instruction container."""

import pytest

from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.registers import virtual_reg


def _add(d, a, b):
    return Instruction(Opcode.ADDU, defs=[d], uses=[a, b])


class TestInstruction:
    def test_identity_equality(self):
        """Same shape at two program points = two distinct RDG nodes."""
        a = _add(virtual_reg(0), virtual_reg(1), virtual_reg(2))
        b = _add(virtual_reg(0), virtual_reg(1), virtual_reg(2))
        assert a != b
        assert a == a

    def test_def_reg(self):
        instr = _add(virtual_reg(0), virtual_reg(1), virtual_reg(2))
        assert instr.def_reg == virtual_reg(0)
        assert Instruction(Opcode.NOP).def_reg is None

    def test_store_value_and_base(self):
        store = Instruction(
            Opcode.SW, uses=[virtual_reg(1), virtual_reg(2)], imm=4
        )
        assert store.store_value == virtual_reg(1)
        assert store.address_base == virtual_reg(2)

    def test_load_base(self):
        load = Instruction(Opcode.LW, defs=[virtual_reg(0)], uses=[virtual_reg(1)], imm=0)
        assert load.address_base == virtual_reg(1)

    def test_store_value_on_non_store_raises(self):
        with pytest.raises(ValueError):
            _add(virtual_reg(0), virtual_reg(1), virtual_reg(2)).store_value

    def test_address_base_on_alu_raises(self):
        with pytest.raises(ValueError):
            _add(virtual_reg(0), virtual_reg(1), virtual_reg(2)).address_base

    def test_is_control(self):
        assert Instruction(Opcode.J, target="x").is_control
        assert Instruction(Opcode.RET).is_control
        assert Instruction(
            Opcode.BNE, uses=[virtual_reg(0), virtual_reg(1)], target="x"
        ).is_control
        assert not Instruction(Opcode.CALL, target="f").is_control

    def test_is_memory(self):
        assert Instruction(Opcode.LW, defs=[virtual_reg(0)], uses=[virtual_reg(1)], imm=0).is_memory
        assert not Instruction(Opcode.NOP).is_memory

    def test_copy_is_detached(self):
        original = _add(virtual_reg(0), virtual_reg(1), virtual_reg(2))
        original.uid = 17
        clone = original.copy()
        assert clone.uid == -1
        assert clone.uses == original.uses
        clone.uses[0] = virtual_reg(9)
        assert original.uses[0] == virtual_reg(1)

    def test_replace_use_counts(self):
        reg = virtual_reg(1)
        instr = _add(virtual_reg(0), reg, reg)
        replaced = instr.replace_use(reg, virtual_reg(5))
        assert replaced == 2
        assert instr.uses == [virtual_reg(5), virtual_reg(5)]

    def test_replace_use_missing(self):
        instr = _add(virtual_reg(0), virtual_reg(1), virtual_reg(2))
        assert instr.replace_use(virtual_reg(9), virtual_reg(5)) == 0
