"""Tests for opcode metadata, especially the FPa extension set."""

import pytest

from repro.ir.opcodes import (
    FPA_OPCODES,
    Opcode,
    OpKind,
    OPCODES,
    fpa_twin,
    int_twin,
    is_offloadable,
    opcode_by_name,
)


class TestFpaExtension:
    def test_exactly_22_fpa_opcodes(self):
        """The paper used 22 extra opcodes (§1); we match that count."""
        assert len(FPA_OPCODES) == 22

    def test_every_fpa_opcode_has_an_integer_twin(self):
        for op in FPA_OPCODES:
            twin = int_twin(op)
            assert twin is not None, op
            assert fpa_twin(twin) is op

    def test_twins_preserve_operand_shape(self):
        for op in FPA_OPCODES:
            twin = int_twin(op)
            assert OPCODES[op].n_uses == OPCODES[twin].n_uses
            assert OPCODES[op].has_imm == OPCODES[twin].has_imm
            assert OPCODES[op].has_target == OPCODES[twin].has_target
            assert OPCODES[op].kind == OPCODES[twin].kind

    def test_integer_multiply_divide_not_offloadable(self):
        """The paper excludes mul/div from FPa (hardware cost)."""
        assert fpa_twin(Opcode.MULT) is None
        assert fpa_twin(Opcode.DIV) is None
        assert fpa_twin(Opcode.REM) is None

    def test_copies_are_not_counted_in_the_22(self):
        """cp_to/from_comp pre-exist in real ISAs (mtc1/mfc1)."""
        assert Opcode.CP_TO_COMP not in FPA_OPCODES
        assert Opcode.CP_FROM_COMP not in FPA_OPCODES

    def test_true_float_ops_are_not_fpa_extension(self):
        assert Opcode.ADD_S not in FPA_OPCODES
        assert Opcode.MUL_S not in FPA_OPCODES

    @pytest.mark.parametrize(
        "op", [Opcode.ADDU, Opcode.SLT, Opcode.SLL, Opcode.BEQ, Opcode.BLEZ, Opcode.LI]
    )
    def test_common_integer_ops_are_offloadable(self, op):
        assert is_offloadable(op)

    @pytest.mark.parametrize(
        "op", [Opcode.NOR, Opcode.SRLV, Opcode.ORI, Opcode.XORI, Opcode.LUI,
               Opcode.BGTZ, Opcode.BGEZ]
    )
    def test_uncovered_integer_ops_are_pinned(self, op):
        assert not is_offloadable(op)


class TestMetadata:
    def test_every_opcode_has_info(self):
        for op in Opcode:
            assert op in OPCODES

    def test_latencies(self):
        assert OPCODES[Opcode.MULT].latency == 6
        assert OPCODES[Opcode.DIV].latency == 12
        assert OPCODES[Opcode.ADDU].latency == 1
        assert OPCODES[Opcode.MUL_S].latency == 6
        assert OPCODES[Opcode.DIV_S].latency == 12

    def test_kind_classification(self):
        assert OPCODES[Opcode.LW].kind is OpKind.LOAD
        assert OPCODES[Opcode.SW].kind is OpKind.STORE
        assert OPCODES[Opcode.BNE].kind is OpKind.BRANCH
        assert OPCODES[Opcode.J].kind is OpKind.JUMP
        assert OPCODES[Opcode.CALL].kind is OpKind.CALL
        assert OPCODES[Opcode.CP_TO_COMP].kind is OpKind.COPY

    def test_subsystem_assignment(self):
        """Memory ops execute in INT even when their data is FP-class."""
        assert not OPCODES[Opcode.LS].fp_subsystem
        assert not OPCODES[Opcode.SS].fp_subsystem
        assert OPCODES[Opcode.ADDU_A].fp_subsystem
        assert OPCODES[Opcode.BNE_A].fp_subsystem
        assert OPCODES[Opcode.CP_FROM_COMP].fp_subsystem
        assert not OPCODES[Opcode.CP_TO_COMP].fp_subsystem

    def test_opcode_by_name_roundtrip(self):
        for op in Opcode:
            assert opcode_by_name(op.value) is op

    def test_opcode_by_name_unknown(self):
        with pytest.raises(KeyError):
            opcode_by_name("frobnicate")

    def test_str_is_mnemonic(self):
        assert str(Opcode.ADDU_A) == "addu.a"
