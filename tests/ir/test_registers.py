"""Tests for the register model."""

import pytest

from repro.ir.registers import (
    Reg,
    RegClass,
    ZERO,
    fp_reg,
    int_reg,
    parse_reg,
    virtual_reg,
)


class TestRegConstruction:
    def test_int_reg(self):
        reg = int_reg(5)
        assert reg.name == "$5"
        assert reg.rclass is RegClass.INT
        assert not reg.virtual

    def test_int_reg_zero_is_the_zero_register(self):
        assert int_reg(0) is ZERO

    def test_fp_reg(self):
        reg = fp_reg(4)
        assert reg.name == "$f4"
        assert reg.rclass is RegClass.FP

    def test_virtual_int(self):
        reg = virtual_reg(3)
        assert reg.name == "v3"
        assert reg.virtual

    def test_virtual_fp(self):
        reg = virtual_reg(3, RegClass.FP)
        assert reg.name == "vf3"
        assert reg.rclass is RegClass.FP

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValueError):
            int_reg(32)
        with pytest.raises(ValueError):
            fp_reg(-1)

    def test_regs_are_hashable_and_equal_by_value(self):
        assert virtual_reg(1) == virtual_reg(1)
        assert len({virtual_reg(1), virtual_reg(1), virtual_reg(2)}) == 2


class TestWithClass:
    def test_int_to_fp_renames(self):
        reg = virtual_reg(7)
        shadow = reg.with_class(RegClass.FP)
        assert shadow.name == "vf7"
        assert shadow.rclass is RegClass.FP

    def test_fp_to_int_renames(self):
        reg = virtual_reg(7, RegClass.FP)
        back = reg.with_class(RegClass.INT)
        assert back.name == "v7"

    def test_same_class_is_identity(self):
        reg = virtual_reg(2)
        assert reg.with_class(RegClass.INT) is reg

    def test_roundtrip(self):
        reg = virtual_reg(11)
        assert reg.with_class(RegClass.FP).with_class(RegClass.INT) == reg

    def test_physical_register_cannot_change_class(self):
        with pytest.raises(ValueError):
            int_reg(4).with_class(RegClass.FP)


class TestParseReg:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("$zero", ZERO),
            ("$0", ZERO),
            ("$7", int_reg(7)),
            ("$f3", fp_reg(3)),
            ("v9", virtual_reg(9)),
            ("vf9", virtual_reg(9, RegClass.FP)),
        ],
    )
    def test_parses(self, text, expected):
        assert parse_reg(text) == expected

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_reg("nope")

    def test_str_is_name(self):
        assert str(virtual_reg(3)) == "v3"
