"""Tests for IRBuilder."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.registers import RegClass
from repro.ir.verify import verify_function


def _builder(n_params=0, returns=False):
    func = Function("f", n_params=n_params, returns_value=returns)
    b = IRBuilder(func)
    b.set_block(b.new_block("entry"))
    return func, b


class TestBuilder:
    def test_minimal_function_verifies(self):
        func, b = _builder(returns=True)
        b.ret(b.li(42))
        verify_function(func)

    def test_params(self):
        func, b = _builder(n_params=2)
        b.param(0)
        b.param(1)
        b.ret()
        verify_function(func)

    def test_alu_dest_class_follows_opcode(self):
        _, b = _builder()
        x = b.li(1)
        y = b.emit_alu(Opcode.ADDIU, x, imm=1)
        assert y.rclass is RegClass.INT
        f = b.li_float(1.0)
        g = b.emit_alu(Opcode.ADD_S, f, f)
        assert g.rclass is RegClass.FP

    def test_emit_alu_rejects_wrong_arity(self):
        _, b = _builder()
        x = b.li(1)
        with pytest.raises(ValueError):
            b.emit_alu(Opcode.ADDU, x)  # needs two sources

    def test_emit_alu_requires_immediate(self):
        _, b = _builder()
        x = b.li(1)
        with pytest.raises(ValueError):
            b.emit_alu(Opcode.ADDIU, x)

    def test_emit_alu_rejects_non_alu(self):
        _, b = _builder()
        with pytest.raises(ValueError):
            b.emit_alu(Opcode.LW, b.li(0))

    def test_load_store(self):
        func, b = _builder()
        base = b.la("g")
        value = b.load(base, 4)
        b.store(value, base, 8)
        b.ret()
        ops = [i.op for i in func.instructions()]
        assert Opcode.LW in ops and Opcode.SW in ops

    def test_fp_load_gets_fp_dest(self):
        _, b = _builder()
        base = b.la("g")
        value = b.load(base, 0, Opcode.LS)
        assert value.rclass is RegClass.FP

    def test_cannot_append_after_terminator(self):
        _, b = _builder()
        b.ret()
        with pytest.raises(ValueError):
            b.li(1)

    def test_branch_arity_checked(self):
        _, b = _builder()
        x = b.li(0)
        with pytest.raises(ValueError):
            b.branch(Opcode.BEQ, x, target="entry")  # beq needs 2

    def test_call_returns_value_register(self):
        func, b = _builder()
        result = b.call("callee", [b.li(1)], returns_value=True)
        assert result is not None
        b.ret()

    def test_call_void(self):
        _, b = _builder()
        assert b.call("callee", [], returns_value=False) is None

    def test_move_preserves_class(self):
        _, b = _builder()
        f = b.li_float(2.0)
        moved = b.move(f)
        assert moved.rclass is RegClass.FP

    def test_no_block_set(self):
        func = Function("f")
        b = IRBuilder(func)
        with pytest.raises(ValueError):
            b.li(1)
