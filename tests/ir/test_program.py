"""Tests for the Program container and global layout."""

import pytest

from repro.ir.function import Function
from repro.ir.program import DATA_BASE, GlobalVar, Program


class TestGlobals:
    def test_layout_assigns_word_aligned_addresses(self):
        program = Program()
        program.add_global("a", 6)  # rounds to 8
        program.add_global("b", 4)
        program.layout()
        assert program.globals["a"].address == DATA_BASE
        assert program.globals["b"].address == DATA_BASE + 8
        assert program.globals["b"].address % 4 == 0

    def test_global_address_lazy_layout(self):
        program = Program()
        program.add_global("x", 4)
        assert program.global_address("x") == DATA_BASE

    def test_duplicate_global_rejected(self):
        program = Program()
        program.add_global("x", 4)
        with pytest.raises(ValueError):
            program.add_global("x", 4)

    def test_init_preserved(self):
        program = Program()
        var = program.add_global("t", 12, [1, 2, 3])
        assert var.init == [1, 2, 3]


class TestFunctions:
    def test_duplicate_function_rejected(self):
        program = Program()
        program.add_function(Function("f"))
        with pytest.raises(ValueError):
            program.add_function(Function("f"))

    def test_lookup_missing(self):
        with pytest.raises(KeyError):
            Program().function("ghost")

    def test_instruction_count_sums(self, vector_sum_program):
        total = sum(
            f.instruction_count() for f in vector_sum_program.functions.values()
        )
        assert vector_sum_program.instruction_count() == total


class TestLayoutInterop:
    def test_program_layout_pcs_unique_and_word_spaced(self, vector_sum_program):
        from repro.runtime.trace import ProgramLayout, TEXT_BASE

        layout = ProgramLayout(vector_sum_program)
        pcs = sorted(layout.pc_of.values())
        assert pcs[0] == TEXT_BASE
        assert len(set(pcs)) == len(pcs)
        assert all(b - a == 4 for a, b in zip(pcs, pcs[1:]))
        assert layout.text_size == 4 * len(pcs)
