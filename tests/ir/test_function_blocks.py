"""Tests for BasicBlock / Function containers."""

import pytest

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.registers import RegClass, virtual_reg


def _mk_func():
    func = Function("f")
    entry = func.new_block("entry")
    loop = func.new_block("loop")
    entry.instructions.append(func.attach(Instruction(Opcode.LI, defs=[virtual_reg(0)], imm=1)))
    loop.instructions.append(func.attach(Instruction(Opcode.J, target="loop")))
    return func


class TestBlocks:
    def test_terminator_detection(self):
        func = _mk_func()
        assert func.block("entry").terminator is None
        assert func.block("loop").terminator is not None

    def test_body_excludes_terminator(self):
        func = _mk_func()
        assert func.block("loop").body == []
        assert len(func.block("entry").body) == 1

    def test_len_and_iter(self):
        func = _mk_func()
        assert len(func.block("entry")) == 1
        assert list(func.block("entry"))[0].op is Opcode.LI


class TestFunction:
    def test_duplicate_label_rejected(self):
        func = Function("f")
        func.new_block("a")
        with pytest.raises(ValueError):
            func.new_block("a")

    def test_block_lookup(self):
        func = _mk_func()
        assert func.block("loop").label == "loop"
        with pytest.raises(KeyError):
            func.block("missing")
        assert func.block_index("loop") == 1

    def test_entry_requires_blocks(self):
        with pytest.raises(ValueError):
            Function("empty").entry

    def test_new_vreg_counter_never_collides_across_classes(self):
        """v<k> and vf<k> must never both be handed out: shadow renaming
        relies on the FP name of an INT vreg being unallocated."""
        func = Function("f")
        names = set()
        for i in range(20):
            rclass = RegClass.FP if i % 3 == 0 else RegClass.INT
            reg = func.new_vreg(rclass)
            names.add(reg.name)
            shadow = "vf" + reg.name.removeprefix("vf").removeprefix("v")
            assert shadow not in names or reg.name == shadow

    def test_attach_assigns_unique_uids(self):
        func = _mk_func()
        uids = [i.uid for i in func.instructions()]
        assert len(set(uids)) == len(uids)
        assert all(uid >= 0 for uid in uids)

    def test_renumber_dense_layout_order(self):
        func = _mk_func()
        func.renumber()
        assert [i.uid for i in func.instructions()] == [0, 1]

    def test_instruction_count(self):
        assert _mk_func().instruction_count() == 2

    def test_block_of_mapping(self):
        func = _mk_func()
        mapping = func.block_of()
        instrs = list(func.instructions())
        assert mapping[instrs[0].uid] == "entry"
        assert mapping[instrs[1].uid] == "loop"

    def test_params_sorted_by_index(self):
        func = Function("g", n_params=2)
        entry = func.new_block("entry")
        p1 = func.attach(Instruction(Opcode.PARAM, defs=[virtual_reg(1)], imm=1))
        p0 = func.attach(Instruction(Opcode.PARAM, defs=[virtual_reg(0)], imm=0))
        entry.instructions.extend([p1, p0])
        params = func.params()
        assert [p.imm for p in params] == [0, 1]
