"""Chaos tests: the bench harness under injected faults.

Each test injects one fault class (pipeline error, transient error,
worker crash, hang, corrupted cache entry, partition failure) and
asserts the failure is isolated: siblings finish with results identical
to a fault-free run, and the failed cell carries a usable error record.

Crash and hang tests need ``jobs >= 2`` / a ``timeout`` so the harness
takes the process-pool path — an in-process crash would take pytest
down with it.  Worker processes inherit ``REPRO_FAULTS`` through fork,
so ``monkeypatch.setenv`` reaches them.
"""

from __future__ import annotations

import pytest

from repro.bench.cache import ResultCache, cell_key
from repro.bench.harness import clear_memo, run_cells
from repro.bench.matrix import Cell
from repro.bench.results import result_to_dict
from repro.errors import PartitionError, ReproError
from repro.experiments.runner import DEGRADE_ENV, run_benchmark
from repro.faults import reset_faults
from repro.faults.inject import FAULTS_ENV

from tests.faults.conftest import SMALL


def small_cells(*specs) -> list[Cell]:
    """``("compress", "basic")``-style specs -> smoke-scale cells."""
    return [Cell(name, scheme, 4, SMALL[name]) for name, scheme in specs]


def fault_free_results(cells) -> dict[str, dict]:
    """key -> result dict for ``cells``, computed with no faults active."""
    clear_memo()
    reset_faults()
    outcomes = run_cells(cells)
    clear_memo()
    return {o.key: result_to_dict(o.unwrap()) for o in outcomes}


class TestErrorFaults:
    def test_injected_error_is_isolated(self, monkeypatch):
        cells = small_cells(("compress", "conventional"), ("m88ksim", "conventional"))
        expected = fault_free_results(cells)
        monkeypatch.setenv(FAULTS_ENV, "execute:error:match=m88ksim")
        reset_faults()
        good, bad = run_cells(cells)  # must not raise

        assert good.ok and bad.status == "failed"
        assert result_to_dict(good.result) == expected[good.key]
        assert bad.result is None
        assert bad.error.type == "FaultInjected"
        assert bad.error.stage == "execute"
        with pytest.raises(ReproError, match="m88ksim.*failed"):
            bad.unwrap()

    def test_transient_error_retried_to_success(self, monkeypatch):
        [cell] = small_cells(("compress", "conventional"))
        expected = fault_free_results([cell])
        monkeypatch.setenv(FAULTS_ENV, "execute:error:times=1")
        reset_faults()
        [outcome] = run_cells([cell], retries=1, backoff=0.0)
        assert outcome.ok
        assert outcome.attempts == 2
        assert result_to_dict(outcome.result) == expected[outcome.key]

    def test_exhausted_retries_record_attempt_count(self, monkeypatch):
        [cell] = small_cells(("compress", "conventional"))
        monkeypatch.setenv(FAULTS_ENV, "execute:error")  # permanent fault
        [outcome] = run_cells([cell], retries=2, backoff=0.0)
        assert outcome.status == "failed"
        assert outcome.attempts == 3

    def test_failed_cell_leaves_no_partial_state(self, monkeypatch, tmp_path):
        """A failed cell must not leak into the memo or the disk cache."""
        from repro.bench import harness

        cells = small_cells(("compress", "conventional"), ("m88ksim", "conventional"))
        cache = ResultCache(tmp_path / "cache")
        monkeypatch.setenv(FAULTS_ENV, "simulate:error:match=m88ksim")
        good, bad = run_cells(cells, cache=cache)
        assert good.ok and not bad.ok
        assert bad.key not in harness._MEMO
        assert cache.get(bad.key) is None
        assert good.key in harness._MEMO
        assert cache.get(good.key) is not None


class TestCrashFaults:
    def test_worker_crash_is_contained_and_attributed(self, monkeypatch):
        cells = small_cells(
            ("compress", "conventional"),
            ("compress", "basic"),
            ("m88ksim", "conventional"),
        )
        expected = fault_free_results(cells)
        monkeypatch.setenv(FAULTS_ENV, "execute:crash:match=m88ksim")
        reset_faults()
        outcomes = run_cells(cells, jobs=2, retries=1, backoff=0.05)

        by_workload = {}
        for outcome in outcomes:
            by_workload.setdefault(outcome.cell.workload, []).append(outcome)
        for outcome in by_workload["compress"]:
            assert outcome.ok, outcome.error
            assert result_to_dict(outcome.result) == expected[outcome.key]
            # innocents sharing a pool with a crasher are requeued but
            # never charged an attempt by association
            assert outcome.attempts == 1
        [crashed] = by_workload["m88ksim"]
        assert crashed.status == "failed"
        assert crashed.error.type == "BrokenProcessPool"
        assert crashed.attempts == 2


class TestHangFaults:
    def test_hang_past_timeout_is_killed_and_recorded(self, monkeypatch):
        cells = small_cells(("compress", "conventional"), ("m88ksim", "conventional"))
        expected = fault_free_results(cells)
        monkeypatch.setenv(FAULTS_ENV, "simulate:hang:secs=120:match=m88ksim")
        reset_faults()
        good, hung = run_cells(cells, jobs=2, timeout=4.0, retries=0)

        assert good.ok
        assert result_to_dict(good.result) == expected[good.key]
        assert hung.status == "timeout"
        assert hung.error.type == "Timeout"
        assert "4" in hung.error.message


class TestCorruptCache:
    def test_corrupt_entry_costs_a_recompute_never_a_crash(
        self, monkeypatch, tmp_path
    ):
        [cell] = small_cells(("compress", "basic"))
        cache = ResultCache(tmp_path / "cache")
        [first] = run_cells([cell], cache=cache)
        assert first.source == "computed"
        clear_memo()

        monkeypatch.setenv(FAULTS_ENV, "cache.get:corrupt")
        reset_faults()
        [second] = run_cells([cell], cache=cache)
        assert second.ok
        assert second.cached is False  # scrambled entry was not trusted
        assert second.source == "computed"
        assert result_to_dict(second.result) == result_to_dict(first.result)


class TestGracefulDegradation:
    def test_advanced_falls_back_to_basic_when_opted_in(self, monkeypatch):
        scale = SMALL["compress"]
        basic = run_benchmark("compress", "basic", scale=scale)

        monkeypatch.setenv(FAULTS_ENV, "partition:error:type=PartitionError")
        monkeypatch.setenv(DEGRADE_ENV, "1")
        reset_faults()
        degraded = run_benchmark("compress", "advanced", scale=scale)
        assert degraded.degraded is True
        assert degraded.scheme == "advanced"  # records what was requested
        assert degraded.cycles == basic.cycles
        assert degraded.checksum == basic.checksum

    def test_without_opt_in_partition_failure_propagates(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "partition:error:type=PartitionError")
        with pytest.raises(PartitionError):
            run_benchmark("compress", "advanced", scale=SMALL["compress"])

    def test_basic_scheme_never_degrades(self, monkeypatch):
        """Degradation is an advanced-scheme substitution only."""
        monkeypatch.setenv(FAULTS_ENV, "partition:error:type=PartitionError")
        monkeypatch.setenv(DEGRADE_ENV, "1")
        with pytest.raises(PartitionError):
            run_benchmark("compress", "basic", scale=SMALL["compress"])

    def test_degraded_flag_survives_the_harness_round_trip(self, monkeypatch):
        [cell] = small_cells(("compress", "advanced"))
        monkeypatch.setenv(FAULTS_ENV, "partition:error:type=PartitionError")
        monkeypatch.setenv(DEGRADE_ENV, "1")
        reset_faults()
        [outcome] = run_cells([cell])
        assert outcome.ok
        doc = result_to_dict(outcome.result)
        assert doc["degraded"] is True
