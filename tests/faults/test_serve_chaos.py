"""Chaos tests: the serve daemon under worker crashes, hangs and
corrupted caches, with many concurrent clients.

The acceptance bar (mirrors the batch-harness chaos suite, lifted to
the service level):

* healthy requests return results **bit-identical** to the serial,
  fault-free pipeline, no matter what is failing around them;
* the daemon process never dies — a crash fault kills a forked pool
  worker, and ``/healthz`` stays green throughout;
* SIGTERM drains within the grace period and the process exits 0;
* the shared circuit breaker opens for a consistently-crashing family
  and answers 503 to *every* client, while other families keep serving.

The daemon runs ``--chaos`` with ``REPRO_FAULTS`` in its environment:
``execute:crash`` faults fire inside pool workers (each fresh fork
inherits an unfired budget, so the crashing family fails on every
attempt), and ``cache.get``/``trace_pack`` corruption exercises the
read-validation fallbacks under concurrent traffic.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.bench.results import result_to_dict
from repro.experiments.runner import run_benchmark
from repro.serve.client import ServeClient

from tests.faults.conftest import SMALL

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Workers crash on every m88ksim execution; cache/trace reads are
#: corrupted half the time.  compress must be completely unaffected.
CHAOS_SPEC = (
    "seed=11;"
    "execute:crash:match=m88ksim;"
    "cache.get:corrupt:p=0.5;"
    "trace_pack:corrupt:p=0.5"
)

CLIENTS = 8
SCHEMES = ("conventional", "basic", "advanced")


@pytest.fixture(scope="module")
def chaos_daemon(tmp_path_factory):
    """A ``repro serve`` subprocess with the chaos spec active."""
    tmp = tmp_path_factory.mktemp("serve-chaos")
    port_file = tmp / "port"
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env["REPRO_FAULTS"] = CHAOS_SPEC
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--port-file", str(port_file),
            "--workers", "2", "--queue-depth", "16",
            "--retries", "1", "--breaker-threshold", "3",
            "--timeout", "30", "--hard-timeout", "90",
            "--drain-grace", "20", "--chaos", "--quiet",
            "--cache-dir", str(tmp / "cache"),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline and not port_file.exists():
        assert process.poll() is None, (
            "daemon died at startup: "
            + process.stderr.read().decode(errors="replace")
        )
        time.sleep(0.05)
    assert port_file.exists(), "daemon never wrote its port file"
    port = int(port_file.read_text().strip())
    client = ServeClient("127.0.0.1", port, timeout=120.0)
    assert client.wait_ready(15.0), "daemon never became ready"
    yield process, client
    if process.poll() is None:
        process.kill()
        process.wait(timeout=10.0)


def _expected_results() -> dict[str, dict]:
    """scheme -> fault-free serial result for the healthy workload."""
    from repro.bench.harness import clear_memo
    from repro.faults import reset_faults

    clear_memo()
    reset_faults()
    expected = {
        scheme: result_to_dict(
            run_benchmark("compress", scheme, width=4, scale=SMALL["compress"])
        )
        for scheme in SCHEMES
    }
    clear_memo()
    return expected


class TestServeChaos:
    def test_concurrent_clients_survive_crashes_and_corruption(
        self, chaos_daemon
    ):
        process, client = chaos_daemon
        expected = _expected_results()
        responses: list[tuple[str, object]] = []
        lock = threading.Lock()

        def client_worker(index: int) -> None:
            # each client issues three requests: two healthy compress
            # cells and one from the crash-poisoned m88ksim family
            plan = [
                ("compress", SCHEMES[index % 3]),
                ("m88ksim", SCHEMES[(index + 1) % 3]),
                ("compress", SCHEMES[(index + 2) % 3]),
            ]
            for workload, scheme in plan:
                response = client.post(
                    "bench-cell",
                    {
                        "workload": workload,
                        "scheme": scheme,
                        "width": 4,
                        "scale": SMALL[workload],
                    },
                )
                with lock:
                    responses.append((workload, response))

        threads = [
            threading.Thread(target=client_worker, args=(i,), daemon=True)
            for i in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        health_failures = 0
        while any(t.is_alive() for t in threads):
            # liveness stays green under fire
            if client.healthz().status != 200:
                health_failures += 1
            time.sleep(0.25)
        for thread in threads:
            thread.join(timeout=120.0)

        assert health_failures == 0
        assert len(responses) == CLIENTS * 3
        compress = [r for w, r in responses if w == "compress"]
        m88ksim = [r for w, r in responses if w == "m88ksim"]
        # every healthy request answered 200 with the bit-identical
        # serial result, despite crashes and corrupt cache reads nearby
        assert all(r.status == 200 for r in compress)
        for response in compress:
            scheme = response.body["scheme"]
            assert response.body["result"] == expected[scheme], (
                f"divergent result for compress/{scheme}"
            )
        # the poisoned family failed *as data*: the daemon reported
        # each failure (worker crash or open breaker), never died
        assert all(r.status in (500, 503) for r in m88ksim)
        assert any(
            r.error_type in ("BrokenProcessPool", "CircuitOpen")
            for r in m88ksim
        )
        assert process.poll() is None, "daemon process died under chaos"

    def test_stats_expose_breakers_and_failures(self, chaos_daemon):
        process, client = chaos_daemon
        stats = client.stats()
        counters = stats["counters"]
        assert counters["accepted"] >= CLIENTS * 3
        assert counters["failed"] >= 1
        assert counters["completed"] >= 1
        # the crashing family's breaker is visible to every client
        breakers = stats["breakers"]
        assert any("m88ksim" in family for family in breakers)

    def test_breaker_opens_for_crashing_family(self, chaos_daemon):
        process, client = chaos_daemon
        # hammer one family sequentially (coalescing dedups concurrent
        # identical requests, so the parallel phase alone may not reach
        # the threshold); after 3 consecutive failures the breaker opens
        payload = {"workload": "m88ksim", "scheme": "basic", "width": 4,
                   "scale": SMALL["m88ksim"]}
        hammered = [client.post("bench-cell", payload) for _ in range(4)]
        assert all(r.status in (500, 503) for r in hammered)
        assert hammered[-1].error_type == "CircuitOpen", (
            "breaker never opened: "
            + str([r.error_type for r in hammered])
        )
        # open means fail-fast: no pool spawn, answered in milliseconds
        assert hammered[-1].seconds < 1.0
        # a healthy family still serves
        ok = client.post(
            "bench-cell",
            {"workload": "compress", "scheme": "basic", "width": 4,
             "scale": SMALL["compress"]},
        )
        assert ok.status == 200

    def test_sigterm_drains_cleanly(self, chaos_daemon):
        process, client = chaos_daemon
        assert client.healthz().status == 200
        process.send_signal(signal.SIGTERM)
        try:
            returncode = process.wait(timeout=40.0)
        except subprocess.TimeoutExpired:
            process.kill()
            pytest.fail("daemon did not drain within the grace period")
        assert returncode == 0, (
            "drain exited non-zero: "
            + process.stderr.read().decode(errors="replace")
        )
