"""Injector semantics: activation, determinism, budgets, fault actions."""

from __future__ import annotations

import time

import pytest

from repro.errors import FaultInjected, PartitionError
from repro.faults import (
    FaultInjector,
    active_injector,
    corrupt_point,
    fault_point,
    parse_spec,
    reset_faults,
)
from repro.faults.inject import FAULTS_ENV


class TestActivation:
    def test_no_env_means_no_injector(self):
        assert active_injector() is None
        fault_point("execute", "anything")  # must be a no-op

    @pytest.mark.parametrize("value", ["", "  ", "0"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(FAULTS_ENV, value)
        assert active_injector() is None

    def test_injector_cached_on_spec_text(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "execute:error")
        first = active_injector()
        assert first is active_injector()  # same text -> same injector
        monkeypatch.setenv(FAULTS_ENV, "simulate:error")
        second = active_injector()
        assert second is not first
        assert second.plan.clauses[0].site == "simulate"

    def test_reset_faults_drops_state(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "execute:error:times=1")
        with pytest.raises(FaultInjected):
            fault_point("execute")
        fault_point("execute")  # budget spent: no longer fires
        reset_faults()
        with pytest.raises(FaultInjected):  # fresh budget after reset
            fault_point("execute")


class TestSelect:
    def test_match_filters_on_label_substring(self):
        injector = FaultInjector(parse_spec("execute:error:match=m88ksim"))
        assert injector.select("execute", "compress") is None
        assert injector.select("execute", "m88ksim") is not None

    def test_site_must_match(self):
        injector = FaultInjector(parse_spec("execute:error"))
        assert injector.select("simulate", "x") is None
        assert injector.select("execute", "x") is not None

    def test_times_budget_is_consumed(self):
        injector = FaultInjector(parse_spec("execute:error:times=2"))
        assert injector.select("execute") is not None
        assert injector.select("execute") is not None
        assert injector.select("execute") is None

    def test_fault_kinds_do_not_burn_corrupt_budget(self):
        """A ``corrupt`` clause must not spend its budget at a
        ``fault_point`` (which ignores corruption), and vice versa."""
        injector = FaultInjector(parse_spec("cache.get:corrupt:times=1"))
        assert injector.select("cache.get", corrupt=False) is None
        assert injector.select("cache.get", corrupt=True) is not None
        assert injector.select("cache.get", corrupt=True) is None

    def test_probability_stream_is_seed_deterministic(self):
        spec = "seed=7;execute:error:p=0.5"
        one = FaultInjector(parse_spec(spec))
        two = FaultInjector(parse_spec(spec))
        pattern_one = [one.select("execute") is not None for _ in range(64)]
        pattern_two = [two.select("execute") is not None for _ in range(64)]
        assert pattern_one == pattern_two  # same seed -> same decisions
        assert any(pattern_one) and not all(pattern_one)
        other_seed = FaultInjector(parse_spec("seed=8;execute:error:p=0.5"))
        pattern_other = [
            other_seed.select("execute") is not None for _ in range(64)
        ]
        assert pattern_one != pattern_other


class TestFaultActions:
    def test_error_raises_fault_injected_with_site(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "partition:error")
        with pytest.raises(FaultInjected) as excinfo:
            fault_point("partition", "compress")
        assert excinfo.value.site == "partition"
        assert excinfo.value.stage == "partition"
        assert "compress" in str(excinfo.value)

    def test_error_raises_requested_repro_error(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "partition:error:type=PartitionError")
        with pytest.raises(PartitionError):
            fault_point("partition")

    def test_hang_sleeps_for_secs(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "simulate:hang:secs=0.05")
        start = time.perf_counter()
        fault_point("simulate")
        assert time.perf_counter() - start >= 0.05

    def test_corrupt_point_scrambles_payload_not_envelope(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "cache.get:corrupt")
        entry = {"key": "abc", "cache_schema": 1, "result": {"cycles": 9}}
        corrupted = corrupt_point("cache.get", entry)
        assert corrupted["key"] == "abc"  # envelope intact
        assert corrupted["result"] == {"__corrupted__": True}
        assert entry["result"] == {"cycles": 9}  # caller's dict untouched

    def test_corrupt_point_passthrough_without_fault(self):
        entry = {"result": 1}
        assert corrupt_point("cache.get", entry) is entry

    def test_fault_point_ignores_corrupt_clauses(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "cache.get:corrupt")
        fault_point("cache.get")  # must not raise, hang or crash
