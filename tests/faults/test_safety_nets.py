"""The pipeline's own resource safety nets (no injection involved).

``FuelExhausted`` (interpreter dynamic-instruction budget) and
``SimulationError`` (timing-simulator cycle limit) are the two guards
against a runaway cell.  Beyond firing, they must fail *cleanly*: a
tripped cell leaves no partial statistics in the memo or on disk.
"""

from __future__ import annotations

import pytest

from repro.bench.cache import ResultCache
from repro.bench.harness import run_cells
from repro.bench.matrix import Cell
from repro.errors import ExecutionError, FuelExhausted, ReproError, SimulationError
from repro.runtime.interp import run_program
from repro.sim.config import four_way
from repro.sim.pipeline import TimingSimulator
from repro.workloads import compile_workload

from tests.faults.conftest import SMALL


class TestFuelExhausted:
    def test_fuel_limit_trips(self):
        program = compile_workload("compress", SMALL["compress"])
        with pytest.raises(FuelExhausted, match="fuel"):
            run_program(program, fuel=10)

    def test_is_an_execution_error_with_its_own_exit_code(self):
        assert issubclass(FuelExhausted, ExecutionError)
        assert FuelExhausted.exit_code != ExecutionError.exit_code
        assert FuelExhausted.stage == "execute"

    def test_sufficient_fuel_is_untouched(self):
        program = compile_workload("compress", SMALL["compress"])
        result = run_program(program)
        assert result.instructions > 10  # the tiny budget above was real


class TestSimulationCycleLimit:
    def test_cycle_limit_trips(self):
        program = compile_workload("compress", SMALL["compress"])
        trace = run_program(program, collect_trace=True).trace
        simulator = TimingSimulator(four_way())
        with pytest.raises(SimulationError):
            simulator.run(trace, max_cycles=1)
        assert SimulationError.stage == "simulate"


class TestNoPartialStateOnTrip:
    def test_tripped_cell_leaks_nothing(self, monkeypatch, tmp_path):
        """A cell failing mid-pipeline must leave memo and disk cache as
        if it had never run, while its sibling lands normally."""
        from repro.bench import harness

        monkeypatch.setenv(
            "REPRO_FAULTS", "simulate:error:type=SimulationError:match=m88ksim"
        )
        cells = [
            Cell("compress", "conventional", 4, SMALL["compress"]),
            Cell("m88ksim", "conventional", 4, SMALL["m88ksim"]),
        ]
        cache = ResultCache(tmp_path / "cache")
        good, bad = run_cells(cells, cache=cache)

        assert good.ok and bad.status == "failed"
        assert bad.error.type == "SimulationError"
        assert bad.error.stage == "simulate"
        assert bad.result is None
        assert bad.key not in harness._MEMO
        assert cache.get(bad.key) is None
        assert good.key in harness._MEMO
        assert cache.get(good.key) is not None
        with pytest.raises(ReproError):
            bad.unwrap()
