"""Chaos tests: the ``trace_pack`` fault site.

The packed-trace store is a trust boundary: its contents can rot on
disk (``corrupt`` flips raw bytes before the decoder sees them) and its
read path can fail outright (``error``).  Corruption must cost a silent
re-interpretation — never a wrong result, never contamination of a
sibling cell — while read-path errors behave like any pipeline fault:
captured per cell, retryable, isolated.

The site only fires when ``REPRO_TRACE_CACHE`` is active: without the
opt-in nothing reads packs from disk, so there is nothing to corrupt.
"""

from __future__ import annotations

from repro.bench.harness import clear_memo, run_cells
from repro.bench.matrix import Cell
from repro.bench.results import result_to_dict
from repro.experiments.runner import run_benchmark
from repro.faults import corrupt_point, reset_faults
from repro.faults.inject import FAULTS_ENV
from repro.trace.store import TRACE_CACHE_ENV, TraceStore, clear_trace_pool

from tests.faults.conftest import SMALL


def _seed_store(monkeypatch, tmp_path, name="compress", scheme="conventional"):
    """Run one cell with the trace store on; returns its fault-free result."""
    monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
    result = run_benchmark(name, scheme, scale=SMALL[name])
    clear_memo()
    clear_trace_pool()
    reset_faults()
    return result


class TestCorruptBytes:
    def test_corrupt_point_flips_bytes_deterministically(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "trace_pack:corrupt")
        reset_faults()
        data = bytes(range(64))
        out = corrupt_point("trace_pack", data)
        again_injector_state = corrupt_point("trace_pack", data)
        assert out != data and len(out) == len(data)
        assert out == again_injector_state  # same clause, same flips
        assert corrupt_point("trace_pack", b"") == b""

    def test_corrupt_pack_costs_reinterpretation_not_wrongness(
        self, monkeypatch, tmp_path
    ):
        fresh = _seed_store(monkeypatch, tmp_path)
        monkeypatch.setenv(FAULTS_ENV, "trace_pack:corrupt:times=1")
        again = run_benchmark("compress", "conventional", scale=SMALL["compress"])
        assert again.checksum == fresh.checksum
        assert again.stats.to_counters() == fresh.stats.to_counters()

    def test_no_sibling_contamination(self, monkeypatch, tmp_path):
        """A corrupt compress pack must not perturb the m88ksim cells."""
        cells = [
            Cell("compress", "conventional", 4, SMALL["compress"]),
            Cell("compress", "basic", 4, SMALL["compress"]),
            Cell("m88ksim", "conventional", 4, SMALL["m88ksim"]),
            Cell("m88ksim", "basic", 4, SMALL["m88ksim"]),
        ]
        monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
        clean = {
            o.key: result_to_dict(o.result) for o in run_cells(cells)
        }
        clear_memo()
        clear_trace_pool()
        reset_faults()

        monkeypatch.setenv(FAULTS_ENV, "trace_pack:corrupt:match=compress")
        outcomes = run_cells(cells)
        assert all(o.ok for o in outcomes)
        for outcome in outcomes:
            assert result_to_dict(outcome.result) == clean[outcome.key]


class TestReadPathErrors:
    def test_error_is_captured_and_attributed(self, monkeypatch, tmp_path):
        _seed_store(monkeypatch, tmp_path)
        monkeypatch.setenv(FAULTS_ENV, "trace_pack:error")
        [outcome] = run_cells(
            [Cell("compress", "conventional", 4, SMALL["compress"])]
        )
        assert outcome.status == "failed"
        assert outcome.error is not None
        assert outcome.error.type == "FaultInjected"
        assert outcome.error.stage == "trace_pack"

    def test_transient_error_survives_a_retry(self, monkeypatch, tmp_path):
        fresh = _seed_store(monkeypatch, tmp_path)
        monkeypatch.setenv(FAULTS_ENV, "trace_pack:error:times=1")
        [outcome] = run_cells(
            [Cell("compress", "conventional", 4, SMALL["compress"])],
            retries=1,
            backoff=0.0,
        )
        assert outcome.ok and outcome.attempts == 2
        assert result_to_dict(outcome.result) == result_to_dict(fresh)

    def test_site_is_dormant_without_the_store(self, monkeypatch):
        """No REPRO_TRACE_CACHE, no disk reads: the clause never fires."""
        monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
        monkeypatch.setenv(FAULTS_ENV, "trace_pack:error")
        result = run_benchmark("compress", "conventional", scale=SMALL["compress"])
        assert result.cycles > 0


class TestStoreStateAfterChaos:
    def test_fallback_repairs_the_store(self, monkeypatch, tmp_path):
        """After a corrupt read, the re-interpreted pack is re-published
        and the next (fault-free) run replays it cleanly."""
        fresh = _seed_store(monkeypatch, tmp_path)
        monkeypatch.setenv(FAULTS_ENV, "trace_pack:corrupt:times=1")
        run_benchmark("compress", "conventional", scale=SMALL["compress"])
        clear_memo()
        clear_trace_pool()
        monkeypatch.delenv(FAULTS_ENV)
        reset_faults()

        again = run_benchmark("compress", "conventional", scale=SMALL["compress"])
        assert again.stats.to_counters() == fresh.stats.to_counters()
        # the repaired pack on disk decodes cleanly
        store = TraceStore(tmp_path)
        from repro.trace.store import trace_key

        assert store.get(
            trace_key("compress", "conventional", SMALL["compress"])
        ) is not None
