"""Shared fixtures for the chaos (fault-injection) tests.

Every test starts with no fault spec, no degradation opt-in, an empty
in-process memo and a fresh injector, so firing budgets and RNG streams
never leak between tests.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import clear_memo
from repro.checkpoint import CKPT_CYCLES_ENV, CKPT_DIR_ENV
from repro.experiments.runner import DEGRADE_ENV
from repro.faults import reset_faults
from repro.faults.inject import FAULTS_ENV
from repro.trace.store import TRACE_CACHE_ENV, clear_trace_pool


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.delenv(DEGRADE_ENV, raising=False)
    monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
    monkeypatch.delenv(CKPT_CYCLES_ENV, raising=False)
    monkeypatch.delenv(CKPT_DIR_ENV, raising=False)
    clear_memo()
    clear_trace_pool()
    reset_faults()
    yield
    clear_memo()
    clear_trace_pool()
    reset_faults()


#: Small, fast workloads (sub-second cells) used throughout.
SMALL = {"compress": 150, "m88ksim": 2}
