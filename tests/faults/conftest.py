"""Shared fixtures for the chaos (fault-injection) tests.

Every test starts with no fault spec, no degradation opt-in, an empty
in-process memo and a fresh injector, so firing budgets and RNG streams
never leak between tests.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import clear_memo
from repro.experiments.runner import DEGRADE_ENV
from repro.faults import reset_faults
from repro.faults.inject import FAULTS_ENV


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.delenv(DEGRADE_ENV, raising=False)
    clear_memo()
    reset_faults()
    yield
    clear_memo()
    reset_faults()


#: Small, fast workloads (sub-second cells) used throughout.
SMALL = {"compress": 150, "m88ksim": 2}
