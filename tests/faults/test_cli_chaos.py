"""``repro bench`` end-to-end under injected faults.

The acceptance story: for every fault class the sweep still exits per
the ``--max-failures`` gate and writes a *partial but valid* BENCH
document — the failed cell in ``failures``, every surviving cell
bit-identical to a fault-free run — and ``--resume`` recomputes only
what the interrupted run had not finished.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.__main__ import main
from repro.bench.harness import clear_memo
from repro.bench.results import load_document, validate_document
from repro.errors import EXIT_BENCH_FAILURES
from repro.experiments.runner import DEGRADE_ENV
from repro.faults import reset_faults
from repro.faults.inject import FAULTS_ENV


def bench(env, *extra) -> int:
    return main(
        [
            "bench",
            "--suite",
            "smoke",
            "--quiet",
            "--cache-dir",
            env["cache"],
            "-o",
            env["out"],
            *extra,
        ]
    )


@pytest.fixture
def env(tmp_path):
    return {
        "out": str(tmp_path / "BENCH_smoke.json"),
        "cache": str(tmp_path / "cache"),
        "tmp": tmp_path,
    }


def result_payloads(doc) -> dict[tuple, dict]:
    return {
        (c["workload"], c["scheme"], c["width"], c["scale"]): c["result"]
        for c in doc["cells"]
    }


class TestCrashGateAndResume:
    def test_crash_partial_document_then_resume(self, monkeypatch, env, tmp_path):
        # fault-free reference run (separate cache so nothing is shared)
        clean_out = str(tmp_path / "BENCH_clean.json")
        assert (
            bench(env, "-o", clean_out, "--cache-dir", str(tmp_path / "c0")) == 0
        )
        clean = result_payloads(load_document(clean_out))
        clear_memo()

        # every m88ksim worker dies: gate must fire, siblings must survive
        monkeypatch.setenv(FAULTS_ENV, "execute:crash:match=m88ksim")
        reset_faults()
        code = bench(env, "--jobs", "2", "--retries", "1", "--backoff", "0.05")
        assert code == EXIT_BENCH_FAILURES

        doc = load_document(env["out"])
        validate_document(doc)  # partial documents still validate
        assert {c["workload"] for c in doc["cells"]} == {"compress"}
        assert len(doc["cells"]) == 3
        assert len(doc["failures"]) == 3
        for failure in doc["failures"]:
            assert failure["workload"] == "m88ksim"
            assert failure["status"] == "failed"
            assert failure["error"]["type"] == "BrokenProcessPool"
            assert "result" not in failure
        # surviving cells are bit-identical to the fault-free run
        survived = result_payloads(doc)
        assert survived == {k: v for k, v in clean.items() if k in survived}
        journal = env["out"] + ".journal"
        assert os.path.exists(journal)  # kept for --resume

        # clear the fault and resume: only the crashed cells recompute
        monkeypatch.delenv(FAULTS_ENV)
        reset_faults()
        clear_memo()
        assert bench(env, "--resume") == 0
        resumed = load_document(env["out"])
        validate_document(resumed)
        assert len(resumed["cells"]) == 6
        assert resumed["failures"] == []
        sources = {
            (c["workload"], c["scheme"]): c["source"] for c in resumed["cells"]
        }
        for scheme in ("conventional", "basic", "advanced"):
            assert sources[("compress", scheme)] == "journal"
            assert sources[("m88ksim", scheme)] != "journal"
        assert result_payloads(resumed) == clean
        assert not os.path.exists(journal)  # clean completion removes it


class TestPartitionFailureGate:
    def test_max_failures_gate_levels(self, monkeypatch, env):
        """Advanced-partition failure: basic+advanced m88ksim cells fail
        (conventional skips partitioning) and the gate counts exactly 2."""
        monkeypatch.setenv(
            FAULTS_ENV, "partition:error:type=PartitionError:match=m88ksim"
        )
        assert bench(env, "--retries", "0", "--max-failures", "1") == (
            EXIT_BENCH_FAILURES
        )
        doc = load_document(env["out"])
        validate_document(doc)
        assert len(doc["failures"]) == 2
        for failure in doc["failures"]:
            assert failure["error"]["type"] == "PartitionError"
            assert failure["error"]["stage"] == "partition"

        # same failures under a permissive gate: exit 0
        clear_memo()
        reset_faults()
        assert bench(env, "--retries", "0", "--max-failures", "2") == 0

    def test_degradation_keeps_the_sweep_green(self, monkeypatch, env):
        monkeypatch.setenv(
            FAULTS_ENV,
            "partition:error:type=PartitionError:match=m88ksim/advanced",
        )
        monkeypatch.setenv(DEGRADE_ENV, "1")
        assert bench(env, "--retries", "0") == 0
        doc = load_document(env["out"])
        assert doc["failures"] == []
        degraded = {
            (c["workload"], c["scheme"]): c["result"]["degraded"]
            for c in doc["cells"]
        }
        assert degraded[("m88ksim", "advanced")] is True
        assert degraded[("m88ksim", "conventional")] is False
        assert degraded[("compress", "advanced")] is False
        # the substituted result equals the basic-scheme cell
        cells = {(c["workload"], c["scheme"]): c["result"] for c in doc["cells"]}
        assert (
            cells[("m88ksim", "advanced")]["cycles"]
            == cells[("m88ksim", "basic")]["cycles"]
        )


class TestHangGate:
    def test_hung_cell_times_out_and_gates(self, monkeypatch, env):
        monkeypatch.setenv(
            FAULTS_ENV, "simulate:hang:secs=120:match=m88ksim"
        )
        code = bench(
            env, "--jobs", "2", "--timeout", "4", "--retries", "0"
        )
        assert code == EXIT_BENCH_FAILURES
        doc = load_document(env["out"])
        validate_document(doc)
        assert {f["workload"] for f in doc["failures"]} == {"m88ksim"}
        assert {f["status"] for f in doc["failures"]} == {"timeout"}
        assert {c["workload"] for c in doc["cells"]} == {"compress"}


class TestCorruptCacheCli:
    def test_corrupt_cache_entries_recompute_identically(self, monkeypatch, env):
        assert bench(env) == 0
        first = load_document(env["out"])
        clear_memo()

        monkeypatch.setenv(FAULTS_ENV, "cache.get:corrupt")
        reset_faults()
        assert bench(env) == 0  # corruption costs recomputes, not failures
        second = load_document(env["out"])
        validate_document(second)
        assert second["failures"] == []
        assert all(c["source"] == "computed" for c in second["cells"])
        assert result_payloads(second) == result_payloads(first)


class TestJournalIsCrashSafe:
    def test_torn_trailing_line_is_ignored_on_resume(self, monkeypatch, env):
        """Simulate a kill mid-append: the journal's last line is torn.
        Resume must replay the intact cells and recompute the rest."""
        monkeypatch.setenv(FAULTS_ENV, "execute:error:match=m88ksim")
        assert bench(env, "--retries", "0") == EXIT_BENCH_FAILURES
        journal = env["out"] + ".journal"
        with open(journal, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        # tear the last complete record in half
        with open(journal, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])

        monkeypatch.delenv(FAULTS_ENV)
        reset_faults()
        clear_memo()
        assert bench(env, "--resume", "--no-cache") == 0
        doc = load_document(env["out"])
        assert len(doc["cells"]) == 6 and doc["failures"] == []
