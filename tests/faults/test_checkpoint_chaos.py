"""Chaos tests: checkpointing under crashes, corruption and injected
errors.

The central scenario is a worker SIGKILLed *mid-checkpoint-publish*
(the ``<label>@publish`` fault point sits between the durable temp
write and the rename).  The fault spec is built so that a cold restart
of the cell would deterministically crash again — the retry can only
succeed by resuming from the surviving checkpoint, which makes the
passing test itself the proof of resumption, and the bit-identical
result the proof of the differential guarantee.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_cells
from repro.bench.matrix import Cell
from repro.bench.results import result_to_dict
from repro.checkpoint import CKPT_CYCLES_ENV, CKPT_DIR_ENV, CheckpointSlot, CheckpointStore
from repro.checkpoint.codec import CKPT_FORMAT_VERSION
from repro.errors import EXIT_CODES, CheckpointError, SimulationError, error_stage
from repro.faults import reset_faults
from repro.faults.inject import FAULTS_ENV
from repro.sim.config import four_way
from repro.sim.pipeline import TimingSimulator

from tests.faults.conftest import SMALL
from tests.faults.test_chaos_harness import fault_free_results, small_cells


class TestKillMidPublish:
    def test_sigkilled_writer_resumes_from_surviving_checkpoint(
        self, monkeypatch, tmp_path
    ):
        """Worker crashes mid-publish of checkpoint #2; the retry must
        resume from checkpoint #1.

        The interval is chosen so a full simulation publishes exactly
        two checkpoints.  With ``after=1:times=1`` the crash fires on
        the second publish, so a *cold* retry would reach its own
        second publish and crash again (fresh per-process budget) —
        only a resumed retry (one publish left) can complete.
        """
        cells = small_cells(("compress", "advanced"), ("m88ksim", "conventional"))
        expected = fault_free_results(cells)
        crasher, innocent = cells

        # the fault-free result carries the uninterrupted cycle count;
        # place exactly two checkpoints inside the run
        from repro.bench.cache import cell_key

        cycles = expected[cell_key(crasher)]["cycles"]
        assert cycles > 20, "smoke cell too small to checkpoint twice"
        interval = cycles // 2 - 3

        monkeypatch.setenv(CKPT_CYCLES_ENV, str(interval))
        monkeypatch.setenv(CKPT_DIR_ENV, str(tmp_path / "ckpt"))
        monkeypatch.setenv(
            FAULTS_ENV,
            "ckpt_write:crash:match=advanced@publish:after=1:times=1",
        )
        reset_faults()
        outcomes = run_cells(cells, jobs=2, retries=2, backoff=0.05)

        by_key = {o.key: o for o in outcomes}
        resumed = by_key[cell_key(crasher)]
        bystander = by_key[cell_key(innocent)]
        assert resumed.ok, resumed.error
        assert result_to_dict(resumed.result) == expected[resumed.key]
        assert bystander.ok, bystander.error
        assert result_to_dict(bystander.result) == expected[bystander.key]

    def test_crash_between_write_and_rename_preserves_previous_slot(
        self, monkeypatch, tmp_path
    ):
        """Direct check of the atomicity half: after a kill mid-publish
        the slot holds the *previous* complete checkpoint, never a torn
        file."""
        store = CheckpointStore(tmp_path)
        bindings = {"trace_key": "t", "config_sha256": "c", "code_version": "v"}
        store.save("ab" * 32, {"now": 1}, bindings, label="x")

        monkeypatch.setenv(FAULTS_ENV, "ckpt_write:error:match=@publish")
        reset_faults()
        from repro.errors import FaultInjected

        with pytest.raises(FaultInjected):
            store.save("ab" * 32, {"now": 2}, bindings, label="x")
        monkeypatch.delenv(FAULTS_ENV)
        reset_faults()
        # the interrupted publish left the old checkpoint intact, and
        # the aborted temp file was cleaned up
        assert store.load("ab" * 32, bindings) == {"now": 1}
        parent = store.path_for("ab" * 32).parent
        assert [p.name for p in parent.iterdir()] == [
            store.path_for("ab" * 32).name
        ]


class TestCorruptCheckpoint:
    def test_corrupt_read_is_a_cold_restart_never_a_wrong_result(
        self, monkeypatch, tmp_path
    ):
        from repro.experiments.runner import prepare_program
        from repro.runtime.interp import run_program
        from repro.trace.pack import pack_entries

        artifacts = prepare_program("compress", "basic", scale=SMALL["compress"])
        run = run_program(artifacts.program, collect_trace=True)
        pack = pack_entries(run.trace, value=run.value)
        clean = TimingSimulator(four_way()).run(pack).to_counters()

        bindings = {"format_version": CKPT_FORMAT_VERSION, "trace_key": "t"}
        slot = CheckpointSlot(
            CheckpointStore(tmp_path), "cd" * 32, bindings,
            interval=max(1, clean["cycles"] // 6), label="compress/basic",
        )
        with pytest.raises(SimulationError):
            TimingSimulator(four_way(), checkpoint=slot).run(
                pack, max_cycles=clean["cycles"] // 2
            )
        assert slot.load() is not None  # a checkpoint did get published

        monkeypatch.setenv(FAULTS_ENV, "ckpt_read:corrupt")
        reset_faults()
        sim = TimingSimulator(four_way(), checkpoint=slot)
        stats = sim.run(pack)
        assert sim.resumed_from is None  # scrambled bytes were refused
        assert stats.to_counters() == clean


class TestCheckpointErrors:
    def test_injected_write_error_fails_the_cell_with_checkpoint_stage(
        self, monkeypatch, tmp_path
    ):
        cells = small_cells(("compress", "conventional"))
        monkeypatch.setenv(CKPT_CYCLES_ENV, "50")
        monkeypatch.setenv(CKPT_DIR_ENV, str(tmp_path / "ckpt"))
        monkeypatch.setenv(
            FAULTS_ENV, "ckpt_write:error:type=CheckpointError"
        )
        reset_faults()
        [outcome] = run_cells(cells)
        assert outcome.status == "failed"
        assert outcome.error.type == "CheckpointError"
        assert outcome.error.stage == "checkpoint"

    def test_checkpoint_error_has_a_dedicated_exit_code(self):
        assert EXIT_CODES["CheckpointError"] == 22
        assert CheckpointError("x").exit_code == 22
        assert error_stage(CheckpointError("x")) == "checkpoint"

    def test_read_error_fails_before_touching_the_slot(
        self, monkeypatch, tmp_path
    ):
        """An injected ``ckpt_read`` error surfaces as the cell's
        failure (the fault fires before the defensive file read)."""
        store = CheckpointStore(tmp_path)
        monkeypatch.setenv(FAULTS_ENV, "ckpt_read:error:type=CheckpointError")
        reset_faults()
        with pytest.raises(CheckpointError):
            store.load("ab" * 32, {"trace_key": "t"})
