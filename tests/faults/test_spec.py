"""Parsing of the ``REPRO_FAULTS`` specification grammar."""

from __future__ import annotations

import pytest

from repro.errors import FaultInjected, PartitionError, ReproError
from repro.faults import FAULT_KINDS, FAULT_SITES, parse_spec
from repro.faults.spec import resolve_error_type


class TestParseSpec:
    def test_minimal_clause(self):
        plan = parse_spec("execute:error")
        assert plan.seed == 0
        assert len(plan.clauses) == 1
        clause = plan.clauses[0]
        assert clause.site == "execute"
        assert clause.kind == "error"
        assert clause.probability == 1.0
        assert clause.times is None
        assert clause.match is None
        assert clause.error_type == "FaultInjected"

    def test_seed_and_multiple_clauses(self):
        plan = parse_spec("seed=42;execute:crash:match=m88ksim;cache.get:corrupt")
        assert plan.seed == 42
        assert [c.site for c in plan.clauses] == ["execute", "cache.get"]
        assert [c.kind for c in plan.clauses] == ["crash", "corrupt"]

    def test_all_parameters(self):
        plan = parse_spec(
            "simulate:hang:p=0.5:times=3:match=compress:secs=1.5"
        )
        clause = plan.clauses[0]
        assert clause.probability == 0.5
        assert clause.times == 3
        assert clause.match == "compress"
        assert clause.secs == 1.5

    def test_error_type_parameter(self):
        plan = parse_spec("partition:error:type=PartitionError")
        assert plan.clauses[0].error_type == "PartitionError"

    def test_whitespace_and_empty_clauses_tolerated(self):
        plan = parse_spec(" seed=7 ; execute:error ;; ")
        assert plan.seed == 7
        assert len(plan.clauses) == 1

    def test_describe_round_trips_the_interesting_fields(self):
        clause = parse_spec("execute:error:p=0.25:times=2:match=go").clauses[0]
        assert clause.describe() == "execute:error:p=0.25:times=2:match=go"

    @pytest.mark.parametrize(
        "bad",
        [
            "",  # no clauses at all
            "seed=12",  # seed but no clauses
            "seed=abc;execute:error",  # bad seed
            "execute",  # missing kind
            "teleport:error",  # unknown site
            "execute:meltdown",  # unknown kind
            "execute:error:frobnicate=1",  # unknown parameter
            "execute:error:p",  # parameter without value
            "execute:error:p=2.0",  # probability out of range
            "execute:error:times=0",  # times must be >= 1
            "execute:error:times=soon",  # non-integer times
            "simulate:hang:secs=-1",  # negative sleep
            "execute:error:type=ValueError",  # not a ReproError subclass
            "execute:error:type=NoSuchError",  # unknown class name
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ReproError):
            parse_spec(bad)

    def test_every_documented_site_and_kind_parses(self):
        for site in FAULT_SITES:
            for kind in FAULT_KINDS:
                assert parse_spec(f"{site}:{kind}").clauses[0].site == site


class TestResolveErrorType:
    def test_resolves_repro_error_subclasses(self):
        assert resolve_error_type("PartitionError") is PartitionError
        assert resolve_error_type("FaultInjected") is FaultInjected

    def test_rejects_non_repro_types(self):
        with pytest.raises(ReproError):
            resolve_error_type("Exception")
