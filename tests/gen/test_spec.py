"""Generator spec strings: parsing, canonicalization, strictness, and
their integration with the workload registry."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.gen import GENERATORS, GeneratorSpec, generated_workload_spec
from repro.workloads import WORKLOADS, get_workload, workload_source


def test_defaults_round_trip():
    spec = GeneratorSpec("mixer")
    assert spec.canonical() == "gen:mixer"
    assert GeneratorSpec.parse("gen:mixer") == spec


def test_canonical_sorts_axes_and_drops_defaults():
    spec = GeneratorSpec.parse("gen:mixer?seed=7&ldst=0.3&calls=0.25")
    # calls=0.25 is the default, so it vanishes; the rest sort by name
    assert spec.canonical() == "gen:mixer?ldst=0.3&seed=7"


def test_equal_specs_have_equal_canonical_strings():
    a = GeneratorSpec.parse("gen:chains?seed=3&depth=1")
    b = GeneratorSpec.parse("gen:chains?depth=1&seed=3")
    assert a == b
    assert a.canonical() == b.canonical()


@pytest.mark.parametrize(
    "bad",
    [
        "gen:",                      # empty generator
        "gen:nope?seed=1",           # unknown generator
        "gen:mixer?bogus=1",         # unknown axis
        "gen:mixer?seed=",           # missing value
        "gen:mixer?seed",            # no '='
        "gen:mixer?seed=x",          # non-integer
        "gen:mixer?ldst=2.0",        # fraction out of range
        "gen:mixer?ldst=x",          # non-float
        "gen:mixer?depth=9",         # depth out of range
        "gen:mixer?scale=0",         # non-positive scale
        "gen:mixer?seed=-1",         # negative seed
        "gen:mixer?seed=1&seed=2",   # duplicate axis
    ],
)
def test_parse_is_strict(bad):
    with pytest.raises(WorkloadError):
        GeneratorSpec.parse(bad)


def test_get_workload_delegates_gen_specs():
    spec = get_workload("gen:mixer?seed=7")
    assert spec.name == "gen:mixer?seed=7"
    assert spec.paper_input == "(generated)"
    # the registry of static surrogates is untouched
    assert spec.name not in WORKLOADS


def test_spec_name_is_canonicalized():
    spec = get_workload("gen:mixer?seed=7&calls=0.25")
    assert spec.name == "gen:mixer?seed=7"


def test_equivalent_spellings_share_the_cached_workload():
    a = generated_workload_spec("gen:chains?seed=4&branch=0.35")
    b = generated_workload_spec("gen:chains?seed=4")
    assert a.name == b.name
    assert a.source_fn(10) == b.source_fn(10)


def test_fp_axis_sets_category():
    assert get_workload("gen:mixer?seed=1").category == "int"
    assert get_workload("gen:mixer?seed=1&fp=0.5").category == "fp"


def test_unknown_workload_error_mentions_generator_specs():
    with pytest.raises(WorkloadError, match=r"gen:mixer\?seed=N"):
        get_workload("no-such-workload")


def test_workload_source_accepts_gen_specs():
    source = workload_source("gen:mixer?seed=5", scale=10)
    assert "int main()" in source


def test_every_generator_documents_its_axes():
    for name, generator in GENERATORS.items():
        assert generator.description
        assert "seed" in generator.axes, name
        assert "scale" in generator.axes, name
