"""Generator emitters: determinism (in-process and across interpreter
processes / hash seeds), compilability, and axis effects."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.gen import GENERATORS, GeneratorSpec, generate_source
from repro.minic.compile import compile_source
from repro.runtime.interp import run_program

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_generators_emit_compilable_programs(name):
    source = generate_source(GeneratorSpec(name, seed=1), scale=10)
    result = run_program(compile_source(source))
    assert result.instructions > 0


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_same_seed_is_byte_identical(name):
    spec = GeneratorSpec(name, seed=9)
    assert generate_source(spec) == generate_source(spec)


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_different_seeds_differ(name):
    a = generate_source(GeneratorSpec(name, seed=1))
    b = generate_source(GeneratorSpec(name, seed=2))
    assert a != b


def test_fp_axis_emits_float_code():
    no_fp = generate_source(GeneratorSpec("mixer", seed=3, fp=0.0))
    with_fp = generate_source(GeneratorSpec("mixer", seed=3, fp=0.8))
    assert "float" not in no_fp
    assert "float" in with_fp


def test_scale_overrides_spec_default():
    spec = GeneratorSpec("mixer", seed=1, scale=50)
    assert generate_source(spec) == generate_source(spec, scale=50)
    assert generate_source(spec, scale=7) != generate_source(spec, scale=50)


def _emit_in_subprocess(spec_string: str, hash_seed: str) -> str:
    code = (
        "from repro.gen import GeneratorSpec, generate_source;"
        f"print(generate_source(GeneratorSpec.parse({spec_string!r})), end='')"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PYTHONHASHSEED": hash_seed},
        check=True,
    )
    return proc.stdout


@pytest.mark.parametrize("spec_string", ["gen:mixer?seed=11&fp=0.4",
                                         "gen:chains?seed=11&depth=3"])
def test_output_is_identical_across_processes_and_hash_seeds(spec_string):
    # PYTHONHASHSEED perturbs str/bytes hashing, so any reliance on
    # set/dict iteration order would show up as a byte difference here
    runs = {_emit_in_subprocess(spec_string, seed) for seed in ("0", "1", "42")}
    assert len(runs) == 1
    source = runs.pop()
    assert source == generate_source(GeneratorSpec.parse(spec_string))
