"""The grammar-directed random-program builder: every seed must produce
a deterministic, well-typed, terminating MiniC program."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.gen.build import BuildConfig, build_program
from repro.minic.compile import compile_source
from repro.runtime.interp import run_program

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Worst-case dynamic budget per generated program; the builder bounds
#: loop trip counts and the call graph so real programs sit far below
#: the fuzzer's interpreter fuel.
DYNAMIC_BUDGET = 5_000_000


@pytest.mark.parametrize("seed", range(12))
def test_seeds_compile_and_terminate(seed):
    program = compile_source(build_program(seed))
    result = run_program(program, fuel=DYNAMIC_BUDGET)
    assert 0 < result.instructions < DYNAMIC_BUDGET


def test_same_seed_same_program():
    assert build_program(17) == build_program(17)


def test_distinct_seeds_distinct_programs():
    sources = {build_program(seed) for seed in range(20)}
    assert len(sources) == 20


def test_config_changes_the_program():
    plain = build_program(5)
    heavy = build_program(5, BuildConfig(float_prob=0.9, max_stmts=10))
    assert plain != heavy


def test_builder_is_process_deterministic():
    code = (
        "from repro.gen.build import build_program;"
        "print(build_program(23), end='')"
    )
    runs = set()
    for hash_seed in ("0", "7"):
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": SRC, "PYTHONHASHSEED": hash_seed},
            check=True,
        )
        runs.add(proc.stdout)
    assert runs == {build_program(23)}
