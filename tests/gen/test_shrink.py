"""The greedy AST shrinker, driven by cheap textual predicates so the
mechanics are tested without paying for full oracle runs."""

from __future__ import annotations

import pytest

from repro.errors import ParseError, SemanticError
from repro.gen.build import build_program
from repro.gen.shrink import shrink_source
from repro.minic.compile import compile_source

BIG = """\
int gtab[16];

int helper(int a) {
  int t;
  t = a * 3;
  return t + 1;
}

int main() {
  int x;
  int y;
  int i;
  x = 0;
  y = 5;
  for (i = 0; i < 8; i = i + 1) {
    x = x + helper(i);
    gtab[i & 15] = x;
    if (x > 100) {
      y = y - 1;
    } else {
      y = y + 2;
    }
  }
  while (y > 0) {
    y = y - 3;
    x = x ^ y;
  }
  return x + y;
}
"""


def _compiles(source: str) -> bool:
    try:
        compile_source(source)
    except (ParseError, SemanticError):
        return False
    return True


def test_shrinks_to_near_nothing_under_a_trivial_predicate():
    result = shrink_source(BIG, _compiles)
    assert result.accepted > 0
    assert result.lines <= 4  # effectively "int main() { ... }"
    assert _compiles(result.source)


def test_preserved_feature_survives():
    def has_while(source: str) -> bool:
        return _compiles(source) and "while" in source

    result = shrink_source(BIG, has_while)
    assert "while" in result.source
    assert result.lines < len(BIG.splitlines())
    assert _compiles(result.source)


def test_rejects_uninteresting_input():
    with pytest.raises(ValueError):
        shrink_source("int main() { return 0; }", lambda s: False)


def test_budget_caps_predicate_evaluations():
    result = shrink_source(BIG, _compiles, max_tests=5)
    assert result.tests <= 5
    assert result.budget_exhausted


def test_shrinks_generated_programs():
    source = build_program(2)
    result = shrink_source(source, _compiles, max_tests=300)
    assert result.lines < len(source.splitlines())
    assert _compiles(result.source)


def test_predicate_exceptions_are_treated_as_uninteresting():
    calls = {"n": 0}

    def flaky(source: str) -> bool:
        calls["n"] += 1
        if calls["n"] == 1:
            return True  # the input itself
        raise RuntimeError("predicate blew up")

    result = shrink_source(BIG, flaky, max_tests=10)
    # nothing was accepted: the (re-printed) input survives in full
    assert result.accepted == 0
    assert "gtab" in result.source and "while" in result.source
