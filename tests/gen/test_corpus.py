"""Crash bundles, corpus files, and the tier-1 replay of every
committed regression through the honest differential oracle."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.gen.corpus import (
    REGRESSION_DIR,
    iter_regressions,
    load_crash_source,
    replay_regression,
    write_crash_bundle,
    write_regression,
)
from repro.gen.fuzz import DifferentialOracle, FuzzCase, Violation

REPO_CORPUS = Path(__file__).resolve().parents[2] / REGRESSION_DIR


def _case() -> FuzzCase:
    return FuzzCase(
        seed=42,
        source="int main() { return 7; }\n",
        violations=[Violation("certify", "profit went negative")],
    )


def test_crash_bundle_round_trip(tmp_path):
    bundle = write_crash_bundle(tmp_path, _case(), {"inject_cost_bug": True})
    assert bundle.name == "seed-42"
    assert load_crash_source(bundle) == "int main() { return 7; }\n"
    meta = json.loads((bundle / "meta.json").read_text())
    assert meta["seed"] == 42
    assert meta["kinds"] == ["certify"]
    assert meta["inject_cost_bug"] is True
    assert "profit went negative" in (bundle / "diagnostics.txt").read_text()


def test_load_crash_source_accepts_bare_files(tmp_path):
    f = tmp_path / "prog.mc"
    f.write_text("int main() { return 1; }\n")
    assert load_crash_source(f) == "int main() { return 1; }\n"
    with pytest.raises(ReproError):
        load_crash_source(tmp_path / "missing")


def test_write_regression_headers_do_not_break_replay(tmp_path):
    path = write_regression(
        tmp_path, "sample", "int main() { return 3; }\n",
        seed=9, kinds=["lint"], note="hand-made",
    )
    text = path.read_text()
    assert text.startswith("// repro-fuzz regression")
    assert "builder seed 9" in text
    case = replay_regression(path, DifferentialOracle(simulate=False))
    assert case.ok


def test_iter_regressions_is_sorted(tmp_path):
    for name in ("zz", "aa", "mm"):
        write_regression(tmp_path, name, "int main() { return 0; }\n")
    assert [p.stem for p in iter_regressions(tmp_path)] == ["aa", "mm", "zz"]
    assert iter_regressions(tmp_path / "absent") == []


def test_committed_corpus_is_nonempty():
    # the corpus pins fixed bugs; losing it silently would defeat the
    # point, so its presence is itself an invariant
    assert len(iter_regressions(REPO_CORPUS)) >= 3


@pytest.mark.parametrize(
    "path", iter_regressions(REPO_CORPUS), ids=lambda p: p.stem
)
def test_committed_corpus_replays_green(path):
    case = replay_regression(path)
    assert case.ok, [str(v) for v in case.violations]


@pytest.mark.parametrize(
    "path", iter_regressions(REPO_CORPUS), ids=lambda p: p.stem
)
def test_committed_corpus_is_minimal(path):
    # shrunk regressions must stay small enough to debug by eye
    body = [
        line
        for line in path.read_text().splitlines()
        if line.strip() and not line.startswith("//")
    ]
    assert len(body) <= 25
