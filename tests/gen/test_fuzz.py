"""The differential oracle: clean on healthy code, loud on injected
profit-accounting bugs, exit code 25 on campaign failures."""

from __future__ import annotations

import pytest

from repro.errors import FuzzViolationError
from repro.gen.build import build_program
from repro.gen.fuzz import (
    DifferentialOracle,
    FuzzReport,
    fuzz_run,
    make_interesting,
    raise_on_failures,
)
from repro.partition.cost import CostParams


def test_healthy_seeds_have_no_violations():
    report = fuzz_run(3, oracle=DifferentialOracle(simulate=False))
    assert report.ok
    assert report.seeds_run == 3


def test_full_oracle_including_timing_sim():
    case = DifferentialOracle().check_source(build_program(0), seed=0)
    assert case.ok, [str(v) for v in case.violations]


def test_injected_cost_bug_is_caught():
    oracle = DifferentialOracle(
        audit_params=CostParams(o_copy=12.0, o_dupl=6.0),
        schemes=("advanced",),
        simulate=False,
    )
    report = fuzz_run(3, oracle=oracle)
    assert not report.ok
    kinds = {
        v.kind for case in report.failures for v in case.violations
    }
    assert "certify" in kinds
    # the independent §6.1 re-pricing and the lint rule agree
    assert "lint" in kinds


def test_raise_on_failures_uses_exit_code_25():
    oracle = DifferentialOracle(
        audit_params=CostParams(o_copy=12.0, o_dupl=6.0),
        schemes=("advanced",),
        simulate=False,
    )
    report = fuzz_run(2, oracle=oracle)
    with pytest.raises(FuzzViolationError) as exc:
        raise_on_failures(report)
    assert exc.value.exit_code == 25
    assert exc.value.stage == "fuzz"


def test_raise_on_failures_is_a_no_op_when_clean():
    raise_on_failures(FuzzReport(seeds_run=5))


class _CannedOracle(DifferentialOracle):
    """Oracle with canned per-scheme runs, to unit-test the cross-scheme
    invariants without needing a program that actually breaks them."""

    def __init__(self, runs):
        super().__init__(simulate=False)
        self._canned = runs

    def _run_scheme(self, source, scheme, violations):
        return self._canned[scheme]


def _canned_run(checksum, dynamic):
    from repro.gen.fuzz import _SchemeRun

    run = _SchemeRun(program=None)
    run.checksum = checksum
    run.dynamic = dynamic
    return run


def test_checksum_divergence_is_a_violation():
    oracle = _CannedOracle({
        "conventional": _canned_run(1, 100),
        "basic": _canned_run(2, 100),
        "advanced": _canned_run(1, 100),
    })
    kinds = {v.kind for v in oracle.check_source("unused").violations}
    assert "checksum" in kinds


def test_basic_adding_instructions_is_a_violation():
    oracle = _CannedOracle({
        "conventional": _canned_run(1, 100),
        "basic": _canned_run(1, 120),
        "advanced": _canned_run(1, 100),
    })
    kinds = {v.kind for v in oracle.check_source("unused").violations}
    assert kinds == {"basic-pure"}


def test_basic_eliminating_copies_is_allowed():
    oracle = _CannedOracle({
        "conventional": _canned_run(1, 100),
        "basic": _canned_run(1, 90),
        "advanced": _canned_run(1, 90),
    })
    assert oracle.check_source("unused").ok


def test_budget_stops_the_campaign_early():
    report = fuzz_run(10_000, budget=0.0)
    assert report.budget_exhausted
    assert report.seeds_run < 10_000


def test_make_interesting_matches_kinds():
    oracle = DifferentialOracle(
        audit_params=CostParams(o_copy=12.0, o_dupl=6.0),
        schemes=("advanced",),
        simulate=False,
    )
    source = build_program(3)
    assert make_interesting(oracle, {"certify"})(source)
    assert not make_interesting(oracle, {"checksum"})(source)


def test_non_compiling_source_is_a_compile_violation():
    case = DifferentialOracle(simulate=False).check_source("int main( {")
    kinds = {v.kind for v in case.violations}
    assert kinds == {"compile"}
