"""The ``repro fuzz`` command end to end: campaigns, the injected-bug
self-test, bundle writing, replay, and promotion."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.gen.corpus import write_crash_bundle
from repro.gen.fuzz import FuzzCase, Violation


def _fuzz(*argv: str) -> int:
    return main(["fuzz", *argv])


def test_clean_campaign_exits_zero(tmp_path, capsys):
    code = _fuzz("--seeds", "2", "--no-simulate",
                 "--crash-dir", str(tmp_path / "crashes"))
    assert code == 0
    out = capsys.readouterr().out
    assert "2 seeds" in out and "0 failing" in out
    assert not (tmp_path / "crashes").exists()


def test_injected_cost_bug_fails_with_exit_25(tmp_path, capsys):
    crash_dir = tmp_path / "crashes"
    code = _fuzz("--seeds", "1", "--no-simulate", "--inject-cost-bug",
                 "--crash-dir", str(crash_dir))
    assert code == 25
    bundle = crash_dir / "seed-0"
    assert (bundle / "program.mc").is_file()
    meta = json.loads((bundle / "meta.json").read_text())
    assert "certify" in meta["kinds"]
    assert meta["inject_cost_bug"] is True
    assert "violations expected" in capsys.readouterr().out


def test_budget_zero_checks_nothing(capsys):
    code = _fuzz("--seeds", "50", "--budget", "0", "--no-simulate")
    assert code == 0
    assert "budget exhausted" in capsys.readouterr().out


def test_replay_flags_a_bad_bundle(tmp_path, capsys):
    case = FuzzCase(seed=1, source="int main( {",
                    violations=[Violation("compile", "syntax")])
    bundle = write_crash_bundle(tmp_path, case)
    code = _fuzz("--no-simulate", "--replay", str(bundle))
    assert code == 1
    assert "FAIL" in capsys.readouterr().out


def test_replay_committed_corpus(capsys):
    code = _fuzz("--no-simulate", "--replay")
    assert code == 0
    assert "0 failing" in capsys.readouterr().out


def test_replay_empty_corpus_dir_is_an_error(tmp_path):
    code = _fuzz("--replay", "--corpus-dir", str(tmp_path / "nothing"))
    assert code != 0


def test_promote_green_program(tmp_path, capsys):
    case = FuzzCase(seed=3, source="int main() { return 6 * 7; }\n",
                    violations=[Violation("certify", "was broken once")])
    bundle = write_crash_bundle(tmp_path / "crashes", case)
    corpus = tmp_path / "corpus"
    code = _fuzz("--no-simulate", "--promote", str(bundle),
                 "--corpus-dir", str(corpus), "--note", "unit test")
    assert code == 0
    promoted = corpus / "seed-3.mc"
    assert promoted.is_file()
    text = promoted.read_text()
    assert "unit test" in text and "certify" in text
    # promoted files replay green by construction
    code = _fuzz("--no-simulate", "--replay", "--corpus-dir", str(corpus))
    assert code == 0


def test_promote_refuses_failing_programs(tmp_path, capsys):
    bad = tmp_path / "bad.mc"
    bad.write_text("int main( {")
    code = _fuzz("--no-simulate", "--promote", str(bad),
                 "--corpus-dir", str(tmp_path / "corpus"))
    assert code != 0
    assert "fix the bug first" in capsys.readouterr().err
    assert not (tmp_path / "corpus").exists()
