"""Workload integration tests.

Every surrogate must compile, run, and produce a checksum that is
invariant across the whole transformation stack: unoptimized, optimized,
basic-partitioned, advanced-partitioned, register-allocated.
"""

import pytest

from repro.errors import WorkloadError
from repro.ir.verify import verify_program
from repro.minic.compile import compile_source
from repro.partition.advanced import advanced_partition
from repro.partition.basic import basic_partition
from repro.partition.rewrite import apply_partition
from repro.regalloc.linear_scan import allocate_program
from repro.runtime.interp import run_program
from repro.workloads import (
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    WORKLOADS,
    compile_workload,
    get_workload,
    workload_source,
)

#: small scales: enough to exercise every code path, fast enough for CI
TEST_SCALES = {
    "compress": 120,
    "gcc": 1,
    "go": 1,
    "ijpeg": 2,
    "li": 2,
    "m88ksim": 1,
    "perl": 1,
    "ear": 1,
    "swim": 1,
}


class TestRegistry:
    def test_expected_benchmarks_present(self):
        assert set(INT_BENCHMARKS) == {
            "compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl",
        }
        assert set(FP_BENCHMARKS) == {"ear", "swim"}

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            get_workload("doom")

    def test_invalid_scale(self):
        with pytest.raises(WorkloadError):
            workload_source("compress", scale=0)

    def test_specs_have_descriptions(self):
        for spec in WORKLOADS.values():
            assert spec.description
            assert spec.paper_input
            assert spec.default_scale > 0


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestEveryWorkload:
    def test_compiles_and_runs(self, name):
        program = compile_workload(name, TEST_SCALES[name])
        verify_program(program)
        result = run_program(program)
        assert result.value is not None
        assert result.instructions > 100

    def test_checksum_invariant_across_stack(self, name):
        scale = TEST_SCALES[name]
        source = workload_source(name, scale)

        reference = run_program(compile_source(source, optimize=False)).value

        optimized = compile_source(source)
        assert run_program(optimized).value == reference

        for scheme_fn in (basic_partition, advanced_partition):
            program = compile_source(source)
            for func in program.functions.values():
                apply_partition(func, scheme_fn(func))
            verify_program(program)
            assert run_program(program).value == reference, scheme_fn.__name__
            allocate_program(program)
            verify_program(program)
            assert run_program(program).value == reference

    def test_scale_changes_work(self, name):
        small = run_program(compile_workload(name, TEST_SCALES[name]))
        bigger = run_program(
            compile_workload(name, TEST_SCALES[name] + 1)
        )
        assert bigger.instructions > small.instructions


class TestWorkloadCharacteristics:
    """The structural traits the surrogates were designed around."""

    def test_integer_workloads_execute_no_fp(self):
        for name in INT_BENCHMARKS:
            program = compile_workload(name, TEST_SCALES[name])
            result = run_program(program, collect_trace=True)
            from repro.runtime.trace import dynamic_mix

            assert dynamic_mix(result.trace)["fp_executed"] == 0, name

    def test_ldst_slice_near_half_for_integer_programs(self):
        """Palacharla & Smith: LdSt slices of integer programs account
        for close to 50% of dynamic instructions — the bound on FPa
        partition size (§4).  Loads+stores+address work should dominate."""
        from repro.runtime.trace import dynamic_mix

        for name in INT_BENCHMARKS:
            program = compile_workload(name, TEST_SCALES[name])
            result = run_program(program, collect_trace=True)
            mix = dynamic_mix(result.trace)
            memory_fraction = (mix["loads"] + mix["stores"]) / mix["total"]
            # at CI scales initialization code dilutes some benchmarks,
            # so the lower bound is looser than the paper's ~50% claim
            assert 0.05 < memory_fraction < 0.60, (name, memory_fraction)

    def test_li_is_call_intensive(self):
        from repro.ir.opcodes import OpKind

        program = compile_workload("li", TEST_SCALES["li"])
        result = run_program(program, collect_trace=True)
        calls = sum(1 for t in result.trace if t.instr.kind is OpKind.CALL)
        assert calls / result.instructions > 0.05

    def test_ijpeg_has_small_multiply_fraction(self):
        """The paper reports ~3% mul/div for ijpeg."""
        from repro.ir.opcodes import OpKind

        program = compile_workload("ijpeg", TEST_SCALES["ijpeg"])
        result = run_program(program, collect_trace=True)
        muldiv = sum(
            1 for t in result.trace if t.instr.kind in (OpKind.MUL, OpKind.DIV)
        )
        assert 0.0 < muldiv / result.instructions < 0.08

    def test_fp_workloads_use_fp_subsystem(self):
        from repro.runtime.trace import dynamic_mix

        for name in FP_BENCHMARKS:
            program = compile_workload(name, TEST_SCALES[name])
            result = run_program(program, collect_trace=True)
            assert dynamic_mix(result.trace)["fp_executed"] > 0, name
