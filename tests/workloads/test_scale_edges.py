"""Scale edge cases for workload_source / compile_workload, including
generator specs: zero, one, very large, and unknown names."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.minic.compile import compile_source
from repro.runtime.interp import run_program
from repro.workloads import compile_workload, workload_source


@pytest.mark.parametrize("name", ["compress", "gen:mixer?seed=1"])
@pytest.mark.parametrize("scale", [0, -3])
def test_non_positive_scale_is_rejected(name, scale):
    with pytest.raises(WorkloadError, match="scale must be positive"):
        workload_source(name, scale=scale)
    with pytest.raises(WorkloadError, match="scale must be positive"):
        compile_workload(name, scale=scale)


@pytest.mark.parametrize("name", ["compress", "gen:chains?seed=2"])
def test_scale_one_compiles_and_runs(name):
    result = run_program(compile_workload(name, scale=1), fuel=5_000_000)
    assert result.instructions > 0


def test_very_large_scale_still_emits_source():
    # source generation is O(text), not O(scale): a huge trip count must
    # not hang or exhaust memory at emit/compile time
    source = workload_source("gen:mixer?seed=1", scale=50_000_000)
    assert "50000000" in source
    compile_source(source)


def test_gen_spec_default_scale_axis_is_honored():
    def body(text: str) -> str:
        # drop the provenance comment header: it spells the spec string,
        # which legitimately differs between the two spellings
        return "\n".join(
            ln for ln in text.splitlines() if not ln.startswith("//")
        )

    assert body(workload_source("gen:mixer?seed=1&scale=17")) == body(
        workload_source("gen:mixer?seed=1", scale=17)
    )


def test_unknown_workload_name_raises():
    with pytest.raises(WorkloadError, match="unknown workload"):
        workload_source("does-not-exist")
    with pytest.raises(WorkloadError, match="unknown workload"):
        compile_workload("does-not-exist")


def test_unknown_generator_raises():
    with pytest.raises(WorkloadError, match="unknown generator"):
        workload_source("gen:does-not-exist?seed=1")
