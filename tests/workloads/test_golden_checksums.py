"""Golden checksums for every workload at the CI scales.

These pin the *functional* behaviour of the whole stack (frontend,
optimizer, interpreter, memory model): any semantics change — however
subtle — shows up as a checksum diff here before it can silently skew
the timing results. Update the constants only when a workload source is
deliberately changed, and note it in EXPERIMENTS.md.
"""

import pytest

from repro.runtime.interp import run_program
from repro.workloads import compile_workload

#: (workload, scale, expected checksum, expected dynamic instructions)
GOLDEN = [
    ("compress", 120, 353523, 20394),
    ("gcc", 1, 2510, 207428),
    ("go", 1, 262, 38849),
    ("ijpeg", 2, 12697091, 80752),
    ("li", 2, 4560, 21511),
    ("m88ksim", 1, 1564851, 19506),
    ("perl", 1, 3107, 105223),
    ("ear", 1, 44221, 200422),
    ("swim", 1, 2428, 112215),
]


@pytest.mark.parametrize("name,scale,checksum,instructions", GOLDEN)
def test_golden_checksum(name, scale, checksum, instructions):
    result = run_program(compile_workload(name, scale))
    assert result.value == checksum, (
        f"{name}: functional behaviour changed (got {result.value})"
    )
    # dynamic instruction counts may drift with optimizer improvements,
    # but only within reason — large swings mean a real change
    assert result.instructions == pytest.approx(instructions, rel=0.25), name


def test_golden_list_covers_all_workloads():
    from repro.workloads import WORKLOADS

    assert {name for name, *_ in GOLDEN} == set(WORKLOADS)
