"""The paper's ISA-budget claim: 22 extra opcodes suffice.

"Additional opcodes have to be added to the instruction set ... In our
study, we used 22 extra opcodes" (§1).  These tests confirm that every
instruction either scheme offloads, across every workload, is expressible
with the FPa extension set — and that the set is well-used rather than
padded.
"""

import pytest

from repro.ir.opcodes import FPA_OPCODES, fpa_twin
from repro.partition.advanced import advanced_partition
from repro.partition.basic import basic_partition
from repro.partition.report import offload_by_opcode
from repro.runtime.interp import run_program
from repro.workloads import WORKLOADS, compile_workload

from tests.workloads.test_workloads import TEST_SCALES


@pytest.fixture(scope="module")
def opcode_usage():
    """Union of offloaded-opcode usage across all workloads/schemes."""
    usage: dict[str, int] = {}
    for name in WORKLOADS:
        program = compile_workload(name, TEST_SCALES[name])
        profile = run_program(program).profile
        for func in program.functions.values():
            for scheme in (basic_partition, lambda f: advanced_partition(f, profile=profile)):
                partition = scheme(func)
                for op, count in offload_by_opcode(partition).items():
                    usage[op] = usage.get(op, 0) + count
    return usage


def test_every_offloaded_opcode_has_a_twin(opcode_usage):
    from repro.ir.opcodes import opcode_by_name

    for mnemonic in opcode_usage:
        op = opcode_by_name(mnemonic)
        assert fpa_twin(op) is not None, mnemonic


def test_extension_is_well_used(opcode_usage):
    """A healthy majority of the 22 opcodes earn their keep on the
    benchmark suite (the set is not padded)."""
    from repro.ir.opcodes import opcode_by_name

    used_twins = {fpa_twin(opcode_by_name(m)) for m in opcode_usage}
    assert len(used_twins) >= 10, sorted(op.value for op in used_twins)
    assert used_twins <= FPA_OPCODES


def test_multiply_divide_never_offloaded(opcode_usage):
    for banned in ("mult", "div", "rem"):
        assert banned not in opcode_usage
