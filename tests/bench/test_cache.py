"""Cache layer: key derivation, invalidation, and crash safety."""

from __future__ import annotations

import json

import pytest

from repro.bench.cache import CACHE_SCHEMA, ResultCache, cell_key, code_fingerprint
from repro.bench.matrix import Cell
from repro.errors import ReproError
from repro.partition.cost import CostParams

CELL = Cell("m88ksim", "advanced", 4, 2)


class TestKeys:
    def test_key_is_stable(self):
        assert cell_key(CELL) == cell_key(CELL)

    def test_source_change_invalidates(self):
        """A different scale generates different workload source."""
        assert cell_key(CELL) != cell_key(Cell("m88ksim", "advanced", 4, 3))

    def test_scheme_invalidates(self):
        assert cell_key(CELL) != cell_key(Cell("m88ksim", "basic", 4, 2))

    def test_machine_config_invalidates(self):
        assert cell_key(CELL) != cell_key(Cell("m88ksim", "advanced", 8, 2))

    def test_code_version_invalidates(self):
        current = cell_key(CELL)
        other = cell_key(CELL, code_version="deadbeef")
        assert current != other
        assert cell_key(CELL, code_version=code_fingerprint()) == current

    def test_trace_format_version_invalidates(self, monkeypatch):
        """A trace-pack format bump must cold the result cache too:
        cached cells were computed from packed traces of that format."""
        current = cell_key(CELL)
        monkeypatch.setattr("repro.bench.cache.TRACE_FORMAT_VERSION", 999)
        assert cell_key(CELL) != current

    def test_partition_options_invalidate(self):
        assert cell_key(CELL) != cell_key(
            CELL, cost_params=CostParams(o_copy=4.0, o_dupl=2.0)
        )
        assert cell_key(CELL) != cell_key(CELL, use_profile=False)
        assert cell_key(CELL) != cell_key(CELL, balance_limit=0.25)
        assert cell_key(CELL) != cell_key(CELL, interprocedural=True)

    def test_default_cost_params_normalized(self):
        """Explicit defaults hash like the implicit ones."""
        assert cell_key(CELL) == cell_key(CELL, cost_params=CostParams())

    def test_code_fingerprint_tracks_sources(self, tmp_path, monkeypatch):
        """The fingerprint covers file contents, not just names."""
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("x = 1\n")

        import repro

        monkeypatch.setattr(repro, "__file__", str(pkg / "__init__.py"))
        code_fingerprint.cache_clear()
        first = code_fingerprint()
        (pkg / "__init__.py").write_text("x = 2\n")
        code_fingerprint.cache_clear()
        second = code_fingerprint()
        code_fingerprint.cache_clear()  # drop the fake-path cache entry
        assert first != second

    def test_unknown_workload_rejected(self):
        with pytest.raises(ReproError, match="workload"):
            Cell("specint2000", "basic", 4)


ENTRY = {"cell": CELL.as_dict(), "result": {"cycles": 123}, "compute_seconds": 1.5}


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, ENTRY)
        entry = cache.get(key)
        assert entry["result"] == {"cycles": 123}
        assert entry["compute_seconds"] == 1.5
        assert entry["key"] == key
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "1" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text('{"truncated": ')
        assert cache.get(key) is None
        # and a put over the corruption repairs it
        cache.put(key, ENTRY)
        assert cache.get(key)["result"] == {"cycles": 123}

    def test_key_mismatch_is_a_miss(self, tmp_path):
        """An entry renamed to the wrong key (or a hash collision in the
        shard prefix) never replays."""
        cache = ResultCache(tmp_path)
        key_a = "ef" + "2" * 62
        key_b = "ef" + "3" * 62
        cache.put(key_a, ENTRY)
        cache.path_for(key_a).rename(cache.path_for(key_b))
        assert cache.get(key_b) is None

    def test_schema_bump_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "0a" + "4" * 62
        cache.put(key, ENTRY)
        path = cache.path_for(key)
        entry = json.loads(path.read_text())
        entry["cache_schema"] = CACHE_SCHEMA + 1
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_partial_tmp_file_is_ignored(self, tmp_path):
        """A crashed writer leaves only a ``*.tmp-*`` file; lookups miss
        and a later writer publishes cleanly alongside it."""
        cache = ResultCache(tmp_path)
        key = "12" + "5" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        leftover = path.parent / (path.name + ".tmp-crashed")
        leftover.write_text('{"half": ')
        assert cache.get(key) is None
        cache.put(key, ENTRY)
        assert cache.get(key)["result"] == {"cycles": 123}
        assert leftover.exists()  # untouched, harmless

    def test_put_is_atomic_no_tmp_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "34" + "6" * 62
        cache.put(key, ENTRY)
        names = [p.name for p in cache.path_for(key).parent.iterdir()]
        assert names == [f"{key}.json"]

    def test_failed_put_leaves_no_entry(self, tmp_path, monkeypatch):
        """If serialization dies mid-write, neither a final file nor a
        stray handle-owned tmp survives as a *valid* entry."""
        cache = ResultCache(tmp_path)
        key = "56" + "7" * 62

        class Boom(RuntimeError):
            pass

        def exploding_dump(*args, **kwargs):
            raise Boom()

        monkeypatch.setattr("repro.bench.cache.json.dumps", exploding_dump)
        with pytest.raises(Boom):
            cache.put(key, ENTRY)
        monkeypatch.undo()
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
        assert ResultCache.from_env() is None
        monkeypatch.setenv("REPRO_BENCH_CACHE", "0")
        assert ResultCache.from_env() is None
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
        cache = ResultCache.from_env()
        assert cache is not None and cache.root == tmp_path
