"""Orphaned ``*.tmp-*`` reaping: stores clean up after killed writers."""

from __future__ import annotations

import os
import time

from repro.bench.cache import ResultCache
from repro.ioutil import DEFAULT_TMP_MAX_AGE, reap_orphan_tmp_files
from repro.trace.store import TraceStore


def _plant_tmp(root, name: str, age: float) -> "os.PathLike":
    """A fake orphan whose mtime is ``age`` seconds in the past."""
    root.mkdir(parents=True, exist_ok=True)
    path = root / name
    path.write_bytes(b"half-written entry")
    stamp = time.time() - age
    os.utime(path, (stamp, stamp))
    return path


class TestReapFunction:
    def test_reaps_only_stale_orphans(self, tmp_path):
        stale = _plant_tmp(tmp_path / "ab", "k.json.tmp-x1", DEFAULT_TMP_MAX_AGE + 60)
        fresh = _plant_tmp(tmp_path / "ab", "k.json.tmp-x2", 5.0)
        live = tmp_path / "ab" / "k.json"
        live.write_text("{}")

        reaped = reap_orphan_tmp_files(tmp_path, once=False)

        assert reaped == 1
        assert not stale.exists(), "stale orphan survived"
        assert fresh.exists(), "a live writer's young tmp file was reaped"
        assert live.exists(), "a published entry was touched"

    def test_missing_root_is_noop(self, tmp_path):
        assert reap_orphan_tmp_files(tmp_path / "nope", once=False) == 0

    def test_once_guard_sweeps_each_root_once(self, tmp_path):
        root = tmp_path / "guarded"
        _plant_tmp(root, "a.tmp-1", DEFAULT_TMP_MAX_AGE + 60)
        assert reap_orphan_tmp_files(root) == 1
        _plant_tmp(root, "b.tmp-2", DEFAULT_TMP_MAX_AGE + 60)
        # same root, same process: the guard says already swept
        assert reap_orphan_tmp_files(root) == 0
        # an explicit unguarded sweep still works
        assert reap_orphan_tmp_files(root, once=False) == 1

    def test_custom_max_age(self, tmp_path):
        _plant_tmp(tmp_path, "a.tmp-1", 10.0)
        assert reap_orphan_tmp_files(tmp_path, max_age=5.0, once=False) == 1


class TestStoresReapOnOpen:
    def test_result_cache_open_reaps(self, tmp_path):
        root = tmp_path / "cache"
        stale = _plant_tmp(root / "ab", "k.json.tmp-dead", DEFAULT_TMP_MAX_AGE + 60)
        ResultCache(root)
        assert not stale.exists()

    def test_trace_store_open_reaps(self, tmp_path):
        root = tmp_path / "traces"
        stale = _plant_tmp(root / "cd", "k.rtp.tmp-dead", DEFAULT_TMP_MAX_AGE + 60)
        TraceStore(root)
        assert not stale.exists()

    def test_open_does_not_disturb_entries(self, tmp_path):
        root = tmp_path / "cache"
        cache = ResultCache(root)
        cache.put("ab" + "0" * 62, {"result": 1})
        reopened = ResultCache(root)
        assert reopened.get("ab" + "0" * 62) is not None
