"""BENCH document serialization, validation, and baseline comparison."""

from __future__ import annotations

import pytest

from repro.bench.compare import compare_documents, format_report
from repro.bench.harness import run_cells
from repro.bench.matrix import Cell
from repro.bench.results import (
    BENCH_SCHEMA,
    build_document,
    result_from_dict,
    result_to_dict,
    validate_document,
)
from repro.errors import ReproError

CELL = Cell("m88ksim", "advanced", 4, 2)


@pytest.fixture(scope="module")
def document():
    outcomes = run_cells([CELL, Cell("m88ksim", "conventional", 4, 2)])
    return build_document("unit", outcomes, jobs=1, total_seconds=1.0)


class TestRoundTrip:
    def test_result_round_trips_losslessly(self):
        [outcome] = run_cells([CELL])
        doc = result_to_dict(outcome.result)
        rebuilt = result_from_dict(doc)
        assert result_to_dict(rebuilt) == doc
        assert rebuilt.cycles == outcome.result.cycles
        assert rebuilt.stats.to_counters() == outcome.result.stats.to_counters()
        assert rebuilt.ipc == outcome.result.ipc

    def test_missing_field_rejected(self):
        with pytest.raises(ReproError, match="missing"):
            result_from_dict({"name": "x"})


class TestValidation:
    def test_built_document_is_valid(self, document):
        validate_document(document)
        assert document["schema"] == BENCH_SCHEMA
        assert document["code_version"]
        assert document["host"]["cpu_count"] >= 1
        assert len(document["cells"]) == 2
        for cell in document["cells"]:
            assert cell["throughput_ips"] > 0

    def test_wrong_schema_rejected(self, document):
        bad = dict(document, schema="repro-bench/999")
        with pytest.raises(ReproError, match="schema"):
            validate_document(bad)

    def test_empty_cells_rejected(self, document):
        with pytest.raises(ReproError, match="non-empty"):
            validate_document(dict(document, cells=[]))

    def test_cell_missing_result_field_rejected(self, document):
        import copy

        bad = copy.deepcopy(document)
        del bad["cells"][0]["result"]["cycles"]
        with pytest.raises(ReproError, match="cycles"):
            validate_document(bad)

    def test_not_a_document(self):
        with pytest.raises(ReproError):
            validate_document([])


def _doc(cells):
    return {"cells": cells}


def _cell(workload="compress", scheme="advanced", width=4, scale=None,
          cycles=1000, checksum=42):
    return {
        "workload": workload,
        "scheme": scheme,
        "width": width,
        "scale": scale,
        "result": {"cycles": cycles, "checksum": checksum},
    }


class TestCompare:
    def test_identical_documents_pass(self):
        report = compare_documents(_doc([_cell()]), _doc([_cell()]))
        assert report.ok and len(report.matched) == 1
        assert "OK" in format_report(report)

    def test_within_tolerance_passes(self):
        report = compare_documents(
            _doc([_cell(cycles=1080)]), _doc([_cell(cycles=1000)]), tolerance=0.10
        )
        assert report.ok and not report.regressions

    def test_slowdown_beyond_tolerance_fails(self):
        report = compare_documents(
            _doc([_cell(cycles=1200)]), _doc([_cell(cycles=1000)]), tolerance=0.10
        )
        assert not report.ok
        assert len(report.regressions) == 1
        assert "REGRESSION" in format_report(report)

    def test_speedup_is_reported_not_failed(self):
        report = compare_documents(
            _doc([_cell(cycles=500)]), _doc([_cell(cycles=1000)]), tolerance=0.10
        )
        assert report.ok and len(report.improvements) == 1

    def test_checksum_mismatch_fails_regardless_of_cycles(self):
        report = compare_documents(
            _doc([_cell(checksum=43)]), _doc([_cell(checksum=42)])
        )
        assert not report.ok and report.checksum_mismatches

    def test_cell_missing_from_current_fails(self):
        report = compare_documents(
            _doc([_cell()]), _doc([_cell(), _cell(scheme="basic")])
        )
        assert not report.ok and report.missing_in_current

    def test_new_cell_in_current_is_fine(self):
        report = compare_documents(
            _doc([_cell(), _cell(scheme="basic")]), _doc([_cell()])
        )
        assert report.ok and report.missing_in_baseline
