"""Harness supervision: jittered backoff, circuit breakers, the
progress-aware watchdog, stop events and failure progress reports.

Pool tests rely on Linux ``fork`` semantics: a ``monkeypatch`` of
``repro.bench.harness.compute_cell`` in the parent is inherited by the
workers, so slow/failing cells can be scripted without fault-injection
plumbing.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.bench import harness
from repro.bench.harness import (
    CircuitBreaker,
    RunReport,
    _backoff_delay,
    _family,
    run_cells,
)
from repro.bench.matrix import Cell
from repro.bench.results import build_document, validate_document
from repro.progress import report_progress

from .conftest import SMALL

COMPRESS = Cell("compress", "conventional", 4, SMALL["compress"])
M88K = Cell("m88ksim", "conventional", 4, SMALL["m88ksim"])


def compress_family(n: int) -> list[Cell]:
    """n distinct cells of the compress/conventional family."""
    cells = []
    for i in range(n):
        cells.append(Cell("compress", "conventional", 4 if i % 2 == 0 else 8,
                          SMALL["compress"] + i // 2))
    return cells


class TestBackoffJitter:
    def test_jitter_stays_within_25_percent(self):
        rng = random.Random(7)
        for attempt in range(1, 8):
            base = min(0.5 * 2 ** (attempt - 1), harness._MAX_BACKOFF)
            for _ in range(50):
                delay = _backoff_delay(attempt, 0.5, rng)
                assert 0.75 * base <= delay <= 1.25 * base

    def test_same_seed_same_schedule(self):
        a = [_backoff_delay(n, 0.5, random.Random(3)) for n in range(1, 5)]
        b = [_backoff_delay(n, 0.5, random.Random(3)) for n in range(1, 5)]
        assert a == b

    def test_no_rng_means_no_jitter(self):
        assert _backoff_delay(3, 0.5) == 2.0

    def test_zero_backoff_is_zero(self):
        assert _backoff_delay(5, 0.0, random.Random(1)) == 0.0


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(3)
        family = "compress/advanced"
        for _ in range(2):
            breaker.record_failure(family)
        assert not breaker.is_open(family)
        breaker.record_failure(family)
        assert breaker.is_open(family)

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(2)
        breaker.record_failure("f")
        breaker.record_success("f")
        breaker.record_failure("f")
        assert not breaker.is_open("f")

    def test_zero_threshold_disables(self):
        breaker = CircuitBreaker(0)
        for _ in range(100):
            breaker.record_failure("f")
        assert not breaker.is_open("f")
        assert breaker.snapshot() == {}

    def test_snapshot_reports_open_families(self):
        breaker = CircuitBreaker(1)
        breaker.record_failure("bad/advanced")
        breaker.skip("bad/advanced")
        breaker.record_failure("ok/basic")
        breaker.record_success("ok/basic")
        snap = breaker.snapshot()
        assert snap["bad/advanced"]["state"] == "open"
        assert snap["bad/advanced"]["skipped_cells"] == 1
        assert "ok/basic" not in snap  # recovered, nothing to report

    def test_family_is_workload_scheme(self):
        assert _family(COMPRESS) == "compress/conventional"
        assert _family(Cell("go", "advanced", 8, None)) == "go/advanced"


class TestBreakerInSerialPath:
    def test_family_fails_fast_once_open(self, monkeypatch):
        calls = []

        def failing(cell):
            calls.append(cell)
            raise RuntimeError("deterministic pipeline bug")

        monkeypatch.setattr(harness, "compute_cell", failing)
        cells = compress_family(4)
        report = RunReport()
        outcomes = run_cells(
            cells, retries=0, backoff=0.0, breaker_threshold=2, report=report
        )
        assert len(calls) == 2  # third and fourth cells never ran
        first, second, third, fourth = outcomes
        assert first.error.type == "RuntimeError" and first.attempts == 1
        assert second.error.type == "RuntimeError"
        for skipped in (third, fourth):
            assert skipped.status == "failed"
            assert skipped.error.type == "CircuitOpen"
            assert skipped.attempts == 0
        state = report.breakers["compress/conventional"]
        assert state["state"] == "open"
        assert state["skipped_cells"] == 2

    def test_open_breaker_swallows_remaining_retries(self, monkeypatch):
        def failing(cell):
            raise RuntimeError("boom")

        monkeypatch.setattr(harness, "compute_cell", failing)
        cells = compress_family(2)
        outcomes = run_cells(
            cells, retries=5, backoff=0.0, breaker_threshold=1
        )
        # the tripping cell keeps its real error and stops retrying
        assert outcomes[0].error.type == "RuntimeError"
        assert outcomes[0].attempts == 1
        assert outcomes[1].error.type == "CircuitOpen"

    def test_disabled_breaker_preserves_retry_semantics(self, monkeypatch):
        attempts = []

        def flaky(cell):
            attempts.append(cell)
            raise RuntimeError("always")

        monkeypatch.setattr(harness, "compute_cell", flaky)
        [outcome] = run_cells([COMPRESS], retries=2, backoff=0.0)
        assert outcome.attempts == 3
        assert len(attempts) == 3


class TestBreakerInPoolPath:
    def test_queued_family_cells_skip_after_trip(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "execute:error:match=compress"
        )
        from repro.faults import reset_faults

        reset_faults()
        cells = compress_family(4) + [M88K]
        report = RunReport()
        outcomes = run_cells(
            cells, jobs=2, retries=0, backoff=0.0,
            breaker_threshold=1, report=report,
        )
        by_key = {o.cell: o for o in outcomes}
        assert by_key[M88K].ok
        compress_outcomes = [o for o in outcomes if o.cell.workload == "compress"]
        real = [o for o in compress_outcomes if o.error.type == "FaultInjected"]
        skipped = [o for o in compress_outcomes if o.error.type == "CircuitOpen"]
        assert len(real) + len(skipped) == 4
        assert len(real) >= 1  # at least the tripping cell has its real error
        assert len(skipped) >= 2  # everything popped after the trip skips
        for o in skipped:
            assert o.attempts == 0
        assert report.breakers["compress/conventional"]["state"] == "open"


def _beating_compute(cell):
    """~2.5s of scripted work with a heartbeat every 0.25s, then the
    real (fast) pipeline so the outcome carries a valid result."""
    from repro.experiments.runner import run_benchmark

    start = time.perf_counter()
    for i in range(10):
        time.sleep(0.25)
        report_progress(executed=i + 1)
    result = run_benchmark(
        cell.workload, cell.scheme, width=cell.width, scale=cell.scale
    )
    return result, time.perf_counter() - start


def _stalled_compute(cell):
    report_progress(stage="simulate", cycles=42)
    time.sleep(120)
    raise AssertionError("unreachable")


class TestWatchdog:
    def test_progressing_cell_outlives_the_soft_timeout(self, monkeypatch):
        """2.5s of beating work under a 1s soft timeout must finish —
        the old blind deadline would have killed it."""
        monkeypatch.setattr(harness, "compute_cell", _beating_compute)
        outcomes = run_cells(
            [COMPRESS, M88K], jobs=2, timeout=1.0, retries=0
        )
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        assert all(o.attempts == 1 for o in outcomes)

    def test_hard_timeout_caps_even_progressing_cells(self, monkeypatch):
        monkeypatch.setattr(harness, "compute_cell", _beating_compute)
        outcomes = run_cells(
            [COMPRESS, M88K], jobs=2, timeout=1.0, hard_timeout=1.6,
            retries=0,
        )
        assert all(o.status == "timeout" for o in outcomes)
        for o in outcomes:
            assert "hard" in o.error.message
            assert o.progress is not None
            assert o.progress["executed"] >= 1

    def test_stalled_cell_is_killed_with_progress_attached(self, monkeypatch):
        monkeypatch.setattr(harness, "compute_cell", _stalled_compute)
        start = time.monotonic()
        outcomes = run_cells([COMPRESS, M88K], jobs=2, timeout=2.0, retries=0)
        elapsed = time.monotonic() - start
        assert all(o.status == "timeout" for o in outcomes)
        for o in outcomes:
            assert o.error.type == "Timeout"
            assert "2" in o.error.message
            assert o.error.stage == "simulate"  # attributed via heartbeat
            assert o.progress == {
                "stage": "simulate", "cycles": 42, "checkpoint": False,
            }
        # one extension (first look sees the initial beat), then killed
        assert elapsed < 30


class TestStopEvent:
    def test_preset_stop_aborts_without_computing(self, monkeypatch):
        def must_not_run(cell):
            raise AssertionError("computed despite stop")

        monkeypatch.setattr(harness, "compute_cell", must_not_run)
        stop = threading.Event()
        stop.set()
        report = RunReport()
        outcomes = run_cells(
            [COMPRESS, M88K], stop=stop, report=report, jobs=2, timeout=5.0
        )
        assert report.aborted is True
        for o in outcomes:
            assert o.status == "failed"
            assert o.error.type == "Aborted"
            assert o.attempts == 0

    def test_stop_cuts_backoff_sleep_short(self, monkeypatch):
        def failing(cell):
            raise RuntimeError("boom")

        monkeypatch.setattr(harness, "compute_cell", failing)
        stop = threading.Event()
        timer = threading.Timer(0.3, stop.set)
        timer.start()
        start = time.monotonic()
        try:
            run_cells([COMPRESS], retries=3, backoff=20.0, stop=stop)
        finally:
            timer.cancel()
        assert time.monotonic() - start < 5.0


class TestFailureProgressInDocuments:
    def test_serial_failure_carries_progress(self, monkeypatch):
        def failing(cell):
            report_progress(stage="simulate", cycles=900, checkpoint_cycle=800)
            raise RuntimeError("died mid-simulation")

        monkeypatch.setattr(harness, "compute_cell", failing)
        [outcome] = run_cells([COMPRESS], retries=0)
        assert outcome.progress == {
            "stage": "simulate",
            "cycles": 900,
            "checkpoint_cycle": 800,
            "checkpoint": True,
        }

        doc = build_document(
            "smoke", [outcome], jobs=1, total_seconds=0.1,
            breakers={"compress/conventional": {
                "state": "open", "consecutive_failures": 1,
                "threshold": 1, "skipped_cells": 0,
            }},
        )
        validate_document(doc)
        [failure] = doc["failures"]
        assert failure["progress"]["checkpoint"] is True
        assert doc["breakers"]["compress/conventional"]["state"] == "open"

    def test_clean_document_has_no_breakers_key(self):
        [outcome] = run_cells([COMPRESS])
        doc = build_document(
            "smoke", [outcome], jobs=1, total_seconds=0.1, breakers={}
        )
        validate_document(doc)
        assert "breakers" not in doc
        assert "progress" not in doc["cells"][0]
