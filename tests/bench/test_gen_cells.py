"""Generator specs through the bench matrix: cell validation, canonical
cache keys, and the gen-smoke suite end to end."""

from __future__ import annotations

import pytest

from repro.bench.cache import cell_key
from repro.bench.harness import run_cells
from repro.bench.matrix import Cell, suite_cells
from repro.errors import ReproError


def test_cell_accepts_and_canonicalizes_gen_specs():
    cell = Cell("gen:mixer?seed=7&ldst=0.3&calls=0.25", "advanced", 4)
    assert cell.workload == "gen:mixer?ldst=0.3&seed=7"
    assert cell.label.startswith("gen:mixer?ldst=0.3&seed=7/advanced")


def test_equivalent_spellings_share_a_cache_key():
    a = Cell("gen:mixer?seed=7&ldst=0.3", "advanced", 4)
    b = Cell("gen:mixer?ldst=0.3&seed=7", "advanced", 4)
    assert cell_key(a) == cell_key(b)


def test_different_seeds_get_different_cache_keys():
    a = Cell("gen:mixer?seed=7", "advanced", 4)
    b = Cell("gen:mixer?seed=8", "advanced", 4)
    assert cell_key(a) != cell_key(b)


def test_malformed_gen_spec_is_rejected():
    with pytest.raises(ReproError):
        Cell("gen:mixer?bogus=1", "advanced", 4)
    with pytest.raises(ReproError):
        Cell("gen:unknown?seed=1", "advanced", 4)


def test_unknown_workload_error_mentions_generators():
    with pytest.raises(ReproError, match="generator specs"):
        Cell("not-a-workload", "advanced", 4)


def test_gen_smoke_suite_shape():
    cells = suite_cells("gen-smoke")
    assert len(cells) == 9
    assert all(c.workload.startswith("gen:") for c in cells)


def test_gen_cell_runs_through_the_harness():
    cell = Cell("gen:chains?scale=10&seed=1", "advanced", 4)
    outcomes = run_cells([cell], jobs=1, cache=None)
    assert len(outcomes) == 1
    assert outcomes[0].ok
    assert outcomes[0].result.cycles > 0


def test_gen_cells_round_trip_through_documents():
    cell = Cell("gen:mixer?scale=10&seed=4", "basic", 4)
    assert Cell.from_dict(cell.as_dict()) == cell
