"""Harness: memo/disk resolution, fan-out, and serial≡parallel equality."""

from __future__ import annotations

import pytest

from repro.bench.cache import ResultCache
from repro.bench.harness import clear_memo, results_by_cell, run_cells
from repro.bench.matrix import Cell
from repro.bench.results import result_to_dict

from .conftest import SMALL

CELLS = [
    Cell(name, scheme, 4, scale)
    for name, scale in SMALL.items()
    for scheme in ("conventional", "advanced")
]


def as_dicts(outcomes):
    return {o.cell: result_to_dict(o.result) for o in outcomes}


class TestResolution:
    def test_first_run_computes(self):
        [outcome] = run_cells([CELLS[0]])
        assert outcome.source == "computed" and not outcome.cached
        assert outcome.seconds > 0
        assert outcome.compute_seconds == outcome.seconds
        assert outcome.result.cycles > 0

    def test_second_run_hits_memo(self):
        run_cells([CELLS[0]])
        [outcome] = run_cells([CELLS[0]])
        assert outcome.source == "memo" and outcome.cached
        assert outcome.compute_seconds > 0  # original pipeline time kept

    def test_disk_hit_after_memo_cleared(self, tmp_path):
        cache = ResultCache(tmp_path)
        [fresh] = run_cells([CELLS[0]], cache=cache)
        clear_memo()
        [replayed] = run_cells([CELLS[0]], cache=cache)
        assert replayed.source == "disk" and replayed.cached
        assert result_to_dict(replayed.result) == result_to_dict(fresh.result)
        assert replayed.compute_seconds == pytest.approx(fresh.compute_seconds)

    def test_warm_cache_hit_rate_is_total(self, tmp_path):
        """Acceptance bar: a warm-cache rerun replays >90% of cells."""
        cache = ResultCache(tmp_path)
        run_cells(CELLS, cache=cache)
        clear_memo()
        rerun_cache = ResultCache(tmp_path)
        outcomes = run_cells(CELLS, cache=rerun_cache)
        assert all(o.cached for o in outcomes)
        assert rerun_cache.stats()["hit_rate"] > 0.9

    def test_force_recomputes_and_rewrites(self, tmp_path):
        cache = ResultCache(tmp_path)
        [first] = run_cells([CELLS[0]], cache=cache)
        [forced] = run_cells([CELLS[0]], cache=cache, force=True)
        assert forced.source == "computed" and not forced.cached
        assert result_to_dict(forced.result) == result_to_dict(first.result)

    def test_duplicate_cells_resolved_once(self):
        outcomes = run_cells([CELLS[0], CELLS[0], CELLS[0]])
        assert len(outcomes) == 1

    def test_progress_callback_sees_every_cell(self):
        seen = []
        run_cells(CELLS[:2], progress=lambda o: seen.append(o.cell))
        assert sorted(seen, key=str) == sorted(CELLS[:2], key=str)


class TestMemoBound:
    def test_memo_is_lru_bounded(self, monkeypatch):
        """The process-wide memo evicts least-recently-used entries at
        the ``REPRO_BENCH_MEMO_CAP`` bound instead of growing forever."""
        from repro.bench import harness

        monkeypatch.setenv("REPRO_BENCH_MEMO_CAP", "2")
        fake = object()
        harness._memo_put("a", (fake, 0.1))
        harness._memo_put("b", (fake, 0.1))
        assert harness._memo_get("a") is not None  # touch: a is now MRU
        harness._memo_put("c", (fake, 0.1))
        assert len(harness._MEMO) == 2
        assert harness._memo_get("b") is None  # LRU entry evicted
        assert harness._memo_get("a") is not None
        assert harness._memo_get("c") is not None

    def test_bad_cap_value_falls_back_to_default(self, monkeypatch):
        from repro.bench import harness

        monkeypatch.setenv("REPRO_BENCH_MEMO_CAP", "many")
        assert harness._memo_cap() == harness.DEFAULT_MEMO_CAP
        monkeypatch.setenv("REPRO_BENCH_MEMO_CAP", "0")
        assert harness._memo_cap() == 1  # clamped to something usable


class TestParallel:
    def test_parallel_equals_serial(self):
        """The acceptance criterion: fanning out over worker processes
        changes wall-clock, never results."""
        serial = as_dicts(run_cells(CELLS, jobs=1))
        clear_memo()
        parallel = as_dicts(run_cells(CELLS, jobs=2))
        assert serial == parallel

    def test_parallel_populates_shared_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_cells(CELLS, jobs=2, cache=cache)
        clear_memo()
        outcomes = run_cells(CELLS, cache=ResultCache(tmp_path))
        assert all(o.source == "disk" for o in outcomes)

    def test_figure8_small_parallel_equals_serial(self):
        """Fig8-shaped matrix (basic+advanced per benchmark) at reduced
        scale: parallel and serial rows must agree exactly."""
        from repro.experiments import figure8

        names = list(SMALL)
        scale = SMALL["m88ksim"]
        cells = [
            Cell(n, s, 4, scale) for n in names for s in ("basic", "advanced")
        ]
        serial_rows = figure8.run(names, scale=scale)
        clear_memo()
        parallel_rows = figure8.run(names, scale=scale, jobs=2)
        assert serial_rows == parallel_rows
        # and the drivers' lookup helper covers the same cells
        clear_memo()
        table = results_by_cell(run_cells(cells, jobs=2))
        assert set(table) == set(cells)
