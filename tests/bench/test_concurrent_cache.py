"""Concurrent access to the process-wide shared stores.

The serve daemon points many handler threads at one
:class:`ResultCache` / :class:`TracePool`; these tests hammer the same
keys from many threads and assert no torn reads, no lost entries, and
accounting that adds up exactly.
"""

from __future__ import annotations

import threading

from repro.bench.cache import (
    ResultCache,
    clear_shared_result_caches,
    shared_result_cache,
)
from repro.trace.store import TracePool

THREADS = 8
ROUNDS = 50


def _run_threads(target, count: int = THREADS) -> list[BaseException]:
    errors: list[BaseException] = []

    def guarded(index: int) -> None:
        try:
            target(index)
        except BaseException as exc:  # noqa: BLE001 — collected for assert
            errors.append(exc)

    threads = [
        threading.Thread(target=guarded, args=(i,), daemon=True)
        for i in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    return errors


class TestSharedResultCache:
    def test_one_instance_per_root(self, tmp_path):
        clear_shared_result_caches()
        a = shared_result_cache(tmp_path / "c")
        b = shared_result_cache(tmp_path / "c")
        other = shared_result_cache(tmp_path / "d")
        assert a is b
        assert a is not other
        clear_shared_result_caches()

    def test_concurrent_same_key_no_torn_reads(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = "ee" + "0" * 62
        payload = {"result": {"cycles": 123, "blob": "x" * 512}}

        def worker(index: int) -> None:
            for _ in range(ROUNDS):
                cache.put(key, dict(payload))
                entry = cache.get(key)
                # concurrent writers are publishing identical content:
                # a reader sees the full entry or (never) a torn one
                if entry is not None:
                    assert entry["result"] == payload["result"]

        errors = _run_threads(worker)
        assert errors == []
        final = cache.get(key)
        assert final is not None and final["result"] == payload["result"]

    def test_hit_miss_accounting_adds_up(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        present = "aa" + "0" * 62
        absent = "bb" + "0" * 62
        cache.put(present, {"result": 1})

        def worker(index: int) -> None:
            for _ in range(ROUNDS):
                cache.get(present)
                cache.get(absent)

        errors = _run_threads(worker)
        assert errors == []
        stats = cache.stats()
        assert stats["hits"] == THREADS * ROUNDS
        assert stats["misses"] == THREADS * ROUNDS
        assert 0.0 < stats["hit_rate"] < 1.0

    def test_distinct_keys_from_many_threads(self, tmp_path):
        cache = ResultCache(tmp_path / "c")

        def worker(index: int) -> None:
            for round_no in range(ROUNDS):
                key = f"{index:02d}" + f"{round_no:062d}"
                cache.put(key, {"result": [index, round_no]})
                entry = cache.get(key)
                assert entry is not None
                assert entry["result"] == [index, round_no]

        errors = _run_threads(worker)
        assert errors == []


class TestTracePoolConcurrency:
    class _FakePack:
        def __init__(self, tag: int) -> None:
            self.tag = tag
            self.meta = {}

    def test_concurrent_get_put_and_eviction(self):
        pool = TracePool(cap=4)

        def worker(index: int) -> None:
            for round_no in range(ROUNDS):
                key = f"k{round_no % 6}"
                pack = pool.get(key)
                if pack is None:
                    pool.put(key, self._FakePack(round_no))
                else:
                    assert isinstance(pack.tag, int)

        errors = _run_threads(worker)
        assert errors == []
        assert len(pool) <= 4
        stats = pool.stats()
        assert stats["hits"] + stats["misses"] == THREADS * ROUNDS

    def test_clear_during_traffic_is_safe(self):
        pool = TracePool(cap=8)
        stop = threading.Event()

        def churn(index: int) -> None:
            round_no = 0
            while not stop.is_set() and round_no < ROUNDS * 4:
                pool.put(f"k{round_no % 3}", self._FakePack(round_no))
                pool.get(f"k{round_no % 3}")
                if index == 0 and round_no % 10 == 0:
                    pool.clear()
                round_no += 1

        errors = _run_threads(churn, count=4)
        stop.set()
        assert errors == []
        assert len(pool) <= 8
