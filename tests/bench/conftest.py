"""Shared fixtures for the bench-harness tests.

Every test starts with an empty in-process memo so cache/memo hit
assertions are about *this* test's actions, not a previous test's.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import clear_memo
from repro.trace.store import clear_trace_pool


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_memo()
    clear_trace_pool()
    yield
    clear_memo()
    clear_trace_pool()


#: Small, fast cells used throughout these tests (sub-second each).
SMALL = {"compress": 150, "m88ksim": 2}
