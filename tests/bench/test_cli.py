"""``repro bench`` CLI end-to-end (small smoke suite)."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.bench.results import load_document, validate_document


@pytest.fixture
def bench_env(tmp_path):
    return {
        "out": str(tmp_path / "BENCH_smoke.json"),
        "cache": str(tmp_path / "cache"),
    }


def bench(env, *extra):
    return main(
        [
            "bench",
            "--suite",
            "smoke",
            "--quiet",
            "--cache-dir",
            env["cache"],
            "-o",
            env["out"],
            *extra,
        ]
    )


class TestBenchCli:
    def test_list_suites(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for suite in ("fig8", "fig9", "fig10", "smoke", "all"):
            assert suite in out

    def test_unknown_suite(self, capsys):
        assert main(["bench", "--suite", "fig99"]) == 1
        assert "unknown suite" in capsys.readouterr().err

    def test_emits_valid_document(self, bench_env):
        assert bench(bench_env) == 0
        doc = load_document(bench_env["out"])
        validate_document(doc)
        assert doc["suite"] == "smoke"
        assert len(doc["cells"]) == 6
        assert {c["scheme"] for c in doc["cells"]} == {
            "conventional",
            "basic",
            "advanced",
        }

    def test_warm_rerun_hits_cache(self, bench_env):
        """Acceptance bar: warm rerun reports >90% cache hits."""
        assert bench(bench_env) == 0
        assert bench(bench_env) == 0
        doc = load_document(bench_env["out"])
        assert doc["cache"]["hit_rate"] > 0.9
        assert all(cell["cached"] for cell in doc["cells"])

    def test_self_baseline_passes(self, bench_env, capsys):
        assert bench(bench_env) == 0
        assert bench(bench_env, "--baseline", bench_env["out"]) == 0
        assert "verdict       : OK" in capsys.readouterr().out

    def test_regression_fails_gate(self, bench_env, tmp_path, capsys):
        assert bench(bench_env) == 0
        doc = load_document(bench_env["out"])
        # pretend the committed baseline was 30% faster than we are now
        for cell in doc["cells"]:
            cell["result"]["cycles"] = int(cell["result"]["cycles"] * 0.7)
        tampered = tmp_path / "baseline.json"
        tampered.write_text(json.dumps(doc))
        assert bench(bench_env, "--baseline", str(tampered)) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_validate_mode(self, bench_env, capsys):
        assert bench(bench_env) == 0
        assert main(["bench", "--validate", bench_env["out"]]) == 0
        assert "valid repro-bench/1" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        assert main(["bench", "--validate", str(bad)]) == 1
        assert "invalid bench document" in capsys.readouterr().err


class TestCommittedBaseline:
    def test_baseline_json_is_a_valid_fig8_document(self):
        """The committed CI baseline must always parse and validate."""
        import pathlib

        baseline = (
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "baseline.json"
        )
        doc = load_document(baseline)
        validate_document(doc)
        assert doc["suite"] == "fig8"
        assert len(doc["cells"]) == 14  # 7 SPECINT surrogates x 2 schemes
