"""HTTP contract tests: routing, request validation, error mapping.

Every error response must carry the structured ``error`` object with
the CLI-equivalent exit code, so a service client can reconstruct
exactly what ``repro <cmd>`` would have exited with.
"""

from __future__ import annotations

import json

from repro.experiments.runner import run_benchmark
from repro.serve.codes import http_status_for_type

from tests.serve.conftest import SMALL


class TestObservability:
    def test_healthz_and_readyz(self, daemon_factory):
        _, client = daemon_factory()
        health = client.healthz()
        assert health.status == 200
        assert health.body["status"] == "ok"
        assert health.body["draining"] is False
        assert client.get("/readyz").status == 200

    def test_stats_document_shape(self, daemon_factory):
        _, client = daemon_factory()
        client.post("compile", {"source": "int main() { return 1; }"})
        stats = client.stats()
        assert stats["queue"]["capacity"] == 8
        assert stats["counters"]["accepted"] >= 1
        assert stats["counters"]["completed"] >= 1
        assert "result" in stats["caches"]
        assert "trace_pool" in stats["caches"]
        assert stats["latency"]["count"] >= 1
        assert "compile" in stats["endpoints"]

    def test_unknown_get_path_is_404(self, daemon_factory):
        _, client = daemon_factory()
        response = client.get("/nope")
        assert response.status == 404
        assert response.error_type == "BadRequest"


class TestRequestValidation:
    def test_unknown_endpoint_lists_alternatives(self, daemon_factory):
        _, client = daemon_factory()
        response = client.post("frobnicate", {})
        assert response.status == 404
        assert "bench-cell" in response.body["error"]["message"]

    def test_bad_json_is_400(self, daemon_factory):
        _, client = daemon_factory()
        response = client.request(
            "POST", "/v1/compile", None, {"Content-Length": "0"}
        )
        # empty body defaults to {} -> missing source, still a clean 400
        assert response.status == 400
        assert response.body["error"]["status"] == 400

    def test_non_object_body_is_400(self, daemon_factory):
        import http.client

        daemon, client = daemon_factory()
        conn = http.client.HTTPConnection("127.0.0.1", daemon.bound_port)
        try:
            conn.request("POST", "/v1/compile", body=b"[1, 2]")
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert "JSON object" in body["error"]["message"]

    def test_oversized_body_is_413(self, daemon_factory):
        _, client = daemon_factory(max_body_bytes=64)
        response = client.post("compile", {"source": "x" * 200})
        assert response.status == 413

    def test_unknown_workload_is_400(self, daemon_factory):
        _, client = daemon_factory()
        response = client.post(
            "bench-cell", {"workload": "nope", "scheme": "basic", "width": 4}
        )
        assert response.status == 400
        assert response.error_type == "BadRequest"

    def test_parse_error_maps_to_400_with_exit_code(self, daemon_factory):
        _, client = daemon_factory()
        response = client.post("compile", {"source": "int main( {"})
        assert response.status == 400
        assert response.error_type == "ParseError"
        assert response.body["error"]["exit_code"] == 10

    def test_bad_deadline_is_400(self, daemon_factory):
        _, client = daemon_factory()
        response = client.post(
            "simulate",
            {"workload": "compress", "scheme": "basic", "width": 4,
             "scale": SMALL["compress"], "deadline_s": -1},
        )
        assert response.status == 400


class TestInlineEndpoints:
    def test_compile_returns_ir_and_functions(self, daemon_factory):
        _, client = daemon_factory()
        response = client.post(
            "compile", {"source": "int main() { return 2 + 3; }"}
        )
        assert response.ok
        assert "main" in response.body["functions"]
        assert "main" in response.body["ir"]

    def test_lint_diagnostics_are_data_not_errors(self, daemon_factory):
        _, client = daemon_factory()
        response = client.post(
            "lint", {"workload": "compress", "scheme": "advanced"}
        )
        assert response.ok
        assert response.body["summary"]["ok"] is True
        assert response.body["summary"]["rules_run"]

    def test_partition_stats_per_function(self, daemon_factory):
        _, client = daemon_factory()
        response = client.post(
            "partition", {"workload": "compress", "scheme": "basic"}
        )
        assert response.ok
        stats = response.body["functions"]["compress"]
        assert "offloaded_instructions" in stats
        assert "opcodes" in stats


class TestHeavyEndpoints:
    def test_simulate_matches_direct_run(self, daemon_factory):
        _, client = daemon_factory()
        response = client.post(
            "simulate",
            {"workload": "compress", "scheme": "advanced", "width": 4,
             "scale": SMALL["compress"]},
        )
        assert response.ok
        direct = run_benchmark(
            "compress", "advanced", width=4, scale=SMALL["compress"]
        )
        assert response.body["checksum"] == direct.checksum
        assert response.body["cycles"] == direct.cycles
        assert response.body["offload_fraction"] == direct.offload_fraction

    def test_bench_cell_returns_bench_cells_entry(self, daemon_factory):
        _, client = daemon_factory()
        payload = {"workload": "compress", "scheme": "basic", "width": 4,
                   "scale": SMALL["compress"]}
        response = client.post("bench-cell", payload)
        assert response.ok
        doc = response.body
        assert doc["status"] == "ok"
        assert doc["workload"] == "compress"
        assert doc["key"]
        assert doc["result"]["cycles"] > 0
        assert "throughput_ips" in doc

    def test_repeat_request_hits_cache(self, daemon_factory):
        _, client = daemon_factory()
        payload = {"workload": "compress", "scheme": "basic", "width": 4,
                   "scale": SMALL["compress"]}
        first = client.post("bench-cell", payload)
        second = client.post("bench-cell", payload)
        assert first.ok and second.ok
        assert second.body["cached"] is True
        assert second.body["result"] == first.body["result"]


class TestChaosHeader:
    def test_header_ignored_without_chaos_mode(self, daemon_factory):
        _, client = daemon_factory(chaos=False)
        response = client.post(
            "compile", {"source": "int main() { return 1; }"},
            fault_header="serve_admit:error",
        )
        assert response.ok

    def test_error_fault_fires_per_request(self, daemon_factory):
        _, client = daemon_factory(chaos=True)
        bad = client.post(
            "compile", {"source": "int main() { return 1; }"},
            fault_header="serve_admit:error",
        )
        assert bad.status == 500
        assert bad.error_type == "FaultInjected"
        # the injector was scoped to that one request
        good = client.post("compile", {"source": "int main() { return 1; }"})
        assert good.ok

    def test_crash_kind_is_refused(self, daemon_factory):
        _, client = daemon_factory(chaos=True)
        response = client.post(
            "compile", {"source": "int main() { return 1; }"},
            fault_header="serve_admit:crash",
        )
        assert response.status == 400
        assert "crash" in response.body["error"]["message"]

    def test_malformed_header_is_400(self, daemon_factory):
        _, client = daemon_factory(chaos=True)
        response = client.post(
            "compile", {"source": "int main() { return 1; }"},
            fault_header="not a spec !!",
        )
        assert response.status == 400


class TestStatusMapping:
    def test_harness_failure_types(self):
        assert http_status_for_type("Timeout") == 504
        assert http_status_for_type("CircuitOpen") == 503
        assert http_status_for_type("Aborted") == 503
        assert http_status_for_type("BrokenProcessPool") == 500

    def test_pipeline_error_types(self):
        assert http_status_for_type("ParseError") == 400
        assert http_status_for_type("WorkloadError") == 400
        assert http_status_for_type("PartitionError") == 422
        assert http_status_for_type("SimulationError") == 500
        assert http_status_for_type("NoSuchType") == 500
