"""Load-generator tests: plans, fault headers, and the BENCH document."""

from __future__ import annotations

import pytest

from repro.bench.results import validate_document
from repro.errors import ReproError
from repro.serve.loadgen import (
    DEFAULT_MIX,
    _fault_header,
    build_plan,
    build_serve_document,
    parse_mix,
    run_load,
    validate_serve_document,
)

from tests.serve.conftest import SMALL


class TestMix:
    def test_default_mix_parses(self):
        weights = dict(parse_mix(DEFAULT_MIX))
        assert weights["bench-cell"] == 4
        assert weights["compile"] == 1

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ReproError, match="unknown endpoint"):
            parse_mix("bench-cell=1,frobnicate=2")

    def test_bad_weight_rejected(self):
        with pytest.raises(ReproError, match="bad weight"):
            parse_mix("bench-cell=lots")

    def test_empty_mix_rejected(self):
        with pytest.raises(ReproError, match="selects no endpoints"):
            parse_mix("bench-cell=0")


class TestPlan:
    def test_plan_is_deterministic(self):
        a = build_plan(20, suite="smoke")
        b = build_plan(20, suite="smoke")
        assert a == b

    def test_plan_honours_mix_proportions(self):
        plan = build_plan(18, mix="bench-cell=2,compile=1", suite="smoke")
        endpoints = [endpoint for endpoint, _ in plan]
        assert endpoints.count("bench-cell") == 12
        assert endpoints.count("compile") == 6

    def test_deadline_reaches_heavy_payloads_only(self):
        plan = build_plan(10, mix="bench-cell=1,compile=1", deadline_s=7.5)
        for endpoint, payload in plan:
            if endpoint == "bench-cell":
                assert payload["deadline_s"] == 7.5
            else:
                assert "deadline_s" not in payload

    def test_lint_never_gets_conventional_scheme(self):
        plan = build_plan(30, mix="lint=1", suite="smoke")
        assert all(p["scheme"] in ("none", "basic", "advanced") for _, p in plan)


class TestFaultHeader:
    def test_per_request_seed_rewrite(self):
        spec = "seed=100;serve_admit:error:p=0.5"
        assert _fault_header(spec, 0) == "seed=100;serve_admit:error:p=0.5"
        assert _fault_header(spec, 7) == "seed=107;serve_admit:error:p=0.5"

    def test_seed_added_when_absent(self):
        assert _fault_header("serve_admit:error", 3) == "seed=3;serve_admit:error"

    def test_none_spec_passes_through(self):
        assert _fault_header(None, 5) is None


class TestDocument:
    def _small_run(self, client, **kwargs):
        plan = build_plan(
            8, mix="bench-cell=3,compile=1", suite="smoke", deadline_s=45.0
        )
        return run_load(client, plan, clients=4, **kwargs)

    def test_document_is_valid_bench_and_serve(self, daemon_factory):
        _, client = daemon_factory()
        result = self._small_run(client)
        doc = build_serve_document(result, stats=client.stats())
        validate_document(doc)       # plain BENCH consumers accept it
        validate_serve_document(doc)  # and the serve block is complete
        assert doc["suite"] == "serve:smoke"
        assert doc["cells"], "no bench-cell response made it into cells"
        serve = doc["serve"]
        assert serve["requests"] == 8
        assert serve["ok"] + serve["errors"] + serve["shed"] == 8
        assert serve["latency"]["count"] == 8
        assert "bench-cell" in serve["endpoints"]
        assert serve["daemon"]["counters"]["accepted"] >= 8

    def test_cells_are_deduped_by_key(self, daemon_factory):
        _, client = daemon_factory()
        result = self._small_run(client)
        doc = build_serve_document(result)
        keys = [cell["key"] for cell in doc["cells"]]
        assert len(keys) == len(set(keys))

    def test_missing_serve_block_rejected(self):
        with pytest.raises(ReproError, match="missing the 'serve' block"):
            validate_serve_document({"schema": "repro-bench/1"})

    def test_incomplete_serve_block_rejected(self):
        with pytest.raises(ReproError, match="serve block missing"):
            validate_serve_document({"schema": "repro-bench/1", "serve": {}})

    def test_fault_mix_failures_are_data(self, daemon_factory):
        _, client = daemon_factory(chaos=True)
        plan = build_plan(6, mix="compile=1")
        result = run_load(
            client, plan, clients=3, fault_mix="serve_admit:error"
        )
        summary = result.summary()
        assert summary["errors"] == 6  # every request hit the injected error
        assert summary["status_counts"].get("500") == 6
        assert result.transport_errors == 0

    def test_invalid_fault_mix_rejected_before_traffic(self, daemon_factory):
        _, client = daemon_factory()
        with pytest.raises(ReproError):
            run_load(client, build_plan(2), fault_mix="not a spec !!")
