"""Generator specs over the service boundary: every endpoint that takes
a workload name must accept ``gen:`` specs, and malformed specs must
map to clean 400s, never 500s."""

from __future__ import annotations


class TestGenSpecsOverHttp:
    def test_lint_accepts_a_gen_workload(self, daemon_factory):
        _, client = daemon_factory()
        response = client.post(
            "lint", {"workload": "gen:mixer?seed=1", "scale": 10}
        )
        assert response.status == 200
        assert response.body["summary"]["ok"] is True

    def test_bench_cell_runs_a_gen_spec(self, daemon_factory):
        _, client = daemon_factory()
        response = client.post(
            "bench-cell",
            {"workload": "gen:chains?scale=10&seed=2",
             "scheme": "advanced", "width": 4},
        )
        assert response.status == 200
        assert response.body["result"]["cycles"] > 0

    def test_equivalent_spellings_coalesce_in_the_result_cache(
        self, daemon_factory
    ):
        _, client = daemon_factory()
        params = {"scheme": "basic", "width": 4}
        first = client.post(
            "bench-cell",
            {"workload": "gen:mixer?scale=10&seed=3", **params},
        )
        assert first.status == 200
        second = client.post(
            "bench-cell",
            {"workload": "gen:mixer?seed=3&scale=10&calls=0.25", **params},
        )
        assert second.status == 200
        assert second.body["cached"] is True
        assert second.body["result"]["cycles"] == first.body["result"]["cycles"]

    def test_malformed_spec_is_a_clean_400(self, daemon_factory):
        _, client = daemon_factory()
        response = client.post(
            "bench-cell",
            {"workload": "gen:mixer?bogus=1", "scheme": "basic", "width": 4},
        )
        assert response.status == 400
        response = client.post("lint", {"workload": "gen:nope?seed=1"})
        assert response.status == 400
