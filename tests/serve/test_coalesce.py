"""Single-flight request coalescing: one computation per identical burst."""

from __future__ import annotations

import threading
import time

from tests.serve.conftest import SMALL

PAYLOAD = {
    "workload": "compress",
    "scheme": "basic",
    "width": 4,
    "scale": SMALL["compress"],
}


def _slow_run_cells(monkeypatch, calls, delay: float = 0.4):
    """Wrap run_cells with a delay + call counter (daemon is in-process)."""
    import repro.bench.harness as harness

    original = harness.run_cells

    def wrapped(cells, **kwargs):
        calls.append([c.label for c in cells])
        time.sleep(delay)
        return original(cells, **kwargs)

    monkeypatch.setattr(harness, "run_cells", wrapped)


def _burst(client, count: int, payload=None):
    responses = [None] * count
    barrier = threading.Barrier(count)

    def issue(index):
        barrier.wait()
        responses[index] = client.post("bench-cell", payload or PAYLOAD)

    threads = [
        threading.Thread(target=issue, args=(i,), daemon=True)
        for i in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    return responses


class TestCoalescing:
    def test_identical_burst_computes_once(self, daemon_factory, monkeypatch):
        daemon, client = daemon_factory(workers=4, queue_depth=16)
        calls: list = []
        _slow_run_cells(monkeypatch, calls)
        responses = _burst(client, 5)
        assert all(r is not None and r.ok for r in responses)
        # one leader computed; everyone else latched onto its flight
        assert len(calls) == 1
        assert daemon.state.counters.snapshot()["coalesced"] == 4
        results = [r.body["result"] for r in responses]
        assert all(result == results[0] for result in results)

    def test_followers_share_leader_key_and_doc(self, daemon_factory, monkeypatch):
        daemon, client = daemon_factory(workers=4, queue_depth=16)
        _slow_run_cells(monkeypatch, [])
        responses = _burst(client, 3)
        keys = {r.body["key"] for r in responses}
        assert len(keys) == 1

    def test_force_bypasses_coalescing(self, daemon_factory, monkeypatch):
        daemon, client = daemon_factory(workers=4, queue_depth=16)
        calls: list = []
        _slow_run_cells(monkeypatch, calls, delay=0.2)
        forced = dict(PAYLOAD, force=True)
        responses = _burst(client, 3, payload=forced)
        assert all(r is not None and r.ok for r in responses)
        # every force request recomputes: no flight sharing
        assert len(calls) == 3
        assert daemon.state.counters.snapshot()["coalesced"] == 0

    def test_flight_table_empties_after_burst(self, daemon_factory, monkeypatch):
        daemon, client = daemon_factory(workers=4, queue_depth=16)
        _slow_run_cells(monkeypatch, [])
        _burst(client, 4)
        assert daemon.state.flights == {}

    def test_distinct_cells_do_not_coalesce(self, daemon_factory, monkeypatch):
        daemon, client = daemon_factory(workers=4, queue_depth=16)
        calls: list = []
        _slow_run_cells(monkeypatch, calls, delay=0.2)
        responses = [None, None]

        def issue(index, scheme):
            responses[index] = client.post(
                "bench-cell", dict(PAYLOAD, scheme=scheme)
            )

        threads = [
            threading.Thread(target=issue, args=(0, "basic"), daemon=True),
            threading.Thread(target=issue, args=(1, "advanced"), daemon=True),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert all(r is not None and r.ok for r in responses)
        assert len(calls) == 2
        assert responses[0].body["key"] != responses[1].body["key"]
