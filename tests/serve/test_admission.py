"""Admission control, load shedding, and graceful drain."""

from __future__ import annotations

import threading
import time

from tests.serve.conftest import SMALL


def _wait_in_flight(daemon, count: int = 1, timeout: float = 3.0) -> bool:
    """Poll until ``count`` requests occupy the admission gate."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if daemon.state.gate.in_flight >= count:
            return True
        time.sleep(0.01)
    return False


def _hold_slot(client, barrier=None, secs: float = 1.0):
    """A request that occupies an admission slot for ``secs`` via a
    request-scoped hang fault (daemon must run --chaos)."""
    return client.post(
        "compile",
        {"source": "int main() { return 1; }"},
        fault_header=f"serve_admit:hang:secs={secs}",
    )


class TestShedding:
    def test_full_gate_sheds_with_retry_after(self, daemon_factory):
        daemon, client = daemon_factory(queue_depth=1, chaos=True)
        holder = threading.Thread(
            target=_hold_slot, args=(client,), kwargs={"secs": 2.0}, daemon=True
        )
        holder.start()
        assert _wait_in_flight(daemon), "holder never occupied the gate"
        shed = client.post("compile", {"source": "int main() { return 1; }"})
        holder.join()
        assert shed is not None, "never shed while the gate was held"
        assert shed.error_type == "Overloaded"
        assert shed.retry_after is not None and shed.retry_after >= 1
        assert daemon.state.counters.snapshot()["shed"] >= 1

    def test_shedding_is_cheap_and_recovers(self, daemon_factory):
        daemon, client = daemon_factory(queue_depth=1, chaos=True)
        holder = threading.Thread(
            target=_hold_slot, args=(client,), kwargs={"secs": 1.0}, daemon=True
        )
        holder.start()
        time.sleep(0.2)
        shed = client.post("compile", {"source": "int main() { return 1; }"})
        if shed.status == 429:
            # a shed answer must come back far faster than service time
            assert shed.seconds < 0.5
        holder.join()
        after = client.post("compile", {"source": "int main() { return 1; }"})
        assert after.ok, "gate did not free after the holder finished"


class TestDrain:
    def test_drain_flips_readyz_keeps_healthz(self, daemon_factory):
        daemon, client = daemon_factory(chaos=True)
        assert client.get("/readyz").status == 200
        # hold the gate so the drain stays in its grace window long
        # enough to observe the draining daemon still answering
        holder = threading.Thread(
            target=_hold_slot, args=(client,), kwargs={"secs": 2.0}, daemon=True
        )
        holder.start()
        assert _wait_in_flight(daemon)
        drain_thread = threading.Thread(
            target=daemon.drain, kwargs={"grace": 10.0}, daemon=True
        )
        drain_thread.start()
        assert daemon.state.draining.wait(2.0)
        assert client.get("/readyz").status == 503
        assert client.healthz().status == 200
        refused = client.post("compile", {"source": "int main() { return 1; }"})
        assert refused.status == 503
        assert refused.error_type == "Draining"
        assert daemon.state.counters.snapshot()["rejected_draining"] >= 1
        holder.join()
        drain_thread.join(timeout=15.0)
        assert not drain_thread.is_alive()

    def test_idle_drain_is_clean_and_idempotent(self, daemon_factory):
        daemon, client = daemon_factory()
        client.post("compile", {"source": "int main() { return 1; }"})
        assert daemon.drain(grace=5.0) is True
        assert daemon.drain(grace=5.0) is True  # joins the finished drain
        assert not daemon.state.stop.is_set()

    def test_drain_waits_for_in_flight_work(self, daemon_factory):
        daemon, client = daemon_factory(chaos=True)
        results = {}

        def slow_request():
            results["response"] = _hold_slot(client, secs=1.0)

        worker = threading.Thread(target=slow_request, daemon=True)
        worker.start()
        assert _wait_in_flight(daemon), "request never entered the gate"
        clean = daemon.drain(grace=10.0)
        worker.join(timeout=5.0)
        assert clean is True
        assert results["response"].ok, "in-flight work was dropped by drain"

    def test_expired_grace_sets_stop(self, daemon_factory):
        daemon, client = daemon_factory(chaos=True)
        worker = threading.Thread(
            target=_hold_slot, args=(client,), kwargs={"secs": 3.0}, daemon=True
        )
        worker.start()
        assert _wait_in_flight(daemon)
        clean = daemon.drain(grace=0.1)
        assert clean is False
        assert daemon.state.stop.is_set()
        worker.join(timeout=10.0)


class TestExecutionSlots:
    def test_heavy_concurrency_bounded_by_workers(self, daemon_factory):
        daemon, client = daemon_factory(workers=1, queue_depth=8)
        payloads = [
            {"workload": "compress", "scheme": scheme, "width": 4,
             "scale": SMALL["compress"]}
            for scheme in ("conventional", "basic", "advanced")
        ]
        responses = [None] * len(payloads)

        def issue(index):
            responses[index] = client.post("bench-cell", payloads[index])

        threads = [
            threading.Thread(target=issue, args=(i,), daemon=True)
            for i in range(len(payloads))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert all(r is not None and r.ok for r in responses)
        # distinct schemes -> distinct results, all served despite one slot
        checksums = {r.body["result"]["checksum"] for r in responses}
        assert len({r.body["key"] for r in responses}) == 3
        assert all(isinstance(c, int) for c in checksums)
