"""Fixtures for the serve tests: an embedded daemon per test.

The daemon runs on a background thread *inside* the pytest process
(port 0 → ephemeral), so tests can reach into ``daemon.state`` to
assert on counters and monkeypatch collaborators.  Workload execution
still happens in forked pool workers — exactly as in production —
because the daemon always sets a ``run_cells`` timeout.

Every test starts from clean process-wide state (memo, trace pool,
shared result caches, fault injector) so cache-hit and coalescing
assertions are about this test's actions alone.
"""

from __future__ import annotations

import pytest

from repro.bench.cache import clear_shared_result_caches
from repro.bench.harness import clear_memo
from repro.faults import reset_faults
from repro.faults.inject import FAULTS_ENV
from repro.serve.client import ServeClient
from repro.serve.daemon import ReproDaemon
from repro.serve.state import ServeConfig
from repro.trace.store import TRACE_CACHE_ENV, clear_trace_pool

#: Small, fast workloads (sub-second cells) used throughout.
SMALL = {"compress": 150, "m88ksim": 2}


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
    clear_memo()
    clear_trace_pool()
    clear_shared_result_caches()
    reset_faults()
    yield
    clear_memo()
    clear_trace_pool()
    clear_shared_result_caches()
    reset_faults()


@pytest.fixture
def daemon_factory(tmp_path):
    """Start embedded daemons; every one is drained at teardown."""
    started: list[ReproDaemon] = []

    def make(**overrides) -> tuple[ReproDaemon, ServeClient]:
        settings = dict(
            port=0,
            workers=2,
            queue_depth=8,
            timeout=30.0,
            hard_timeout=60.0,
            retries=0,
            drain_grace=10.0,
            quiet=True,
            cache_dir=str(tmp_path / "cache"),
        )
        settings.update(overrides)
        daemon = ReproDaemon(ServeConfig(**settings))
        daemon.start()
        started.append(daemon)
        client = ServeClient("127.0.0.1", daemon.bound_port, timeout=60.0)
        assert client.wait_ready(10.0), "daemon never became ready"
        return daemon, client

    yield make
    for daemon in started:
        daemon.drain(grace=2.0)
