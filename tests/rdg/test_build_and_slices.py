"""Tests for RDG construction and the paper's slice definitions (§3)."""

import pytest

from repro.ir.opcodes import Opcode, OpKind
from repro.ir.parser import parse_function
from repro.rdg.build import build_rdg
from repro.rdg.classify import TerminalKind, terminal_kind, terminals
from repro.rdg.graph import Node, Part, Pin
from repro.rdg.slices import (
    address_nodes,
    backward_slice,
    branch_slice,
    forward_slice,
    ldst_slice,
    store_value_slice,
)


def _node_for(rdg, mnemonic, part=Part.WHOLE):
    for node in rdg.nodes:
        if rdg.instruction(node).op.value == mnemonic and node.part is part:
            return node
    raise AssertionError(f"no node {mnemonic}/{part}")


class TestSplitNodes:
    def test_loads_and_stores_are_split(self, figure3):
        rdg = build_rdg(figure3)
        parts = {
            (rdg.instruction(n).op, n.part)
            for n in rdg.nodes
            if rdg.instruction(n).is_memory
        }
        assert (Opcode.LW, Part.ADDR) in parts
        assert (Opcode.LW, Part.VALUE) in parts
        assert (Opcode.SW, Part.ADDR) in parts
        assert (Opcode.SW, Part.VALUE) in parts

    def test_no_edge_between_halves(self, figure3):
        """The two halves of a memory instruction are decoupled (their
        coupling is through memory, which the RDG does not model)."""
        rdg = build_rdg(figure3)
        for node in rdg.nodes:
            if not rdg.instruction(node).is_memory:
                continue
            other = Node(node.uid, Part.VALUE if node.part is Part.ADDR else Part.ADDR)
            assert other not in rdg.succs[node]
            assert other not in rdg.preds[node]

    def test_address_nodes_pinned_int(self, figure3):
        rdg = build_rdg(figure3)
        for node in address_nodes(rdg):
            assert rdg.pin[node] is Pin.INT

    def test_node_count(self, straightline):
        rdg = build_rdg(straightline)
        assert len(rdg.nodes) == straightline.instruction_count()


class TestPins:
    def test_call_ret_param_jump_pinned_int(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  v1 = call f(v0)
  j out
out:
  ret v1
}
"""
        )
        rdg = build_rdg(func)
        for node in rdg.nodes:
            kind = rdg.instruction(node).kind
            if kind in (OpKind.CALL, OpKind.RET, OpKind.PARAM, OpKind.JUMP):
                assert rdg.pin[node] is Pin.INT

    def test_mult_div_pinned_int(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  v0 = li 6
  v1 = mult v0, v0
  v2 = div v1, v0
  ret v2
}
"""
        )
        rdg = build_rdg(func)
        assert rdg.pin[_node_for(rdg, "mult")] is Pin.INT
        assert rdg.pin[_node_for(rdg, "div")] is Pin.INT

    def test_byte_memory_value_pinned_int(self):
        func = parse_function(
            """
func f(0) {
entry:
  v0 = li 4096
  v1 = lb v0, 0
  sb v1, v0, 1
  ret
}
"""
        )
        rdg = build_rdg(func)
        assert rdg.pin[_node_for(rdg, "lb", Part.VALUE)] is Pin.INT
        assert rdg.pin[_node_for(rdg, "sb", Part.VALUE)] is Pin.INT

    def test_word_memory_value_free(self, figure3):
        rdg = build_rdg(figure3)
        assert rdg.pin.get(_node_for(rdg, "lw", Part.VALUE)) is None
        assert rdg.pin.get(_node_for(rdg, "sw", Part.VALUE)) is None

    def test_fp_ops_pinned_fp(self):
        func = parse_function(
            """
func f(0) {
entry:
  vf0 = li.s 1.0
  vf1 = add.s vf0, vf0
  ret
}
"""
        )
        rdg = build_rdg(func)
        assert rdg.pin[_node_for(rdg, "add.s")] is Pin.FP

    def test_zero_using_node_pinned_int(self):
        func = parse_function(
            """
func f(0) {
entry:
  v0 = addu $zero, $zero
  ret
}
"""
        )
        rdg = build_rdg(func)
        assert rdg.pin[_node_for(rdg, "addu")] is Pin.INT

    def test_cp_from_comp_consumer_pinned_int(self):
        func = parse_function(
            """
func f(0) returns {
entry:
  vf0 = li.s 1.5
  vf1 = cvt.w.s vf0
  v2 = cp_from_comp vf1
  v3 = addiu v2, 1
  ret v3
}
"""
        )
        rdg = build_rdg(func)
        assert rdg.pin[_node_for(rdg, "addiu")] is Pin.INT

    def test_convention_edges_marked(self):
        func = parse_function(
            """
func f(1) returns {
entry:
  v0 = param 0
  v1 = addiu v0, 1
  v2 = call f(v1)
  ret v2
}
"""
        )
        rdg = build_rdg(func)
        call = _node_for(rdg, "call")
        ret = _node_for(rdg, "ret")
        conv_dsts = {dst for (_src, dst) in rdg.convention_edges}
        assert call in conv_dsts
        assert ret in conv_dsts


class TestSlices:
    def test_ldst_slice_matches_paper_structure(self, figure3):
        """In the Figure 3 loop, the LdSt slice is the regno/address
        chain; the tick-increment and loop-test values are outside it."""
        rdg = build_rdg(figure3)
        slice_nodes = ldst_slice(rdg)
        ops_in = {rdg.instruction(n).op.value for n in slice_nodes}
        assert "sll" in ops_in and "addu" in ops_in
        assert _node_for(rdg, "addiu") not in slice_nodes or True  # v0 increment IS in slice
        # the lw VALUE node is not part of any address computation
        assert _node_for(rdg, "lw", Part.VALUE) not in slice_nodes
        assert _node_for(rdg, "sw", Part.VALUE) not in slice_nodes
        assert _node_for(rdg, "slti") not in slice_nodes

    def test_backward_slice_stops_at_load_value(self, figure3):
        rdg = build_rdg(figure3)
        # v6 = addiu v4, 1 ; backward slice = {addiu, lw-value}
        body_addiu = None
        for node in rdg.nodes:
            instr = rdg.instruction(node)
            if instr.op is Opcode.ADDIU and rdg.block(node) == "body":
                body_addiu = node
        back = backward_slice(rdg, body_addiu)
        assert back == {body_addiu, _node_for(rdg, "lw", Part.VALUE)}

    def test_forward_slice_stops_at_address(self, figure3):
        rdg = build_rdg(figure3)
        li_addr = None
        for node in rdg.nodes:
            instr = rdg.instruction(node)
            if instr.op is Opcode.LI and instr.imm == "reg_tick":
                li_addr = node
        fwd = forward_slice(rdg, li_addr)
        # reaches address nodes but never load/store VALUE halves
        assert any(n.part is Part.ADDR for n in fwd)
        assert all(
            n.part is not Part.VALUE or not rdg.instruction(n).is_memory for n in fwd
        )

    def test_branch_slice(self, figure3):
        rdg = build_rdg(figure3)
        bltz = _node_for(rdg, "bltz")
        slice_nodes = branch_slice(rdg, bltz)
        assert _node_for(rdg, "lw", Part.VALUE) in slice_nodes
        assert bltz in slice_nodes

    def test_branch_slice_rejects_non_branch(self, figure3):
        rdg = build_rdg(figure3)
        with pytest.raises(ValueError):
            branch_slice(rdg, _node_for(rdg, "sll"))

    def test_store_value_slice(self, figure3):
        rdg = build_rdg(figure3)
        sv = _node_for(rdg, "sw", Part.VALUE)
        slice_nodes = store_value_slice(rdg, sv)
        ops = {rdg.instruction(n).op.value for n in slice_nodes}
        assert ops == {"sw", "addiu", "lw"}  # value <- addiu <- lw-value

    def test_store_value_slice_rejects_addr_node(self, figure3):
        rdg = build_rdg(figure3)
        with pytest.raises(ValueError):
            store_value_slice(rdg, _node_for(rdg, "sw", Part.ADDR))


class TestTerminals:
    def test_terminal_kinds(self, figure3):
        rdg = build_rdg(figure3)
        kinds = terminals(rdg)
        assert len(kinds[TerminalKind.ADDRESS]) == 2  # lw addr + sw addr
        assert len(kinds[TerminalKind.BRANCH]) == 2  # bltz + bne
        assert len(kinds[TerminalKind.STORE_VALUE]) == 1
        assert len(kinds[TerminalKind.RETURN]) == 1

    def test_interior_nodes_are_not_terminals(self, figure3):
        rdg = build_rdg(figure3)
        assert terminal_kind(rdg, _node_for(rdg, "sll")) is None
        assert terminal_kind(rdg, _node_for(rdg, "lw", Part.VALUE)) is None
