#!/usr/bin/env python
"""CI kill-and-resume scenario: a fig8 sweep survives a SIGKILLed
worker and an always-hanging cell, then gates against the baseline.

Pass 1 (faults injected) runs the full fig8 suite with checkpointing
enabled and two injected disasters:

* ``gcc/advanced`` is killed (``os._exit``) mid-publish of its second
  checkpoint, ~80% through the simulation.  The fault spec uses
  ``after=1:times=1``, so a *cold* retry would deterministically crash
  at its own second publish — the cell can only finish by resuming
  from the first (surviving) checkpoint.  Its ``status: ok`` in the
  BENCH document is therefore proof of mid-simulation resumption.
* ``li/basic`` hangs forever at the simulate stage.  The progress-aware
  watchdog must kill it (twice, exhausting its attempts), and the two
  consecutive failures must open the family's circuit breaker, which
  the BENCH document records.

Pass 2 (no faults) resumes the same sweep from the run journal: only
the hung cell recomputes, and the completed document must gate cleanly
against ``benchmarks/baseline.json`` — interrupted-and-resumed results
are bit-identical to healthy ones, which is the whole point.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BASELINE = ROOT / "benchmarks" / "baseline.json"
OUTPUT = "BENCH_fig8_chaos.json"
CKPT_DIR = ".repro-ckpt-chaos"

CRASH_CELL = ("gcc", "advanced")
HANG_CELL = ("li", "basic")


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def bench(*args: str, faults: str | None = None) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env.pop("REPRO_FAULTS", None)
    if faults is not None:
        env["REPRO_FAULTS"] = faults
    command = [sys.executable, "-m", "repro", "bench", *args]
    print(f"+ {' '.join(command)}" + (f"  [REPRO_FAULTS={faults}]" if faults else ""))
    return subprocess.run(command, cwd=ROOT, env=env).returncode


def main() -> None:
    baseline = json.loads(BASELINE.read_text())
    by_cell = {(c["workload"], c["scheme"]): c for c in baseline["cells"]}
    crash_cycles = by_cell[CRASH_CELL]["result"]["cycles"]
    # two checkpoints inside the run (at 40% and 80% of the baseline
    # cycle count), robust to ±10% drift of the current code's cycles
    interval = int(crash_cycles * 0.4)
    faults = (
        f"ckpt_write:crash:match={'/'.join(CRASH_CELL)}@publish:after=1:times=1;"
        f"simulate:hang:secs=3600:match={'/'.join(HANG_CELL)}"
    )

    # -- pass 1: the sweep under fire ----------------------------------
    code = bench(
        "--suite", "fig8", "--jobs", "4",
        "--timeout", "60", "--retries", "1", "--breaker-threshold", "2",
        "--checkpoint-cycles", str(interval), "--checkpoint-dir", CKPT_DIR,
        "--cache-dir", ".repro-bench-cache-chaos",
        "--trace-cache", ".repro-trace-cache-chaos",
        "--output", OUTPUT, "--max-failures", "1",
        faults=faults,
    )
    if code != 0:
        fail(f"chaos pass exited {code}; expected 0 (one tolerated failure)")

    doc = json.loads((ROOT / OUTPUT).read_text())
    ok_cells = {(c["workload"], c["scheme"]) for c in doc["cells"]}
    failures = {(f["workload"], f["scheme"]): f for f in doc["failures"]}

    if CRASH_CELL not in ok_cells:
        fail(f"{CRASH_CELL} did not finish ok; a cold restart would have "
             "crashed again, so checkpoint resumption is broken")
    if set(failures) != {HANG_CELL}:
        fail(f"expected exactly {HANG_CELL} to fail, got {sorted(failures)}")
    hung = failures[HANG_CELL]
    if hung["status"] != "timeout":
        fail(f"hung cell recorded as {hung['status']!r}, expected timeout")
    if hung.get("attempts") != 2:
        fail(f"hung cell spent {hung.get('attempts')} attempts, expected 2")
    if "progress" not in hung:
        fail("hung cell's failure record carries no progress heartbeat")

    family = "/".join(HANG_CELL)
    breaker = doc.get("breakers", {}).get(family)
    if not breaker or breaker.get("state") != "open":
        fail(f"breaker for {family} not open in the BENCH document: {breaker}")

    # the kill fired mid-publish: the aborted temp file is still in the
    # checkpoint directory (os._exit skipped the cleanup), while every
    # completed cell cleared its slot
    orphans = list((ROOT / CKPT_DIR).rglob("*.tmp-*"))
    if not orphans:
        fail("no mid-publish temp orphan found; the crash fault never fired "
             "and the resumption claim above is vacuous")
    slots = list((ROOT / CKPT_DIR).rglob("*.rck"))
    if slots:
        fail(f"completed cells left checkpoint slots behind: {slots}")

    print("pass 1 ok: crashed cell resumed, hung family's breaker open")

    # -- pass 2: clean resume, gated against the committed baseline ----
    code = bench(
        "--suite", "fig8", "--jobs", "4", "--resume",
        "--checkpoint-cycles", str(interval), "--checkpoint-dir", CKPT_DIR,
        "--cache-dir", ".repro-bench-cache-chaos",
        "--trace-cache", ".repro-trace-cache-chaos",
        "--output", OUTPUT,
        "--baseline", str(BASELINE), "--tolerance", "10",
    )
    if code != 0:
        fail(f"resume pass exited {code}; resumed sweep did not gate clean")

    doc = json.loads((ROOT / OUTPUT).read_text())
    if doc["failures"]:
        fail(f"resume pass still has failures: {doc['failures']}")
    journal_sources = [
        c["source"] for c in doc["cells"]
        if (c["workload"], c["scheme"]) != HANG_CELL
    ]
    if not all(source == "journal" for source in journal_sources):
        fail("resume pass recomputed cells the journal already had: "
             f"{sorted(set(journal_sources))}")
    print("pass 2 ok: resumed sweep complete and within baseline tolerance")


if __name__ == "__main__":
    main()
