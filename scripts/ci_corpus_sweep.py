#!/usr/bin/env python
"""CI corpus sweep: lint/analyze every example and workload, in-process.

One implementation behind the two CI corpus steps, replacing three
copy-pasted bash loops with identical coverage:

* ``lint`` mode — ``repro lint`` over every ``examples/*.mc`` file and
  every registered workload, under both partition schemes, failing on
  any warning.
* ``analysis`` mode — ``repro analyze --fail-on warning`` over every
  example and over all workloads at scale 3, then the two
  abstract-interpretation lint rules (``profit-certification``,
  ``value-range``) standalone over the full corpus, both schemes.

Each target runs in-process through ``repro.__main__.main`` (one Python
startup for the whole sweep instead of one per target).  Failures are
collected and summarized at the end so one bad target does not hide
the rest of the corpus.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.__main__ import main as repro_main  # noqa: E402
from repro.workloads import WORKLOADS  # noqa: E402

SCHEMES = ("basic", "advanced")
ABSINT_RULES = "profit-certification,value-range"


def corpus_targets() -> list[str]:
    """Every example file plus every registered workload, sorted."""
    examples = sorted(str(p) for p in (ROOT / "examples").glob("*.mc"))
    if not examples:
        raise SystemExit("FAIL: no examples/*.mc files found")
    if not WORKLOADS:
        raise SystemExit("FAIL: no registered workloads")
    return examples + [f"workload:{name}" for name in sorted(WORKLOADS)]


def run_one(label: str, argv: list[str], failures: list[str]) -> None:
    print(f"== repro {' '.join(argv)} ==", flush=True)
    status = repro_main(argv)
    if status != 0:
        print(f"FAILED (exit {status}): {label}", file=sys.stderr, flush=True)
        failures.append(f"{label} (exit {status})")


def sweep_lint(failures: list[str]) -> None:
    for target in corpus_targets():
        for scheme in SCHEMES:
            run_one(
                f"lint {target} --scheme {scheme}",
                ["lint", target, "--scheme", scheme, "--fail-on", "warning"],
                failures,
            )


def sweep_analysis(failures: list[str]) -> None:
    targets = corpus_targets()
    for target in targets:
        if not target.startswith("workload:"):
            run_one(
                f"analyze {target}",
                ["analyze", target, "--fail-on", "warning"],
                failures,
            )
    run_one(
        "analyze (all workloads)",
        ["analyze", "--scale", "3", "--fail-on", "warning"],
        failures,
    )
    for target in targets:
        for scheme in SCHEMES:
            run_one(
                f"lint {target} --scheme {scheme} (absint rules)",
                [
                    "lint", target, "--scheme", scheme,
                    "--rules", ABSINT_RULES, "--fail-on", "warning",
                ],
                failures,
            )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "mode", choices=("lint", "analysis"),
        help="lint: both schemes over the corpus; "
        "analysis: analyzer warnings + absint lint rules",
    )
    args = parser.parse_args()

    failures: list[str] = []
    if args.mode == "lint":
        sweep_lint(failures)
    else:
        sweep_analysis(failures)

    if failures:
        print(
            f"\ncorpus sweep ({args.mode}): {len(failures)} failure(s):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\ncorpus sweep ({args.mode}): all targets clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
