#!/usr/bin/env python3
"""CI serve-smoke: boot the daemon, drive load with faults, drain it.

The end-to-end service scenario, as a single self-contained script:

1. start ``repro serve`` on an ephemeral port (``--port-file``) with a
   chaos spec in its environment — a crash-poisoned workload family and
   probabilistic cache corruption;
2. assert ``/healthz`` answers immediately;
3. run ``repro loadgen`` (closed loop, a small per-request fault mix on
   top) and require exit 0 — every request must get an answer;
4. validate ``BENCH_serve.json``: a well-formed ``repro-bench/1``
   document whose ``serve`` block carries latency percentiles and shed
   accounting, with healthy cells present despite the chaos;
5. assert the daemon is still healthy, then SIGTERM it and require a
   clean exit 0 within the drain grace.

Any failure exits non-zero with a diagnostic; CI uploads the BENCH
document either way.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = str(REPO / "src")
PORT_FILE = REPO / ".serve-port"
OUTPUT = REPO / "BENCH_serve.json"

#: Daemon-side chaos: every m88ksim execution crashes its pool worker,
#: and cache reads are corrupted 30% of the time.
DAEMON_FAULTS = (
    "seed=23;"
    "execute:crash:match=m88ksim;"
    "cache.get:corrupt:p=0.3"
)

#: Request-side chaos forwarded by loadgen: an occasional injected
#: error at admission, exercising the 500 path under real traffic.
REQUEST_FAULTS = "serve_admit:error:p=0.05"

DRAIN_GRACE = 30.0


def fail(message: str) -> None:
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def http_get(port: int, path: str) -> tuple[int, dict]:
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read() or b"{}")


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["REPRO_FAULTS"] = DAEMON_FAULTS
    PORT_FILE.unlink(missing_ok=True)

    print(f"serve-smoke: starting daemon (faults: {DAEMON_FAULTS})")
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--port-file", str(PORT_FILE),
            "--workers", "2", "--queue-depth", "16",
            "--retries", "1", "--breaker-threshold", "3",
            "--timeout", "60", "--hard-timeout", "180",
            "--drain-grace", str(int(DRAIN_GRACE)),
            "--chaos", "--quiet",
            "--cache-dir", str(REPO / ".repro-bench-cache"),
        ],
        env=env,
        cwd=REPO,
    )
    try:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and not PORT_FILE.exists():
            if daemon.poll() is not None:
                fail(f"daemon died at startup (exit {daemon.returncode})")
            time.sleep(0.1)
        if not PORT_FILE.exists():
            fail("daemon never wrote its port file")
        port = int(PORT_FILE.read_text().strip())
        print(f"serve-smoke: daemon on port {port}")

        status, body = http_get(port, "/healthz")
        if status != 200 or body.get("status") != "ok":
            fail(f"/healthz before load: {status} {body}")

        loadgen_env = dict(os.environ)
        loadgen_env["PYTHONPATH"] = SRC
        loadgen = subprocess.run(
            [
                sys.executable, "-m", "repro", "loadgen",
                "--port-file", str(PORT_FILE),
                "--requests", "40", "--clients", "6",
                "--suite", "smoke", "--deadline", "150",
                "--fault-mix", REQUEST_FAULTS,
                "--output", str(OUTPUT),
            ],
            env=loadgen_env,
            cwd=REPO,
        )
        if loadgen.returncode != 0:
            fail(f"loadgen exited {loadgen.returncode}")

        sys.path.insert(0, SRC)
        from repro.serve.loadgen import validate_serve_document

        doc = json.loads(OUTPUT.read_text())
        validate_serve_document(doc)
        serve = doc["serve"]
        latency = serve["latency"]
        if serve["requests"] != 40:
            fail(f"expected 40 recorded requests, got {serve['requests']}")
        if not serve["ok"]:
            fail("no request succeeded under the fault mix")
        if latency.get("count") and "p99_ms" not in latency:
            fail("latency block lacks p99")
        if "shed" not in serve or "shed_rate" not in serve:
            fail("serve block lacks shed accounting")
        if not doc["cells"]:
            fail("no healthy cell made it into the document")
        crashed = [c for c in doc["cells"] if c["workload"] == "m88ksim"]
        if crashed:
            fail("crash-poisoned cells leaked into the healthy cells block")
        print(
            f"serve-smoke: {serve['ok']} ok / {serve['errors']} errors / "
            f"{serve['shed']} shed; p50 {latency.get('p50_ms')}ms "
            f"p99 {latency.get('p99_ms')}ms; "
            f"{len(doc['cells'])} cells, {len(doc['failures'])} failures"
        )

        status, body = http_get(port, "/healthz")
        if status != 200:
            fail(f"/healthz after load: {status} {body}")
        status, stats = http_get(port, "/stats")
        if status != 200 or stats["counters"]["accepted"] < 40:
            fail(f"/stats after load: {status} {stats.get('counters')}")

        print("serve-smoke: SIGTERM, expecting a clean drain")
        daemon.send_signal(signal.SIGTERM)
        try:
            returncode = daemon.wait(timeout=DRAIN_GRACE + 15.0)
        except subprocess.TimeoutExpired:
            fail("daemon did not exit within the drain grace")
        if returncode != 0:
            fail(f"daemon drained with exit {returncode}")
        print("serve-smoke: PASS")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10.0)


if __name__ == "__main__":
    raise SystemExit(main())
