"""Figure 10 — speedups on the 8-way machine.

Paper: improvements shrink dramatically once the INT subsystem alone is
4-wide; only high-ILP programs (m88ksim) retain a sizeable gain.
"""

import pytest

from repro.experiments import figure9, figure10


@pytest.fixture(scope="module")
def rows_8way():
    return figure10.run()


@pytest.fixture(scope="module")
def rows_4way():
    return figure9.run()


def test_figure10_rows(rows_8way, rows_4way, save_table, benchmark):
    save_table("figure10", figure10.format_table(rows_8way))
    by8 = {row.benchmark: row for row in rows_8way}
    by4 = {row.benchmark: row for row in rows_4way}

    # headline: 8-way gains are smaller than 4-way gains
    smaller = sum(
        by8[name].advanced_speedup_percent < by4[name].advanced_speedup_percent
        for name in by8
    )
    assert smaller >= len(by8) - 1  # allow one noisy exception
    # nothing slows down materially
    for row in rows_8way:
        assert row.advanced_speedup_percent > -2.0, row.benchmark
    # m88ksim (high parallelism) still benefits most (paper: ~12%)
    best = max(rows_8way, key=lambda r: r.advanced_speedup_percent)
    assert by8["m88ksim"].advanced_speedup_percent >= best.advanced_speedup_percent - 3.0

    benchmark.pedantic(lambda: figure10.run(), rounds=1, iterations=1)
