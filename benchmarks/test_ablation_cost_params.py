"""Ablation — cost-model parameters (DESIGN.md §5.3).

The paper found o_copy in [3, 6] and o_dupl in [1.5, 3] empirically
"yield the best results".  This sweep regenerates that finding on two
benchmarks whose advanced partitions depend on copies/duplicates.
"""

import pytest

from repro.experiments.runner import run_benchmark
from repro.partition.cost import CostParams

SCALES = {"compress": 400, "go": 2}
SETTINGS = [(3.0, 1.5), (4.0, 2.0), (6.0, 3.0), (6.0, 1.5), (12.0, 6.0)]


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for name, scale in SCALES.items():
        baseline = run_benchmark(name, "conventional", scale=scale)
        for o_copy, o_dupl in SETTINGS:
            result = run_benchmark(
                name,
                "advanced",
                scale=scale,
                cost_params=CostParams(o_copy=o_copy, o_dupl=o_dupl),
            )
            results[(name, o_copy, o_dupl)] = (
                result.offload_fraction,
                result.speedup_over(baseline),
            )
    return results


def test_cost_parameter_sweep(sweep, save_table, benchmark):
    lines = ["Ablation: cost parameters (o_copy, o_dupl) -> offload%, speedup%"]
    for (name, o_copy, o_dupl), (offload, speedup) in sorted(sweep.items()):
        lines.append(
            f"{name:10s} o_copy={o_copy:4.1f} o_dupl={o_dupl:4.1f}  "
            f"offload={100 * offload:5.1f}%  speedup={100 * (speedup - 1):+5.1f}%"
        )
    save_table("ablation_cost_params", "\n".join(lines))

    for name in SCALES:
        # cheaper communication can only offload at least as much
        low = sweep[(name, 3.0, 1.5)][0]
        high = sweep[(name, 12.0, 6.0)][0]
        assert low >= high - 1e-9, name
        # every setting is semantically safe and none is catastrophic
        for o_copy, o_dupl in SETTINGS:
            _, speedup = sweep[(name, o_copy, o_dupl)]
            assert speedup > 0.9, (name, o_copy, o_dupl)

    benchmark.pedantic(
        lambda: run_benchmark("go", "advanced", scale=SCALES["go"]),
        rounds=1,
        iterations=1,
    )
