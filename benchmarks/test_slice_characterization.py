"""§4's premise — the LdSt slice bounds the FPa partition near 50%.

Palacharla & Smith measured LdSt slices at "close to 50% of all dynamic
instructions" for integer programs; the paper uses this as the upper
bound on what its greedy partitioners could ever offload.  This
regenerates the characterization on the surrogates.
"""

import pytest

from repro.experiments import slices


@pytest.fixture(scope="module")
def rows():
    return slices.run()


def test_slice_characterization(rows, save_table, benchmark):
    save_table("slices", slices.format_table(rows))

    for row in rows:
        ldst_total = row.ldst_fraction + row.memory_ops_fraction
        # "close to 50%": accept a generous band around it
        assert 0.30 <= ldst_total <= 0.70, (row.benchmark, ldst_total)
        # shares are a partition of the dynamic instruction stream
        total = (
            row.ldst_fraction
            + row.memory_ops_fraction
            + row.offloadable_fraction
            + row.call_glue_fraction
            + row.other_fraction
        )
        assert total == pytest.approx(1.0, abs=1e-6), row.benchmark
    by_name = {row.benchmark: row for row in rows}
    # li's call-intensity shows up as the largest glue share
    assert by_name["li"].call_glue_fraction == max(
        row.call_glue_fraction for row in rows
    )

    benchmark.pedantic(lambda: slices.characterize("m88ksim", 2), rounds=1, iterations=1)
