"""Ablation — profile source (DESIGN.md §5.5).

The advanced scheme's cost model uses measured basic-block profiles when
available and the probabilistic estimate ``n_B = p_B * 5^{d_B}``
otherwise (§6.1).  This ablation compares both on benchmarks where the
choice plausibly matters.
"""

import pytest

from repro.experiments.runner import run_benchmark

SCALES = {"compress": 400, "gcc": 1, "perl": 1}


@pytest.fixture(scope="module")
def comparison():
    out = {}
    for name, scale in SCALES.items():
        baseline = run_benchmark(name, "conventional", scale=scale)
        measured = run_benchmark(name, "advanced", scale=scale, use_profile=True)
        estimated = run_benchmark(name, "advanced", scale=scale, use_profile=False)
        out[name] = {
            "measured": (measured.offload_fraction, measured.speedup_over(baseline)),
            "estimated": (estimated.offload_fraction, estimated.speedup_over(baseline)),
        }
    return out


def test_profile_ablation(comparison, save_table, benchmark):
    lines = ["Ablation: measured profile vs p_B * 5^d_B estimate (advanced scheme)"]
    for name, data in comparison.items():
        for kind in ("measured", "estimated"):
            offload, speedup = data[kind]
            lines.append(
                f"{name:10s} {kind:9s} offload={100 * offload:5.1f}%  "
                f"speedup={100 * (speedup - 1):+5.1f}%"
            )
    save_table("ablation_profile", "\n".join(lines))

    for name, data in comparison.items():
        # both profile sources must produce working, beneficial partitions
        assert data["measured"][1] > 0.95, name
        assert data["estimated"][1] > 0.95, name
        # and broadly similar offload (the estimate is crude but sane)
        measured_off = data["measured"][0]
        estimated_off = data["estimated"][0]
        assert abs(measured_off - estimated_off) < 0.30, name

    benchmark.pedantic(
        lambda: run_benchmark(
            "perl", "advanced", scale=SCALES["perl"], use_profile=False
        ),
        rounds=1,
        iterations=1,
    )
