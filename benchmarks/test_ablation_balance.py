"""Ablation — load-balance extension (§6.6 future work, §7.5).

The published greedy schemes do not consider load balance; the paper
predicts FP programs could improve if they did.  This ablation sweeps
the balance cap on the FP surrogates and on m88ksim (whose published
result already suffers measurable INT-idle-while-FPa-busy imbalance).
"""

import pytest

from repro.experiments.runner import run_benchmark

CASES = {"ear": 1, "swim": 2, "m88ksim": 6}
LIMITS = [None, 0.5, 0.35, 0.2]


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for name, scale in CASES.items():
        baseline = run_benchmark(name, "conventional", scale=scale)
        for limit in LIMITS:
            result = run_benchmark(
                name, "advanced", scale=scale, balance_limit=limit
            )
            results[(name, limit)] = (
                result.offload_fraction,
                result.speedup_over(baseline),
                result.stats.int_idle_while_fp_busy_fraction,
            )
    return results


def test_balance_ablation(sweep, save_table, benchmark):
    lines = ["Ablation: load-balance cap on the advanced scheme"]
    for (name, limit), (offload, speedup, imbalance) in sweep.items():
        label = "greedy" if limit is None else f"cap={limit:.2f}"
        lines.append(
            f"{name:8s} {label:9s} offload={100 * offload:5.1f}%  "
            f"speedup={100 * (speedup - 1):+5.1f}%  "
            f"int-idle-while-fpa-busy={100 * imbalance:5.1f}%"
        )
    save_table("ablation_balance", "\n".join(lines))

    for name in CASES:
        # tightening the cap monotonically reduces offload
        offloads = [sweep[(name, limit)][0] for limit in LIMITS]
        assert all(a >= b - 1e-9 for a, b in zip(offloads, offloads[1:])), name
        # balance caps sacrifice speedup for balance but never produce a
        # real slowdown over the conventional machine
        for limit in LIMITS[1:]:
            assert sweep[(name, limit)][1] > 0.97, (name, limit)
    # on the FP programs the cap does what §7.5 hoped: less INT idling
    # under FPa-busy cycles than the greedy partition
    assert sweep[("ear", 0.35)][2] < sweep[("ear", None)][2]

    benchmark.pedantic(
        lambda: run_benchmark("swim", "advanced", scale=CASES["swim"], balance_limit=0.35),
        rounds=1,
        iterations=1,
    )
