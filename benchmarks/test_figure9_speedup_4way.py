"""Figure 9 — speedups on the 4-way machine.

Paper: 2.5-23.1% for the advanced scheme; m88ksim at the top with >20%;
compress/ijpeg/m88ksim all above 10%; li at the bottom.
"""

import pytest

from repro.experiments import figure9


@pytest.fixture(scope="module")
def rows():
    return figure9.run()


def test_figure9_rows(rows, save_table, benchmark):
    save_table("figure9", figure9.format_table(rows))
    by_name = {row.benchmark: row for row in rows}

    # every benchmark gains from the advanced scheme
    for row in rows:
        assert row.advanced_speedup_percent > 0.0, row.benchmark
    # m88ksim leads, above 20% (paper: 23%)
    best = max(rows, key=lambda r: r.advanced_speedup_percent)
    assert by_name["m88ksim"].advanced_speedup_percent > 15.0
    # the paper's trio of >10% improvements
    for name in ("compress", "ijpeg", "m88ksim"):
        assert by_name[name].advanced_speedup_percent > 10.0, name
    # li is near the bottom (call-intensive, §7.2)
    assert (
        by_name["li"].advanced_speedup_percent
        < by_name["m88ksim"].advanced_speedup_percent / 2
    )

    benchmark.pedantic(lambda: figure9.run(), rounds=1, iterations=1)
