"""Table 2 — benchmark programs.

Renders the workload registry and times the full compiler pipeline
(lex -> parse -> sema -> codegen -> optimize) on the largest surrogate.
"""

from repro.experiments.report import format_table2
from repro.minic.compile import compile_source
from repro.workloads import INT_BENCHMARKS, WORKLOADS, workload_source


def test_table2_workloads(benchmark, save_table):
    table = format_table2()
    save_table("table2", table)
    assert len(INT_BENCHMARKS) == 7  # the SPECINT95 suite

    source = workload_source("gcc")

    def compile_gcc():
        return compile_source(source).instruction_count()

    static = benchmark.pedantic(compile_gcc, rounds=3, iterations=1)
    assert static > 100
