"""§7.5 — floating-point programs.

Paper: negligible change for most FP programs; ear gains ~18% because a
large slice of its *integer* branch/store-value work offloads into an
FP subsystem with spare capacity.
"""

import pytest

from repro.experiments import table_fp


@pytest.fixture(scope="module")
def rows():
    return table_fp.run()


def test_fp_rows(rows, save_table, benchmark):
    save_table("fp_programs", table_fp.format_table(rows))
    by_name = {row.benchmark: row for row in rows}

    # nothing is materially hurt (paper: "without hurting performance")
    for row in rows:
        assert row.basic_speedup_percent > -3.0, row.benchmark
        assert row.advanced_speedup_percent > -3.0, row.benchmark
    # the ear-like outlier gains clearly (paper: 18%)
    assert by_name["ear"].advanced_speedup_percent > 5.0
    assert by_name["ear"].extra_offload_percent > 10.0
    # the pure stencil barely moves
    assert abs(by_name["swim"].advanced_speedup_percent) < 5.0
    # ear wins because its integer side offloads more
    assert (
        by_name["ear"].extra_offload_percent
        > by_name["swim"].extra_offload_percent
    )

    benchmark.pedantic(lambda: table_fp.run(), rounds=1, iterations=1)
