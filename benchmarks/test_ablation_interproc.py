"""Ablation — interprocedural FP-argument passing (§6.6 future work).

The paper suggests interprocedural analysis could "reduce some of the
copy overheads across calls by passing integer arguments in
floating-point registers".  This ablation measures the implemented
extension on the call-intensive benchmarks.
"""

import pytest

from repro.experiments.runner import run_benchmark

CASES = {"li": 8, "compress": 400, "perl": 1}


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for name, scale in CASES.items():
        baseline = run_benchmark(name, "conventional", scale=scale)
        plain = run_benchmark(name, "advanced", scale=scale)
        ext = run_benchmark(name, "advanced", scale=scale, interprocedural=True)
        results[name] = {
            "plain": (
                plain.dynamic_instructions,
                plain.speedup_over(baseline),
                plain.mix["copies"],
            ),
            "interproc": (
                ext.dynamic_instructions,
                ext.speedup_over(baseline),
                ext.mix["copies"],
            ),
            "eliminated": ext.partition_summary.get("copies_eliminated", 0),
        }
    return results


def _kernel_case():
    """A kernel where the conditions do align: the caller computes the
    argument in FPa and the callee consumes it only in FPa."""
    from repro.ir.parser import parse_program
    from repro.partition.program import partition_program
    from repro.runtime.interp import run_program
    from repro.runtime.trace import dynamic_mix

    src = """
global acc 8
global data 256

func mix(1) {
entry:
  v0 = param 0
  v8 = li @acc
body:
  v1 = lw v8, 0
  v2 = addu v1, v0
  v3 = sll v2, 3
  v4 = xor v3, v0
  v5 = addu v4, v2
  v6 = sra v5, 1
  sw v6, v8, 0
  ret
}

func main(0) {
entry:
  v9 = li @data
  v0 = li 0
loop:
  v1 = sll v0, 2
  v2 = addu v9, v1
  v3 = lw v2, 0
  v4 = addiu v3, 5
  v5 = sll v4, 1
  v6 = addu v5, v4
  call mix(v6)
  v0 = addiu v0, 1
  v10 = slti v0, 64
  v11 = li 0
  bne v10, v11, loop
exit:
  ret
}
"""
    out = {}
    for flag in (False, True):
        program = parse_program(src)
        profile = run_program(program).profile
        program = parse_program(src)
        result = partition_program(
            program, "advanced", profile=profile, interprocedural=flag
        )
        run = run_program(program, collect_trace=True)
        out[flag] = (
            run.instructions,
            dynamic_mix(run.trace)["copies"],
            result.copies_eliminated,
        )
    return out


def test_interproc_ablation(sweep, save_table, benchmark):
    lines = ["Ablation: interprocedural FP-argument passing (advanced scheme)"]
    for name, data in sweep.items():
        for kind in ("plain", "interproc"):
            dyn, speedup, copies = data[kind]
            lines.append(
                f"{name:10s} {kind:9s} dyn={dyn:7d} copies={copies:6d} "
                f"speedup={100 * (speedup - 1):+5.1f}%"
            )
        lines.append(f"{name:10s} static copies eliminated: {data['eliminated']}")
    kernel = _kernel_case()
    lines.append(
        "kernel     plain     dyn=%7d copies=%6d" % kernel[False][:2]
    )
    lines.append(
        "kernel     interproc dyn=%7d copies=%6d (static eliminated: %d)"
        % kernel[True]
    )
    lines.append(
        "finding: on the SPECINT surrogates the extension's safety conditions"
    )
    lines.append(
        "rarely align (argument producers sit in INT), so it fires ~never —"
    )
    lines.append(
        "the paper's 'might be possible' hedge is warranted; the kernel row"
    )
    lines.append("shows it working where the conditions do hold.")
    save_table("ablation_interproc", "\n".join(lines))

    # where the conditions align, copies disappear
    assert kernel[True][1] < kernel[False][1]
    assert kernel[True][0] < kernel[False][0]
    assert kernel[True][2] >= 2

    for name, data in sweep.items():
        plain_dyn, plain_speedup, plain_copies = data["plain"]
        ext_dyn, ext_speedup, ext_copies = data["interproc"]
        # the extension may only remove instructions, never add them
        assert ext_dyn <= plain_dyn, name
        assert ext_copies <= plain_copies, name
        # and never costs performance
        assert ext_speedup > plain_speedup - 0.02, name

    benchmark.pedantic(
        lambda: run_benchmark(
            "li", "advanced", scale=CASES["li"], interprocedural=True
        ),
        rounds=1,
        iterations=1,
    )
