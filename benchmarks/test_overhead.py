"""§7.2 — overheads of the advanced partitioning scheme.

Paper: extra dynamic instructions at most ~4% (compress: 3.4 points of
copies + 0.6 of duplicates); static code growth and I-cache effects
negligible.
"""

import pytest

from repro.experiments import table_overhead


@pytest.fixture(scope="module")
def rows():
    return table_overhead.run()


def test_overhead_rows(rows, save_table, benchmark):
    save_table("overhead", table_overhead.format_table(rows))

    for row in rows:
        # dynamic overhead stays small (paper: <= ~4%; we allow a bit more)
        assert row.dynamic_increase_percent < 8.0, row.benchmark
        assert row.dynamic_increase_percent >= 0.0, row.benchmark
        # static growth is modest
        assert row.static_increase_percent < 15.0, row.benchmark
        # I-cache behaviour barely moves
        assert abs(
            row.icache_miss_rate_advanced - row.icache_miss_rate_base
        ) < 0.01, row.benchmark
    # copies + dups decompose the extra instructions
    for row in rows:
        total = row.copy_percent + row.dup_percent
        assert total == pytest.approx(row.dynamic_increase_percent, abs=0.2), row.benchmark

    benchmark.pedantic(lambda: table_overhead.run(), rounds=1, iterations=1)
