"""Ablation — microarchitectural sweeps (DESIGN.md §5.1).

Varies issue-window size and functional-unit counts around the Table 1
design points, plus a perfect-branch-prediction oracle, to show which
resources the FPa speedup actually comes from.
"""

import pytest

from repro.experiments.runner import prepare_program
from repro.runtime.interp import run_program
from repro.sim.config import four_way
from repro.sim.pipeline import simulate_trace

SCALE = 6  # m88ksim


@pytest.fixture(scope="module")
def traces():
    out = {}
    for scheme in ("conventional", "advanced"):
        program = prepare_program("m88ksim", scheme, scale=SCALE).program
        out[scheme] = run_program(program, collect_trace=True).trace
    return out


def test_window_size_sweep(traces, save_table, benchmark):
    lines = ["Ablation: issue-window size (4-way, m88ksim)"]
    cycles = {}
    for window in (8, 16, 32, 64):
        config = four_way(int_window=window, fp_window=window)
        base = simulate_trace(traces["conventional"], config).cycles
        part = simulate_trace(traces["advanced"], config).cycles
        cycles[window] = (base, part)
        lines.append(
            f"window={window:3d}  conventional={base:7d}  advanced={part:7d}  "
            f"speedup={100 * (base / part - 1):+5.1f}%"
        )
    save_table("ablation_window", "\n".join(lines))

    # bigger windows never hurt
    assert cycles[64][0] <= cycles[8][0]
    assert cycles[64][1] <= cycles[8][1]
    # the partitioned machine effectively doubles the window: the
    # advanced trace on window=16 should beat conventional on window=16
    assert cycles[16][1] < cycles[16][0]

    benchmark.pedantic(
        lambda: simulate_trace(traces["advanced"], four_way()).cycles,
        rounds=1,
        iterations=1,
    )


def test_unit_count_sweep(traces, save_table, benchmark):
    lines = ["Ablation: INT functional units (m88ksim, advanced trace)"]
    results = {}

    def sweep():
        for units in (1, 2, 4):
            config = four_way(int_units=units)
            base = simulate_trace(traces["conventional"], config).cycles
            part = simulate_trace(traces["advanced"], config).cycles
            results[units] = (base, part)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    for units, (base, part) in results.items():
        lines.append(
            f"int_units={units}  conventional={base:7d}  advanced={part:7d}  "
            f"speedup={100 * (base / part - 1):+5.1f}%"
        )
    save_table("ablation_units", "\n".join(lines))

    # offloading helps most when the INT subsystem is narrow
    speedup_1 = results[1][0] / results[1][1]
    speedup_4 = results[4][0] / results[4][1]
    assert speedup_1 > speedup_4 - 0.02


def test_perfect_branch_oracle(traces, save_table, benchmark):
    real_base = simulate_trace(traces["conventional"], four_way()).cycles
    real_part = simulate_trace(traces["advanced"], four_way()).cycles
    oracle_base = benchmark.pedantic(
        lambda: simulate_trace(
            traces["conventional"], four_way(), perfect_branches=True
        ).cycles,
        rounds=1,
        iterations=1,
    )
    oracle_part = simulate_trace(
        traces["advanced"], four_way(), perfect_branches=True
    ).cycles
    save_table(
        "ablation_oracle",
        "Ablation: gshare vs oracle prediction (m88ksim)\n"
        f"gshare : conventional={real_base}, advanced={real_part}, "
        f"speedup={100 * (real_base / real_part - 1):+.1f}%\n"
        f"oracle : conventional={oracle_base}, advanced={oracle_part}, "
        f"speedup={100 * (oracle_base / oracle_part - 1):+.1f}%",
    )
    assert oracle_base <= real_base
    assert oracle_part <= real_part
