"""Figure 8 — size of the FPa partition (basic vs advanced).

Shape assertions mirror the paper: advanced >= basic everywhere, both
within (a slightly widened version of) the paper's bands, li barely
moving, and ijpeg gaining the most from the advanced scheme.
"""

import pytest

from repro.experiments import figure8


@pytest.fixture(scope="module")
def rows():
    return figure8.run()


def test_figure8_rows(rows, save_table, benchmark):
    save_table("figure8", figure8.format_table(rows))
    by_name = {row.benchmark: row for row in rows}

    for row in rows:
        # the paper's contribution: copies/duplication never shrink FPa
        assert row.advanced_percent >= row.basic_percent - 0.5, row.benchmark
    # paper bands (basic 5-29%, advanced 9-41%), widened for surrogates
    for row in rows:
        assert 0.0 <= row.basic_percent <= 40.0, row.benchmark
        assert 5.0 <= row.advanced_percent <= 55.0, row.benchmark
    # li's small functions defeat both schemes equally (paper §7.2)
    li = by_name["li"]
    assert li.advanced_percent - li.basic_percent < 15.0
    # ijpeg benefits the most from the advanced scheme (paper: 10.7->32.1)
    ijpeg = by_name["ijpeg"]
    assert ijpeg.advanced_percent > 2.5 * ijpeg.basic_percent

    benchmark.pedantic(lambda: figure8.run(), rounds=1, iterations=1)
