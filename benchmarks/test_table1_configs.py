"""Table 1 — machine parameters.

Renders the live machine configurations and times a representative
simulation unit (a 4-way run of a short trace) so the harness reports a
stable baseline cost for the cycle model itself.
"""

from repro.experiments.report import format_table1
from repro.experiments.runner import cached_run_benchmark
from repro.sim.config import eight_way, four_way
from repro.sim.pipeline import simulate_trace
from repro.runtime.interp import run_program
from repro.workloads import compile_workload


def test_table1_configurations(benchmark, save_table):
    table = format_table1()
    save_table("table1", table)
    four = four_way()
    eight = eight_way()
    assert four.int_units == 2 and eight.int_units == 4

    program = compile_workload("m88ksim", scale=2)
    trace = run_program(program, collect_trace=True).trace

    def simulate():
        return simulate_trace(trace, four_way()).cycles

    cycles = benchmark.pedantic(simulate, rounds=3, iterations=1)
    assert cycles > 0
