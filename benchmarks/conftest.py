"""Benchmark-harness plumbing.

Each ``test_*`` regenerates one of the paper's tables or figures at the
workloads' default scales.  The human-readable rows (measured vs paper)
are written to ``benchmarks/results/<experiment>.txt`` and echoed to
stdout; pipeline runs are shared across files through
:func:`repro.experiments.runner.cached_run_benchmark`.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_table():
    """Persist a formatted experiment table and echo it."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
