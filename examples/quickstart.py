#!/usr/bin/env python3
"""Quickstart: compile, partition, and simulate a small program.

Runs the complete pipeline of the paper on a little histogram kernel:

1. compile MiniC to the MIPS-like IR (machine-independent optimizations
   included),
2. partition every function with the advanced scheme (profile-driven
   cost model, copies + duplication),
3. register-allocate,
4. execute both versions and replay their traces through the 4-way
   (2 int + 2 fp) machine of the paper's Table 1,
5. report how much work moved to the FPa subsystem and what it bought.

Usage::

    python examples/quickstart.py
"""

from repro import compile_minic
from repro.ir.printer import print_function
from repro.partition import advanced_partition, apply_partition, partition_stats
from repro.regalloc import allocate_program
from repro.runtime import run_program
from repro.runtime.trace import dynamic_mix
from repro.sim import four_way, simulate_trace

SOURCE = """
int data[256];
int histogram[16];

int main() {
    int i; int v; int bucket;
    int seed = 1234567;
    for (i = 0; i < 256; i = i + 1) {
        seed = (seed * 69069 + 5) & 0x7fffffff;
        data[i] = (seed >> 11) & 255;
    }
    for (i = 0; i < 256; i = i + 1) {
        v = data[i];
        bucket = v >> 4;
        if (v & 1) {
            histogram[bucket] = histogram[bucket] + 2;
        } else {
            histogram[bucket] = histogram[bucket] + 1;
        }
    }
    v = 0;
    for (i = 0; i < 16; i = i + 1) { v = v + histogram[i] * i; }
    return v & 0xffff;
}
"""


def build(partitioned: bool):
    program = compile_minic(SOURCE)
    if partitioned:
        profile = run_program(program).profile
        for func in program.functions.values():
            partition = advanced_partition(func, profile=profile)
            stats = partition_stats(partition)
            apply_partition(func, partition)
            print(
                f"  {func.name}: offloaded {stats['offloaded_instructions']} "
                f"static instructions ({stats['copies']} copies, "
                f"{stats['dups']} duplicates)"
            )
    allocate_program(program)
    return program


def main() -> None:
    print("== conventional build ==")
    conventional = build(partitioned=False)

    print("== partitioned build (advanced scheme) ==")
    partitioned = build(partitioned=True)

    runs = {}
    for label, program in (("conventional", conventional), ("partitioned", partitioned)):
        result = run_program(program, collect_trace=True)
        stats = simulate_trace(result.trace, four_way())
        mix = dynamic_mix(result.trace)
        runs[label] = (result, stats, mix)

    base_result, base_stats, _ = runs["conventional"]
    part_result, part_stats, part_mix = runs["partitioned"]
    assert base_result.value == part_result.value, "partitioning changed semantics!"

    offload = part_mix["fp_executed"] / part_mix["total"]
    print(f"\nchecksum                : {base_result.value}")
    print(f"dynamic instructions    : {base_result.instructions} -> {part_result.instructions}")
    print(f"offloaded to FPa        : {100 * offload:.1f}% of dynamic instructions")
    print(f"cycles (4-way machine)  : {base_stats.cycles} -> {part_stats.cycles}")
    print(f"IPC                     : {base_stats.ipc:.2f} -> {part_stats.ipc:.2f}")
    print(f"speedup                 : {100 * (base_stats.cycles / part_stats.cycles - 1):+.1f}%")

    print("\nmain() after partitioning and register allocation:")
    print(print_function(partitioned.functions["main"]))


if __name__ == "__main__":
    main()
