#!/usr/bin/env python3
"""Walk through the paper's running example (Figures 3–6).

The paper develops its algorithms on ``invalidate_for_call`` from gcc:
a loop that bumps ``reg_tick[regno]`` for call-clobbered registers.
This script builds that loop in IR and shows

* the register dependence graph's computational slices (§3),
* the basic partition — Figure 4: only the load-value/branch/
  store-value component moves, via ``l.s``/``s.s`` conversion;
* the advanced partition — Figure 6: the induction variable is
  *duplicated* (``I1d``/``I15d``) so the loop-termination branch slice
  executes in FPa too.

Usage::

    python examples/paper_walkthrough.py
"""

from repro.ir.parser import parse_function
from repro.ir.printer import print_function
from repro.partition import (
    advanced_partition,
    apply_partition,
    basic_partition,
    partition_stats,
)
from repro.rdg import build_rdg, ldst_slice
from repro.rdg.classify import TerminalKind, terminals
from repro.rdg.slices import branch_slice, store_value_slice

FIGURE3 = """
func invalidate_for_call(0) {
entry:
  v0 = li 0              # regno = 0                      (I1)
loop:
  v1 = li @reg_tick
  v2 = sll v0, 2         # regno * 4                      (I9)
  v3 = addu v1, v2       # &reg_tick[regno]               (I10)
  v4 = lw v3, 0          # reg_tick[regno]                (I11)
  bltz v4, skip          # if (reg_tick[regno] < 0)       (I12)
body:
  v6 = addiu v4, 1       # reg_tick[regno] + 1            (I13)
  sw v6, v3, 0           # reg_tick[regno]++              (I14)
skip:
  v0 = addiu v0, 1       # regno++                        (I15)
  v7 = slti v0, 66       # regno < FIRST_PSEUDO_REGISTER  (I16)
  v8 = li 0
  bne v7, v8, loop       #                                (I17)
exit:
  ret
}
"""


def show_slices() -> None:
    func = parse_function(FIGURE3)
    rdg = build_rdg(func)
    print(f"RDG: {len(rdg.nodes)} nodes "
          f"(loads/stores split into address + value halves)\n")

    slice_nodes = ldst_slice(rdg)
    print(f"LdSt slice ({len(slice_nodes)} nodes) — always assigned to INT:")
    for node in sorted(slice_nodes, key=lambda n: n.uid):
        print(f"  {node!r}: {rdg.instruction(node).op}")

    kinds = terminals(rdg)
    for branch in kinds[TerminalKind.BRANCH]:
        nodes = branch_slice(rdg, branch)
        ops = ", ".join(str(rdg.instruction(n).op) for n in sorted(nodes, key=lambda n: n.uid))
        print(f"\nbranch slice of {rdg.instruction(branch).op}: {ops}")
    for sv in kinds[TerminalKind.STORE_VALUE]:
        nodes = store_value_slice(rdg, sv)
        ops = ", ".join(str(rdg.instruction(n).op) for n in sorted(nodes, key=lambda n: n.uid))
        print(f"store-value slice: {ops}")


def show_partition(scheme: str) -> None:
    func = parse_function(FIGURE3)
    if scheme == "basic":
        partition = basic_partition(func)
    else:
        partition = advanced_partition(func)
    stats = partition_stats(partition)
    apply_partition(func, partition)
    print(f"\n=== {scheme} scheme "
          f"(offloaded {stats['offloaded_instructions']} instructions, "
          f"{stats['copies']} copies, {stats['dups']} duplicates) ===")
    print(print_function(func))


def main() -> None:
    show_slices()
    show_partition("basic")  # reproduces Figure 4
    show_partition("advanced")  # reproduces Figure 6
    print(
        "\nCompare with the paper: the basic scheme converts the load/store\n"
        "to l.s/s.s and offloads bltz/addiu; the advanced scheme also\n"
        "duplicates regno (li.a in entry, addiu.a in skip — the paper's\n"
        "I1d and I15d) so slti/bne execute in FPa as slti.a/bne.a."
    )


if __name__ == "__main__":
    main()
