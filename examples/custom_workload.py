#!/usr/bin/env python3
"""Evaluate the partitionability of your own workload.

Write a MiniC program (or point this script at a file), and it reports
how much of it each scheme can offload and what that is worth on the
paper's machines — a small "what-if" tool for the FPa idea.

Usage::

    python examples/custom_workload.py            # built-in demo kernel
    python examples/custom_workload.py my_prog.mc # your own program
"""

import sys

from repro import compile_minic
from repro.partition import (
    advanced_partition,
    apply_partition,
    basic_partition,
    partition_stats,
)
from repro.regalloc import allocate_program
from repro.runtime import run_program
from repro.runtime.trace import dynamic_mix
from repro.sim import eight_way, four_way, simulate_trace

# A string-matching flavoured demo: branch-heavy scanning with counters.
DEMO = """
int text[512];
int pattern[8];
int match_at[512];

int main() {
    int i; int j; int ok; int matches = 0; int seed = 77;
    for (i = 0; i < 512; i = i + 1) {
        seed = (seed * 1103515245 + 12345) & 0x7fffffff;
        text[i] = (seed >> 9) & 7;
    }
    for (j = 0; j < 8; j = j + 1) { pattern[j] = (j * 3) & 7; }
    for (i = 0; i < 504; i = i + 1) {
        ok = 1;
        for (j = 0; j < 8; j = j + 1) {
            if (text[i + j] != pattern[j]) { ok = 0; break; }
        }
        match_at[i] = ok;
        if (ok) { matches = matches + 1; }
    }
    return matches * 1000 + text[13];
}
"""


def evaluate(source: str) -> None:
    baseline = compile_minic(source)
    allocate_program(baseline)
    base_run = run_program(baseline, collect_trace=True)

    print(f"checksum            : {base_run.value}")
    print(f"dynamic instructions: {base_run.instructions}")
    mix = dynamic_mix(base_run.trace)
    print(
        f"instruction mix     : {mix['loads']} loads, {mix['stores']} stores, "
        f"{mix['branches']} branches"
    )

    sims = {}
    for width, config in (("4-way", four_way()), ("8-way", eight_way())):
        sims[width] = simulate_trace(list(base_run.trace), config)

    for scheme_name, scheme in (("basic", basic_partition), ("advanced", advanced_partition)):
        program = compile_minic(source)
        profile = run_program(program).profile
        totals = {"offloaded_instructions": 0, "copies": 0, "dups": 0}
        for func in program.functions.values():
            if scheme is advanced_partition:
                partition = scheme(func, profile=profile)
            else:
                partition = scheme(func)
            stats = partition_stats(partition)
            for key in totals:
                totals[key] += stats[key]
            apply_partition(func, partition)
        allocate_program(program)
        run = run_program(program, collect_trace=True)
        assert run.value == base_run.value, "partitioning changed semantics!"
        offload = dynamic_mix(run.trace)["fp_executed"] / run.instructions

        print(f"\n--- {scheme_name} scheme ---")
        print(
            f"static: {totals['offloaded_instructions']} instructions offloaded, "
            f"{totals['copies']} copies, {totals['dups']} duplicates"
        )
        print(f"dynamic offload: {100 * offload:.1f}%")
        for width, config in (("4-way", four_way()), ("8-way", eight_way())):
            part_stats = simulate_trace(list(run.trace), config)
            base_stats = sims[width]
            print(
                f"{width}: {base_stats.cycles} -> {part_stats.cycles} cycles "
                f"({100 * (base_stats.cycles / part_stats.cycles - 1):+.1f}%)"
            )


def main() -> None:
    if len(sys.argv) > 1:
        with open(sys.argv[1]) as handle:
            source = handle.read()
        print(f"evaluating {sys.argv[1]}\n")
    else:
        source = DEMO
        print("evaluating the built-in pattern-matching demo\n")
    evaluate(source)


if __name__ == "__main__":
    main()
