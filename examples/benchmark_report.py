#!/usr/bin/env python3
"""Detailed microarchitectural report for one benchmark.

Runs a SPECINT95 surrogate through every configuration — conventional /
basic / advanced on the 4-way and 8-way machines — and prints the
per-run pipeline statistics the paper discusses in §7.3 (including the
INT-idle-while-FPa-busy load-imbalance metric it uses to explain
m88ksim).

Usage::

    python examples/benchmark_report.py [benchmark] [scale]

    python examples/benchmark_report.py m88ksim
    python examples/benchmark_report.py compress 400
"""

import sys

from repro.experiments.runner import run_benchmark
from repro.workloads import WORKLOADS


def report(name: str, scale: int | None) -> None:
    spec = WORKLOADS[name]
    print(f"benchmark : {name} ({spec.description})")
    print(f"paper ran : {spec.paper_input}")
    print()

    header = (
        f"{'machine':7s} {'scheme':13s} {'dyn instr':>10s} {'cycles':>9s} "
        f"{'IPC':>5s} {'offload':>8s} {'br.acc':>7s} {'d$miss':>7s} "
        f"{'imbalance':>9s} {'speedup':>8s}"
    )
    print(header)
    print("-" * len(header))
    for width in (4, 8):
        baseline = None
        for scheme in ("conventional", "basic", "advanced"):
            result = run_benchmark(name, scheme, width=width, scale=scale)
            if scheme == "conventional":
                baseline = result
                speedup = ""
            else:
                speedup = f"{100 * (result.speedup_over(baseline) - 1):+.1f}%"
            stats = result.stats
            print(
                f"{result.machine:7s} {scheme:13s} "
                f"{result.dynamic_instructions:10d} {result.cycles:9d} "
                f"{stats.ipc:5.2f} {100 * result.offload_fraction:7.1f}% "
                f"{100 * stats.branch_accuracy:6.1f}% "
                f"{100 * stats.dcache_miss_rate:6.2f}% "
                f"{100 * stats.int_idle_while_fp_busy_fraction:8.1f}% "
                f"{speedup:>8s}"
            )
        print()


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "m88ksim"
    if name not in WORKLOADS:
        print(f"unknown benchmark {name!r}; choose from {sorted(WORKLOADS)}")
        raise SystemExit(2)
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else None
    report(name, scale)


if __name__ == "__main__":
    main()
