"""repro — reproduction of *Exploiting Idle Floating-Point Resources for
Integer Execution* (Sastry, Palacharla & Smith, PLDI 1998).

The package implements the paper's full pipeline:

* a MiniC frontend and MIPS-like IR (:mod:`repro.minic`, :mod:`repro.ir`),
* machine-independent optimizations (:mod:`repro.opt`),
* dataflow analyses and the register dependence graph
  (:mod:`repro.analysis`, :mod:`repro.rdg`),
* the **basic** and **advanced** code-partitioning schemes — the paper's
  contribution (:mod:`repro.partition`),
* register allocation (:mod:`repro.regalloc`),
* a functional interpreter with profiling and tracing
  (:mod:`repro.runtime`),
* a cycle-level out-of-order timing simulator with the augmented FPa
  subsystem (:mod:`repro.sim`),
* SPECINT95 surrogate workloads and the experiment harness regenerating
  every figure and table (:mod:`repro.workloads`,
  :mod:`repro.experiments`).

Quickstart::

    from repro import compile_minic
    from repro.experiments import run_benchmark

    program = compile_minic(source_text)
    result = run_benchmark("compress", scheme="advanced", width=4)
    print(result.speedup)
"""

from repro.errors import (
    ReproError,
    IRError,
    ParseError,
    SemanticError,
    AnalysisError,
    PartitionError,
    RegAllocError,
    ExecutionError,
    SimulationError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "IRError",
    "ParseError",
    "SemanticError",
    "AnalysisError",
    "PartitionError",
    "RegAllocError",
    "ExecutionError",
    "SimulationError",
    "WorkloadError",
    "compile_minic",
    "partition_basic",
    "partition_advanced",
    "__version__",
]


def compile_minic(source: str, optimize: bool = True):
    """Compile MiniC source text to an IR :class:`~repro.ir.Program`.

    Thin convenience wrapper over :func:`repro.minic.compile.compile_source`.
    """
    from repro.minic.compile import compile_source

    return compile_source(source, optimize=optimize)


def partition_basic(func):
    """Run the paper's basic partitioning scheme on one function."""
    from repro.partition.basic import basic_partition

    return basic_partition(func)


def partition_advanced(func, profile=None, **kwargs):
    """Run the paper's advanced partitioning scheme on one function."""
    from repro.partition.advanced import advanced_partition

    return advanced_partition(func, profile=profile, **kwargs)
