"""Live-interval construction for linear scan.

Instructions are numbered in layout order.  A virtual register's
interval spans from its first definition/use to its last, *extended* to
cover whole blocks where liveness says the value is live-in or live-out
— the standard conservative fix that makes plain linear scan safe in the
presence of loops (a value live around a back edge stays allocated for
the entire loop body).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.liveness import compute_liveness
from repro.ir.function import Function
from repro.ir.registers import Reg, RegClass, ZERO


@dataclass(slots=True)
class LiveInterval:
    """Half-open live range ``[start, end]`` over instruction numbers."""

    reg: Reg
    start: int
    end: int

    def overlaps(self, other: "LiveInterval") -> bool:
        return self.start <= other.end and other.start <= self.end


def compute_intervals(func: Function) -> dict[RegClass, list[LiveInterval]]:
    """Live intervals for every *virtual* register, split by class,
    sorted by start position."""
    liveness = compute_liveness(func)
    position: dict[int, int] = {}
    block_span: dict[str, tuple[int, int]] = {}
    counter = 0
    for blk in func.blocks:
        start = counter
        for instr in blk.instructions:
            position[instr.uid] = counter
            counter += 1
        block_span[blk.label] = (start, max(start, counter - 1))

    intervals: dict[Reg, LiveInterval] = {}

    def touch(reg: Reg, where: int) -> None:
        if reg == ZERO or not reg.virtual:
            return
        interval = intervals.get(reg)
        if interval is None:
            intervals[reg] = LiveInterval(reg, where, where)
        else:
            interval.start = min(interval.start, where)
            interval.end = max(interval.end, where)

    for blk in func.blocks:
        for instr in blk.instructions:
            where = position[instr.uid]
            for reg in instr.uses:
                touch(reg, where)
            for reg in instr.defs:
                touch(reg, where)
        first, last = block_span[blk.label]
        for reg in liveness.live_in[blk.label]:
            touch(reg, first)
        for reg in liveness.live_out[blk.label]:
            touch(reg, last)

    out: dict[RegClass, list[LiveInterval]] = {RegClass.INT: [], RegClass.FP: []}
    for interval in intervals.values():
        out[interval.reg.rclass].append(interval)
    for bucket in out.values():
        bucket.sort(key=lambda iv: (iv.start, iv.end))
    return out
