"""Linear-scan register allocation with spilling.

Each register class is allocated independently against its own pool
(24 allocatable architectural registers per file, two reserved as spill
scratch).  Intervals that do not fit spill to stack slots addressed off
``$sp``; every use gets a reload into a scratch register immediately
before the instruction and every definition a store immediately after.

The allocator runs on partitioned or unpartitioned code alike; because
it runs after partitioning (as in the paper), FPa-resident values end up
in ``$f``-registers automatically via their register class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RegAllocError
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.program import Program
from repro.ir.registers import Reg, RegClass, fp_reg, int_reg
from repro.regalloc.intervals import LiveInterval, compute_intervals

#: Allocatable architectural registers per class ($zero, $sp and the
#: scratch registers stay out of the pools).
INT_POOL = [int_reg(i) for i in range(2, 26)]
FP_POOL = [fp_reg(i) for i in range(2, 26)]
INT_SCRATCH = [int_reg(26), int_reg(27)]
FP_SCRATCH = [fp_reg(26), fp_reg(27)]

_SP = Reg("$sp", RegClass.INT, virtual=False)


@dataclass(eq=False, slots=True)
class AllocationResult:
    """Summary of one function's allocation."""

    assigned: dict[Reg, Reg] = field(default_factory=dict)
    spilled: dict[Reg, int] = field(default_factory=dict)  # vreg -> slot offset
    frame_size: int = 0
    reloads_inserted: int = 0
    stores_inserted: int = 0


def _linear_scan(
    intervals: list[LiveInterval], pool: list[Reg]
) -> tuple[dict[Reg, Reg], list[Reg]]:
    """Classic Poletto–Sarkar linear scan.

    Returns (assignment, spilled vregs).  On pressure, the active
    interval with the furthest end point is spilled.
    """
    assigned: dict[Reg, Reg] = {}
    spilled: list[Reg] = []
    free = list(reversed(pool))
    active: list[LiveInterval] = []  # sorted by end

    for interval in intervals:
        # expire old intervals
        still_active = []
        for old in active:
            if old.end < interval.start:
                free.append(assigned[old.reg])
            else:
                still_active.append(old)
        active = still_active
        if free:
            assigned[interval.reg] = free.pop()
            active.append(interval)
            active.sort(key=lambda iv: iv.end)
        else:
            # spill the interval that ends furthest away
            victim = active[-1]
            if victim.end > interval.end:
                assigned[interval.reg] = assigned.pop(victim.reg)
                spilled.append(victim.reg)
                active[-1] = interval
                active.sort(key=lambda iv: iv.end)
            else:
                spilled.append(interval.reg)
    return assigned, spilled


def allocate_function(func: Function) -> AllocationResult:
    """Allocate architectural registers for ``func`` in place."""
    intervals = compute_intervals(func)
    result = AllocationResult()

    assignment: dict[Reg, Reg] = {}
    spill_slot: dict[Reg, int] = {}
    next_slot = 0
    for rclass, pool in ((RegClass.INT, INT_POOL), (RegClass.FP, FP_POOL)):
        assigned, spilled = _linear_scan(intervals[rclass], pool)
        assignment.update(assigned)
        for vreg in spilled:
            spill_slot[vreg] = next_slot
            next_slot += 4

    result.assigned = dict(assignment)
    result.spilled = dict(spill_slot)
    result.frame_size = (next_slot + 15) & ~15

    for blk in func.blocks:
        new_instrs: list[Instruction] = []
        for instr in blk.instructions:
            scratch_by_class = {RegClass.INT: list(INT_SCRATCH), RegClass.FP: list(FP_SCRATCH)}
            reload_map: dict[Reg, Reg] = {}
            # reloads for spilled uses
            for i, use in enumerate(instr.uses):
                if use in spill_slot:
                    scratch = reload_map.get(use)
                    if scratch is None:
                        bucket = scratch_by_class[use.rclass]
                        if not bucket:
                            raise RegAllocError(
                                f"{func.name}: more spilled {use.rclass.value} operands "
                                f"than scratch registers in {instr!r}"
                            )
                        scratch = bucket.pop(0)
                        reload_map[use] = scratch
                        load_op = Opcode.LS if use.rclass is RegClass.FP else Opcode.LW
                        reload = Instruction(
                            load_op, defs=[scratch], uses=[_SP], imm=spill_slot[use]
                        )
                        func.attach(reload)
                        new_instrs.append(reload)
                        result.reloads_inserted += 1
                    instr.uses[i] = scratch
                elif use.virtual:
                    instr.uses[i] = assignment[use]
            new_instrs.append(instr)
            # stores for spilled defs; a def may reuse a use's scratch
            # (the instruction reads its sources before writing)
            for i, d in enumerate(instr.defs):
                if d in spill_slot:
                    reusable = [
                        s for s in reload_map.values() if s.rclass is d.rclass
                    ]
                    bucket = scratch_by_class[d.rclass]
                    if reusable:
                        scratch = reusable[0]
                    elif bucket:
                        scratch = bucket.pop(0)
                    else:
                        raise RegAllocError(
                            f"{func.name}: no scratch register left for spilled "
                            f"definition in {instr!r}"
                        )
                    store_op = Opcode.SS if d.rclass is RegClass.FP else Opcode.SW
                    store = Instruction(
                        store_op, uses=[scratch, _SP], imm=spill_slot[d]
                    )
                    func.attach(store)
                    instr.defs[i] = scratch
                    if instr.is_control:
                        raise RegAllocError(
                            f"{func.name}: control instruction with spilled def"
                        )
                    new_instrs.append(store)
                    result.stores_inserted += 1
                elif d.virtual:
                    instr.defs[i] = assignment[d]
        blk.instructions = new_instrs

    func.frame_size = result.frame_size
    func.renumber()
    return result


def allocate_program(program: Program) -> dict[str, AllocationResult]:
    """Allocate every function; returns per-function results."""
    return {name: allocate_function(func) for name, func in program.functions.items()}
