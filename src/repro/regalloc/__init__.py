"""Register allocation.

The paper performs register allocation *after* code partitioning:
"Operands of instructions assigned to the FPa partition are allocated
floating-point registers" (§7.1).  This package implements a per-class
linear-scan allocator: INT-class virtual registers get architectural
integer registers, FP-class virtual registers get architectural FP
registers, and intervals that do not fit are spilled to stack slots
addressed off ``$sp`` (reload/store code is inserted with reserved
scratch registers).

Register saves/restores across calls are not modelled — the machine's
call semantics preserve per-activation register state — so allocation
affects timing only through spill memory traffic, the first-order effect
the paper discusses in §6.6.
"""

from repro.regalloc.intervals import LiveInterval, compute_intervals
from repro.regalloc.linear_scan import allocate_function, allocate_program, AllocationResult

__all__ = [
    "LiveInterval",
    "compute_intervals",
    "allocate_function",
    "allocate_program",
    "AllocationResult",
]
