"""Per-branch performance history and statistical degradation detection.

The package behind ``repro perf``: an append-only JSONL store of
validated benchmark documents (:mod:`repro.perf.history`), a
change-point/drift/spike detection engine with data-derived thresholds
(:mod:`repro.perf.detect`), and the ``repro-perf/1`` verdict document
(:mod:`repro.perf.report`).
"""

from repro.perf.detect import (
    CellVerdict,
    DetectorConfig,
    PerfReport,
    best_model,
    check_history,
    judge_series,
    noise_floor,
)
from repro.perf.history import (
    HISTORY_SCHEMA,
    HistoryEntry,
    PerfHistory,
    default_history_path,
)
from repro.perf.report import (
    PERF_SCHEMA,
    build_verdict_document,
    render_text_report,
    validate_verdict_document,
)

__all__ = [
    "CellVerdict",
    "DetectorConfig",
    "HISTORY_SCHEMA",
    "HistoryEntry",
    "PERF_SCHEMA",
    "PerfHistory",
    "PerfReport",
    "best_model",
    "build_verdict_document",
    "check_history",
    "default_history_path",
    "judge_series",
    "noise_floor",
    "render_text_report",
    "validate_verdict_document",
]
