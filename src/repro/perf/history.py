"""Append-only, per-branch performance history (`repro-perf-history/1`).

One history file holds the performance trajectory of one branch: a
JSON-lines file whose first line is a schema header and every further
line is one benchmark run — a validated ``repro-bench/1`` document
wrapped with the identity the degradation detectors key on:

    {"schema": "repro-perf-history/1", "branch": "main"}
    {"suite": "fig8", "sha": "<git sha>", "branch": "main",
     "host_fingerprint": "<sha256>", "unix": 1754400000.0,
     "code_version": "<sha256>", "document": { ...repro-bench/1... }}

Durability follows the resume journal's discipline: every append is a
single ``write`` of one line, flushed and fsynced, so killing the
writer at any instant loses at most the line being written.  Loading
tolerates a torn trailing line (and any other damaged line — each is
skipped, never fatal), and an append onto a torn tail first terminates
the tail with a newline so the damage cannot swallow the new entry.
The file is only ever appended to: the trajectory is data, history is
never rewritten.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.results import host_fingerprint, validate_document
from repro.errors import ReproError

#: Bump on incompatible history layout changes.
HISTORY_SCHEMA = "repro-perf-history/1"

#: Default directory of per-branch history files (CI caches this).
DEFAULT_HISTORY_DIR = ".perf-history"


def git_sha(default: str = "unknown") -> str:
    """The current commit sha: ``GITHUB_SHA``, then ``git rev-parse``."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return default
    out = proc.stdout.strip()
    return out if proc.returncode == 0 and out else default


def git_branch(default: str = "unknown") -> str:
    """The current branch: ``GITHUB_REF_NAME``, then ``git rev-parse``."""
    branch = os.environ.get("GITHUB_REF_NAME")
    if branch:
        return branch
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--abbrev-ref", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return default
    out = proc.stdout.strip()
    return out if proc.returncode == 0 and out else default


def branch_slug(branch: str) -> str:
    """Filesystem-safe name for a branch (``feat/x`` -> ``feat-x``)."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", branch).strip("-.")
    return slug or "unknown"


def default_history_path(
    branch: str | None = None, root: str | os.PathLike = DEFAULT_HISTORY_DIR
) -> Path:
    """``<root>/<branch-slug>.jsonl`` for the current (or given) branch."""
    return Path(root) / f"{branch_slug(branch or git_branch())}.jsonl"


@dataclass(frozen=True, slots=True)
class HistoryEntry:
    """One recorded benchmark run of one suite."""

    suite: str
    sha: str
    branch: str
    host_fingerprint: str
    unix: float
    code_version: str
    document: dict = field(repr=False)

    @classmethod
    def from_document(
        cls,
        document: dict,
        *,
        sha: str | None = None,
        branch: str | None = None,
    ) -> "HistoryEntry":
        """Wrap a BENCH document, validating it first.

        ``sha``/``branch`` default to the current git state (CI env
        vars, then the local repository).
        """
        validate_document(document)
        host = document.get("host") or {}
        fingerprint = host.get("fingerprint") or host_fingerprint(host)
        return cls(
            suite=str(document["suite"]),
            sha=sha if sha is not None else git_sha(),
            branch=branch if branch is not None else git_branch(),
            host_fingerprint=str(fingerprint),
            unix=float(document.get("created_unix", 0.0)),
            code_version=str(document.get("code_version", "")),
            document=document,
        )

    def as_dict(self) -> dict:
        return {
            "suite": self.suite,
            "sha": self.sha,
            "branch": self.branch,
            "host_fingerprint": self.host_fingerprint,
            "unix": self.unix,
            "code_version": self.code_version,
            "document": self.document,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "HistoryEntry":
        try:
            return cls(
                suite=str(doc["suite"]),
                sha=str(doc["sha"]),
                branch=str(doc["branch"]),
                host_fingerprint=str(doc["host_fingerprint"]),
                unix=float(doc["unix"]),
                code_version=str(doc["code_version"]),
                document=dict(doc["document"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed history entry: {exc}") from None


class PerfHistory:
    """The append-only store over one per-branch history file."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    # -- writing -------------------------------------------------------
    def append(self, entry: HistoryEntry) -> None:
        """Durably append one run (crash loses at most this line).

        The entry's document is re-validated on the way in: the history
        only ever holds gateable ``repro-bench/1`` documents.
        """
        validate_document(entry.document)
        line = json.dumps(entry.as_dict(), sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        is_new = not self.path.exists() or self.path.stat().st_size == 0
        with open(self.path, "a", encoding="utf-8") as handle:
            if is_new:
                handle.write(
                    json.dumps(
                        {"schema": HISTORY_SCHEMA, "branch": entry.branch},
                        sort_keys=True,
                    )
                    + "\n"
                )
            elif not self._ends_with_newline():
                # a previous writer died mid-line: terminate the torn
                # tail so it cannot swallow this entry too
                handle.write("\n")
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def _ends_with_newline(self) -> bool:
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) == b"\n"
        except OSError:
            return True

    # -- reading -------------------------------------------------------
    def load(self) -> tuple[dict | None, list[HistoryEntry]]:
        """Parse ``(header, entries)``, tolerating damaged lines.

        A torn trailing line (crash mid-append), a corrupt line, or an
        entry whose wrapped document no longer validates is skipped —
        a damaged history can cost data points, never a crash.  Returns
        ``(None, [])`` for a missing file or a foreign first line.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return None, []
        header: dict | None = None
        entries: list[HistoryEntry] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a crash mid-append
            if not isinstance(doc, dict):
                continue
            if header is None:
                if doc.get("schema") != HISTORY_SCHEMA:
                    return None, []
                header = doc
                continue
            try:
                entry = HistoryEntry.from_dict(doc)
                validate_document(entry.document)
            except ReproError:
                continue
            entries.append(entry)
        return header, entries

    def entries(self, suite: str | None = None) -> list[HistoryEntry]:
        """All recorded runs in append (chronological) order."""
        _, entries = self.load()
        if suite is not None:
            entries = [e for e in entries if e.suite == suite]
        return entries

    def suites(self) -> list[str]:
        """Suite names present in the history, sorted."""
        return sorted({e.suite for e in self.entries()})
