"""``repro perf`` — per-branch performance history and degradation gate.

Examples::

    repro perf append BENCH_fig8.json            # record a run
    repro perf check                             # exit 23 on degradation
    repro perf check --json > perf-verdict.json  # machine-readable verdict
    repro perf check --report perf-report.txt    # human-readable artifact
    repro perf log --suite fig8                  # recorded trajectory
    repro perf refresh-baseline --suite fig8     # accept an improvement

``check`` runs the statistical detectors of :mod:`repro.perf.detect`
over every cell's recorded series.  Cycle counts gate the run: a
confirmed degradation exits with code 23 naming the cell, the
magnitude and the first sha showing the new behaviour.  Wall time is
analyzed and reported but gates only with ``--gate-wall``.
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
from pathlib import Path

from repro.errors import EXIT_PERF_DEGRADED, ReproError, exit_code_for


def configure_parser(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="perf_command", required=True)

    def history_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--history",
            default=None,
            metavar="PATH",
            help="history JSONL file (default: .perf-history/<branch>.jsonl "
            "for the current branch)",
        )

    p_append = sub.add_parser(
        "append", help="record a BENCH document in the per-branch history"
    )
    p_append.add_argument(
        "document", metavar="BENCH_JSON", help="repro-bench/1 document to record"
    )
    history_arg(p_append)
    p_append.add_argument(
        "--sha", default=None, help="commit sha to record (default: git/CI)"
    )
    p_append.add_argument(
        "--branch", default=None, help="branch to record (default: git/CI)"
    )

    p_check = sub.add_parser(
        "check", help="statistical degradation check (exit 23 on regression)"
    )
    history_arg(p_check)
    p_check.add_argument(
        "--suite", default=None, metavar="NAME",
        help="suite to check (default: every suite in the history)",
    )
    p_check.add_argument(
        "--window", type=int, default=10, metavar="N",
        help="moving-average window in runs (default: 10)",
    )
    p_check.add_argument(
        "--min-runs", type=int, default=5, metavar="N",
        help="minimum recorded runs before a cell is judged (default: 5)",
    )
    p_check.add_argument(
        "--z", type=float, default=4.0, metavar="Z",
        help="confidence multiplier on the estimated noise (default: 4.0)",
    )
    p_check.add_argument(
        "--min-change", type=float, default=0.5, metavar="PCT",
        help="floor on the relative-change threshold, percent (default: 0.5)",
    )
    p_check.add_argument(
        "--max-runs", type=int, default=50, metavar="N",
        help="analyze at most the newest N runs (default: 50)",
    )
    p_check.add_argument(
        "--gate-wall", action="store_true",
        help="also gate (exit 23) on wall-time degradation, not only cycles",
    )
    p_check.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the repro-perf/1 verdict document on stdout",
    )
    p_check.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write a human-readable report to PATH",
    )

    p_log = sub.add_parser("log", help="show the recorded run trajectory")
    history_arg(p_log)
    p_log.add_argument(
        "--suite", default=None, metavar="NAME", help="only this suite"
    )
    p_log.add_argument(
        "--cell", default=None, metavar="LABEL",
        help="also print per-run cycles of one workload/scheme/width cell",
    )

    p_refresh = sub.add_parser(
        "refresh-baseline",
        help="regenerate benchmarks/baseline.json from the history median",
    )
    history_arg(p_refresh)
    p_refresh.add_argument(
        "--suite", default="fig8", metavar="NAME",
        help="suite to rebuild the baseline from (default: fig8)",
    )
    p_refresh.add_argument(
        "--output", default="benchmarks/baseline.json", metavar="PATH",
        help="baseline path to write (default: benchmarks/baseline.json)",
    )
    p_refresh.add_argument(
        "--window", type=int, default=10, metavar="N",
        help="median over the newest N runs (default: 10)",
    )
    p_refresh.add_argument(
        "--allow-regression", action="store_true",
        help="refresh even while the detectors report a degradation "
        "(accepting an intentional performance change)",
    )


def _history(args: argparse.Namespace):
    from repro.perf.history import PerfHistory, default_history_path

    path = args.history if args.history is not None else default_history_path()
    return PerfHistory(path)


def run(args: argparse.Namespace) -> int:
    handlers = {
        "append": _run_append,
        "check": _run_check,
        "log": _run_log,
        "refresh-baseline": _run_refresh,
    }
    return handlers[args.perf_command](args)


def _run_append(args: argparse.Namespace) -> int:
    from repro.bench.results import load_document
    from repro.perf.history import HistoryEntry

    history = _history(args)
    document = load_document(args.document)
    entry = HistoryEntry.from_document(
        document, sha=args.sha, branch=args.branch
    )
    history.append(entry)
    runs = len(history.entries(entry.suite))
    print(
        f"recorded suite {entry.suite!r} at {entry.sha[:12]} "
        f"({len(document.get('cells', []))} cells) -> {history.path} "
        f"[{runs} run(s) on {entry.branch!r}]",
        file=sys.stderr,
    )
    return 0


def _detector_config(args: argparse.Namespace):
    from repro.perf.detect import DetectorConfig

    return DetectorConfig(
        window=max(2, args.window),
        min_runs=max(2, args.min_runs),
        z=max(0.1, args.z),
        min_rel_change=max(0.0, args.min_change / 100.0),
        max_runs=max(2, args.max_runs),
    )


def _run_check(args: argparse.Namespace) -> int:
    from repro.perf.detect import METRIC_CYCLES, METRIC_WALL, check_history
    from repro.perf.history import git_branch, git_sha
    from repro.perf.report import (
        build_verdict_document,
        render_text_report,
        validate_verdict_document,
    )

    history = _history(args)
    entries = history.entries()
    suites = [args.suite] if args.suite else sorted({e.suite for e in entries})
    sha, branch = git_sha(), git_branch()
    config = _detector_config(args)
    gated = (METRIC_CYCLES, METRIC_WALL) if args.gate_wall else (METRIC_CYCLES,)

    if not suites:
        print(
            f"perf check: no history at {history.path}; nothing to check",
            file=sys.stderr,
        )
        if args.as_json:
            print(json.dumps([], indent=2))
        return 0

    documents, texts, failing = [], [], []
    for suite in suites:
        report = check_history(entries, suite=suite, config=config)
        doc = build_verdict_document(
            report,
            sha=sha,
            branch=branch,
            gated_metrics=gated,
            config={
                "window": config.window,
                "min_runs": config.min_runs,
                "z": config.z,
                "min_rel_change": config.min_rel_change,
                "max_runs": config.max_runs,
            },
        )
        validate_verdict_document(doc)
        documents.append(doc)
        texts.append(render_text_report(report, sha=sha, branch=branch))
        failing.extend(
            v for v in report.degraded() if v.metric in gated
        )

    text = "\n".join(texts)
    if args.report:
        Path(args.report).write_text(text)
    if args.as_json:
        payload = documents[0] if len(documents) == 1 else documents
        print(json.dumps(payload, indent=2, sort_keys=True))
        print(text, file=sys.stderr, end="")
    else:
        print(text, end="")

    if failing:
        worst = max(failing, key=lambda v: abs(v.delta_pct or 0.0))
        since = f" since {worst.change_sha[:12]}" if worst.change_sha else ""
        print(
            f"error: confirmed performance degradation in "
            f"{len(failing)} cell(s); worst is {worst.cell} "
            f"[{worst.metric}] {worst.delta_pct:+.1f}%{since}",
            file=sys.stderr,
        )
        return EXIT_PERF_DEGRADED
    return 0


def _run_log(args: argparse.Namespace) -> int:
    from repro.perf.detect import cell_label

    history = _history(args)
    entries = history.entries(args.suite)
    if not entries:
        print(f"no recorded runs at {history.path}", file=sys.stderr)
        return 0
    for index, entry in enumerate(entries):
        when = datetime.datetime.fromtimestamp(
            entry.unix, tz=datetime.timezone.utc
        ).strftime("%Y-%m-%d %H:%M")
        cells = entry.document.get("cells", [])
        failures = entry.document.get("failures", [])
        line = (
            f"{index + 1:3d}  {entry.sha[:12]:12s}  {entry.suite:8s} "
            f"{when}  {len(cells):3d} cells"
        )
        if failures:
            line += f"  {len(failures)} FAILED"
        if args.cell:
            value = next(
                (
                    c.get("result", {}).get("cycles")
                    for c in cells
                    if cell_label(c) == args.cell
                ),
                None,
            )
            line += (
                f"  {args.cell}: "
                + (f"{value} cycles" if value is not None else "absent")
            )
        print(line)
    return 0


def _run_refresh(args: argparse.Namespace) -> int:
    from repro.bench.results import save_document, validate_document
    from repro.perf.detect import METRIC_CYCLES, cell_label, check_history

    history = _history(args)
    entries = history.entries(args.suite)
    if not entries:
        raise ReproError(
            f"no recorded runs for suite {args.suite!r} at {history.path}"
        )

    report = check_history(entries, suite=args.suite)
    degraded = report.degraded(METRIC_CYCLES)
    if degraded and not args.allow_regression:
        for v in degraded:
            print(
                f"  DEGRADED {v.cell}: {v.reason}",
                file=sys.stderr,
            )
        print(
            "error: history shows a confirmed cycle degradation; "
            "re-run with --allow-regression to accept it into the baseline",
            file=sys.stderr,
        )
        return EXIT_PERF_DEGRADED

    # Per cell, take the run achieving the (lower) median cycle count of
    # the newest --window runs, so one outlier run cannot become the
    # committed reference.
    window = entries[-max(2, args.window):]
    per_cell: dict[str, list[tuple[float, dict]]] = {}
    for entry in window:
        for cell in entry.document.get("cells", []):
            cycles = cell.get("result", {}).get("cycles")
            if isinstance(cycles, (int, float)) and cycles > 0:
                per_cell.setdefault(cell_label(cell), []).append(
                    (float(cycles), cell)
                )
    latest = entries[-1].document
    chosen = []
    for label in sorted(
        cell_label(c) for c in latest.get("cells", [])
    ):
        samples = sorted(per_cell.get(label, []), key=lambda s: s[0])
        if not samples:
            continue
        chosen.append(samples[(len(samples) - 1) // 2][1])
    if not chosen:
        raise ReproError(
            f"history holds no clean cells for suite {args.suite!r}"
        )

    baseline = {
        key: value
        for key, value in latest.items()
        if key not in ("cells", "failures", "breakers")
    }
    baseline["cells"] = chosen
    baseline["failures"] = []
    validate_document(baseline)
    save_document(baseline, args.output)
    print(
        f"wrote {args.output}: {len(chosen)} cells, per-cell median of the "
        f"newest {len(window)} run(s) of suite {args.suite!r}"
        + (" (regression accepted)" if degraded else ""),
        file=sys.stderr,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.perf.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro perf", description=__doc__.splitlines()[0]
    )
    configure_parser(parser)
    try:
        return run(parser.parse_args(argv))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":
    raise SystemExit(main())
