"""Statistical degradation detection over a performance history.

Three detectors cooperate; none uses a hard-coded tolerance:

1. **Best-fit-model comparison** (change-point localization).  Each
   per-cell series is fitted with three models — *constant* (no
   change), *linear* (drift) and *step* (a change point at index k,
   two segment means, k chosen to minimize SSE) — and the winner is
   selected by BIC, so a step must buy enough residual reduction to
   pay for its extra parameters.  A winning step localizes the change
   point; a winning linear fit with material total change is reported
   as *drift*, not a step.

2. **Moving average with a confidence band** over the last N runs.
   The newest value is compared against the mean of the preceding
   window; an excursion beyond ``z`` spreads flags a just-landed
   regression even before the model comparison has enough post-change
   points to prefer a step.

3. **A noise-floor estimator.**  Detection thresholds derive from the
   data: the residual spread of the fitted model, widened by the
   measured noise floor — intra-run repeat timings (``attempt_seconds``
   of retried cells) and cross-run scatter of runs that share a code
   version and host (identical code must produce identical cycles, so
   any wall-time spread there *is* noise).  Deterministic cycle counts
   therefore get a tight threshold; noisy wall-clock series get a wide
   one, automatically.

Cycle counts are the gating metric (deterministic, host-independent);
wall time is analyzed per host fingerprint and reported, but only
gates when explicitly requested — CI runners are too heterogeneous for
wall time to block a merge by default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.perf.history import HistoryEntry

#: Status values a cell verdict can carry.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_IMPROVED = "improved"
STATUS_INSUFFICIENT = "insufficient-data"

#: How a degradation (or improvement) manifested.
KIND_STEP = "step"
KIND_DRIFT = "drift"
KIND_SPIKE = "spike"

#: Metrics the detectors understand (both lower-is-better).
METRIC_CYCLES = "cycles"
METRIC_WALL = "wall"

_EPS = 1e-12


@dataclass(frozen=True, slots=True)
class DetectorConfig:
    """Tunables of the detection engine (all derived thresholds scale
    from the data; these only shape *how* they are derived).

    Attributes:
        window: Moving-average window length (runs).
        min_runs: Minimum series length before any verdict is attempted.
        z: Confidence multiplier on the estimated noise spread.
        min_rel_change: Absolute floor on the relative-change threshold,
            so a perfectly deterministic series does not flag on a
            one-cycle wobble.
        max_runs: Only the most recent ``max_runs`` points are analyzed.
    """

    window: int = 10
    min_runs: int = 5
    z: float = 4.0
    min_rel_change: float = 0.005
    max_runs: int = 50


@dataclass(frozen=True, slots=True)
class ModelFit:
    """One fitted model of a series."""

    model: str  # "constant" | "linear" | "step"
    sse: float
    n_params: int
    #: Step models: index of the first post-change point.
    change_index: int | None = None
    #: Linear models: least-squares slope per run.
    slope: float = 0.0
    #: Model prediction at each index (used for residual noise).
    predictions: tuple[float, ...] = ()

    def bic(self, n: int) -> float:
        return n * math.log(max(self.sse, _EPS) / n) + self.n_params * math.log(n)


def fit_constant(values: list[float]) -> ModelFit:
    n = len(values)
    mean = sum(values) / n
    sse = sum((v - mean) ** 2 for v in values)
    return ModelFit("constant", sse, 1, predictions=tuple([mean] * n))


def fit_linear(values: list[float]) -> ModelFit:
    n = len(values)
    xs = range(n)
    x_mean = (n - 1) / 2.0
    y_mean = sum(values) / n
    sxx = sum((x - x_mean) ** 2 for x in xs)
    sxy = sum((x - x_mean) * (y - y_mean) for x, y in zip(xs, values))
    slope = sxy / sxx if sxx > 0 else 0.0
    intercept = y_mean - slope * x_mean
    predictions = tuple(intercept + slope * x for x in xs)
    sse = sum((v - p) ** 2 for v, p in zip(values, predictions))
    return ModelFit("linear", sse, 2, slope=slope, predictions=predictions)


def fit_step(values: list[float]) -> ModelFit:
    """Best two-segment-mean fit; O(n) over prefix sums.

    The change index k (1..n-1) is the first point of the second
    segment — the run where the new behaviour landed.
    """
    n = len(values)
    prefix = [0.0]
    prefix_sq = [0.0]
    for v in values:
        prefix.append(prefix[-1] + v)
        prefix_sq.append(prefix_sq[-1] + v * v)

    def segment_sse(lo: int, hi: int) -> float:  # [lo, hi)
        count = hi - lo
        total = prefix[hi] - prefix[lo]
        total_sq = prefix_sq[hi] - prefix_sq[lo]
        return max(0.0, total_sq - total * total / count)

    best_k, best_sse = 1, math.inf
    for k in range(1, n):
        sse = segment_sse(0, k) + segment_sse(k, n)
        if sse < best_sse - _EPS:
            best_k, best_sse = k, sse
    before = prefix[best_k] / best_k
    after = (prefix[n] - prefix[best_k]) / (n - best_k)
    predictions = tuple(
        before if i < best_k else after for i in range(n)
    )
    return ModelFit("step", best_sse, 3, change_index=best_k,
                    predictions=predictions)


def best_model(values: list[float]) -> ModelFit:
    """The BIC-preferred model of the three candidates.

    Ties break toward the simpler model (fewer parameters), so a flat
    deterministic series is "constant", never a spurious zero-SSE step.
    """
    n = len(values)
    fits = [fit_constant(values), fit_linear(values)]
    if n >= 3:
        fits.append(fit_step(values))
    fits.sort(key=lambda f: (f.bic(n), f.n_params))
    return fits[0]


def residual_rel_spread(values: list[float], fit: ModelFit) -> float:
    """Residual standard deviation of ``fit``, relative to the mean."""
    n = len(values)
    mean = sum(values) / n
    if mean <= 0 or n <= fit.n_params:
        return 0.0
    var = sum(
        (v - p) ** 2 for v, p in zip(values, fit.predictions)
    ) / (n - fit.n_params)
    return math.sqrt(max(0.0, var)) / mean


@dataclass(frozen=True, slots=True)
class SeriesJudgment:
    """Verdict of the combined detectors on one numeric series."""

    status: str  # STATUS_*
    kind: str | None  # KIND_* when status is degraded/improved
    model: str
    change_index: int | None
    before: float | None
    after: float | None
    delta_rel: float | None
    threshold_rel: float
    noise_rel: float
    runs: int
    reason: str


def judge_series(
    values: list[float],
    *,
    noise_rel: float = 0.0,
    config: DetectorConfig = DetectorConfig(),
) -> SeriesJudgment:
    """Run all three detectors over one lower-is-better series."""
    if len(values) > config.max_runs:
        values = values[-config.max_runs:]
    n = len(values)
    if n < config.min_runs or not all(v > 0 for v in values):
        return SeriesJudgment(
            STATUS_INSUFFICIENT, None, "constant", None, None, None, None,
            0.0, noise_rel, n,
            f"need at least {config.min_runs} positive runs, have {n}",
        )

    fit = best_model(values)
    sigma_rel = max(residual_rel_spread(values, fit), noise_rel)
    threshold_rel = max(config.min_rel_change, config.z * sigma_rel)

    def verdict(status, kind, index, before, after, reason):
        delta = (after - before) / before if before else None
        return SeriesJudgment(
            status, kind, fit.model, index, before, after, delta,
            threshold_rel, noise_rel, n, reason,
        )

    if fit.model == "step" and fit.change_index is not None:
        k = fit.change_index
        before = sum(values[:k]) / k
        after = sum(values[k:]) / (n - k)
        delta_rel = (after - before) / before
        if abs(delta_rel) > threshold_rel:
            status = STATUS_DEGRADED if delta_rel > 0 else STATUS_IMPROVED
            return verdict(
                status, KIND_STEP, k, before, after,
                f"step of {100 * delta_rel:+.1f}% at run {k + 1}/{n} "
                f"(threshold ±{100 * threshold_rel:.1f}%)",
            )

    if fit.model == "linear":
        base = fit.predictions[0]
        total_rel = (fit.predictions[-1] - base) / base if base else 0.0
        if abs(total_rel) > threshold_rel:
            status = STATUS_DEGRADED if total_rel > 0 else STATUS_IMPROVED
            return verdict(
                status, KIND_DRIFT, 0, base, fit.predictions[-1],
                f"linear drift of {100 * total_rel:+.1f}% over {n} runs "
                f"({100 * fit.slope / base:+.2f}%/run, "
                f"threshold ±{100 * threshold_rel:.1f}%)",
            )

    # Moving average with a confidence band: is the newest run an
    # excursion from the recent past?  Catches a regression that landed
    # on the very last run, where the model comparison has only one
    # post-change point to work with.
    window = values[-(config.window + 1):-1]
    if len(window) >= 3:
        mu = sum(window) / len(window)
        var = sum((v - mu) ** 2 for v in window) / (len(window) - 1)
        spread = max(
            math.sqrt(var),
            mu * noise_rel,
            mu * config.min_rel_change / config.z,
        )
        excursion = (values[-1] - mu) / mu if mu else 0.0
        if values[-1] > mu + config.z * spread:
            return verdict(
                STATUS_DEGRADED, KIND_SPIKE, n - 1, mu, values[-1],
                f"latest run {100 * excursion:+.1f}% above the "
                f"{len(window)}-run moving average "
                f"(band ±{100 * config.z * spread / mu:.1f}%)",
            )

    return SeriesJudgment(
        STATUS_OK, None, fit.model, None, None, None, None,
        threshold_rel, noise_rel, n, f"{fit.model} model, no material change",
    )


# -- series extraction from history entries ----------------------------

def cell_label(cell_doc: dict) -> str:
    """Canonical ``workload/scheme/width-way[@scale]`` label."""
    scale = cell_doc.get("scale")
    suffix = f"@{scale}" if scale is not None else ""
    return (
        f"{cell_doc['workload']}/{cell_doc['scheme']}/"
        f"{cell_doc['width']}-way{suffix}"
    )


@dataclass(frozen=True, slots=True)
class Point:
    """One observation of one cell's metric."""

    sha: str
    unix: float
    value: float


def extract_series(
    entries: list[HistoryEntry],
    metric: str,
    *,
    host: str | None = None,
) -> dict[str, list[Point]]:
    """Per-cell series of ``metric`` in run (append) order.

    ``cycles`` comes from every clean cell (deterministic and
    host-independent).  ``wall`` uses the fresh-computation time
    (``compute_seconds``) of *non-cached* cells only — a replayed cell
    repeats the wall clock of the run that computed it and would
    flatten the series — and, when ``host`` is given, only from runs on
    that host fingerprint.
    """
    series: dict[str, list[Point]] = {}
    for entry in entries:
        if metric == METRIC_WALL and host is not None:
            if entry.host_fingerprint != host:
                continue
        for cell in entry.document.get("cells", []):
            if metric == METRIC_CYCLES:
                value = cell.get("result", {}).get("cycles")
            else:
                if cell.get("cached"):
                    continue
                value = cell.get("compute_seconds")
            if not isinstance(value, (int, float)) or value <= 0:
                continue
            series.setdefault(cell_label(cell), []).append(
                Point(entry.sha, entry.unix, float(value))
            )
    return series


def noise_floor(entries: list[HistoryEntry], metric: str) -> float:
    """Relative noise estimate from repeat data — never hard-coded.

    Pools two sources of genuine repetition:

    * intra-run: per-attempt wall timings (``attempt_seconds``) of
      cells that were retried within one run;
    * cross-run: the scatter of a cell's metric across runs that share
      a ``code_version`` and host fingerprint — identical code on an
      identical host re-measures the same quantity.

    The pooled *median* relative spread is returned; for deterministic
    cycle counts it is exactly zero.
    """
    rels: list[float] = []
    if metric == METRIC_WALL:
        for entry in entries:
            doc = entry.document
            for cell in doc.get("cells", []) + doc.get("failures", []):
                samples = cell.get("attempt_seconds")
                if isinstance(samples, list) and len(samples) >= 2:
                    rel = _rel_spread([s for s in samples if s > 0])
                    if rel is not None:
                        rels.append(rel)
    groups: dict[tuple, list[float]] = {}
    for entry in entries:
        for cell in entry.document.get("cells", []):
            if metric == METRIC_CYCLES:
                value = cell.get("result", {}).get("cycles")
            else:
                if cell.get("cached"):
                    continue
                value = cell.get("compute_seconds")
            if not isinstance(value, (int, float)) or value <= 0:
                continue
            group = (
                cell_label(cell), entry.code_version, entry.host_fingerprint
            )
            groups.setdefault(group, []).append(float(value))
    for samples in groups.values():
        if len(samples) >= 2:
            rel = _rel_spread(samples)
            if rel is not None:
                rels.append(rel)
    if not rels:
        return 0.0
    rels.sort()
    mid = len(rels) // 2
    if len(rels) % 2:
        return rels[mid]
    return 0.5 * (rels[mid - 1] + rels[mid])


def _rel_spread(samples: list[float]) -> float | None:
    if len(samples) < 2:
        return None
    mean = sum(samples) / len(samples)
    if mean <= 0:
        return None
    var = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
    return math.sqrt(var) / mean


# -- whole-history verdicts --------------------------------------------

@dataclass(frozen=True, slots=True)
class CellVerdict:
    """Judgment of one cell × metric, anchored back to history shas."""

    cell: str
    metric: str
    status: str
    kind: str | None
    model: str
    runs: int
    change_index: int | None
    change_sha: str | None
    before: float | None
    after: float | None
    delta_pct: float | None
    threshold_pct: float
    noise_pct: float
    reason: str

    def as_dict(self) -> dict:
        return {
            "cell": self.cell,
            "metric": self.metric,
            "status": self.status,
            "kind": self.kind,
            "model": self.model,
            "runs": self.runs,
            "change_index": self.change_index,
            "change_sha": self.change_sha,
            "before": self.before,
            "after": self.after,
            "delta_pct": self.delta_pct,
            "threshold_pct": self.threshold_pct,
            "noise_pct": self.noise_pct,
            "reason": self.reason,
        }


@dataclass(eq=False, slots=True)
class PerfReport:
    """Everything ``repro perf check`` learned about one suite."""

    suite: str
    runs: int
    noise: dict[str, float] = field(default_factory=dict)
    verdicts: list[CellVerdict] = field(default_factory=list)

    def by_status(self, status: str, metric: str | None = None):
        return [
            v for v in self.verdicts
            if v.status == status and (metric is None or v.metric == metric)
        ]

    def degraded(self, metric: str | None = None) -> list[CellVerdict]:
        return self.by_status(STATUS_DEGRADED, metric)

    def improved(self, metric: str | None = None) -> list[CellVerdict]:
        return self.by_status(STATUS_IMPROVED, metric)


def check_history(
    entries: list[HistoryEntry],
    *,
    suite: str,
    metrics: tuple[str, ...] = (METRIC_CYCLES, METRIC_WALL),
    config: DetectorConfig = DetectorConfig(),
) -> PerfReport:
    """Judge every cell of ``suite`` across all three detectors.

    Only cells present in the most recent run are judged (a cell that
    vanished from the suite is the baseline gate's business, not a
    statistical question), and the change index is mapped back to the
    sha of the run where the new behaviour first appears.
    """
    entries = [e for e in entries if e.suite == suite]
    report = PerfReport(suite=suite, runs=len(entries))
    if not entries:
        return report
    latest = entries[-1]
    latest_cells = {
        cell_label(c) for c in latest.document.get("cells", [])
    }
    for metric in metrics:
        host = latest.host_fingerprint if metric == METRIC_WALL else None
        noise_rel = noise_floor(entries, metric)
        report.noise[metric] = noise_rel
        series = extract_series(entries, metric, host=host)
        for label in sorted(latest_cells):
            points = series.get(label, [])
            if len(points) > config.max_runs:
                points = points[-config.max_runs:]
            judgment = judge_series(
                [p.value for p in points], noise_rel=noise_rel, config=config
            )
            change_sha = None
            if judgment.change_index is not None and points:
                change_sha = points[judgment.change_index].sha
            report.verdicts.append(
                CellVerdict(
                    cell=label,
                    metric=metric,
                    status=judgment.status,
                    kind=judgment.kind,
                    model=judgment.model,
                    runs=judgment.runs,
                    change_index=judgment.change_index,
                    change_sha=change_sha,
                    before=judgment.before,
                    after=judgment.after,
                    delta_pct=(
                        None if judgment.delta_rel is None
                        else 100.0 * judgment.delta_rel
                    ),
                    threshold_pct=100.0 * judgment.threshold_rel,
                    noise_pct=100.0 * judgment.noise_rel,
                    reason=judgment.reason,
                )
            )
    return report
