"""Machine- and human-readable forms of a perf check verdict.

``repro perf check --json`` emits a ``repro-perf/1`` document — the
perf analogue of the ``repro-bench/1`` results document — so other
tooling (CI annotations, dashboards) can consume the verdict without
parsing console text.  The same :class:`~repro.perf.detect.PerfReport`
also renders to the plain-text report CI uploads as an artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ReproError
from repro.perf.detect import (
    STATUS_DEGRADED,
    STATUS_IMPROVED,
    STATUS_INSUFFICIENT,
    STATUS_OK,
    PerfReport,
)

#: Verdict document schema; bump on incompatible layout changes.
PERF_SCHEMA = "repro-perf/1"

_VALID_STATUSES = (
    STATUS_OK, STATUS_DEGRADED, STATUS_IMPROVED, STATUS_INSUFFICIENT
)

_TOP_LEVEL_REQUIRED = (
    "schema", "suite", "sha", "branch", "runs", "status", "gated_metrics",
    "noise", "verdicts",
)

_VERDICT_REQUIRED = (
    "cell", "metric", "status", "runs", "threshold_pct", "reason",
)


def build_verdict_document(
    report: PerfReport,
    *,
    sha: str,
    branch: str,
    gated_metrics: tuple[str, ...],
    config: dict | None = None,
) -> dict:
    """Assemble the ``repro-perf/1`` document for one checked suite.

    ``status`` is the overall gate outcome: ``degraded`` iff any gated
    metric has a confirmed degradation, else ``ok``.
    """
    degraded = [
        v for v in report.verdicts
        if v.status == STATUS_DEGRADED and v.metric in gated_metrics
    ]
    doc = {
        "schema": PERF_SCHEMA,
        "suite": report.suite,
        "sha": sha,
        "branch": branch,
        "runs": report.runs,
        "status": STATUS_DEGRADED if degraded else STATUS_OK,
        "gated_metrics": list(gated_metrics),
        "noise": {
            metric: round(100.0 * rel, 4)
            for metric, rel in sorted(report.noise.items())
        },
        "verdicts": [v.as_dict() for v in report.verdicts],
    }
    if config:
        doc["config"] = dict(config)
    return doc


def validate_verdict_document(doc: dict) -> None:
    """Raise :class:`ReproError` listing every schema violation."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        raise ReproError("perf verdict document must be a JSON object")
    if doc.get("schema") != PERF_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {PERF_SCHEMA!r}"
        )
    for field in _TOP_LEVEL_REQUIRED:
        if field not in doc:
            problems.append(f"missing top-level field {field!r}")
    if doc.get("status") not in (STATUS_OK, STATUS_DEGRADED):
        problems.append(
            f"status must be '{STATUS_OK}' or '{STATUS_DEGRADED}', "
            f"not {doc.get('status')!r}"
        )
    noise = doc.get("noise")
    if noise is not None and not isinstance(noise, dict):
        problems.append("noise must be an object")
    verdicts = doc.get("verdicts")
    if not isinstance(verdicts, list):
        problems.append("verdicts must be a list")
        verdicts = []
    for index, verdict in enumerate(verdicts):
        where = f"verdicts[{index}]"
        if not isinstance(verdict, dict):
            problems.append(f"{where} must be an object")
            continue
        for field in _VERDICT_REQUIRED:
            if field not in verdict:
                problems.append(f"{where} missing {field!r}")
        if verdict.get("status") not in _VALID_STATUSES:
            problems.append(
                f"{where}.status must be one of {_VALID_STATUSES}, "
                f"not {verdict.get('status')!r}"
            )
    if problems:
        raise ReproError(
            "invalid perf verdict document:\n  " + "\n  ".join(problems)
        )


def save_verdict_document(doc: dict, path: str | os.PathLike) -> None:
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_verdict_document(path: str | os.PathLike) -> dict:
    try:
        with open(Path(path), encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read perf verdict {path}: {exc}") from None


def render_text_report(report: PerfReport, *, sha: str, branch: str) -> str:
    """Human-readable summary (the CI ``perf-report.txt`` artifact)."""
    lines = [
        f"perf check: suite={report.suite} branch={branch} sha={sha[:12]}",
        f"history: {report.runs} recorded run(s)",
    ]
    for metric, rel in sorted(report.noise.items()):
        lines.append(f"noise floor [{metric}]: {100.0 * rel:.2f}%")
    degraded = report.degraded()
    improved = report.improved()
    ok = report.by_status(STATUS_OK)
    thin = report.by_status(STATUS_INSUFFICIENT)
    lines.append(
        f"verdicts: {len(degraded)} degraded, {len(improved)} improved, "
        f"{len(ok)} ok, {len(thin)} with insufficient data"
    )
    for title, group in (("DEGRADED", degraded), ("IMPROVED", improved)):
        for v in group:
            since = f" since {v.change_sha[:12]}" if v.change_sha else ""
            delta = (
                f"{v.delta_pct:+.1f}%" if v.delta_pct is not None else "?"
            )
            lines.append(
                f"  {title} [{v.metric}] {v.cell}: {delta}{since} — {v.reason}"
            )
    if not degraded and not improved:
        lines.append("  no material changes detected")
    return "\n".join(lines) + "\n"
