"""Terminal-node classification.

Every forward slice in an RDG terminates at one of five terminal kinds
(paper §3): memory addresses, call arguments, return values, branch
outcomes, or store values.  The partitioning goals (§4) are phrased in
terms of these kinds: LdSt slices and call/return slices seed the INT
partition; branch and store-value slices are the candidates for FPa.
"""

from __future__ import annotations

import enum

from repro.ir.opcodes import OpKind
from repro.rdg.graph import RDG, Node, Part


class TerminalKind(enum.Enum):
    """The kind of terminal a node is, if any."""

    ADDRESS = "address"
    BRANCH = "branch"
    STORE_VALUE = "store_value"
    CALL = "call"
    RETURN = "return"


def terminal_kind(rdg: RDG, node: Node) -> TerminalKind | None:
    """Classify ``node`` as a slice terminal, or None for interior nodes.

    Note that load *value* nodes are sources (they begin slices), not
    terminals, and interior ALU nodes are neither.
    """
    instr = rdg.instruction(node)
    kind = instr.kind
    if node.part is Part.ADDR:
        return TerminalKind.ADDRESS
    if kind is OpKind.STORE and node.part is Part.VALUE:
        return TerminalKind.STORE_VALUE
    if kind is OpKind.BRANCH:
        return TerminalKind.BRANCH
    if kind is OpKind.CALL:
        return TerminalKind.CALL
    if kind is OpKind.RET:
        return TerminalKind.RETURN
    return None


def terminals(rdg: RDG) -> dict[TerminalKind, list[Node]]:
    """All terminal nodes grouped by kind."""
    out: dict[TerminalKind, list[Node]] = {kind: [] for kind in TerminalKind}
    for node in rdg.nodes:
        kind = terminal_kind(rdg, node)
        if kind is not None:
            out[kind].append(node)
    return out
