"""Register dependence graph (RDG) and computational slices.

The RDG is the paper's primary data structure (§3): a directed graph with
one node per static instruction, except that loads and stores are each
**split** into an address node and a value node.  Edges are register
def-use dependences from reaching definitions.  Because the two halves of
a split memory instruction share no register edge, backward slices never
cross a load's value into its address computation, and forward slices
terminate at address nodes — exactly the paper's modified slice
definitions.
"""

from repro.rdg.graph import RDG, Node, Part, Pin
from repro.rdg.build import build_rdg
from repro.rdg.slices import (
    backward_slice,
    forward_slice,
    ldst_slice,
    branch_slice,
    store_value_slice,
    call_argument_slice,
    return_value_slice,
)
from repro.rdg.classify import terminal_kind, TerminalKind

__all__ = [
    "RDG",
    "Node",
    "Part",
    "Pin",
    "build_rdg",
    "backward_slice",
    "forward_slice",
    "ldst_slice",
    "branch_slice",
    "store_value_slice",
    "call_argument_slice",
    "return_value_slice",
    "terminal_kind",
    "TerminalKind",
]
