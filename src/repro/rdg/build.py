"""RDG construction from a function.

Edges come from reaching definitions.  Operand-to-node ownership follows
the paper's split-node convention:

* A load's destination belongs to its VALUE node; its base-address use
  belongs to its ADDR node.
* A store's value use (position 0) belongs to its VALUE node; its base
  use (position 1) belongs to its ADDR node.
* Every other operand belongs to the instruction's WHOLE node.

There is **no** edge between the two halves of a split memory
instruction: their coupling is through memory, which the RDG does not
model.  This is what makes backward slices stop at load values and
forward slices stop at address nodes.
"""

from __future__ import annotations

from repro.analysis.reaching import ReachingDefinitions
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode, OpKind, fpa_twin
from repro.ir.registers import ZERO
from repro.rdg.graph import RDG, Node, Part, Pin

#: Integer opcodes whose *value* half cannot live in an FP register
#: because the ISA has no FP byte transfers.
_BYTE_MEMORY = {Opcode.LB, Opcode.LBU, Opcode.SB}


def _def_node(instr: Instruction) -> Node:
    """The node that owns ``instr``'s register definition."""
    if instr.kind is OpKind.LOAD:
        return Node(instr.uid, Part.VALUE)
    return Node(instr.uid, Part.WHOLE)


def _use_node(instr: Instruction, pos: int) -> Node:
    """The node that owns use operand ``pos`` of ``instr``."""
    if instr.kind is OpKind.LOAD:
        return Node(instr.uid, Part.ADDR)
    if instr.kind is OpKind.STORE:
        return Node(instr.uid, Part.VALUE if pos == 0 else Part.ADDR)
    return Node(instr.uid, Part.WHOLE)


def _pin_of(instr: Instruction, part: Part) -> Pin | None:
    """Mandatory placement for the node ``(instr, part)``, or None."""
    op = instr.op
    kind = instr.kind
    if kind in (OpKind.LOAD, OpKind.STORE):
        if part is Part.ADDR:
            return Pin.INT  # address generation is INT-only in this machine
        # value half
        if op in (Opcode.LS, Opcode.SS):
            return Pin.FP
        if op in _BYTE_MEMORY:
            return Pin.INT
        return None  # lw/sw word values are free
    if op is Opcode.CP_TO_COMP:
        return Pin.INT
    if op is Opcode.CP_FROM_COMP:
        return Pin.FP
    if kind in (OpKind.CALL, OpKind.RET, OpKind.PARAM, OpKind.JUMP):
        return Pin.INT  # calling conventions / fetch-unit control
    if instr.info.fp_subsystem:
        return Pin.FP
    if kind in (OpKind.MUL, OpKind.DIV):
        return Pin.INT  # no integer multiply/divide in FPa (paper §1, §7.1)
    if kind in (OpKind.ALU, OpKind.BRANCH):
        return None if fpa_twin(op) is not None else Pin.INT
    if kind is OpKind.NOP:
        return Pin.INT
    raise AssertionError(f"unhandled opcode {op} in pin classification")


def build_rdg(func: Function, reaching: ReachingDefinitions | None = None) -> RDG:
    """Build the register dependence graph of ``func``.

    Args:
        func: Function to analyze.
        reaching: Pre-computed reaching definitions (recomputed if None).
    """
    if reaching is None:
        reaching = ReachingDefinitions(func)

    rdg = RDG(func=func, block_of=func.block_of())

    for blk in func.blocks:
        for instr in blk.instructions:
            rdg.instr_of[instr.uid] = instr
            if instr.is_memory:
                rdg.add_node(Node(instr.uid, Part.ADDR))
                rdg.add_node(Node(instr.uid, Part.VALUE))
                rdg.pin[Node(instr.uid, Part.ADDR)] = Pin.INT
                value_pin = _pin_of(instr, Part.VALUE)
                if value_pin is None and instr.kind is OpKind.STORE and instr.uses[0] == ZERO:
                    value_pin = Pin.INT  # the FP file has no zero register
                if value_pin is not None:
                    rdg.pin[Node(instr.uid, Part.VALUE)] = value_pin
            else:
                node = rdg.add_node(Node(instr.uid, Part.WHOLE))
                pin = _pin_of(instr, Part.WHOLE)
                if pin is None and ZERO in instr.uses:
                    pin = Pin.INT  # the FP file has no zero register
                if pin is not None:
                    rdg.pin[node] = pin

    for def_uid, use_uid, use_pos, _reg in reaching.du_edges():
        src = _def_node(rdg.instr_of[def_uid])
        use_instr = rdg.instr_of[use_uid]
        dst = _use_node(use_instr, use_pos)
        rdg.add_edge(src, dst)
        if use_instr.kind in (OpKind.CALL, OpKind.RET):
            # Calling-convention edge: the producer may stay in FPa at the
            # price of a cp_from_comp (§6.4).
            rdg.convention_edges.add((src, dst))
        if rdg.instr_of[def_uid].op is Opcode.CP_FROM_COMP and rdg.pin.get(dst) is None:
            # A value just copied out of the FP file is consumed in the
            # INT file; offloading its consumer would need the value back
            # in FP registers.  Pin the consumer to INT.
            rdg.pin[dst] = Pin.INT

    return rdg
