"""Computational slices over the RDG (paper §3).

All slices are reachability computations over the register edges of the
RDG.  Because split memory nodes have no intra-instruction edge, the
paper's modified slice semantics fall out automatically:

* backward slices do not go past load-value nodes, and
* forward slices do not go past address nodes.

Forward slices therefore terminate at memory addresses, call arguments,
return values, branch outcomes, or store values — the *terminal* nodes of
:mod:`repro.rdg.classify`.
"""

from __future__ import annotations

from typing import Iterable

from repro.ir.opcodes import OpKind
from repro.rdg.graph import RDG, Node, Part


def backward_slice(rdg: RDG, node: Node, include_self: bool = True) -> set[Node]:
    """All nodes from which ``node`` is reachable (paper's
    ``Backward-Slice(G, v)``, reflexive by default)."""
    out: set[Node] = set()
    work = list(rdg.preds[node])
    while work:
        current = work.pop()
        if current in out:
            continue
        out.add(current)
        work.extend(rdg.preds[current])
    if include_self:
        out.add(node)
    return out


def forward_slice(rdg: RDG, node: Node, include_self: bool = True) -> set[Node]:
    """All nodes reachable from ``node`` (``Forward-Slice(G, v)``)."""
    out: set[Node] = set()
    work = list(rdg.succs[node])
    while work:
        current = work.pop()
        if current in out:
            continue
        out.add(current)
        work.extend(rdg.succs[current])
    if include_self:
        out.add(node)
    return out


def backward_slice_of_set(rdg: RDG, seeds: Iterable[Node]) -> set[Node]:
    """Union of backward slices of ``seeds`` (single traversal)."""
    out: set[Node] = set()
    work = list(seeds)
    while work:
        current = work.pop()
        if current in out:
            continue
        out.add(current)
        work.extend(rdg.preds[current])
    return out


def address_nodes(rdg: RDG) -> list[Node]:
    """The load/store address nodes of the graph (``LS(G)`` in §3)."""
    return [
        node
        for node in rdg.nodes
        if node.part is Part.ADDR and rdg.instruction(node).is_memory
    ]


def ldst_slice(rdg: RDG) -> set[Node]:
    """The LdSt slice: every node contributing to a load/store address.

    ``LdSt slice = U_{v in LS(G)} Backward-Slice(G, v)`` (§3).
    """
    return backward_slice_of_set(rdg, address_nodes(rdg))


def branch_slice(rdg: RDG, branch: Node) -> set[Node]:
    """The slice computing one branch's outcome."""
    if rdg.instruction(branch).kind is not OpKind.BRANCH:
        raise ValueError(f"{branch!r} is not a branch node")
    return backward_slice(rdg, branch)


def store_value_slice(rdg: RDG, store_value: Node) -> set[Node]:
    """The slice computing one store's value operand."""
    instr = rdg.instruction(store_value)
    if instr.kind is not OpKind.STORE or store_value.part is not Part.VALUE:
        raise ValueError(f"{store_value!r} is not a store-value node")
    return backward_slice(rdg, store_value)


def call_argument_slice(rdg: RDG, call: Node) -> set[Node]:
    """The slice computing a call's actual arguments (excludes the call
    node itself)."""
    if rdg.instruction(call).kind is not OpKind.CALL:
        raise ValueError(f"{call!r} is not a call node")
    return backward_slice(rdg, call, include_self=False)


def return_value_slice(rdg: RDG, ret: Node) -> set[Node]:
    """The slice computing a function's return value (excludes ``ret``)."""
    if rdg.instruction(ret).kind is not OpKind.RET:
        raise ValueError(f"{ret!r} is not a return node")
    return backward_slice(rdg, ret, include_self=False)
