"""RDG node and graph types.

A node is ``(uid, part)``: ``Part.WHOLE`` for ordinary instructions,
``Part.ADDR``/``Part.VALUE`` for the two halves of a split load or store.
Each node carries a *pin* describing where the partitioner may place it:

* ``Pin.INT`` — must execute in the integer subsystem: address nodes,
  calls/returns/params (calling conventions), jumps, integer opcodes with
  no FPa twin (multiply, divide, ...), byte-memory value halves, and
  ``cp_to_comp``.
* ``Pin.FP`` — already executes in the (augmented) FP subsystem: true
  floating-point operations, ``l.s``/``s.s`` value halves, existing
  ``.a`` opcodes, and ``cp_from_comp``.
* ``None`` — free: the partitioner decides (offloadable integer ALU ops,
  branches with ``.a`` twins, word-load/store value halves, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.ir.function import Function
from repro.ir.instructions import Instruction


class Part(enum.Enum):
    """Which piece of an instruction a node represents."""

    WHOLE = "whole"
    ADDR = "addr"
    VALUE = "value"


class Pin(enum.Enum):
    """Mandatory placement of a node, if any."""

    INT = "int"
    FP = "fp"


@dataclass(frozen=True, slots=True)
class Node:
    """One RDG node: instruction ``uid``, instruction ``part``."""

    uid: int
    part: Part = Part.WHOLE

    def __repr__(self) -> str:
        if self.part is Part.WHOLE:
            return f"n{self.uid}"
        return f"n{self.uid}{self.part.value[0]}"  # n12a / n12v


@dataclass(eq=False, slots=True)
class RDG:
    """The register dependence graph of one function.

    Attributes:
        func: The function this graph describes.
        nodes: All nodes.
        succs / preds: Directed register def-use adjacency.
        pin: Mandatory placements (absent keys are free nodes).
        instr_of: uid -> instruction.
        block_of: uid -> containing block label.
        convention_edges: The subset of edges into call/ret nodes that
            calling conventions allow to be satisfied by a
            ``cp_from_comp`` instead of forcing the producer into INT
            (paper §6.4).
    """

    func: Function
    nodes: list[Node] = field(default_factory=list)
    succs: dict[Node, list[Node]] = field(default_factory=dict)
    preds: dict[Node, list[Node]] = field(default_factory=dict)
    pin: dict[Node, Pin] = field(default_factory=dict)
    instr_of: dict[int, Instruction] = field(default_factory=dict)
    block_of: dict[int, str] = field(default_factory=dict)
    convention_edges: set[tuple[Node, Node]] = field(default_factory=set)

    def add_node(self, node: Node) -> Node:
        self.nodes.append(node)
        self.succs[node] = []
        self.preds[node] = []
        return node

    def add_edge(self, src: Node, dst: Node) -> None:
        if dst not in self.succs[src]:
            self.succs[src].append(dst)
            self.preds[dst].append(src)

    def instruction(self, node: Node) -> Instruction:
        return self.instr_of[node.uid]

    def block(self, node: Node) -> str:
        return self.block_of[node.uid]

    def parents(self, node: Node) -> list[Node]:
        return self.preds[node]

    def children(self, node: Node) -> list[Node]:
        return self.succs[node]

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    def undirected_components(self) -> list[set[Node]]:
        """Connected components of the undirected version of the graph
        (the basic partitioning scheme's unit of assignment, §5.2)."""
        seen: set[Node] = set()
        components: list[set[Node]] = []
        for start in self.nodes:
            if start in seen:
                continue
            comp: set[Node] = set()
            work = [start]
            seen.add(start)
            while work:
                node = work.pop()
                comp.add(node)
                for other in self.succs[node]:
                    if other not in seen:
                        seen.add(other)
                        work.append(other)
                for other in self.preds[node]:
                    if other not in seen:
                        seen.add(other)
                        work.append(other)
            components.append(comp)
        return components

    def component_of(self, start: Node, *, ignore_edges: set[tuple[Node, Node]] | None = None) -> set[Node]:
        """Undirected connected component containing ``start``, optionally
        treating the directed edges in ``ignore_edges`` as absent (used in
        phase 2 of the advanced scheme, where copies/duplicates disconnect
        the graph)."""
        ignored = ignore_edges or set()
        comp: set[Node] = set()
        work = [start]
        while work:
            node = work.pop()
            if node in comp:
                continue
            comp.add(node)
            for other in self.succs[node]:
                if (node, other) not in ignored:
                    work.append(other)
            for other in self.preds[node]:
                if (other, node) not in ignored:
                    work.append(other)
        return comp
