"""Generic worklist abstract interpreter over the IR CFG.

The bit-vector solver in :mod:`repro.analysis.dataflow` covers the
classic gen/kill problems; this engine complements it for *non-bitset*
lattices — interval analysis, origin tracking, frequency propagation —
where the transfer functions are arbitrary Python and termination needs
widening.

A client implements :class:`AbstractDomain`:

* ``entry_state`` — the boundary state (function entry for forward
  problems, every exit block for backward ones).
* ``join`` / ``widen`` / ``equal`` — the lattice operations.  ``widen``
  defaults to ``join``; the engine applies it at the targets of
  retreating edges once a block has been revisited ``widen_after``
  times, which is what guarantees termination on infinite-height
  lattices.
* ``transfer_instruction`` (or ``transfer_block``) — the abstract
  semantics.
* ``transfer_edge`` — optional per-edge refinement.  Returning ``None``
  marks the edge *infeasible* (e.g. a branch whose condition interval
  excludes that direction), which is how interval analysis proves
  blocks unreachable beyond plain CFG reachability.

Unreachable state is represented by the engine itself, not the domain:
a block whose in-state is still ``None`` after the fixed point was never
reached by any feasible path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro.ir.cfg import predecessors, reverse_postorder, successor_map
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Instruction

S = TypeVar("S")


class AbstractDomain(Generic[S]):
    """Lattice plus abstract semantics for one analysis.

    Attributes:
        forward: Direction of propagation.
        widen_after: Number of visits to a widening point before
            :meth:`widen` replaces :meth:`join` there.
    """

    forward: bool = True
    widen_after: int = 2

    # -- lattice ---------------------------------------------------------
    def entry_state(self, func: Function) -> S:
        """Boundary state at the entry (forward) or exits (backward)."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def widen(self, old: S, new: S) -> S:
        """Extrapolate at widening points; defaults to :meth:`join`."""
        return self.join(old, new)

    def equal(self, a: S, b: S) -> bool:
        return bool(a == b)

    # -- semantics -------------------------------------------------------
    def transfer_instruction(self, instr: Instruction, state: S) -> S:
        return state

    def transfer_block(self, func: Function, block: BasicBlock, state: S) -> S:
        """Fold :meth:`transfer_instruction` over the block (reversed for
        backward problems)."""
        instrs = block.instructions if self.forward else list(reversed(block.instructions))
        for instr in instrs:
            state = self.transfer_instruction(instr, state)
        return state

    def transfer_edge(
        self, func: Function, src: BasicBlock, dst_label: str, state: S
    ) -> S | None:
        """Refine ``state`` along the CFG edge ``src -> dst_label``
        (``dst_label -> src`` for backward problems).  ``None`` marks the
        edge infeasible."""
        return state


@dataclass(eq=False, slots=True)
class AbsintResult(Generic[S]):
    """Fixed point of one abstract interpretation.

    ``in_states[label] is None`` means no feasible path reaches the
    block — a strictly stronger claim than CFG unreachability when the
    domain refines branch edges.
    """

    in_states: dict[str, S | None] = field(default_factory=dict)
    out_states: dict[str, S | None] = field(default_factory=dict)
    iterations: int = 0

    def reachable(self, label: str) -> bool:
        return self.in_states.get(label) is not None


def _widening_points(func: Function, order: list[str]) -> set[str]:
    """Targets of retreating edges w.r.t. the iteration order — a
    superset of the natural-loop headers, cheap to compute and correct
    for irreducible graphs too."""
    position = {label: i for i, label in enumerate(order)}
    succ = successor_map(func)
    points: set[str] = set()
    for label in order:
        for nxt in succ[label]:
            if position.get(nxt, 1 << 30) <= position[label]:
                points.add(nxt)
    return points


def interpret(func: Function, domain: AbstractDomain[S]) -> AbsintResult[S]:
    """Run ``domain`` over ``func`` to a fixed point and return per-block
    states (``None`` = unreachable)."""
    if not func.blocks:
        return AbsintResult(in_states={}, out_states={})

    rpo = reverse_postorder(func)
    succ = successor_map(func)
    preds = predecessors(func)
    blocks = {blk.label: blk for blk in func.blocks}

    if domain.forward:
        order = rpo
        inputs_of = preds
        outputs_of = succ
        boundary = {func.entry.label}
    else:
        order = list(reversed(rpo))
        inputs_of = succ
        outputs_of = preds
        boundary = {label for label in blocks if not succ[label]}

    in_states: dict[str, S | None] = {label: None for label in blocks}
    out_states: dict[str, S | None] = {label: None for label in blocks}
    visits: dict[str, int] = {label: 0 for label in blocks}
    widen_at = _widening_points(func, order)

    work: deque[str] = deque(order)
    queued = set(order)
    iterations = 0
    while work:
        label = work.popleft()
        queued.discard(label)
        iterations += 1

        # join incoming edge states (with per-edge refinement)
        incoming: S | None = domain.entry_state(func) if label in boundary else None
        for other in inputs_of[label]:
            out = out_states[other]
            if out is None:
                continue
            if domain.forward:
                edge_state = domain.transfer_edge(func, blocks[other], label, out)
            else:
                edge_state = domain.transfer_edge(func, blocks[label], other, out)
            if edge_state is None:
                continue  # infeasible edge
            incoming = (
                edge_state if incoming is None else domain.join(incoming, edge_state)
            )
        if incoming is None:
            continue  # still unreachable

        old_in = in_states[label]
        if old_in is not None:
            visits[label] += 1
            if label in widen_at and visits[label] >= domain.widen_after:
                incoming = domain.widen(old_in, incoming)
            else:
                incoming = domain.join(old_in, incoming)
            if domain.equal(old_in, incoming):
                continue
        in_states[label] = incoming

        new_out = domain.transfer_block(func, blocks[label], incoming)
        old_out = out_states[label]
        if old_out is not None and domain.equal(old_out, new_out):
            continue
        out_states[label] = new_out
        for nxt in outputs_of[label]:
            if nxt not in queued:
                queued.add(nxt)
                work.append(nxt)

    return AbsintResult(in_states=in_states, out_states=out_states, iterations=iterations)


def states_at_instructions(
    func: Function, domain: AbstractDomain[S], result: AbsintResult[S]
) -> dict[int, S]:
    """Per-instruction *pre*-states of a forward analysis, replayed from
    the block in-states (instructions of unreachable blocks are absent)."""
    if not domain.forward:
        raise ValueError("states_at_instructions requires a forward domain")
    states: dict[int, S] = {}
    for blk in func.blocks:
        state = result.in_states.get(blk.label)
        if state is None:
            continue
        for instr in blk.instructions:
            states[instr.uid] = state
            state = domain.transfer_instruction(instr, state)
    return states
