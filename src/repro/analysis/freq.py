"""Static branch-probability and block-frequency estimation.

Ball–Larus-style branch heuristics combined Wu–Larus-style:

* **Loop heuristics** — a back edge is taken with probability
  ``LOOP_BACK`` (≈ 0.88); an edge that exits a loop while the other
  direction stays inside is taken with ``1 - LOOP_EXIT``.
* **Opcode heuristics** — equality branches rarely succeed
  (``beq`` → taken 0.16, ``bne`` → 0.84); sign tests on integers
  are rarely negative/non-positive (``blez``/``bltz`` → taken 0.16,
  ``bgez``/``bgtz`` → 0.84); FP compares get no prior.

Independent heuristic evidence for the same branch is combined with the
Dempster–Shafer rule ``p = p1*p2 / (p1*p2 + (1-p1)(1-p2))``.

Frequencies follow Wu–Larus: each natural loop (innermost first) gets a
*cyclic probability* ``cp`` — the probability mass flowing around its
back edges per header entry — and a trip factor ``1 / (1 - cp)`` capped
at :data:`MAX_TRIP`; block frequencies then propagate through the
acyclic forward-edge condensation with every loop header multiplied by
its trip factor.  This mirrors the structure of the paper's
``p_B * 5^{d_B}`` estimate (:func:`repro.partition.cost.estimate_profile`)
but replaces the fixed ``5`` per nesting level with per-loop,
per-branch-direction evidence.

:func:`static_profile` scales per-function frequencies by call-graph
entry counts and packages everything as an
:class:`~repro.partition.cost.ExecutionProfile`, so the advanced
partitioner can run profile-driven **without executing the program**.
Within one function the partition decisions are invariant under positive
scaling of ``n_B`` (Profit just scales), so entry counts only matter for
cross-function comparisons and agreement reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.loops import NaturalLoop, find_loops
from repro.ir.cfg import predecessors, reachable_blocks, reverse_postorder, successor_map
from repro.ir.function import Function
from repro.ir.opcodes import Opcode, OpKind
from repro.ir.program import Program

if TYPE_CHECKING:  # avoid a module cycle: partition.cost imports analysis
    from repro.partition.cost import ExecutionProfile

#: Probability that a back edge is followed (stay in the loop).
LOOP_BACK = 0.88
#: Probability that a loop-exiting branch direction is *not* taken.
LOOP_EXIT = 0.80
#: Opcode priors: probability the branch is taken.
OPCODE_TAKEN: dict[Opcode, float] = {
    Opcode.BEQ: 0.16,
    Opcode.BEQ_A: 0.16,
    Opcode.BNE: 0.84,
    Opcode.BNE_A: 0.84,
    Opcode.BLEZ: 0.16,
    Opcode.BLEZ_A: 0.16,
    Opcode.BLTZ: 0.16,
    Opcode.BLTZ_A: 0.16,
    Opcode.BGEZ: 0.84,
    Opcode.BGTZ: 0.84,
}
#: Cap on the per-loop trip factor ``1/(1-cp)``.
MAX_TRIP = 64.0
#: Cap on interprocedural entry counts (recursion guard).
MAX_ENTRY = 1e12

Edge = tuple[str, str]


def _combine(p1: float, p2: float) -> float:
    """Dempster–Shafer combination of two taken-probabilities."""
    num = p1 * p2
    den = num + (1.0 - p1) * (1.0 - p2)
    return num / den if den > 0.0 else 0.5


def _back_edges(func: Function, loops: list[NaturalLoop]) -> set[Edge]:
    preds = predecessors(func)
    edges: set[Edge] = set()
    for loop in loops:
        for tail in preds[loop.header]:
            if tail in loop.body:
                edges.add((tail, loop.header))
    return edges


def edge_probabilities(func: Function) -> dict[Edge, float]:
    """Per-CFG-edge branch probabilities from the static heuristics.

    Outgoing probabilities of every block with at least one successor
    sum to 1 (flow conservation).
    """
    succ = successor_map(func)
    loops = find_loops(func)
    back = _back_edges(func, loops)
    body_of: dict[str, list[NaturalLoop]] = {}
    for loop in loops:
        for label in loop.body:
            body_of.setdefault(label, []).append(loop)

    probs: dict[Edge, float] = {}
    for blk in func.blocks:
        out = succ[blk.label]
        if not out:
            continue
        if len(out) == 1:
            probs[(blk.label, out[0])] = 1.0
            continue
        # two-way conditional branch: target first, fall-through second
        term = blk.terminator
        assert term is not None and term.kind is OpKind.BRANCH
        taken_label, fall_label = out[0], out[1]
        taken = OPCODE_TAKEN.get(term.op, 0.5)
        if (blk.label, taken_label) in back:
            taken = _combine(taken, LOOP_BACK)
        if (blk.label, fall_label) in back:
            taken = _combine(taken, 1.0 - LOOP_BACK)
        # loop-exit heuristic: one direction leaves every loop containing
        # the branch while the other stays inside
        for loop in body_of.get(blk.label, []):
            taken_stays = taken_label in loop.body
            fall_stays = fall_label in loop.body
            if taken_stays and not fall_stays:
                taken = _combine(taken, LOOP_EXIT)
            elif fall_stays and not taken_stays:
                taken = _combine(taken, 1.0 - LOOP_EXIT)
        taken = min(max(taken, 0.01), 0.99)
        probs[(blk.label, taken_label)] = taken
        probs[(blk.label, fall_label)] = 1.0 - taken
    return probs


def _loop_trip_factors(
    func: Function,
    loops: list[NaturalLoop],
    probs: dict[Edge, float],
    back: set[Edge],
    rpo_position: dict[str, int],
) -> dict[str, float]:
    """Per-header trip factor ``1/(1-cp)``, innermost loops first so an
    outer loop's propagation can use its inner loops' factors."""
    preds = predecessors(func)
    trip: dict[str, float] = {}
    for loop in sorted(loops, key=lambda l: len(l.body)):
        local: dict[str, float] = {label: 0.0 for label in loop.body}
        local[loop.header] = 1.0
        for label in sorted(loop.body, key=lambda l: rpo_position.get(l, 1 << 30)):
            if label != loop.header:
                total = 0.0
                for p in preds[label]:
                    if p in loop.body and (p, label) not in back:
                        total += local[p] * probs.get((p, label), 0.0)
                local[label] = total
            if label != loop.header and label in trip:
                local[label] *= trip[label]  # inner loop spins here
        cp = sum(
            local[tail] * probs.get((tail, loop.header), 0.0)
            for tail in preds[loop.header]
            if tail in loop.body
        )
        cp = min(cp, 1.0 - 1.0 / MAX_TRIP)
        trip[loop.header] = max(1.0, 1.0 / (1.0 - cp))
    return trip


def block_frequencies(func: Function) -> dict[str, float]:
    """Static execution frequency of every block, entry = 1.

    Flow-conserving by construction: at every block with only forward
    in-edges the frequency is the sum of incoming edge frequencies, and
    loop headers additionally multiply by their trip factor.
    Unreachable blocks get frequency 0.
    """
    probs = edge_probabilities(func)
    loops = find_loops(func)
    back = _back_edges(func, loops)
    rpo = reverse_postorder(func)
    position = {label: i for i, label in enumerate(rpo)}
    preds = predecessors(func)
    reachable = reachable_blocks(func)
    trip = _loop_trip_factors(func, loops, probs, back, position)

    freq: dict[str, float] = {blk.label: 0.0 for blk in func.blocks}
    if not func.blocks:
        return freq
    for label in rpo:
        if label not in reachable:
            continue
        inflow = 1.0 if label == func.entry.label else 0.0
        for p in preds[label]:
            if (p, label) in back:
                continue  # the trip factor accounts for cyclic flow
            inflow += freq[p] * probs.get((p, label), 0.0)
        freq[label] = inflow * trip.get(label, 1.0)
    return freq


def call_site_counts(func: Function, freq: dict[str, float]) -> dict[str, float]:
    """Expected dynamic calls from ``func`` to each callee, one entry of
    ``func`` assumed (block frequency times call-site multiplicity)."""
    out: dict[str, float] = {}
    for blk in func.blocks:
        for instr in blk.instructions:
            if instr.kind is OpKind.CALL and instr.target is not None:
                out[instr.target] = out.get(instr.target, 0.0) + freq[blk.label]
    return out


def entry_counts(program: Program, entry: str = "main") -> dict[str, float]:
    """Call-graph fix point: expected invocations of every function,
    given one run of ``entry``.  Recursion is damped by :data:`MAX_ENTRY`."""
    freqs = {name: block_frequencies(f) for name, f in program.functions.items()}
    calls = {
        name: call_site_counts(f, freqs[name]) for name, f in program.functions.items()
    }
    counts: dict[str, float] = {name: 0.0 for name in program.functions}
    if entry in counts:
        counts[entry] = 1.0
    for _ in range(len(program.functions) + 8):
        changed = False
        new: dict[str, float] = {name: 0.0 for name in program.functions}
        if entry in new:
            new[entry] = 1.0
        for caller, sites in calls.items():
            for callee, per_entry in sites.items():
                if callee in new:
                    new[callee] += counts[caller] * per_entry
        for name in new:
            new[name] = min(new[name], MAX_ENTRY)
            if abs(new[name] - counts[name]) > 1e-9 * max(1.0, counts[name]):
                changed = True
        counts = new
        if not changed:
            break
    return counts


def static_profile(program: Program, entry: str = "main") -> "ExecutionProfile":
    """A purely static :class:`~repro.partition.cost.ExecutionProfile`:
    heuristic block frequencies scaled by call-graph entry counts.

    Every function gets at least entry count 1 so the profile *covers*
    it (``ExecutionProfile.covers``) and the partitioner uses these
    counts rather than falling back to ``p_B * 5^{d_B}``.
    """
    from repro.partition.cost import ExecutionProfile  # deferred: cycle

    counts = entry_counts(program, entry)
    profile = ExecutionProfile()
    for name, func in program.functions.items():
        scale = max(counts.get(name, 0.0), 1.0)
        for label, f in block_frequencies(func).items():
            profile.record(name, label, scale * f)
    return profile
