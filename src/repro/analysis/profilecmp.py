"""Static-vs-measured profile agreement metrics.

Quantifies how well a static :func:`~repro.analysis.freq.static_profile`
predicts a measured :class:`~repro.partition.cost.ExecutionProfile`.
Within one function only *relative* block weights matter to the
partitioner (Profit is invariant under positive scaling of ``n_B``), so
every metric is computed on per-function normalized distributions:

* ``overlap`` — ``sum(min(p, q))`` of the two normalized distributions
  (1.0 = identical shape, 0.0 = disjoint support).
* ``correlation`` — Pearson correlation of the normalized counts.
* ``hottest_match`` — whether both profiles rank the same block hottest.

The program-level summary weights each function by its measured share
of dynamic blocks, so tiny helpers cannot mask disagreement on the hot
function (and vice versa).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.ir.function import Function
from repro.ir.program import Program

if TYPE_CHECKING:  # avoid a module cycle: partition.cost imports analysis
    from repro.partition.cost import ExecutionProfile


@dataclass(frozen=True, slots=True)
class FunctionAgreement:
    """Agreement metrics for one function."""

    function: str
    overlap: float
    correlation: float
    hottest_match: bool
    measured_weight: float
    blocks: int

    def to_dict(self) -> dict[str, object]:
        return {
            "function": self.function,
            "overlap": round(self.overlap, 6),
            "correlation": round(self.correlation, 6),
            "hottest_match": self.hottest_match,
            "measured_weight": round(self.measured_weight, 6),
            "blocks": self.blocks,
        }


@dataclass(eq=False, slots=True)
class ProfileAgreement:
    """Agreement report for one program."""

    functions: list[FunctionAgreement] = field(default_factory=list)
    uncovered: list[str] = field(default_factory=list)

    @property
    def weighted_overlap(self) -> float:
        total = sum(f.measured_weight for f in self.functions)
        if total <= 0.0:
            return 1.0
        return sum(f.overlap * f.measured_weight for f in self.functions) / total

    @property
    def hottest_match_fraction(self) -> float:
        if not self.functions:
            return 1.0
        return sum(1 for f in self.functions if f.hottest_match) / len(self.functions)

    def to_dict(self) -> dict[str, object]:
        return {
            "weighted_overlap": round(self.weighted_overlap, 6),
            "hottest_match_fraction": round(self.hottest_match_fraction, 6),
            "functions": [f.to_dict() for f in self.functions],
            "uncovered": list(self.uncovered),
        }


def _normalize(counts: dict[str, float]) -> dict[str, float]:
    total = sum(counts.values())
    if total <= 0.0:
        return {label: 0.0 for label in counts}
    return {label: value / total for label, value in counts.items()}


def _pearson(a: list[float], b: list[float]) -> float:
    n = len(a)
    if n < 2:
        return 1.0
    mean_a = sum(a) / n
    mean_b = sum(b) / n
    cov = sum((x - mean_a) * (y - mean_b) for x, y in zip(a, b))
    var_a = sum((x - mean_a) ** 2 for x in a)
    var_b = sum((y - mean_b) ** 2 for y in b)
    if var_a <= 0.0 or var_b <= 0.0:
        # a constant distribution agrees with another constant one
        return 1.0 if var_a <= 0.0 and var_b <= 0.0 else 0.0
    return cov / math.sqrt(var_a * var_b)


def _function_agreement(
    func: Function,
    static_counts: dict[str, float],
    measured_counts: dict[str, float],
    measured_weight: float,
) -> FunctionAgreement:
    labels = [blk.label for blk in func.blocks]
    p = _normalize({label: static_counts.get(label, 0.0) for label in labels})
    q = _normalize({label: measured_counts.get(label, 0.0) for label in labels})
    overlap = sum(min(p[label], q[label]) for label in labels)
    correlation = _pearson([p[label] for label in labels], [q[label] for label in labels])
    hottest_static = max(labels, key=lambda l: (p[l], l))
    hottest_measured = max(labels, key=lambda l: (q[l], l))
    return FunctionAgreement(
        function=func.name,
        overlap=overlap,
        correlation=correlation,
        hottest_match=hottest_static == hottest_measured,
        measured_weight=measured_weight,
        blocks=len(labels),
    )


def compare_profiles(
    program: Program,
    static: "ExecutionProfile",
    measured: "ExecutionProfile",
) -> ProfileAgreement:
    """Compare a static against a measured profile, function by function.

    Functions the measured profile does not cover (never executed) are
    listed in ``uncovered`` and excluded from the metrics.
    """
    agreement = ProfileAgreement()
    measured_total = sum(measured.counts.values())
    for name, func in program.functions.items():
        if not measured.covers(name):
            agreement.uncovered.append(name)
            continue
        measured_counts = measured.for_function(func)
        weight = (
            sum(measured_counts.values()) / measured_total
            if measured_total > 0.0
            else 0.0
        )
        agreement.functions.append(
            _function_agreement(func, static.for_function(func), measured_counts, weight)
        )
    return agreement
