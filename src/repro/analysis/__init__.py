"""Dataflow and control-flow analyses over the IR.

* :mod:`repro.analysis.dataflow` — generic iterative bit-vector solver.
* :mod:`repro.analysis.reaching` — reaching definitions (feeds the RDG).
* :mod:`repro.analysis.liveness` — live registers (feeds regalloc).
* :mod:`repro.analysis.dominators` — dominator tree.
* :mod:`repro.analysis.loops` — natural loops and nesting depth (feeds
  the probabilistic execution-count estimate of the cost model).
"""

from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.analysis.reaching import ReachingDefinitions, DefSite
from repro.analysis.liveness import LivenessResult, compute_liveness
from repro.analysis.dominators import DominatorTree, compute_dominators
from repro.analysis.loops import NaturalLoop, find_loops, loop_nesting_depth

__all__ = [
    "DataflowProblem",
    "solve_dataflow",
    "ReachingDefinitions",
    "DefSite",
    "LivenessResult",
    "compute_liveness",
    "DominatorTree",
    "compute_dominators",
    "NaturalLoop",
    "find_loops",
    "loop_nesting_depth",
]
