"""Dataflow, control-flow and abstract-interpretation analyses over the IR.

Classic bit-vector problems:

* :mod:`repro.analysis.dataflow` — generic iterative bit-vector solver.
* :mod:`repro.analysis.reaching` — reaching definitions (feeds the RDG).
* :mod:`repro.analysis.liveness` — live registers (feeds regalloc).
* :mod:`repro.analysis.dominators` — dominator tree.
* :mod:`repro.analysis.loops` — natural loops and nesting depth (feeds
  the probabilistic execution-count estimate of the cost model).

Abstract interpretation (arbitrary lattices with widening):

* :mod:`repro.analysis.absint` — generic worklist engine
  (:class:`AbstractDomain`, :func:`interpret`).
* :mod:`repro.analysis.valueclass` — interval + value-origin domain;
  proves address values FPa-clean and branch directions infeasible.
* :mod:`repro.analysis.freq` — static branch probabilities and block
  frequencies (Ball/Wu–Larus heuristics); :func:`static_profile` builds
  a profile-shaped estimate without running the program.
* :mod:`repro.analysis.profilecmp` — static-vs-measured profile
  agreement metrics.
* :mod:`repro.analysis.certify` — independent §6.1 re-pricing that
  certifies advanced-scheme partitions (``Benefit − Overhead`` bounds).
* :mod:`repro.analysis.warnings` — unreachable-block and
  fuel-unbounded-loop compiler warnings.
"""

from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.analysis.reaching import ReachingDefinitions, DefSite
from repro.analysis.liveness import LivenessResult, compute_liveness
from repro.analysis.dominators import DominatorTree, compute_dominators
from repro.analysis.loops import NaturalLoop, find_loops, loop_nesting_depth
from repro.analysis.absint import (
    AbsintResult,
    AbstractDomain,
    interpret,
    states_at_instructions,
)
from repro.analysis.valueclass import (
    Interval,
    ValueClassDomain,
    ValueClassResult,
    ValueInfo,
    analyze_values,
)
from repro.analysis.freq import (
    block_frequencies,
    edge_probabilities,
    entry_counts,
    static_profile,
)
from repro.analysis.profilecmp import (
    FunctionAgreement,
    ProfileAgreement,
    compare_profiles,
)
from repro.analysis.certify import (
    ComponentAudit,
    ProfitCertificate,
    certify_partition,
)
from repro.analysis.warnings import (
    AnalysisWarning,
    analyze_function,
    analyze_program,
)

__all__ = [
    "DataflowProblem",
    "solve_dataflow",
    "ReachingDefinitions",
    "DefSite",
    "LivenessResult",
    "compute_liveness",
    "DominatorTree",
    "compute_dominators",
    "NaturalLoop",
    "find_loops",
    "loop_nesting_depth",
    "AbstractDomain",
    "AbsintResult",
    "interpret",
    "states_at_instructions",
    "Interval",
    "ValueInfo",
    "ValueClassDomain",
    "ValueClassResult",
    "analyze_values",
    "edge_probabilities",
    "block_frequencies",
    "entry_counts",
    "static_profile",
    "FunctionAgreement",
    "ProfileAgreement",
    "compare_profiles",
    "ComponentAudit",
    "ProfitCertificate",
    "certify_partition",
    "AnalysisWarning",
    "analyze_function",
    "analyze_program",
]
