"""Natural-loop detection and nesting depth.

The advanced partitioning cost model estimates execution counts for
unprofiled blocks as ``n_B = p_B * 5^{d_B}`` where ``d_B`` is the loop
nesting depth of block ``B`` (paper §6.1).  This module supplies ``d_B``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dominators import compute_dominators
from repro.ir.cfg import predecessors, reachable_blocks, successor_map
from repro.ir.function import Function


@dataclass(slots=True)
class NaturalLoop:
    """A natural loop: header plus the blocks of its body (incl. header)."""

    header: str
    body: set[str] = field(default_factory=set)

    def __contains__(self, label: str) -> bool:
        return label in self.body


def find_loops(func: Function) -> list[NaturalLoop]:
    """Find all natural loops (one per header; multiple back edges to the
    same header are merged into a single loop, textbook-style)."""
    reachable = reachable_blocks(func)
    dom = compute_dominators(func)
    succ = successor_map(func)
    preds = predecessors(func)

    loops: dict[str, NaturalLoop] = {}
    for tail in reachable:
        for head in succ[tail]:
            if head not in reachable or head not in dom.idom:
                continue
            if not dom.dominates(head, tail):
                continue
            loop = loops.setdefault(head, NaturalLoop(header=head, body={head}))
            # walk predecessors backwards from the back edge's tail
            work = [tail]
            while work:
                label = work.pop()
                if label in loop.body:
                    continue
                loop.body.add(label)
                work.extend(p for p in preds[label] if p in reachable)
    return list(loops.values())


def loop_nesting_depth(func: Function) -> dict[str, int]:
    """Map every block label to its loop nesting depth (0 = not in any
    loop).  Unreachable blocks get depth 0."""
    depth = {blk.label: 0 for blk in func.blocks}
    for loop in find_loops(func):
        for label in loop.body:
            depth[label] += 1
    return depth
