"""Compiler warnings derived from the abstract-interpretation engine.

Two classes of findings, both advisory (they never fail compilation):

* **Unreachable blocks** — either plain CFG unreachability (no path of
  edges from entry) or the strictly stronger *interval-proved* kind: the
  block is CFG-reachable, but every path into it crosses a branch edge
  whose direction the value analysis proves infeasible
  (``analyze_values``' per-edge refinement returned ``None`` on every
  incoming feasible path).
* **Fuel-unbounded loops** — natural loops with no exit edge at all, or
  whose every exit edge is interval-proved infeasible.  Such loops can
  only terminate by exhausting the simulator's fuel, which the
  checkpointed runner treats as a fault; flagging them statically turns
  a late runtime failure into an early compile-time warning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.loops import find_loops
from repro.analysis.valueclass import ValueClassResult, analyze_values
from repro.ir.cfg import reachable_blocks, successor_map
from repro.ir.function import Function
from repro.ir.program import Program


@dataclass(frozen=True, slots=True)
class AnalysisWarning:
    """One advisory finding.

    ``kind`` is machine-readable (``unreachable-block`` or
    ``unbounded-loop``); ``message`` is the human-readable detail.
    """

    kind: str
    function: str
    block: str
    message: str

    def sort_key(self) -> tuple[str, str, str, str]:
        return (self.function, self.block, self.kind, self.message)

    def to_dict(self) -> dict[str, str]:
        return {
            "kind": self.kind,
            "function": self.function,
            "block": self.block,
            "message": self.message,
        }

    def render(self) -> str:
        return f"warning: {self.kind}: {self.function}:{self.block}: {self.message}"


def _unreachable_warnings(
    func: Function, values: ValueClassResult
) -> Iterable[AnalysisWarning]:
    cfg_reachable = reachable_blocks(func)
    for blk in func.blocks:
        if blk.label == func.entry.label:
            continue
        if blk.label not in cfg_reachable:
            yield AnalysisWarning(
                kind="unreachable-block",
                function=func.name,
                block=blk.label,
                message="no control-flow path from entry reaches this block",
            )
        elif not values.reachable(blk.label):
            yield AnalysisWarning(
                kind="unreachable-block",
                function=func.name,
                block=blk.label,
                message=(
                    "value analysis proves every branch into this block "
                    "infeasible (dead under the computed value ranges)"
                ),
            )


def _unbounded_loop_warnings(
    func: Function, values: ValueClassResult
) -> Iterable[AnalysisWarning]:
    succ = successor_map(func)
    blocks = {blk.label: blk for blk in func.blocks}
    for loop in find_loops(func):
        if not values.reachable(loop.header):
            continue  # already reported as unreachable
        exits = [
            (src, dst)
            for src in loop.body
            for dst in succ[src]
            if dst not in loop.body
        ]
        if not exits:
            yield AnalysisWarning(
                kind="unbounded-loop",
                function=func.name,
                block=loop.header,
                message=(
                    f"loop with {len(loop.body)} block(s) has no exit edge; "
                    "it can only terminate by exhausting simulation fuel"
                ),
            )
            continue
        feasible = False
        for src, dst in exits:
            out = values.fixpoint.out_states.get(src)
            if out is None:
                continue
            if values.domain.transfer_edge(func, blocks[src], dst, out) is not None:
                feasible = True
                break
        if not feasible:
            yield AnalysisWarning(
                kind="unbounded-loop",
                function=func.name,
                block=loop.header,
                message=(
                    "value analysis proves every loop-exit branch "
                    "infeasible; the loop cannot terminate normally"
                ),
            )


def analyze_function(func: Function) -> list[AnalysisWarning]:
    """All advisory warnings for one function, deterministically ordered."""
    values = analyze_values(func)
    warnings = list(_unreachable_warnings(func, values))
    warnings.extend(_unbounded_loop_warnings(func, values))
    warnings.sort(key=AnalysisWarning.sort_key)
    return warnings


def analyze_program(program: Program) -> list[AnalysisWarning]:
    """All advisory warnings for a program, in function-definition order
    (each function's findings internally sorted)."""
    warnings: list[AnalysisWarning] = []
    for func in program.functions.values():
        warnings.extend(analyze_function(func))
    return warnings
