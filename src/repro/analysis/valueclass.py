"""Value-range and origin-class abstract interpretation.

One forward :class:`~repro.analysis.absint.AbstractDomain` tracking, per
register, a pair of abstractions:

* an **interval** ``[lo, hi]`` over the integer value (``None`` bounds
  are infinities).  Transfer functions cover the ALU subset the MiniC
  pipeline emits — constants, add/sub, compares into ``[0, 1]``, masks,
  shifts, byte loads into ``[-128, 127]``/``[0, 255]``, ``rem`` by a
  positive constant — and conditional branches refine the tested
  register along each outgoing edge, so never-taken edges are proved
  infeasible and blocks behind them unreachable.

* an **origin set**: the uids of every FP-file *producing* definition
  (``.a`` computations, true float operations, ``l.s`` loads, FP-class
  params) in the value's backward slice.  Origins propagate through
  arithmetic *and through* ``cp_from_comp``/``cp_to_comp`` — unlike the
  ``address-slice-int`` taint walk, which stops at the copy.  A load or
  store whose address operand carries a non-empty origin set therefore
  exposes *copy-laundered* FPa→address flows that plain def-use
  reachability misses.  Fresh-value barriers (word loads, call results,
  INT-class params) clear the set, exactly like the reachability rule.

The interval half is deliberately conservative around 32-bit wrap:
any computed bound outside the int32 range drops to an infinity, so a
bounded interval is always a true statement about the wrapped value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.absint import (
    AbsintResult,
    AbstractDomain,
    interpret,
    states_at_instructions,
)
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import FPA_OPCODES, Opcode, OpKind
from repro.ir.registers import Reg, RegClass, ZERO
from repro.ir.verify import expected_def_class

_INT32_MIN = -(1 << 31)
_INT32_MAX = (1 << 31) - 1


@dataclass(frozen=True, slots=True)
class Interval:
    """A (possibly half-open) integer interval; ``None`` = unbounded."""

    lo: int | None = None
    hi: int | None = None

    def is_constant(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def contains(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def is_empty(self) -> bool:
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


TOP = Interval()
BOOL = Interval(0, 1)


def const(value: int) -> Interval:
    return Interval(value, value)


def _clamp(lo: int | None, hi: int | None) -> Interval:
    """Drop any bound outside the int32 range to an infinity, keeping
    the interval sound under 32-bit wrap-around."""
    if lo is not None and lo < _INT32_MIN:
        lo = None
    if hi is not None and hi > _INT32_MAX:
        hi = None
    return Interval(lo, hi)


def join_interval(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else min(a.lo, b.lo)
    hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
    return Interval(lo, hi)


def widen_interval(old: Interval, new: Interval) -> Interval:
    lo = old.lo if old.lo is not None and new.lo is not None and new.lo >= old.lo else None
    hi = old.hi if old.hi is not None and new.hi is not None and new.hi <= old.hi else None
    return Interval(lo, hi)


def meet_interval(a: Interval, b: Interval) -> Interval | None:
    """Intersection, or ``None`` when empty (used for edge refinement)."""
    lo = a.lo if b.lo is None else (b.lo if a.lo is None else max(a.lo, b.lo))
    hi = a.hi if b.hi is None else (b.hi if a.hi is None else min(a.hi, b.hi))
    out = Interval(lo, hi)
    return None if out.is_empty() else out


def add_interval(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else a.lo + b.lo
    hi = None if a.hi is None or b.hi is None else a.hi + b.hi
    return _clamp(lo, hi)


def sub_interval(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.hi is None else a.lo - b.hi
    hi = None if a.hi is None or b.lo is None else a.hi - b.lo
    return _clamp(lo, hi)


def mul_interval(a: Interval, b: Interval) -> Interval:
    if None in (a.lo, a.hi, b.lo, b.hi):
        return TOP
    assert a.lo is not None and a.hi is not None
    assert b.lo is not None and b.hi is not None
    products = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
    return _clamp(min(products), max(products))


def shift_left_interval(a: Interval, amount: int) -> Interval:
    if not 0 <= amount < 32:
        return TOP
    lo = None if a.lo is None else a.lo << amount
    hi = None if a.hi is None else a.hi << amount
    return _clamp(lo, hi)


@dataclass(frozen=True, slots=True)
class ValueInfo:
    """Abstract value of one register: interval plus FP-origin uids."""

    interval: Interval = TOP
    origins: frozenset[int] = frozenset()


_UNKNOWN = ValueInfo()
_ZERO_INFO = ValueInfo(interval=const(0))

State = dict[Reg, ValueInfo]

#: Fresh-value barriers: the defined value enters its file from another
#: domain (memory, the caller), so operand origins do not flow through.
_FRESH_KINDS = (OpKind.LOAD, OpKind.CALL, OpKind.PARAM)

#: Single-register zero-compare branches: (taken, fall-through) refinements.
_ZERO_COMPARES: dict[Opcode, tuple[Interval, Interval]] = {
    Opcode.BLEZ: (Interval(None, 0), Interval(1, None)),
    Opcode.BLEZ_A: (Interval(None, 0), Interval(1, None)),
    Opcode.BGTZ: (Interval(1, None), Interval(None, 0)),
    Opcode.BLTZ: (Interval(None, -1), Interval(0, None)),
    Opcode.BLTZ_A: (Interval(None, -1), Interval(0, None)),
    Opcode.BGEZ: (Interval(0, None), Interval(None, -1)),
}


class ValueClassDomain(AbstractDomain[State]):
    """Forward interval + origin-class domain (see module docstring)."""

    forward = True
    widen_after = 2

    def __init__(self, func: Function):
        self.func = func

    # -- lattice ---------------------------------------------------------
    def entry_state(self, func: Function) -> State:
        return {}

    def join(self, a: State, b: State) -> State:
        out: State = {}
        for reg in a.keys() | b.keys():
            va = a.get(reg, _UNKNOWN)
            vb = b.get(reg, _UNKNOWN)
            out[reg] = ValueInfo(
                interval=join_interval(va.interval, vb.interval),
                origins=va.origins | vb.origins,
            )
        return out

    def widen(self, old: State, new: State) -> State:
        out: State = {}
        for reg in old.keys() | new.keys():
            vo = old.get(reg, _UNKNOWN)
            vn = new.get(reg, _UNKNOWN)
            out[reg] = ValueInfo(
                interval=widen_interval(vo.interval, join_interval(vo.interval, vn.interval)),
                origins=vo.origins | vn.origins,
            )
        return out

    # -- semantics -------------------------------------------------------
    def value_of(self, state: State, reg: Reg) -> ValueInfo:
        if reg == ZERO:
            return _ZERO_INFO
        return state.get(reg, _UNKNOWN)

    def transfer_instruction(self, instr: Instruction, state: State) -> State:
        if not instr.defs:
            return state
        inputs = [self.value_of(state, reg) for reg in instr.uses]
        if instr.kind in _FRESH_KINDS:
            origins: frozenset[int] = frozenset()
        else:
            origins = frozenset().union(*(v.origins for v in inputs)) if inputs else frozenset()
        if (
            expected_def_class(instr, self.func) is RegClass.FP
            and instr.op is not Opcode.CP_TO_COMP
        ):
            origins = origins | {instr.uid}
        interval = self._interval_of(instr, inputs)
        out = dict(state)
        for reg in instr.defs:
            out[reg] = ValueInfo(interval=interval, origins=origins)
        return out

    def _interval_of(self, instr: Instruction, inputs: list[ValueInfo]) -> Interval:
        op = instr.op
        imm = instr.imm

        def arg(pos: int) -> Interval:
            return inputs[pos].interval if pos < len(inputs) else TOP

        if op in (Opcode.LI, Opcode.LI_A):
            return const(imm) if isinstance(imm, int) else TOP
        if op is Opcode.LUI:
            return const(imm << 16) if isinstance(imm, int) else TOP
        if op in (Opcode.MOVE, Opcode.MOVE_A, Opcode.MOV_S):
            return arg(0)
        if instr.kind is OpKind.COPY:  # cp_to_comp / cp_from_comp
            return arg(0)
        if op in (Opcode.ADDU, Opcode.ADDU_A):
            return add_interval(arg(0), arg(1))
        if op in (Opcode.SUBU, Opcode.SUBU_A):
            return sub_interval(arg(0), arg(1))
        if op in (Opcode.ADDIU, Opcode.ADDIU_A):
            return add_interval(arg(0), const(imm)) if isinstance(imm, int) else TOP
        if op in (Opcode.SLT, Opcode.SLTU, Opcode.SLTI, Opcode.SLTIU,
                  Opcode.SLT_A, Opcode.SLTU_A, Opcode.SLTI_A, Opcode.SLTIU_A):
            return BOOL
        if op in (Opcode.ANDI, Opcode.ANDI_A):
            return Interval(0, imm) if isinstance(imm, int) and imm >= 0 else TOP
        if op in (Opcode.AND, Opcode.AND_A):
            a, b = arg(0), arg(1)
            if a.lo is not None and a.lo >= 0 and b.lo is not None and b.lo >= 0:
                his = [h for h in (a.hi, b.hi) if h is not None]
                return Interval(0, min(his)) if his else Interval(0, None)
            return TOP
        if op in (Opcode.OR, Opcode.OR_A, Opcode.XOR, Opcode.XOR_A,
                  Opcode.ORI, Opcode.XORI):
            a = arg(0)
            b = arg(1) if len(inputs) > 1 else (const(imm) if isinstance(imm, int) else TOP)
            if (a.lo is not None and a.lo >= 0 and a.hi is not None
                    and b.lo is not None and b.lo >= 0 and b.hi is not None):
                bits = max(a.hi, b.hi).bit_length()
                return Interval(0, (1 << bits) - 1)
            return TOP
        if op in (Opcode.SLL, Opcode.SLL_A):
            return shift_left_interval(arg(0), imm) if isinstance(imm, int) else TOP
        if op in (Opcode.SRL, Opcode.SRL_A):
            a = arg(0)
            if isinstance(imm, int) and 0 <= imm < 32:
                if a.lo is not None and a.lo >= 0:
                    return Interval(a.lo >> imm, None if a.hi is None else a.hi >> imm)
                return Interval(0, (1 << (32 - imm)) - 1) if imm > 0 else TOP
            return TOP
        if op in (Opcode.SRA, Opcode.SRA_A):
            if isinstance(imm, int) and 0 <= imm < 32:
                a = arg(0)
                lo = None if a.lo is None else a.lo >> imm
                hi = None if a.hi is None else a.hi >> imm
                return Interval(lo, hi)
            return TOP
        if op is Opcode.MULT:
            return mul_interval(arg(0), arg(1))
        if op is Opcode.REM:
            divisor = arg(1)
            dividend = arg(0)
            if (divisor.is_constant() and divisor.lo is not None and divisor.lo > 0
                    and dividend.lo is not None and dividend.lo >= 0):
                return Interval(0, divisor.lo - 1)
            return TOP
        if op is Opcode.DIV:
            dividend, divisor = arg(0), arg(1)
            if (divisor.is_constant() and divisor.lo is not None and divisor.lo > 0
                    and dividend.lo is not None and dividend.lo >= 0):
                hi = None if dividend.hi is None else dividend.hi // divisor.lo
                return Interval(0, hi)
            return TOP
        if op is Opcode.LB:
            return Interval(-128, 127)
        if op is Opcode.LBU:
            return Interval(0, 255)
        return TOP

    # -- edge refinement -------------------------------------------------
    def transfer_edge(
        self, func: Function, src: BasicBlock, dst_label: str, state: State
    ) -> State | None:
        term = src.terminator
        if term is None or term.kind is not OpKind.BRANCH:
            return state
        index = func.block_index(src.label)
        fallthrough = (
            func.blocks[index + 1].label if index + 1 < len(func.blocks) else None
        )
        if term.target == fallthrough:
            return state  # both directions land in the same block
        taken = dst_label == term.target

        refinements = _ZERO_COMPARES.get(term.op)
        if refinements is not None:
            narrow = refinements[0] if taken else refinements[1]
            return self._refine(state, term.uses[0], narrow)

        if term.op in (Opcode.BEQ, Opcode.BEQ_A, Opcode.BNE, Opcode.BNE_A):
            eq_edge = taken if term.op in (Opcode.BEQ, Opcode.BEQ_A) else not taken
            a = self.value_of(state, term.uses[0]).interval
            b = self.value_of(state, term.uses[1]).interval
            if eq_edge:
                # both operands must share a value
                if meet_interval(a, b) is None:
                    return None
                out = self._refine(state, term.uses[0], b)
                if out is None:
                    return None
                return self._refine(out, term.uses[1], a)
            # disequality edge: infeasible only when both are the same constant
            if a.is_constant() and b.is_constant() and a.lo == b.lo:
                return None
            return state
        return state

    def _refine(self, state: State, reg: Reg, narrow: Interval) -> State | None:
        if reg == ZERO:
            return None if meet_interval(const(0), narrow) is None else state
        info = state.get(reg, _UNKNOWN)
        met = meet_interval(info.interval, narrow)
        if met is None:
            return None
        if met == info.interval:
            return state
        out = dict(state)
        out[reg] = ValueInfo(interval=met, origins=info.origins)
        return out


@dataclass(eq=False, slots=True)
class ValueClassResult:
    """Fixed point of the value-class analysis over one function."""

    func: Function
    domain: ValueClassDomain
    fixpoint: AbsintResult[State]
    at_instruction: dict[int, State]

    def reachable(self, label: str) -> bool:
        """True when some feasible path reaches the block (interval
        refinement included — stronger than CFG reachability)."""
        return self.fixpoint.reachable(label)

    def value_at(self, instr: Instruction, reg: Reg) -> ValueInfo:
        """Abstract value of ``reg`` just before ``instr`` executes
        (unknown for instructions in unreachable blocks)."""
        state = self.at_instruction.get(instr.uid)
        if state is None:
            return _UNKNOWN
        return self.domain.value_of(state, reg)


def analyze_values(func: Function) -> ValueClassResult:
    """Run the value-class abstract interpretation over ``func``."""
    domain = ValueClassDomain(func)
    fixpoint = interpret(func, domain)
    return ValueClassResult(
        func=func,
        domain=domain,
        fixpoint=fixpoint,
        at_instruction=states_at_instructions(func, domain, fixpoint),
    )
