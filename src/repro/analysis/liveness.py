"""Live-register analysis (backward, may).

Used by the linear-scan register allocator to build live intervals and by
dead-code elimination to find instructions whose results are never read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.ir.function import Function
from repro.ir.registers import Reg, ZERO


@dataclass(slots=True)
class LivenessResult:
    """Live registers at block boundaries.

    Attributes:
        live_in: Block label -> registers live on entry.
        live_out: Block label -> registers live on exit.
    """

    live_in: dict[str, set[Reg]]
    live_out: dict[str, set[Reg]]

    def live_through(self, label: str) -> set[Reg]:
        """Registers live on both entry and exit of a block."""
        return self.live_in[label] & self.live_out[label]


def compute_liveness(func: Function) -> LivenessResult:
    """Solve liveness for ``func``."""
    regs: list[Reg] = []
    index: dict[Reg, int] = {}

    def reg_bit(reg: Reg) -> int:
        if reg not in index:
            index[reg] = len(regs)
            regs.append(reg)
        return 1 << index[reg]

    gen: dict[str, int] = {}  # upward-exposed uses
    kill: dict[str, int] = {}  # defs
    for blk in func.blocks:
        used = 0
        defined = 0
        for instr in blk.instructions:
            for reg in instr.uses:
                if reg != ZERO:
                    bit = reg_bit(reg)
                    if not defined & bit:
                        used |= bit
            for reg in instr.defs:
                defined |= reg_bit(reg)
        gen[blk.label] = used
        kill[blk.label] = defined & ~used

    problem = DataflowProblem(forward=False, may=True, gen=gen, kill=kill)
    solution = solve_dataflow(func, problem)

    def decode(mask: int) -> set[Reg]:
        out = set()
        while mask:
            low = mask & -mask
            out.add(regs[low.bit_length() - 1])
            mask ^= low
        return out

    return LivenessResult(
        live_in={b: decode(m) for b, m in solution.in_facts.items()},
        live_out={b: decode(m) for b, m in solution.out_facts.items()},
    )
