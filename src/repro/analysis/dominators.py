"""Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).

Needed by natural-loop detection, which in turn feeds the advanced
partitioning scheme's probabilistic execution-count estimate
(``n_B = p_B * 5^{d_B}``) for blocks not covered by a profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.ir.cfg import predecessors, reachable_blocks, reverse_postorder
from repro.ir.function import Function


@dataclass(slots=True)
class DominatorTree:
    """Immediate-dominator mapping plus helpers.

    Attributes:
        idom: Block label -> immediate dominator label.  The entry maps
            to itself.  Unreachable blocks are absent.
    """

    entry: str
    idom: dict[str, str] = field(default_factory=dict)

    def dominates(self, a: str, b: str) -> bool:
        """True if block ``a`` dominates block ``b`` (reflexive)."""
        if b not in self.idom:
            raise AnalysisError(f"block {b!r} unreachable: no dominator info")
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom[node]
            if parent == node:
                return a == node
            node = parent

    def dominators_of(self, label: str) -> list[str]:
        """All dominators of ``label``, from itself up to the entry."""
        if label not in self.idom:
            raise AnalysisError(f"block {label!r} unreachable: no dominator info")
        chain = [label]
        node = label
        while self.idom[node] != node:
            node = self.idom[node]
            chain.append(node)
        return chain


def compute_dominators(func: Function) -> DominatorTree:
    """Compute the dominator tree of ``func`` over reachable blocks."""
    reachable = reachable_blocks(func)
    rpo = [b for b in reverse_postorder(func) if b in reachable]
    order = {b: i for i, b in enumerate(rpo)}
    preds = predecessors(func)
    entry = func.entry.label

    idom: dict[str, str] = {entry: entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while order[a] > order[b]:
                a = idom[a]
            while order[b] > order[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo:
            if label == entry:
                continue
            candidates = [p for p in preds[label] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True

    return DominatorTree(entry=entry, idom=idom)
