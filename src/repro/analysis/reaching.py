"""Reaching definitions.

The register dependence graph of the paper is "determined by solving the
reaching-definitions dataflow problem"; this module provides exactly that:
for every register use, the set of definition sites whose value may reach
it.  Definitions are ``param`` pseudo-ops, ``call`` results, and every
ordinary instruction destination.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.registers import Reg, ZERO


@dataclass(frozen=True, slots=True)
class DefSite:
    """One definition site: instruction ``uid`` defines register ``reg``
    in block ``block``."""

    uid: int
    reg: Reg
    block: str


class ReachingDefinitions:
    """Reaching-definitions solution for one function.

    After construction, :meth:`du_edges` yields the def-use edges that
    become RDG register edges, and :meth:`reaching_defs_of_use` answers
    point queries.
    """

    def __init__(self, func: Function):
        self.func = func
        self.defs: list[DefSite] = []
        self._def_index: dict[int, list[int]] = {}  # instr uid -> def indices
        self._reg_mask: dict[Reg, int] = {}

        for blk in func.blocks:
            for instr in blk.instructions:
                for reg in instr.defs:
                    index = len(self.defs)
                    self.defs.append(DefSite(instr.uid, reg, blk.label))
                    self._def_index.setdefault(instr.uid, []).append(index)
                    self._reg_mask[reg] = self._reg_mask.get(reg, 0) | (1 << index)

        gen: dict[str, int] = {}
        kill: dict[str, int] = {}
        for blk in func.blocks:
            g = 0
            k = 0
            for instr in blk.instructions:
                for reg, index in zip(instr.defs, self._def_index.get(instr.uid, [])):
                    reg_all = self._reg_mask[reg]
                    g = (g & ~reg_all) | (1 << index)
                    k |= reg_all & ~(1 << index)
            gen[blk.label] = g
            kill[blk.label] = k & ~g

        problem = DataflowProblem(forward=True, may=True, gen=gen, kill=kill)
        self._solution = solve_dataflow(func, problem)

        # Per-use reaching defs, computed in one forward pass per block.
        self._use_defs: dict[tuple[int, int], tuple[int, ...]] = {}
        for blk in func.blocks:
            current = self._solution.in_facts[blk.label]
            for instr in blk.instructions:
                for pos, reg in enumerate(instr.uses):
                    if reg == ZERO:
                        self._use_defs[(instr.uid, pos)] = ()
                        continue
                    mask = current & self._reg_mask.get(reg, 0)
                    self._use_defs[(instr.uid, pos)] = tuple(_iter_bits(mask))
                for reg, index in zip(instr.defs, self._def_index.get(instr.uid, [])):
                    current = (current & ~self._reg_mask[reg]) | (1 << index)

    # ------------------------------------------------------------------
    def reaching_in(self, block_label: str) -> list[DefSite]:
        """Definition sites live on entry to ``block_label``."""
        mask = self._solution.in_facts[block_label]
        return [self.defs[i] for i in _iter_bits(mask)]

    def reaching_out(self, block_label: str) -> list[DefSite]:
        """Definition sites live on exit from ``block_label``."""
        mask = self._solution.out_facts[block_label]
        return [self.defs[i] for i in _iter_bits(mask)]

    def reaching_defs_of_use(self, instr: Instruction, use_pos: int) -> list[DefSite]:
        """Definition sites that may reach use operand ``use_pos`` of
        ``instr``.  Uses of ``$zero`` have no reaching definitions."""
        indices = self._use_defs.get((instr.uid, use_pos))
        if indices is None:
            raise KeyError(f"instruction {instr!r} use {use_pos} not in function")
        return [self.defs[i] for i in indices]

    def du_edges(self):
        """Yield ``(def_uid, use_uid, use_pos, reg)`` for every def-use
        pair in the function."""
        for blk in self.func.blocks:
            for instr in blk.instructions:
                for pos, reg in enumerate(instr.uses):
                    for index in self._use_defs[(instr.uid, pos)]:
                        site = self.defs[index]
                        yield site.uid, instr.uid, pos, reg

    def defs_of_reg(self, reg: Reg) -> list[DefSite]:
        """All definition sites of ``reg`` in the function."""
        mask = self._reg_mask.get(reg, 0)
        return [self.defs[i] for i in _iter_bits(mask)]


def _iter_bits(mask: int):
    """Indices of set bits in ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
