"""Generic iterative bit-vector dataflow solver.

Facts are encoded as arbitrary-precision Python integers used as bitsets,
which keeps the inner loop in C.  A problem instance supplies per-block
``gen``/``kill`` masks and the solver iterates to a fixed point with a
worklist, in reverse postorder for forward problems and postorder for
backward problems.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.ir.cfg import predecessors, reverse_postorder, successor_map
from repro.ir.function import Function


@dataclass(slots=True)
class DataflowProblem:
    """A bit-vector dataflow problem over a function's CFG.

    Attributes:
        forward: Direction of propagation.
        may: True for union (may) confluence, False for intersection.
        gen: Block label -> generated-facts mask.
        kill: Block label -> killed-facts mask.
        entry_fact: Boundary fact at the entry (forward) or exits
            (backward).
        universe: Mask of all facts; used as the initial interior value
            for must (intersection) problems.
    """

    forward: bool
    may: bool
    gen: dict[str, int]
    kill: dict[str, int]
    entry_fact: int = 0
    universe: int = 0


@dataclass(slots=True)
class DataflowResult:
    """Fixed-point solution: facts at block entry and exit."""

    in_facts: dict[str, int]
    out_facts: dict[str, int]


def solve_dataflow(func: Function, problem: DataflowProblem) -> DataflowResult:
    """Solve ``problem`` over ``func`` and return per-block facts."""
    succ = successor_map(func)
    preds = predecessors(func)
    rpo = reverse_postorder(func)
    labels = [blk.label for blk in func.blocks]

    if problem.forward:
        order = rpo
        inputs_of: Callable[[str], list[str]] = lambda b: preds[b]
        outputs_of = lambda b: succ[b]
        boundary = {func.entry.label} if func.blocks else set()
    else:
        order = list(reversed(rpo))
        inputs_of = lambda b: succ[b]
        outputs_of = lambda b: preds[b]
        boundary = {b for b in labels if not succ[b]}

    init = 0 if problem.may else problem.universe
    before: dict[str, int] = {b: init for b in labels}
    after: dict[str, int] = {b: init for b in labels}
    for b in boundary:
        before[b] = problem.entry_fact if problem.may else problem.entry_fact

    position = {b: i for i, b in enumerate(order)}
    work = deque(order)
    queued = set(order)
    while work:
        label = work.popleft()
        queued.discard(label)

        incoming = inputs_of(label)
        if incoming:
            if problem.may:
                fact = 0
                for other in incoming:
                    fact |= after[other]
                if label in boundary:
                    fact |= problem.entry_fact
            else:
                fact = problem.universe
                for other in incoming:
                    fact &= after[other]
                if label in boundary:
                    fact &= problem.entry_fact
        else:
            fact = problem.entry_fact if label in boundary else init
        before[label] = fact

        new_after = (fact & ~problem.kill.get(label, 0)) | problem.gen.get(label, 0)
        if new_after != after[label]:
            after[label] = new_after
            for nxt in outputs_of(label):
                if nxt not in queued:
                    queued.add(nxt)
                    work.append(nxt)

    if problem.forward:
        return DataflowResult(in_facts=before, out_facts=after)
    return DataflowResult(in_facts=after, out_facts=before)
