"""Independent certification of advanced-scheme partitions.

The partitioner's own bookkeeping (``S_copy``/``S_dupl``/back-copies and
per-component Profit) is *trusted* by the rewrite stage; the only check
so far — the ``cost-consistency`` lint rule — re-derives the sets with
:func:`~repro.partition.advanced.recount_communication`, which shares
the partitioner's code.  A bug in that shared code certifies itself.

This module is a from-scratch auditor: it re-walks the RDG with its own
edge predicates, component search and §6.1 pricing, and certifies that

1. every bookkept copy/duplicate site is an INT node that actually
   feeds the FPa side (no phantom overhead inflating the books),
2. every constraining INT→FPa edge is paid for by a copy or duplicate
   and every FPa→INT edge is a legal crossing (back-copy on a
   convention edge, or a pre-existing copy instruction),
3. duplicated nodes are re-executable in FPa (``.a`` twin exists,
   parents available), and
4. every FPa component that uses communication has
   ``Benefit − Overhead ≥ −tol`` when re-priced from the partitioned
   IR and the profile — the §6 profitability contract.

The result is a :class:`ProfitCertificate` whose ``violations`` list is
empty exactly when the partition honours the cost model.  The
``profit-certification`` lint rule (rule 7) surfaces violations as
diagnostics, and :func:`~repro.partition.program.partition_program`
refuses to rewrite uncertified advanced partitions by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.ir.opcodes import OpKind, fpa_twin
from repro.rdg.graph import RDG, Node, Part, Pin

if TYPE_CHECKING:  # avoid a module cycle: partition.cost imports analysis
    from repro.partition.cost import CostParams, ExecutionProfile
    from repro.partition.partition import Partition

#: Numerical slack for the profit bound (float bookkeeping noise).
PROFIT_TOLERANCE = 1e-6


@dataclass(frozen=True, slots=True)
class ComponentAudit:
    """One FPa connected component, re-priced with the §6.1 model."""

    nodes: frozenset[Node]
    benefit: float
    overhead: float
    uses_communication: bool
    pinned_fp: bool

    @property
    def profit(self) -> float:
        return self.benefit - self.overhead


@dataclass(eq=False, slots=True)
class ProfitCertificate:
    """Outcome of auditing one partition.

    ``ok`` is True exactly when the bookkeeping is consistent and every
    communication-using component is profitable within the tolerance.
    """

    function: str
    scheme: str
    components: list[ComponentAudit] = field(default_factory=list)
    violations: list[tuple[str, Node | None]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def total_profit(self) -> float:
        return sum(c.profit for c in self.components if not c.pinned_fp)

    def summary(self) -> dict[str, object]:
        return {
            "function": self.function,
            "scheme": self.scheme,
            "ok": self.ok,
            "components": len(self.components),
            "communicating_components": sum(
                1 for c in self.components if c.uses_communication
            ),
            "total_profit": round(self.total_profit(), 6),
            "violations": len(self.violations),
        }


class _Auditor:
    """One certification pass; independent of the partitioner classes."""

    def __init__(
        self,
        partition: "Partition",
        n_b: dict[str, float],
        params: "CostParams",
        tol: float,
    ):
        self.partition = partition
        self.rdg: RDG = partition.rdg
        self.n_b = n_b
        self.params = params
        self.tol = tol
        self.fp = partition.fp
        self.sites = partition.copies | partition.dups

    # -- independent edge predicates ------------------------------------
    def _count(self, node: Node) -> float:
        return self.n_b.get(self.rdg.block(node), 0.0)

    def _is_copy_instr(self, node: Node) -> bool:
        return self.rdg.instruction(node).kind is OpKind.COPY

    def _constraining_edges(self) -> Iterator[tuple[Node, Node]]:
        """Register edges that constrain the partition: not out of a copy
        instruction, not a calling-convention edge."""
        conv = self.rdg.convention_edges
        for src in self.rdg.nodes:
            if self._is_copy_instr(src):
                continue
            for dst in self.rdg.succs[src]:
                if (src, dst) not in conv:
                    yield src, dst

    def _constraining_children(self, node: Node) -> list[Node]:
        if self._is_copy_instr(node):
            return []
        conv = self.rdg.convention_edges
        return [c for c in self.rdg.succs[node] if (node, c) not in conv]

    def _constraining_parents(self, node: Node) -> list[Node]:
        conv = self.rdg.convention_edges
        return [
            p
            for p in self.rdg.preds[node]
            if not self._is_copy_instr(p) and (p, node) not in conv
        ]

    def _is_duplicable(self, node: Node) -> bool:
        instr = self.rdg.instruction(node)
        return (
            node.part is Part.WHOLE
            and instr.kind is OpKind.ALU
            and fpa_twin(instr.op) is not None
        )

    def _justified_sites(self) -> set[Node]:
        """Sites with a real FPa consumer, or demanded transitively by a
        justified *duplicate* (a dup's FPa twin re-reads its parents)."""
        justified = {
            site
            for site in self.sites
            if any(c in self.fp for c in self._constraining_children(site))
        }
        changed = True
        while changed:
            changed = False
            for site in self.sites - justified:
                if any(
                    c in self.partition.dups and c in justified and c != site
                    for c in self._constraining_children(site)
                ):
                    justified.add(site)
                    changed = True
        return justified

    # -- bookkeeping audit ----------------------------------------------
    def audit_sites(self) -> Iterator[tuple[str, Node | None]]:
        justified = self._justified_sites()
        for site in sorted(self.sites, key=_node_key):
            which = "copy" if site in self.partition.copies else "duplicate"
            if site in self.fp:
                yield f"bookkept {which} site {site!r} is not an INT node", site
            instr = self.rdg.instruction(site)
            if site.part is Part.ADDR or not instr.defs:
                yield f"bookkept {which} site {site!r} defines no copyable register", site
            if site not in justified:
                yield (
                    f"phantom {which} site {site!r}: no FPa consumer "
                    "(direct or via a duplicate's parent demand), yet its "
                    "overhead is charged to the cost model",
                    site,
                )
        both = self.partition.copies & self.partition.dups
        for site in sorted(both, key=_node_key):
            yield f"{site!r} is bookkept as both copy and duplicate", site
        for site in sorted(self.partition.dups, key=_node_key):
            if not self._is_duplicable(site):
                yield f"duplicate site {site!r} has no FPa twin", site
            for parent in self._constraining_parents(site):
                if parent == site:
                    continue  # self-dependence: satisfied by the twin
                if parent in self.fp or parent in self.sites:
                    continue
                yield (
                    f"duplicate site {site!r} needs parent {parent!r} in FPa, "
                    "but it is neither copied, duplicated nor FPa-resident",
                    site,
                )

    def audit_edges(self) -> Iterator[tuple[str, Node | None]]:
        conv = self.rdg.convention_edges
        back = self.partition.back_copies
        for src, dst in self._constraining_edges():
            src_fp, dst_fp = src in self.fp, dst in self.fp
            if src_fp == dst_fp:
                continue
            if not src_fp:
                if src not in self.sites:
                    yield (
                        f"unpaid INT→FPa edge {src!r} → {dst!r}: no copy or "
                        "duplicate is bookkept for it",
                        src,
                    )
            else:
                yield f"uncompensatable FPa→INT edge {src!r} → {dst!r}", src
        for src in sorted(back, key=_node_key):
            if src not in self.fp:
                yield f"back-copy site {src!r} is not an FPa node", src
            if not any(
                (src, dst) in conv and dst not in self.fp
                for dst in self.rdg.succs[src]
            ):
                yield (
                    f"phantom back-copy site {src!r}: no convention edge to "
                    "an INT consumer, yet o_copy is charged for it",
                    src,
                )
        for src, dst in sorted(conv, key=lambda e: (_node_key(e[0]), _node_key(e[1]))):
            if src in self.fp and dst not in self.fp and src not in back:
                if self._is_copy_instr(src):
                    # a pre-existing cp_from_comp already delivers into
                    # the INT file; its edge is a cut edge, no back-copy
                    # bookkeeping is owed for it
                    continue
                yield (
                    f"convention edge {src!r} → {dst!r} leaves FPa without a "
                    "bookkept back-copy",
                    src,
                )

    # -- component pricing -----------------------------------------------
    def components(self) -> list[list[Node]]:
        """FPa connected components (undirected, all edge kinds), in a
        deterministic order."""
        seen: set[Node] = set()
        comps: list[list[Node]] = []
        for start in self.rdg.nodes:
            if start in seen or start not in self.fp:
                continue
            comp: list[Node] = []
            stack = [start]
            seen.add(start)
            while stack:
                node = stack.pop()
                comp.append(node)
                for other in self.rdg.succs[node] + self.rdg.preds[node]:
                    if other not in seen and other in self.fp:
                        seen.add(other)
                        stack.append(other)
            comp.sort(key=_node_key)
            comps.append(comp)
        return comps

    def _feeders(self, comp: set[Node]) -> tuple[set[Node], set[Node]]:
        """Copy/duplicate sites paying for ``comp``, with the transitive
        parent demand of duplicates (§6.2)."""
        feed_copy: set[Node] = set()
        feed_dup: set[Node] = set()
        work = [
            site
            for site in self.sites
            if any(c in comp for c in self._constraining_children(site))
        ]
        while work:
            site = work.pop()
            if site in feed_copy or site in feed_dup:
                continue
            if site in self.partition.dups:
                feed_dup.add(site)
                for parent in self._constraining_parents(site):
                    if parent in self.sites and parent != site:
                        work.append(parent)
            else:
                feed_copy.add(site)
        return feed_copy, feed_dup

    def audit_component(self, comp: list[Node]) -> ComponentAudit:
        comp_set = set(comp)
        pinned_fp = any(self.rdg.pin.get(v) is Pin.FP for v in comp)
        benefit = sum(
            self._count(v)
            for v in comp
            if v.part is Part.WHOLE and self.rdg.pin.get(v) is not Pin.FP
        )
        feed_copy, feed_dup = self._feeders(comp_set)
        overhead = self.params.o_copy * sum(self._count(v) for v in feed_copy)
        overhead += self.params.o_dupl * sum(self._count(v) for v in feed_dup)
        back_members = [v for v in comp if v in self.partition.back_copies]
        overhead += self.params.o_copy * sum(self._count(v) for v in back_members)
        uses_communication = bool(feed_copy or feed_dup or back_members)
        return ComponentAudit(
            nodes=frozenset(comp),
            benefit=benefit,
            overhead=overhead,
            uses_communication=uses_communication,
            pinned_fp=pinned_fp,
        )


def _node_key(node: Node) -> tuple[int, str]:
    return (node.uid, node.part.value)


def certify_partition(
    partition: "Partition",
    profile: "ExecutionProfile | None" = None,
    params: "CostParams | None" = None,
    *,
    tol: float = PROFIT_TOLERANCE,
) -> ProfitCertificate:
    """Audit ``partition`` against the §6.1 cost model (module docstring).

    Args:
        partition: A pre-rewrite partition (its RDG must still reference
            the live instructions).
        profile: The execution profile the partitioner used; ``None``
            falls back to the paper's ``p_B * 5^{d_B}`` estimate, matching
            the partitioner's own fallback.
        params: Cost-model weights the partitioner used.
        tol: Numerical slack on the profit bound.

    Returns:
        A :class:`ProfitCertificate`; ``certificate.ok`` is the verdict.
    """
    from repro.partition.cost import CostParams, block_counts  # deferred: cycle

    if params is None:
        params = CostParams()
    n_b = block_counts(partition.rdg.func, profile)
    auditor = _Auditor(partition, n_b, params, tol)
    certificate = ProfitCertificate(
        function=partition.rdg.func.name, scheme=partition.scheme
    )
    certificate.violations.extend(auditor.audit_sites())
    certificate.violations.extend(auditor.audit_edges())
    for comp in auditor.components():
        audit = auditor.audit_component(comp)
        certificate.components.append(audit)
        if (
            partition.scheme == "advanced"
            and not audit.pinned_fp
            and audit.uses_communication
            and audit.profit < -tol
        ):
            anchor = comp[0]
            certificate.violations.append(
                (
                    f"FPa component of {len(comp)} node(s) at {anchor!r} has "
                    f"certified Profit {audit.profit:.3f} < 0 "
                    f"(Benefit {audit.benefit:.3f} − Overhead {audit.overhead:.3f}); "
                    "the §6 contract requires evicting it to INT",
                    anchor,
                )
            )
    return certificate
