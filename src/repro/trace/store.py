"""Trace capture/replay: keys, the on-disk store, the in-process pool.

A packed trace depends on everything *upstream* of the timing simulator
— the workload source, the partition options, and the code version —
but **not** on the machine configuration.  Its key is therefore the
bench :func:`~repro.bench.cache.cell_key` payload minus the machine
fingerprint (plus the trace format version), which is exactly what lets
one interpreter run feed every machine config of a sweep.

Two layers, both consulted by :func:`load_trace`:

* :class:`TracePool` — a small in-process LRU of decoded
  :class:`~repro.trace.pack.PackedTrace` objects.  Always on (bounded
  by ``REPRO_TRACE_POOL_CAP``, default 8 packs; ``0`` disables), so a
  serial sweep interprets each (workload, scheme) once even without any
  disk cache.
* :class:`TraceStore` — ``REPRO_TRACE_CACHE=<dir>`` opt-in directory of
  encoded packs under ``<root>/<key[:2]>/<key>.rtp``, written atomically
  (tmp + ``os.replace``) like the bench result cache it composes with.

Reads are defensive: a missing, truncated, bit-flipped, wrong-version or
stale-fingerprint file is a *miss* (the caller re-interprets), never an
error.  ``trace_pack`` is a fault site — ``REPRO_FAULTS`` can inject
errors at the read path or corrupt the raw bytes flowing out of it, and
the chaos suite proves the fallback holds.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from repro.errors import TracePackError
from repro.faults import corrupt_point, fault_point
from repro.ioutil import atomic_write_bytes, reap_orphan_tmp_files
from repro.partition.cost import CostParams
from repro.trace.pack import TRACE_FORMAT_VERSION, PackedTrace

#: Environment variable opting into the on-disk trace store.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

#: Environment variable bounding the in-process pool (decoded packs).
TRACE_POOL_CAP_ENV = "REPRO_TRACE_POOL_CAP"

DEFAULT_POOL_CAP = 8


def trace_key(
    workload: str,
    scheme: str,
    scale: int | None = None,
    *,
    cost_params: CostParams | None = None,
    use_profile: bool = True,
    regalloc: bool = True,
    balance_limit: float | None = None,
    interprocedural: bool = False,
    degraded: bool = False,
    code_version: str | None = None,
) -> str:
    """Content hash of one captured trace (machine-independent).

    Mirrors :func:`repro.bench.cache.cell_key` without the machine
    fingerprint; ``degraded`` distinguishes an advanced run that fell
    back to the basic scheme (its program — hence its trace — differs).
    """
    from repro.bench.cache import code_fingerprint, sha256_text
    from repro.workloads import workload_source

    params = cost_params if cost_params is not None else CostParams()
    payload = {
        "trace_format": TRACE_FORMAT_VERSION,
        "workload": workload,
        "scale": scale,
        "source_sha256": sha256_text(workload_source(workload, scale)),
        "scheme": scheme,
        "partition_options": {
            "cost_params": params.as_dict(),
            "use_profile": use_profile,
            "regalloc": regalloc,
            "balance_limit": balance_limit,
            "interprocedural": interprocedural,
        },
        "degraded": degraded,
        "code_version": code_version
        if code_version is not None
        else code_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class TracePool:
    """In-process LRU of decoded packs, keyed by :func:`trace_key`.

    Thread-safe: the process-wide instance is shared by every worker
    thread of a ``repro serve`` daemon, so the LRU bookkeeping and the
    hit/miss counters are guarded by a lock (decoded packs themselves
    are immutable once published).
    """

    def __init__(self, cap: int | None = None) -> None:
        self._packs: OrderedDict[str, PackedTrace] = OrderedDict()
        self._cap = cap
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def cap(self) -> int:
        if self._cap is not None:
            return self._cap
        try:
            return max(0, int(os.environ.get(TRACE_POOL_CAP_ENV, DEFAULT_POOL_CAP)))
        except (TypeError, ValueError):
            return DEFAULT_POOL_CAP

    def get(self, key: str) -> PackedTrace | None:
        with self._lock:
            pack = self._packs.get(key)
            if pack is None:
                self.misses += 1
                return None
            self._packs.move_to_end(key)
            self.hits += 1
            return pack

    def put(self, key: str, pack: PackedTrace) -> None:
        cap = self.cap()
        if cap == 0:
            return
        with self._lock:
            self._packs[key] = pack
            self._packs.move_to_end(key)
            while len(self._packs) > cap:
                self._packs.popitem(last=False)

    def stats(self) -> dict:
        with self._lock:
            hits, misses = self.hits, self.misses
            size = len(self._packs)
        total = hits + misses
        return {
            "size": size,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }

    def clear(self) -> None:
        with self._lock:
            self._packs.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._packs)


#: The process-wide pool (one per worker process under the bench pool).
_POOL = TracePool()


def trace_pool() -> TracePool:
    return _POOL


def clear_trace_pool() -> None:
    """Drop the in-process trace pool (tests, long-lived processes)."""
    _POOL.clear()


class TraceStore:
    """Directory of encoded trace packs with atomic writes."""

    SUFFIX = ".rtp"

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        reap_orphan_tmp_files(self.root)

    @classmethod
    def from_env(cls, env: str = TRACE_CACHE_ENV) -> "TraceStore | None":
        """Store at ``$REPRO_TRACE_CACHE``, or ``None`` when unset/empty."""
        value = os.environ.get(env, "").strip()
        if not value or value == "0":
            return None
        return cls(value)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}{self.SUFFIX}"

    def get(self, key: str, label: str = "") -> PackedTrace | None:
        """The decoded pack, or ``None`` on miss, damage or staleness."""
        fault_point("trace_pack", label)
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            self._miss()
            return None
        # chaos hook: REPRO_FAULTS can flip bytes here, proving the
        # decoder treats stored packs as untrusted input
        data = corrupt_point("trace_pack", data, label=label or key)
        try:
            pack = PackedTrace.from_bytes(data)
        except TracePackError:
            self._miss()
            return None
        recorded = pack.meta.get("code_version")
        if recorded is not None:
            from repro.bench.cache import code_fingerprint

            if recorded != code_fingerprint():
                self._miss()
                return None
        with self._lock:
            self.hits += 1
        return pack

    def _miss(self) -> None:
        with self._lock:
            self.misses += 1

    def put(self, key: str, pack: PackedTrace) -> None:
        """Atomically publish ``pack`` under ``key`` (best effort).

        An unwritable store degrades to a no-op rather than failing the
        run — replay is an optimization, never a correctness dependency.
        """
        if "code_version" not in pack.meta:
            from repro.bench.cache import code_fingerprint

            pack.meta["code_version"] = code_fingerprint()
        try:
            atomic_write_bytes(self.path_for(key), pack.to_bytes())
        except OSError:
            pass

    def stats(self) -> dict:
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return {
            "dir": str(self.root),
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }


#: (env value, store) — one process-wide instance per configured root,
#: so hit/miss accounting accumulates across a long-lived process (the
#: ``repro serve`` daemon reports it via ``/stats``) instead of being
#: reset by every ``from_env`` construction.
_STORE_CACHE: tuple[str, TraceStore] | None = None
_STORE_LOCK = threading.Lock()


def shared_trace_store() -> TraceStore | None:
    """The process-wide store for the current env value, or ``None``."""
    global _STORE_CACHE
    value = os.environ.get(TRACE_CACHE_ENV, "").strip()
    if not value or value == "0":
        return None
    with _STORE_LOCK:
        if _STORE_CACHE is None or _STORE_CACHE[0] != value:
            _STORE_CACHE = (value, TraceStore(value))
        return _STORE_CACHE[1]


def load_trace(key: str, label: str = "") -> PackedTrace | None:
    """Resolve ``key`` through the pool, then the env-configured store."""
    pack = _POOL.get(key)
    if pack is not None:
        return pack
    store = shared_trace_store()
    if store is None:
        return None
    pack = store.get(key, label)
    if pack is not None:
        _POOL.put(key, pack)
    return pack


def store_trace(key: str, pack: PackedTrace, label: str = "") -> None:
    """Publish a freshly captured pack to the pool and (if set) the store."""
    _POOL.put(key, pack)
    store = shared_trace_store()
    if store is not None:
        store.put(key, pack)


def _after_fork_reinit() -> None:
    """Re-arm module locks in a forked child.

    The bench pool forks workers from a process that may have many live
    threads (the serve daemon); a lock captured mid-acquisition by the
    fork would deadlock the child on its first trace access, so the
    child gets fresh locks before it runs any task.
    """
    global _STORE_LOCK
    _POOL._lock = threading.Lock()
    _STORE_LOCK = threading.Lock()
    if _STORE_CACHE is not None:
        _STORE_CACHE[1]._lock = threading.Lock()


os.register_at_fork(after_in_child=_after_fork_reinit)
