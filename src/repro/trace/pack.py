"""Columnar trace packing: the ``repro-trace/1`` format.

A dynamic trace is a long, highly redundant stream: a few hundred static
instructions generate millions of :class:`~repro.runtime.trace.TraceEntry`
objects whose per-entry payload is a handful of small integers.  A
:class:`PackedTrace` stores the same information column-wise in
:mod:`array` arrays —

* a **static table**, one row per distinct (instruction, pc, subsystem):
  pc, opcode kind, subsystem side, and the destination counts per
  register class that the pipeline's rename bookkeeping needs;
* **dynamic columns** indexed by trace position: the static row id,
  the effective memory address (``-1`` = none), the branch outcome
  (``-1`` = none, else 0/1);
* **dependence tokens** interned to dense integers: the per-entry
  ``reads``/``writes`` tuples become ranges into flattened token-id
  columns (prefix-offset encoding), and a token table maps each id back
  to its original ``(frame_id, register name)`` pair so unpacking is
  lossless.

The timing simulator consumes this representation directly — integer
token ids instead of tuple hashing, pre-resolved latency/control classes
instead of per-entry ``OpKind`` tests (see :mod:`repro.sim.pipeline`).

On-disk encoding (``to_bytes``/``from_bytes``)::

    MAGIC (8) | sha256(header+payload) (32) | header length (4, BE)
             | canonical-JSON header | concatenated array payloads

The digest covers everything after itself, so a bit flip anywhere —
header or payload — is detected.  The header carries the format
version, byte order, array manifest, token-name string table, and
arbitrary caller metadata (the trace store adds code/program
fingerprints there).  Any validation failure raises
:class:`~repro.errors.TracePackError`; encode→decode→encode is
byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import sys
from array import array

from repro.errors import TracePackError
from repro.ir.opcodes import OpKind
from repro.runtime.trace import Subsystem, TraceEntry

#: Bump on any incompatible change to the header or column layout.
#: Participates in bench cache keys (see :func:`repro.bench.cache.cell_key`)
#: so a format bump invalidates both trace packs and cached cell results.
TRACE_FORMAT_VERSION = 1

#: File magic for the on-disk encoding.
MAGIC = b"RPROTRC\x01"

#: Stable opcode-kind codes — index into this tuple is the on-disk code.
#: Append-only: reordering or removal requires a format version bump.
KIND_ORDER = (
    OpKind.ALU,
    OpKind.MUL,
    OpKind.DIV,
    OpKind.LOAD,
    OpKind.STORE,
    OpKind.BRANCH,
    OpKind.JUMP,
    OpKind.CALL,
    OpKind.RET,
    OpKind.PARAM,
    OpKind.COPY,
    OpKind.NOP,
)
KIND_CODE = {kind: code for code, kind in enumerate(KIND_ORDER)}

# Pre-resolved latency classes (static-table rows; see sim pipeline).
LAT_SINGLE = 0
LAT_LOAD = 1
LAT_STORE = 2
LAT_MUL = 3
LAT_DIV = 4

# Pre-resolved fetch control classes.
CTRL_NONE = 0
CTRL_BRANCH = 1
CTRL_JUMP = 2  # unconditional taken control flow: JUMP/CALL/RET

_LAT_OF_KIND = {
    KIND_CODE[OpKind.LOAD]: LAT_LOAD,
    KIND_CODE[OpKind.STORE]: LAT_STORE,
    KIND_CODE[OpKind.MUL]: LAT_MUL,
    KIND_CODE[OpKind.DIV]: LAT_DIV,
}
_CTRL_OF_KIND = {
    KIND_CODE[OpKind.BRANCH]: CTRL_BRANCH,
    KIND_CODE[OpKind.JUMP]: CTRL_JUMP,
    KIND_CODE[OpKind.CALL]: CTRL_JUMP,
    KIND_CODE[OpKind.RET]: CTRL_JUMP,
}

#: Serialized arrays, in payload order: (attribute name, typecode).
#: ``q``/``b``/``B`` have fixed item sizes on every supported platform.
ARRAY_LAYOUT = (
    ("pcs", "q"),
    ("kinds", "B"),
    ("fp_side", "B"),
    ("int_defs", "B"),
    ("fp_defs", "B"),
    ("instr_ids", "q"),
    ("mem_addr", "q"),
    ("taken", "b"),
    ("read_offsets", "q"),
    ("read_tokens", "q"),
    ("write_offsets", "q"),
    ("write_tokens", "q"),
    ("token_frames", "q"),
    ("token_names", "q"),
)


class PackedTrace:
    """A dynamic trace as columnar arrays (see module docstring).

    Static table (length = number of distinct static rows):
        ``pcs``, ``kinds`` (codes into :data:`KIND_ORDER`), ``fp_side``
        (0/1), ``int_defs``/``fp_defs`` (destination counts by class).

    Dynamic columns (length = ``n``):
        ``instr_ids`` (static row per entry), ``mem_addr`` (-1 = none),
        ``taken`` (-1 = none, else 0/1).

    Token columns:
        ``read_offsets``/``write_offsets`` (length ``n + 1``) delimit
        each entry's slice of ``read_tokens``/``write_tokens``, which
        hold interned token ids; ``token_frames``/``token_names`` (+ the
        ``names`` string list) map ids back to ``(frame_id, name)``.

    ``meta`` carries caller metadata (program fingerprint, workload,
    functional ``value``, ...), round-tripped through the encoding.
    """

    __slots__ = (
        "pcs", "kinds", "fp_side", "int_defs", "fp_defs",
        "instr_ids", "mem_addr", "taken",
        "read_offsets", "read_tokens", "write_offsets", "write_tokens",
        "token_frames", "token_names", "names",
        "value", "meta",
        "row_lat", "row_ctrl",
    )

    def __init__(self) -> None:
        for name, typecode in ARRAY_LAYOUT:
            setattr(self, name, array(typecode))
        self.names: list[str] = []
        self.value: int | None = None
        self.meta: dict = {}
        self.row_lat = array("B")
        self.row_ctrl = array("B")

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of dynamic instructions."""
        return len(self.instr_ids)

    @property
    def rows(self) -> int:
        """Number of distinct static rows."""
        return len(self.pcs)

    def _finalize(self) -> None:
        """Derive the non-serialized per-row classes from ``kinds``."""
        lat_of = _LAT_OF_KIND
        ctrl_of = _CTRL_OF_KIND
        self.row_lat = array("B", (lat_of.get(k, LAT_SINGLE) for k in self.kinds))
        self.row_ctrl = array("B", (ctrl_of.get(k, CTRL_NONE) for k in self.kinds))

    # ------------------------------------------------------------------
    def token(self, token_id: int) -> tuple[int, str]:
        """The original ``(frame_id, name)`` pair for an interned id."""
        return self.token_frames[token_id], self.names[self.token_names[token_id]]

    def dynamic_mix(self) -> dict[str, int]:
        """Identical summary to :func:`repro.runtime.trace.dynamic_mix`."""
        # per-row dynamic occurrence counts, then one combine per row
        occurrences = [0] * self.rows
        for sid in self.instr_ids:
            occurrences[sid] += 1
        out = {
            "total": self.n,
            "fp_executed": 0,
            "loads": 0,
            "stores": 0,
            "branches": 0,
            "copies": 0,
        }
        load = KIND_CODE[OpKind.LOAD]
        store = KIND_CODE[OpKind.STORE]
        branch = KIND_CODE[OpKind.BRANCH]
        copy = KIND_CODE[OpKind.COPY]
        for sid, count in enumerate(occurrences):
            if not count:
                continue
            if self.fp_side[sid]:
                out["fp_executed"] += count
            kind = self.kinds[sid]
            if kind == load:
                out["loads"] += count
            elif kind == store:
                out["stores"] += count
            elif kind == branch:
                out["branches"] += count
            elif kind == copy:
                out["copies"] += count
        return out

    def matches_program(self, program) -> bool:
        """Whether this pack was captured from ``program`` (by fingerprint)."""
        recorded = self.meta.get("program_sha256")
        return recorded is not None and recorded == program_fingerprint(program)

    # ------------------------------------------------------------------
    def unpack_entries(self, program) -> list[TraceEntry]:
        """Reconstruct the original :class:`TraceEntry` stream.

        Requires the :class:`~repro.ir.program.Program` the trace was
        captured from — packing keeps pcs, not instruction objects, so
        instructions are recovered through the program's layout.  Raises
        :class:`TracePackError` when a pc has no instruction (the pack
        does not belong to this program).
        """
        from repro.runtime.trace import TEXT_BASE

        by_pc: dict[int, object] = {}
        addr = TEXT_BASE
        for func in program.functions.values():
            for instr in func.instructions():
                by_pc[addr] = instr
                addr += 4
        tokens = [
            (self.token_frames[i], self.names[self.token_names[i]])
            for i in range(len(self.token_frames))
        ]
        entries: list[TraceEntry] = []
        roff, rtok = self.read_offsets, self.read_tokens
        woff, wtok = self.write_offsets, self.write_tokens
        for i, sid in enumerate(self.instr_ids):
            pc = self.pcs[sid]
            instr = by_pc.get(pc)
            if instr is None:
                raise TracePackError(
                    f"packed trace does not match program: no instruction "
                    f"at pc {pc:#x}"
                )
            mem = self.mem_addr[i]
            tak = self.taken[i]
            entries.append(
                TraceEntry(
                    instr,
                    pc,
                    Subsystem.FP if self.fp_side[sid] else Subsystem.INT,
                    tuple(tokens[t] for t in rtok[roff[i]:roff[i + 1]]),
                    tuple(tokens[t] for t in wtok[woff[i]:woff[i + 1]]),
                    mem_addr=None if mem < 0 else mem,
                    taken=None if tak < 0 else bool(tak),
                )
            )
        return entries

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize (see module docstring); deterministic byte-for-byte."""
        payload = b"".join(
            getattr(self, name).tobytes() for name, _ in ARRAY_LAYOUT
        )
        header_doc = {
            "format": "repro-trace",
            "version": TRACE_FORMAT_VERSION,
            "byteorder": sys.byteorder,
            "n": self.n,
            "rows": self.rows,
            "value": self.value,
            "meta": self.meta,
            "names": self.names,
            "arrays": [
                [name, typecode, len(getattr(self, name))]
                for name, typecode in ARRAY_LAYOUT
            ],
        }
        header = json.dumps(
            header_doc, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        digest = hashlib.sha256(header + payload).digest()
        return b"".join(
            (MAGIC, digest, len(header).to_bytes(4, "big"), header, payload)
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "PackedTrace":
        """Decode and validate; raises :class:`TracePackError` on damage."""
        prefix = len(MAGIC) + 32 + 4
        if len(data) < prefix:
            raise TracePackError("truncated trace pack (shorter than prefix)")
        if data[: len(MAGIC)] != MAGIC:
            raise TracePackError("bad trace-pack magic")
        digest = data[len(MAGIC): len(MAGIC) + 32]
        header_len = int.from_bytes(data[len(MAGIC) + 32: prefix], "big")
        if len(data) < prefix + header_len:
            raise TracePackError("truncated trace pack (header cut short)")
        header = data[prefix: prefix + header_len]
        payload = data[prefix + header_len:]
        if hashlib.sha256(header + payload).digest() != digest:
            raise TracePackError("trace-pack checksum mismatch")
        try:
            doc = json.loads(header.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TracePackError(f"unreadable trace-pack header: {exc}")
        if not isinstance(doc, dict) or doc.get("format") != "repro-trace":
            raise TracePackError("not a repro-trace header")
        if doc.get("version") != TRACE_FORMAT_VERSION:
            raise TracePackError(
                f"unsupported trace-pack version {doc.get('version')!r} "
                f"(this build reads {TRACE_FORMAT_VERSION})"
            )
        if doc.get("byteorder") != sys.byteorder:
            raise TracePackError(
                f"trace pack written on a {doc.get('byteorder')}-endian "
                f"host; this host is {sys.byteorder}-endian"
            )
        manifest = doc.get("arrays")
        expected = [name for name, _ in ARRAY_LAYOUT]
        if (
            not isinstance(manifest, list)
            or [row[0] for row in manifest] != expected
        ):
            raise TracePackError("trace-pack array manifest mismatch")

        pack = cls()
        offset = 0
        for (name, typecode), row in zip(ARRAY_LAYOUT, manifest):
            if row[1] != typecode or not isinstance(row[2], int) or row[2] < 0:
                raise TracePackError(f"bad manifest entry for {name!r}")
            column = array(typecode)
            nbytes = row[2] * column.itemsize
            chunk = payload[offset: offset + nbytes]
            if len(chunk) != nbytes:
                raise TracePackError(f"trace-pack payload cut short at {name!r}")
            column.frombytes(chunk)
            setattr(pack, name, column)
            offset += nbytes
        if offset != len(payload):
            raise TracePackError("trailing bytes after trace-pack payload")

        names = doc.get("names")
        if not isinstance(names, list) or not all(
            isinstance(s, str) for s in names
        ):
            raise TracePackError("bad trace-pack name table")
        pack.names = names
        pack.value = doc.get("value")
        meta = doc.get("meta")
        pack.meta = meta if isinstance(meta, dict) else {}
        pack._validate_structure(doc)
        pack._finalize()
        return pack

    def _validate_structure(self, doc: dict) -> None:
        """Cheap structural invariants (the digest already covers bits)."""
        n = len(self.instr_ids)
        if doc.get("n") != n or doc.get("rows") != len(self.pcs):
            raise TracePackError("trace-pack length fields disagree")
        if len(self.mem_addr) != n or len(self.taken) != n:
            raise TracePackError("dynamic columns disagree in length")
        if len(self.read_offsets) != n + 1 or len(self.write_offsets) != n + 1:
            raise TracePackError("offset columns must have n + 1 entries")
        if n:
            if self.read_offsets[0] != 0 or self.write_offsets[0] != 0:
                raise TracePackError("offset columns must start at 0")
            if (
                self.read_offsets[-1] != len(self.read_tokens)
                or self.write_offsets[-1] != len(self.write_tokens)
            ):
                raise TracePackError("offset columns must end at token count")
            if max(self.instr_ids) >= len(self.pcs):
                raise TracePackError("dynamic row id out of static-table range")
        rows = len(self.pcs)
        for column in (self.kinds, self.fp_side, self.int_defs, self.fp_defs):
            if len(column) != rows:
                raise TracePackError("static columns disagree in length")
        if any(k >= len(KIND_ORDER) for k in self.kinds):
            raise TracePackError("unknown opcode kind code")
        token_count = len(self.token_frames)
        if len(self.token_names) != token_count:
            raise TracePackError("token columns disagree in length")
        for tokens in (self.read_tokens, self.write_tokens):
            if len(tokens) and (
                min(tokens) < 0 or max(tokens) >= token_count
            ):
                raise TracePackError("token id out of table range")
        if token_count and (
            min(self.token_names) < 0
            or max(self.token_names) >= len(self.names)
        ):
            raise TracePackError("token name index out of name-table range")


def pack_entries(
    entries: list[TraceEntry],
    *,
    value: int | None = None,
    meta: dict | None = None,
) -> PackedTrace:
    """Pack a :class:`TraceEntry` stream into a :class:`PackedTrace`.

    Static rows are interned on object identity *and* (pc, subsystem),
    so hand-built traces that reuse a pc across distinct instruction
    objects (as some pipeline tests do) keep distinct rows.
    """
    pack = PackedTrace()
    if value is not None:
        pack.value = value
    if meta:
        pack.meta = dict(meta)

    static_ids: dict[tuple[int, int, bool], int] = {}
    token_ids: dict[tuple[int, str], int] = {}
    name_ids: dict[str, int] = {}

    pcs, kinds = pack.pcs, pack.kinds
    fp_side, int_defs, fp_defs = pack.fp_side, pack.int_defs, pack.fp_defs
    instr_ids, mem_col, taken_col = pack.instr_ids, pack.mem_addr, pack.taken
    roff, rtok = pack.read_offsets, pack.read_tokens
    woff, wtok = pack.write_offsets, pack.write_tokens
    token_frames, token_names = pack.token_frames, pack.token_names
    names = pack.names

    roff.append(0)
    woff.append(0)

    def intern_token(token: tuple[int, str]) -> int:
        tid = token_ids.get(token)
        if tid is None:
            tid = len(token_frames)
            token_ids[token] = tid
            frame, name = token
            nid = name_ids.get(name)
            if nid is None:
                nid = len(names)
                name_ids[name] = nid
                names.append(name)
            token_frames.append(frame)
            token_names.append(nid)
        return tid

    for entry in entries:
        fp = entry.subsystem is Subsystem.FP
        skey = (id(entry.instr), entry.pc, fp)
        sid = static_ids.get(skey)
        if sid is None:
            sid = len(pcs)
            static_ids[skey] = sid
            pcs.append(entry.pc)
            kinds.append(KIND_CODE[entry.instr.kind])
            fp_side.append(1 if fp else 0)
            ints = fps = 0
            for reg in entry.instr.defs:
                if reg.rclass.value == "fp":
                    fps += 1
                else:
                    ints += 1
            int_defs.append(ints)
            fp_defs.append(fps)
        instr_ids.append(sid)
        mem_col.append(-1 if entry.mem_addr is None else entry.mem_addr)
        if entry.taken is None:
            taken_col.append(-1)
        else:
            taken_col.append(1 if entry.taken else 0)
        for token in entry.reads:
            rtok.append(intern_token(token))
        roff.append(len(rtok))
        for token in entry.writes:
            wtok.append(intern_token(token))
        woff.append(len(wtok))

    pack._finalize()
    return pack


def program_fingerprint(program) -> str:
    """SHA-256 of the program's printed form.

    Replay validates this against a freshly prepared program before
    trusting a pack: two pipelines that print identical IR lay out
    identical pcs and produce identical traces.
    """
    from repro.ir.printer import print_program

    return hashlib.sha256(print_program(program).encode("utf-8")).hexdigest()
