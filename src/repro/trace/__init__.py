"""Trace capture/replay: columnar packing, on-disk store, replay pool.

The interpreter's dynamic trace depends only on (workload, scheme,
partition options, code version) — not on the machine configuration —
so a sweep over machine configs can interpret each program **once** and
replay the packed trace everywhere else.  See :mod:`repro.trace.pack`
for the columnar format and :mod:`repro.trace.store` for the
``REPRO_TRACE_CACHE`` store and in-process pool.
"""

from repro.trace.pack import (
    TRACE_FORMAT_VERSION,
    PackedTrace,
    pack_entries,
    program_fingerprint,
)
from repro.trace.store import (
    TRACE_CACHE_ENV,
    TracePool,
    TraceStore,
    clear_trace_pool,
    load_trace,
    store_trace,
    trace_key,
    trace_pool,
)

__all__ = [
    "TRACE_CACHE_ENV",
    "TRACE_FORMAT_VERSION",
    "PackedTrace",
    "TracePool",
    "TraceStore",
    "clear_trace_pool",
    "load_trace",
    "pack_entries",
    "program_fingerprint",
    "store_trace",
    "trace_key",
    "trace_pool",
]
