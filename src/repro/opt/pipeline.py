"""Optimization pipeline driver.

Runs the standard pass sequence to a fixed point (bounded):
constant folding -> copy propagation -> local CSE -> copy propagation ->
DCE -> jump simplification.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.program import Program
from repro.opt.coalesce import coalesce_moves
from repro.opt.constfold import fold_constants
from repro.opt.copyprop import propagate_copies
from repro.opt.cse import local_cse
from repro.opt.dce import eliminate_dead_code
from repro.opt.jumpopt import simplify_jumps
from repro.opt.remat import rematerialize_constants

_MAX_ROUNDS = 8


def optimize_function(func: Function) -> int:
    """Optimize one function; returns the total number of changes."""
    total = 0
    for _ in range(_MAX_ROUNDS):
        changed = fold_constants(func)
        changed += propagate_copies(func)
        changed += local_cse(func)
        changed += propagate_copies(func)
        changed += coalesce_moves(func)
        changed += eliminate_dead_code(func)
        changed += simplify_jumps(func)
        total += changed
        if not changed:
            break
    # Run once at the end: CSE inside the loop would re-merge the clones.
    total += rematerialize_constants(func)
    func.renumber()
    return total


def optimize_program(program: Program) -> int:
    """Optimize every function of ``program``."""
    return sum(optimize_function(f) for f in program.functions.values())
