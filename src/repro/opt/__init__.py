"""Machine-independent optimizations.

The paper performs code partitioning on the intermediate representation
"after all the initial machine-independent optimizations are complete"
(§7.1, gcc at ``-O3``: CSE, loop-invariant removal, jump optimizations).
This package supplies the equivalent standard passes for MiniC output:

* :mod:`constfold` — constant folding, including branch folding;
* :mod:`copyprop` — local copy propagation;
* :mod:`cse` — local common-subexpression elimination (value numbering);
* :mod:`dce` — global liveness-based dead-code elimination;
* :mod:`jumpopt` — jump threading, block merging, unreachable-code
  removal;
* :mod:`pipeline` — the fixed-point driver.
"""

from repro.opt.coalesce import coalesce_moves
from repro.opt.constfold import fold_constants
from repro.opt.copyprop import propagate_copies
from repro.opt.cse import local_cse
from repro.opt.dce import eliminate_dead_code
from repro.opt.jumpopt import simplify_jumps
from repro.opt.remat import rematerialize_constants
from repro.opt.pipeline import optimize_function, optimize_program

__all__ = [
    "coalesce_moves",
    "fold_constants",
    "propagate_copies",
    "local_cse",
    "eliminate_dead_code",
    "simplify_jumps",
    "rematerialize_constants",
    "optimize_function",
    "optimize_program",
]
