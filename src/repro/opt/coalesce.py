"""Move coalescing.

Code generation for ``x = x + 1`` produces ``t = addiu x, 1; x = move t``.
When ``t`` is defined exactly once and consumed only by that adjacent
move, the pair collapses to ``x = addiu x, 1``.  Besides shrinking code,
this matters to partitioning: the collapsed form is a *self*-dependence,
which the advanced scheme's duplication heuristic prices correctly
(paper Figure 6 duplicates exactly such a loop increment), whereas the
two-instruction cycle ``t -> move -> t`` would make duplication look
unprofitable.
"""

from __future__ import annotations

from collections import Counter

from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.registers import Reg

_MOVES = (Opcode.MOVE, Opcode.MOV_S)


def coalesce_moves(func: Function) -> int:
    """Coalesce single-use temporaries into following moves; returns the
    number of moves eliminated."""
    def_count: Counter[Reg] = Counter()
    use_count: Counter[Reg] = Counter()
    for instr in func.instructions():
        for d in instr.defs:
            def_count[d] += 1
        for u in instr.uses:
            use_count[u] += 1

    removed = 0
    for blk in func.blocks:
        kept = []
        previous = None
        for instr in blk.instructions:
            is_coalescable = (
                previous is not None
                and instr.op in _MOVES
                and instr.uses
                and previous.defs
                and instr.uses[0] == previous.defs[0]
                and def_count[previous.defs[0]] == 1
                and use_count[previous.defs[0]] == 1
                and instr.defs[0].rclass is previous.defs[0].rclass
            )
            if is_coalescable:
                # fold the move's destination into the producer
                temp = previous.defs[0]
                previous.defs[0] = instr.defs[0]
                def_count[temp] -= 1
                def_count[instr.defs[0]] += 1
                use_count[temp] -= 1
                removed += 1
                previous = None  # the producer is already emitted
                continue
            kept.append(instr)
            previous = instr
        blk.instructions = kept
    if removed:
        func.renumber()
    return removed
