"""Global dead-code elimination.

Uses liveness: an instruction whose only effect is defining registers
that are dead after it is removed.  Instructions with side effects
(memory writes, calls, control flow, parameter bindings) always stay.
Iterates to a fixed point since removing one instruction can kill the
operands of another.
"""

from __future__ import annotations

from repro.analysis.liveness import compute_liveness
from repro.ir.function import Function
from repro.ir.opcodes import OpKind

_SIDE_EFFECT_KINDS = {
    OpKind.STORE,
    OpKind.CALL,
    OpKind.RET,
    OpKind.BRANCH,
    OpKind.JUMP,
    OpKind.PARAM,  # the parameter contract with callers must hold
    OpKind.NOP,  # removed by jump simplification, not DCE
}


def _one_pass(func: Function) -> int:
    liveness = compute_liveness(func)
    removed = 0
    for blk in func.blocks:
        live = set(liveness.live_out[blk.label])
        kept = []
        for instr in reversed(blk.instructions):
            if instr.kind in _SIDE_EFFECT_KINDS or not instr.defs:
                keep = True
            else:
                keep = any(d in live for d in instr.defs)
            if keep:
                kept.append(instr)
                for d in instr.defs:
                    live.discard(d)
                live.update(instr.uses)
            else:
                removed += 1
        kept.reverse()
        blk.instructions = kept
    return removed


def eliminate_dead_code(func: Function) -> int:
    """Remove dead instructions from ``func``; returns how many."""
    total = 0
    while True:
        removed = _one_pass(func)
        total += removed
        if not removed:
            break
    if total:
        func.renumber()
    return total
