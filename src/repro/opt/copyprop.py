"""Local copy propagation.

Within each basic block, uses of a register defined by ``move``/``mov.s``
are rewritten to the move's source, as long as neither side has been
redefined in between.  The moves themselves become dead and are removed
by DCE.  Inter-register-file copies (``cp_to_comp``/``cp_from_comp``)
are *not* propagated: their source and destination live in different
register files.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.registers import Reg

_COPY_OPS = (Opcode.MOVE, Opcode.MOV_S, Opcode.MOVE_A)


def propagate_copies(func: Function) -> int:
    """Propagate copies in ``func``; returns the number of rewritten
    uses."""
    changed = 0
    for blk in func.blocks:
        copy_of: dict[Reg, Reg] = {}
        for instr in blk.instructions:
            # rewrite uses through the current copy map (chase chains)
            for i, use in enumerate(instr.uses):
                root = use
                while root in copy_of:
                    root = copy_of[root]
                if root != use:
                    instr.uses[i] = root
                    changed += 1
            # kill mappings invalidated by this instruction's defs
            for d in instr.defs:
                copy_of.pop(d, None)
                stale = [k for k, v in copy_of.items() if v == d]
                for k in stale:
                    del copy_of[k]
            # record new copies
            if instr.op in _COPY_OPS and instr.defs and instr.uses:
                src = instr.uses[0]
                if src != instr.defs[0]:
                    copy_of[instr.defs[0]] = src
    return changed
