"""Local constant folding and branch folding.

Tracks integer constants per basic block.  ALU instructions whose inputs
are all known constants are replaced with ``li``; conditional branches
with constant operands become unconditional jumps (taken) or ``nop``
(not taken), exposing unreachable code to :mod:`repro.opt.jumpopt`.

Global symbols materialized by ``li @name`` are *not* treated as foldable
constants for arithmetic (their numeric value is a layout artifact), but
folding across ``move`` chains of them is handled by copy propagation.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.opcodes import Opcode, OpKind
from repro.ir.registers import Reg


def _fold_alu(op: Opcode, a: int | None, b: int | None) -> int | None:
    from repro.runtime.interp import _ALU  # semantics shared with the interpreter

    fn = _ALU.get(op)
    if fn is None:
        return None
    try:
        result = fn(a, b)
    except Exception:
        return None  # e.g. division by zero: leave for runtime
    return result if isinstance(result, int) else None


def _fold_branch(op: Opcode, a: int, b: int) -> bool | None:
    from repro.runtime.interp import _BRANCH

    fn = _BRANCH.get(op)
    if fn is None:
        return None
    return bool(fn(a, b))


def fold_constants(func: Function) -> int:
    """Fold constants in ``func``; returns the number of changes."""
    changed = 0
    for blk in func.blocks:
        consts: dict[Reg, int] = {}
        for instr in blk.instructions:
            kind = instr.kind
            if kind in (OpKind.ALU, OpKind.MUL, OpKind.DIV) and not instr.info.fp_subsystem:
                values: list[int | None] = [consts.get(r) for r in instr.uses]
                imm = instr.imm if instr.info.has_imm else None
                foldable = all(v is not None for v in values) and not isinstance(imm, str)
                if instr.op is Opcode.LI:
                    foldable = False  # already a constant
                if foldable:
                    a = values[0] if values else 0
                    b = values[1] if len(values) > 1 else imm
                    result = _fold_alu(instr.op, a, b)
                    if result is not None:
                        instr.op = Opcode.LI
                        instr.uses = []
                        instr.imm = result
                        changed += 1
            elif kind is OpKind.BRANCH and not instr.info.fp_subsystem:
                values = [consts.get(r) for r in instr.uses]
                if values and all(v is not None for v in values):
                    a = values[0]
                    b = values[1] if len(values) > 1 else 0
                    outcome = _fold_branch(instr.op, a, b)
                    if outcome is True:
                        instr.op = Opcode.J
                        instr.uses = []
                        changed += 1
                    elif outcome is False:
                        instr.op = Opcode.NOP
                        instr.uses = []
                        instr.target = None
                        changed += 1

            # update the constant environment
            for reg in instr.defs:
                if instr.op is Opcode.LI and isinstance(instr.imm, int):
                    consts[reg] = instr.imm
                elif instr.op is Opcode.MOVE and instr.uses and instr.uses[0] in consts:
                    consts[reg] = consts[instr.uses[0]]
                else:
                    consts.pop(reg, None)
    return changed
