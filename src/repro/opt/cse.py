"""Local common-subexpression elimination (value numbering).

Within a basic block, pure computations (``ALU``/``MUL``/``DIV`` — loads
are excluded because memory may change) with operands that have not been
redefined are reused: the recomputation becomes a ``move`` from the
first result, which copy propagation and DCE then clean up.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.opcodes import Opcode, OpKind
from repro.ir.registers import Reg, RegClass

_PURE_KINDS = (OpKind.ALU, OpKind.MUL, OpKind.DIV)

_Key = tuple  # (opcode, use names, immediate)


def local_cse(func: Function) -> int:
    """Eliminate local common subexpressions; returns replacements made."""
    changed = 0
    for blk in func.blocks:
        available: dict[_Key, Reg] = {}
        uses_of: dict[Reg, list[_Key]] = {}
        for instr in blk.instructions:
            key = None
            if instr.kind in _PURE_KINDS and instr.defs:
                key = (instr.op, tuple(r.name for r in instr.uses), instr.imm)
                existing = available.get(key)
                if existing is not None and existing != instr.defs[0]:
                    move = Opcode.MOV_S if existing.rclass is RegClass.FP else Opcode.MOVE
                    if instr.defs[0].rclass is existing.rclass:
                        instr.op = move
                        instr.uses = [existing]
                        instr.imm = None
                        changed += 1
                        key = None  # the rewritten move defines nothing new
            # invalidate expressions that used the redefined registers
            for d in instr.defs:
                for stale_key in uses_of.pop(d, []):
                    available.pop(stale_key, None)
                stale = [k for k, v in available.items() if v == d]
                for k in stale:
                    available.pop(k, None)
            # record this expression as available
            if key is not None:
                available[key] = instr.defs[0]
                for use in instr.uses:
                    uses_of.setdefault(use, []).append(key)
    return changed
