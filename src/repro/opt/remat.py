"""Constant rematerialization.

CSE and codegen share constants: a single ``li 0`` may feed loop
counters, flag initializers *and* address arithmetic.  In the RDG that
shared definition becomes an undirected bridge gluing otherwise
independent slices into one connected component — and one address node
in the component forces the whole thing into the INT partition under the
basic scheme (§5.2).

Production compilers rematerialize cheap constants instead of keeping
them live in registers; this pass does the same statically: a register
whose sole definition is a constant ``li``/``li.s`` and which is used by
several instructions gets one private clone of the ``li`` per consumer,
inserted right after the original.  It runs once, *after* the main
optimization fixed point (CSE would just merge the clones again).
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.registers import Reg

_CONST_OPS = (Opcode.LI, Opcode.LI_S)


def rematerialize_constants(func: Function) -> int:
    """Split multi-consumer constant definitions; returns clones made."""
    defs_of: dict[Reg, list[Instruction]] = {}
    users_of: dict[Reg, list[Instruction]] = {}
    for instr in func.instructions():
        for d in instr.defs:
            defs_of.setdefault(d, []).append(instr)
        for u in set(instr.uses):
            users_of.setdefault(u, []).append(instr)

    cloned = 0
    for blk in func.blocks:
        new_instrs: list[Instruction] = []
        for instr in blk.instructions:
            new_instrs.append(instr)
            if instr.op not in _CONST_OPS or not instr.defs:
                continue
            reg = instr.defs[0]
            if len(defs_of.get(reg, [])) != 1:
                continue
            users = users_of.get(reg, [])
            if len(users) < 2:
                continue
            # keep the original for the first user; clone for the rest
            for user in users[1:]:
                clone_reg = func.new_vreg(reg.rclass)
                clone = Instruction(instr.op, defs=[clone_reg], imm=instr.imm)
                func.attach(clone)
                new_instrs.append(clone)
                user.replace_use(reg, clone_reg)
                cloned += 1
        blk.instructions = new_instrs
    if cloned:
        func.renumber()
    return cloned
