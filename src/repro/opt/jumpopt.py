"""Control-flow simplification.

Four interacting cleanups, iterated to a fixed point:

* **nop removal** — drops ``nop`` instructions (e.g. folded branches);
* **jump threading** — a branch or jump targeting an empty block that
  just jumps elsewhere is retargeted;
* **fallthrough jumps** — a ``j`` to the lexically next block is
  deleted;
* **unreachable-block removal** and **block merging** — a block with a
  single predecessor that reaches it by fallthrough or jump is absorbed
  into that predecessor.
"""

from __future__ import annotations

from repro.ir.cfg import predecessors, reachable_blocks
from repro.ir.function import Function
from repro.ir.opcodes import OpKind


def _remove_nops(func: Function) -> int:
    removed = 0
    for blk in func.blocks:
        before = len(blk.instructions)
        blk.instructions = [i for i in blk.instructions if i.kind is not OpKind.NOP]
        removed += before - len(blk.instructions)
    return removed


def _thread_jumps(func: Function) -> int:
    # final target of a trivial block: empty except for a single jump
    trivial: dict[str, str] = {}
    for blk in func.blocks:
        if len(blk.instructions) == 1 and blk.instructions[0].kind is OpKind.JUMP:
            trivial[blk.label] = blk.instructions[0].target

    def resolve(label: str) -> str:
        seen = set()
        while label in trivial and label not in seen:
            seen.add(label)
            label = trivial[label]
        return label

    changed = 0
    for blk in func.blocks:
        term = blk.terminator
        if term is not None and term.kind in (OpKind.JUMP, OpKind.BRANCH):
            final = resolve(term.target)
            if final != term.target:
                term.target = final
                changed += 1
    return changed


def _drop_fallthrough_jumps(func: Function) -> int:
    changed = 0
    for i, blk in enumerate(func.blocks[:-1]):
        term = blk.terminator
        if (
            term is not None
            and term.kind is OpKind.JUMP
            and term.target == func.blocks[i + 1].label
        ):
            blk.instructions.pop()
            changed += 1
    return changed


def _remove_unreachable(func: Function) -> int:
    reachable = reachable_blocks(func)
    before = len(func.blocks)
    func.blocks = [b for b in func.blocks if b.label in reachable or b is func.entry]
    return before - len(func.blocks)


def _merge_one_block(func: Function) -> bool:
    """Absorb one single-predecessor block into that predecessor.

    Safe only when the absorbed block's own fall-through semantics are
    preserved: either it is the predecessor's lexically next block
    (positions stay adjacent after the merge), or it ends in control
    flow that does not fall through (``j``/``ret``) — otherwise moving
    it would silently retarget its fall-through edge.
    """
    preds = predecessors(func)
    for i, blk in enumerate(func.blocks):
        term = blk.terminator
        if term is not None and term.kind is not OpKind.JUMP:
            continue
        if term is not None:
            succ_label = term.target
        elif i + 1 < len(func.blocks):
            succ_label = func.blocks[i + 1].label
        else:
            continue
        if succ_label == blk.label or succ_label == func.entry.label:
            continue
        if preds[succ_label] != [blk.label]:
            continue
        succ = func.block(succ_label)
        is_next = i + 1 < len(func.blocks) and func.blocks[i + 1] is succ
        succ_term = succ.terminator
        falls_through = succ_term is None or succ_term.kind is OpKind.BRANCH
        if falls_through and not is_next:
            continue  # would change succ's fall-through successor
        if term is not None:
            blk.instructions.pop()
        blk.instructions.extend(succ.instructions)
        func.blocks.remove(succ)
        return True
    return False


def _merge_blocks(func: Function) -> int:
    changed = 0
    while _merge_one_block(func):
        changed += 1
    return changed


def simplify_jumps(func: Function) -> int:
    """Run all control-flow cleanups to a fixed point; returns the total
    number of changes."""
    total = 0
    while True:
        changed = (
            _remove_nops(func)
            + _thread_jumps(func)
            + _drop_fallthrough_jumps(func)
            + _remove_unreachable(func)
            + _merge_blocks(func)
        )
        total += changed
        if not changed:
            break
    if total:
        func.renumber()
    return total
