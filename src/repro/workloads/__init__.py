"""Benchmark workloads.

The paper evaluates on SPECINT95 (Table 2: compress, gcc, go, ijpeg, li,
m88ksim, perl) plus some SPEC92/95 floating-point programs (§7.5).  The
originals and their reference inputs are not redistributable (and the
paper's exact gcc-2.7.1 build environment is long gone), so each
benchmark is represented by a **surrogate**: a MiniC program engineered
to exercise the same *slice structure* the paper attributes to it —

============  ===============================================================
compress      LZW-style hash compressor; bit twiddling; includes the
              memory-less ``run``/LCG random generator the paper calls out
              in §6.6 (the greedy schemes move it to FPa wholesale)
gcc           register-bookkeeping passes, including the paper's own
              ``invalidate_for_call`` example (Figure 3); bitset scans
go            board evaluation: branchy nested loops over a 2D array,
              influence counting — deep branch slices fed by loads
ijpeg         8x8 integer transform/quantize kernels: long store-value
              slices of shifts/adds, a small multiply fraction (~3%)
li            cons-cell list interpreter: many small recursive functions,
              call-intensive (the advanced scheme gains little, §7.2)
m88ksim       instruction-set simulator dispatch loop: decode fields via
              shifts/masks, simulated register file updates — large
              offloadable store-value slices and high ILP
perl          byte-string hashing and associative lookups: byte loads
              pin value slices to INT, so offload stays small
============  ===============================================================

Floating-point surrogates (§7.5): ``ear`` (filterbank with substantial
integer branch/store-value work not feeding addresses — the paper's 18%
outlier) and ``swim`` (a pure float stencil — negligible integer work).

Every workload takes a ``scale`` knob that sets dynamic instruction
counts; defaults aim for ~10^5 dynamic instructions, big enough for
stable microarchitectural behaviour yet laptop-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import WorkloadError
from repro.ir.program import Program


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """One benchmark workload.

    Attributes:
        name: Benchmark name (SPEC-style, lowercase).
        category: ``"int"`` or ``"fp"``.
        paper_input: The input the paper used (Table 2), for the record.
        description: What the surrogate exercises.
        source_fn: ``scale -> MiniC source text``.
        default_scale: Scale used by the experiment harness.
    """

    name: str
    category: str
    paper_input: str
    description: str
    source_fn: Callable[[int], str]
    default_scale: int


def _registry() -> dict[str, WorkloadSpec]:
    from repro.workloads import specfp, specint

    specs = [
        specint.compress_spec(),
        specint.gcc_spec(),
        specint.go_spec(),
        specint.ijpeg_spec(),
        specint.li_spec(),
        specint.m88ksim_spec(),
        specint.perl_spec(),
        specfp.ear_spec(),
        specfp.swim_spec(),
    ]
    return {spec.name: spec for spec in specs}


WORKLOADS: dict[str, WorkloadSpec] = _registry()
INT_BENCHMARKS = [n for n, s in WORKLOADS.items() if s.category == "int"]
FP_BENCHMARKS = [n for n, s in WORKLOADS.items() if s.category == "fp"]


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload; raises :class:`WorkloadError` if unknown.

    ``gen:<generator>?axis=value&...`` spec strings resolve to generated
    workloads (see :mod:`repro.gen`); anything else must name a static
    surrogate in :data:`WORKLOADS`.
    """
    from repro.gen import generated_workload_spec, is_generator_spec

    if is_generator_spec(name):
        return generated_workload_spec(name)
    spec = WORKLOADS.get(name)
    if spec is None:
        from repro.gen import GENERATORS

        gen_examples = ", ".join(f"gen:{g}?seed=N" for g in sorted(GENERATORS))
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)} "
            f"or generator specs ({gen_examples})"
        )
    return spec


def workload_source(name: str, scale: int | None = None) -> str:
    """MiniC source text of a workload at the given scale."""
    spec = get_workload(name)
    if scale is None:
        scale = spec.default_scale
    if scale <= 0:
        raise WorkloadError(f"scale must be positive, got {scale}")
    return spec.source_fn(scale)


def compile_workload(name: str, scale: int | None = None, optimize: bool = True) -> Program:
    """Compile a workload to IR."""
    from repro.minic.compile import compile_source

    return compile_source(workload_source(name, scale), optimize=optimize)


__all__ = [
    "WorkloadSpec",
    "WORKLOADS",
    "INT_BENCHMARKS",
    "FP_BENCHMARKS",
    "get_workload",
    "workload_source",
    "compile_workload",
]
