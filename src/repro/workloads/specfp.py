"""Floating-point surrogate workloads for the paper's §7.5 experiment.

The paper reports that applying the partitioning schemes to FP programs
causes negligible change for most (their store-value and branch slices
are largely already in the FP subsystem) but speeds up SPEC92's *ear* by
18%, because ear carries substantial integer branch/store-value work
that does not feed addresses.

* ``ear`` surrogate — a cochlea-style filterbank: second-order float
  filters per channel plus integer peak/zero-crossing bookkeeping whose
  slices are offloadable.
* ``swim`` surrogate — a pure float stencil: essentially all integer
  work feeds addresses, so the partitioners should find almost nothing
  (and must not cause a slowdown).
"""

from __future__ import annotations

from repro.workloads import WorkloadSpec


def _ear_source(scale: int) -> str:
    return f"""
// ear surrogate: filterbank over a synthetic signal, with integer
// peak-picking and zero-crossing bookkeeping alongside the float path.
float signal[2048];
float state1[32];
float state2[32];
float channel_energy[32];
int   crossings[32];
int   peaks[32];
int   frame_of_peak[32];

void gen_signal(int n) {{
    int i; int s = 424242;
    for (i = 0; i < n; i = i + 1) {{
        s = (s * 1103515245 + 12345) & 0x7fffffff;
        signal[i] = (float)((s >> 8) & 4095) / 2048.0 - 1.0;
    }}
}}

void filterbank(int n, int channels) {{
    int ch; int i; int cross; int peak_count; int last_sign; int sign;
    int run; int max_run; int gap; int max_gap; int loud;
    float a; float b; float x; float y; float prev1;
    float energy;
    for (ch = 0; ch < channels; ch = ch + 1) {{
        a = 0.12 + (float)ch * 0.011;
        b = 0.81 - (float)ch * 0.009;
        prev1 = state1[ch];
        energy = 0.0;
        cross = 0;
        peak_count = 0;
        last_sign = 0;
        run = 0;
        max_run = 0;
        gap = 0;
        max_gap = 0;
        loud = 0;
        for (i = 0; i < n; i = i + 1) {{
            x = signal[i];
            y = a * x + b * prev1;
            prev1 = y;
            energy = energy + y * y;
            // integer epoch/peak bookkeeping: the substantial integer
            // side of ear that does not feed addresses (the paper's
            // 18%-offloadable fraction)
            sign = 0;
            if (y > 0.0) {{ sign = 1; }}
            if (sign == last_sign) {{
                run = run + 1;
                loud = loud + (run & 3);
            }} else {{
                if (run > max_run) {{ max_run = run; }}
                run = 1;
                cross = cross + 1;
                last_sign = sign;
                loud = (loud >> 1) + cross;
            }}
            gap = gap + 1;
            max_gap = max_gap + ((gap ^ max_gap) & 1);
            loud = (loud + ((gap << 2) & 60)) & 0xffff;
            if (y > 0.9) {{
                peak_count = peak_count + 1;
                if (gap > max_gap) {{ max_gap = gap; }}
                gap = 0;
                loud = loud + (max_run & 7) + 1;
            }}
            loud = loud ^ ((cross << 3) & 248);
            loud = (loud + (peak_count & 15)) & 0xffff;
        }}
        state1[ch] = prev1;
        state2[ch] = energy;
        channel_energy[ch] = energy;
        crossings[ch] = cross;
        peaks[ch] = peak_count;
        frame_of_peak[ch] = max_gap * 8 + (max_run & 7) + loud;
    }}
}}

int main() {{
    int round; int ch; int checksum = 0;
    gen_signal(512);
    for (round = 0; round < {scale}; round = round + 1) {{
        filterbank(512, 8);
        for (ch = 0; ch < 8; ch = ch + 1) {{
            checksum = (checksum + crossings[ch] * 3 + peaks[ch]
                        + frame_of_peak[ch]) & 0xffffff;
            if (channel_energy[ch] > 100.0) {{
                checksum = (checksum + 1) & 0xffffff;
            }}
        }}
    }}
    return checksum;
}}
"""


def ear_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="ear",
        category="fp",
        paper_input="(SPEC92 ref)",
        description="filterbank with integer peak/zero-crossing bookkeeping",
        source_fn=_ear_source,
        default_scale=2,
    )


def _swim_source(scale: int) -> str:
    return f"""
// swim surrogate: shallow-water-style float stencil; integer work is
// almost entirely addressing, so partitioning should be a no-op.
float u[1156];
float v[1156];
float unew[1156];

void init_grids() {{
    int i; int s = 1777;
    for (i = 0; i < 1156; i = i + 1) {{
        s = (s * 69069 + 1) & 0x7fffffff;
        u[i] = (float)(s & 1023) / 512.0 - 1.0;
        v[i] = (float)((s >> 10) & 1023) / 512.0 - 1.0;
    }}
}}

void stencil_step() {{
    int row; int col; int p;
    for (row = 1; row < 33; row = row + 1) {{
        for (col = 1; col < 33; col = col + 1) {{
            p = row * 34 + col;
            unew[p] = 0.25 * (u[p - 1] + u[p + 1] + u[p - 34] + u[p + 34])
                    + 0.125 * v[p] - 0.0625 * u[p];
        }}
    }}
    for (row = 1; row < 33; row = row + 1) {{
        for (col = 1; col < 33; col = col + 1) {{
            p = row * 34 + col;
            u[p] = unew[p];
            v[p] = 0.99 * v[p] + 0.01 * unew[p];
        }}
    }}
}}

int main() {{
    int step; int i; int checksum = 0;
    init_grids();
    for (step = 0; step < {scale}; step = step + 1) {{
        stencil_step();
    }}
    for (i = 0; i < 1156; i = i + 17) {{
        checksum = (checksum + (int)(u[i] * 1000.0)) & 0xffffff;
    }}
    return checksum;
}}
"""


def swim_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="swim",
        category="fp",
        paper_input="(SPEC95 ref)",
        description="pure float stencil; partitioning should be a no-op",
        source_fn=_swim_source,
        default_scale=4,
    )
