"""SPECINT95 surrogate workloads (MiniC sources).

Each function returns a :class:`~repro.workloads.WorkloadSpec` whose
``source_fn`` produces MiniC text for a given scale.  Every program
finishes by returning a checksum so correctness can be asserted across
compilation modes (unoptimized / optimized / partitioned / allocated).

The surrogates are *structured* to reproduce each benchmark's slice
anatomy, not just its instruction mix.  Two recurring patterns matter:

* **Offloadable-in-basic** work is a slice whose sources are load
  *values* and whose sinks are branches or store *values*, sharing no
  register with any address computation — e.g. ``a[i] = a[i] + 1``
  under a condition on a loaded flag (the paper's Figure 4).
* Work becomes **advanced-only** when it shares a register (typically
  an induction variable) with the LdSt slice, so a copy or duplicate is
  needed (Figures 5/6), or when it crosses a call boundary (§6.4).
"""

from __future__ import annotations

from repro.workloads import WorkloadSpec


# ---------------------------------------------------------------------------
# compress — LZW-style compressor with a memory-less RNG (§6.6 anecdote)
# ---------------------------------------------------------------------------


def _compress_source(scale: int) -> str:
    n = min(4 + scale, 4096)
    return f"""
// compress surrogate: LZW-style hash compressor over a synthetic stream.
int input[4096];
int output[4200];
int htab[1024];
int codetab[1024];
int out_count;

// The paper's Section 6.6 anecdote: compress's random-number generator
// performs no memory access at all, so the greedy partitioners move the
// entire function to FPa (modulo call glue).
int rand_next(int s) {{
    int x = s * 1103515245 + 12345;
    x = x & 0x7fffffff;
    return x;
}}

void gen_input(int n) {{
    int i;
    int s = 99;
    for (i = 0; i < n; i = i + 1) {{
        s = rand_next(s);
        input[i] = (s >> 8) & 15;
    }}
}}

int hash_key(int prefix, int ch) {{
    int h = (prefix << 4) ^ ch ^ (prefix >> 3);
    return h & 1023;
}}

void compress(int n) {{
    int i; int prefix; int ch; int h; int key; int probes;
    int next_code = 16;
    for (i = 0; i < 1024; i = i + 1) {{ htab[i] = 0 - 1; }}
    out_count = 0;
    prefix = input[0];
    for (i = 1; i < n; i = i + 1) {{
        ch = input[i];
        key = (prefix << 8) | ch;
        h = hash_key(prefix, ch);
        probes = 0;
        while (htab[h] != 0 - 1 && htab[h] != key && probes < 16) {{
            h = (h + 1) & 1023;
            probes = probes + 1;
        }}
        if (htab[h] == key) {{
            prefix = codetab[h];
        }} else {{
            output[out_count] = prefix;
            out_count = out_count + 1;
            if (htab[h] == 0 - 1) {{
                htab[h] = key;
                codetab[h] = next_code;
                next_code = next_code + 1;
            }}
            prefix = ch;
        }}
    }}
    output[out_count] = prefix;
    out_count = out_count + 1;
}}

int main() {{
    int i;
    int checksum = 0;
    gen_input({n});
    compress({n});
    for (i = 0; i < out_count; i = i + 1) {{
        checksum = (checksum * 31 + output[i]) & 0xffffff;
    }}
    return checksum;
}}
"""


def compress_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="compress",
        category="int",
        paper_input="test.in",
        description="LZW-style hash compressor; bit twiddling; memory-less RNG",
        source_fn=_compress_source,
        default_scale=900,
    )


# ---------------------------------------------------------------------------
# gcc — register bookkeeping including the paper's Figure 3 function
# ---------------------------------------------------------------------------


def _gcc_source(scale: int) -> str:
    return f"""
// gcc surrogate: register-allocation bookkeeping built around the
// paper's own running example invalidate_for_call (Figure 3), plus an
// instruction-cost estimation pass whose computed costs are pure
// store-value slices (offloadable even by the basic scheme) and a
// population-count pass accumulating into a global.
// Working set deliberately exceeds the 32 KB D-cache: the real gcc is
// memory-bound, which caps how much offloading can help (§7.3's point
// that cache bandwidth dominates load/store-heavy programs).
int reg_tick[4096];
int reg_in_table[4096];
int qty_table[4096];
int regs_invalidated[128];
int insn_code[512];
int insn_cost[512];
int pop_total;
int n_regs;

void delete_equiv_reg(int regno) {{
    int q = qty_table[regno];
    if (q != regno) {{
        qty_table[regno] = regno;
        reg_in_table[q] = reg_in_table[q] - 1;
    }}
}}

void invalidate_for_call() {{
    int regno; int word; int bit;
    for (regno = 0; regno < n_regs; regno = regno + 1) {{
        word = regs_invalidated[regno >> 5];
        bit = (word >> (regno & 31)) & 1;
        if (bit) {{
            delete_equiv_reg(regno);
            if (reg_tick[regno] >= 0) {{
                reg_tick[regno] = reg_tick[regno] + 1;
            }}
        }}
    }}
}}

// rtx cost estimation: loaded code word -> branchy cost computation ->
// stored cost. The cost value never feeds an address.
void estimate_costs(int n) {{
    int i; int w; int c;
    for (i = 0; i < n; i = i + 1) {{
        w = insn_code[i];
        c = 1 + ((w >> 4) & 7);
        if (w & 0x100) {{ c = c + 2; }}
        if ((w & 0xff) == 0x2a) {{ c = c + 5; }}
        if ((w >> 12) & 1) {{ c = (c << 1) + 1; }}
        insn_cost[i] = c;
    }}
}}

// bitset sweep: population count accumulated into a global scalar
void popcount_pass() {{
    int w; int v; int count = 0;
    for (w = 0; w < 128; w = w + 1) {{
        v = regs_invalidated[w];
        while (v != 0) {{
            count = count + (v & 1);
            v = (v >> 1) & 0x7fffffff;
        }}
    }}
    pop_total = pop_total + count;
}}

int main() {{
    int round; int i;
    int checksum = 0;
    n_regs = 1800;
    pop_total = 0;
    for (i = 0; i < 4096; i = i + 1) {{
        reg_tick[i] = (i * 7 - 80) % 53;
        qty_table[i] = (i * 13) & 4095;
        reg_in_table[i] = (i >> 3) & 7;
    }}
    for (i = 0; i < 128; i = i + 1) {{
        regs_invalidated[i] = (i * 0x41414141) ^ 0x5A5A5A5A;
    }}
    for (i = 0; i < 512; i = i + 1) {{
        insn_code[i] = (i * 2654435761) & 0x7fffffff;
    }}
    for (round = 0; round < {scale}; round = round + 1) {{
        invalidate_for_call();
        estimate_costs(256);
        popcount_pass();
    }}
    for (i = 0; i < 4096; i = i + 32) {{
        checksum = (checksum ^ reg_tick[i] + reg_in_table[i]) & 0xffffff;
    }}
    for (i = 0; i < 512; i = i + 4) {{
        checksum = (checksum + insn_cost[i]) & 0xffffff;
    }}
    return (checksum + pop_total) & 0xffffff;
}}
"""


def gcc_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="gcc",
        category="int",
        paper_input="stmt.i",
        description="register bookkeeping incl. the paper's invalidate_for_call",
        source_fn=_gcc_source,
        default_scale=2,
    )


# ---------------------------------------------------------------------------
# go — branchy board evaluation over a 2D array
# ---------------------------------------------------------------------------


def _go_source(scale: int) -> str:
    return f"""
// go surrogate: influence/liberty evaluation over a 19x19 board.
// Deep branch slices fed by loaded stone colours; the loop induction
// variables feed both addresses and termination tests, which is what
// the advanced scheme's duplication untangles.
int board[361];
int influence[361];
int liberties[361];

void init_board() {{
    int i; int s = 12345;
    for (i = 0; i < 361; i = i + 1) {{
        s = (s * 1103515245 + 12345) & 0x7fffffff;
        if ((s >> 16) % 3 == 0) {{ board[i] = 1; }}
        else {{
            if ((s >> 16) % 3 == 1) {{ board[i] = 2; }}
            else {{ board[i] = 0; }}
        }}
    }}
}}

void spread_influence() {{
    int row; int col; int p; int stone; int inf;
    for (row = 1; row < 18; row = row + 1) {{
        for (col = 1; col < 18; col = col + 1) {{
            p = row * 19 + col;
            stone = board[p];
            if (stone != 0) {{
                inf = 64;
                if (stone == 2) {{ inf = 0 - 64; }}
                influence[p] = influence[p] + inf;
                influence[p - 1] = influence[p - 1] + (inf >> 1);
                influence[p + 1] = influence[p + 1] + (inf >> 1);
                influence[p - 19] = influence[p - 19] + (inf >> 1);
                influence[p + 19] = influence[p + 19] + (inf >> 1);
            }}
        }}
    }}
}}

void count_liberties() {{
    int row; int col; int p; int libs;
    for (row = 1; row < 18; row = row + 1) {{
        for (col = 1; col < 18; col = col + 1) {{
            p = row * 19 + col;
            if (board[p] != 0) {{
                libs = 0;
                if (board[p - 1] == 0) {{ libs = libs + 1; }}
                if (board[p + 1] == 0) {{ libs = libs + 1; }}
                if (board[p - 19] == 0) {{ libs = libs + 1; }}
                if (board[p + 19] == 0) {{ libs = libs + 1; }}
                liberties[p] = libs;
            }} else {{
                liberties[p] = 0;
            }}
        }}
    }}
}}

int best_move() {{
    int p; int score; int best = 0 - 1000000; int best_p = 0;
    for (p = 20; p < 341; p = p + 1) {{
        if (board[p] == 0) {{
            score = influence[p];
            if (score < 0) {{ score = 0 - score; }}
            score = score + liberties[p - 1] + liberties[p + 1];
            if (score > best) {{ best = score; best_p = p; }}
        }}
    }}
    return best_p;
}}

int main() {{
    int round; int checksum = 0; int mv;
    init_board();
    for (round = 0; round < {scale}; round = round + 1) {{
        spread_influence();
        count_liberties();
        mv = best_move();
        board[mv] = 1 + (round & 1);
        checksum = (checksum * 17 + mv) & 0xffffff;
    }}
    return checksum;
}}
"""


def go_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="go",
        category="int",
        paper_input="2stone9.in",
        description="branchy board evaluation: influence + liberties",
        source_fn=_go_source,
        default_scale=5,
    )


# ---------------------------------------------------------------------------
# ijpeg — integer transform/quantization kernels
# ---------------------------------------------------------------------------


def _ijpeg_source(scale: int) -> str:
    return f"""
// ijpeg surrogate: 8x8 integer forward transform + quantization + RLE.
// The transform and quantizer are shift/add store-value slices (JPEG's
// integer DCT style); a deliberate small multiply fraction (~3%, the
// paper's measurement) stays pinned to the INT subsystem.
int image[4096];
int block[64];
int coef[64];
int quant_shift[64];
int zig[64];
int out_codes[8192];
int out_count;
int dc_pred;

void init_tables() {{
    int i; int s = 7;
    for (i = 0; i < 64; i = i + 1) {{
        quant_shift[i] = 1 + ((i * 3) >> 4);
        zig[i] = ((i * 29) + (i >> 3)) & 63;
    }}
    for (i = 0; i < 4096; i = i + 1) {{
        s = (s * 69069 + 1) & 0x7fffffff;
        image[i] = ((s >> 12) & 255) - 128;
    }}
}}

void load_block(int bx) {{
    int i;
    for (i = 0; i < 64; i = i + 1) {{
        block[i] = image[(bx * 64 + i) & 4095];
    }}
}}

// butterfly transform over rows then columns: adds/subs/shifts only
void transform() {{
    int r; int i; int a; int b; int c; int d; int t;
    for (r = 0; r < 8; r = r + 1) {{
        i = r * 8;
        a = block[i] + block[i + 7];
        b = block[i + 1] + block[i + 6];
        c = block[i + 2] + block[i + 5];
        d = block[i + 3] + block[i + 4];
        coef[i] = (a + d) + (b + c);
        coef[i + 2] = (a - d) << 1;
        coef[i + 4] = (a + d) - (b + c);
        coef[i + 6] = (b - c) << 1;
        t = block[i] - block[i + 7];
        coef[i + 1] = ((t << 1) + t) >> 1;
        t = block[i + 1] - block[i + 6];
        coef[i + 3] = ((t << 1) + t) >> 1;
        t = block[i + 2] - block[i + 5];
        coef[i + 5] = ((t << 1) + t) >> 1;
        t = block[i + 3] - block[i + 4];
        coef[i + 7] = ((t << 1) + t) >> 1;
    }}
    for (r = 0; r < 8; r = r + 1) {{
        a = coef[r] + coef[r + 56];
        b = coef[r + 8] + coef[r + 48];
        coef[r] = (a + b) >> 1;
        coef[r + 24] = (a - b) >> 1;
    }}
}}

void quantize_and_rle() {{
    int i; int q; int v; int run = 0;
    // DC prediction uses a real multiply: the pinned ~3% fraction
    v = coef[0] - ((dc_pred * 7) >> 3);
    dc_pred = coef[0];
    out_codes[out_count] = v & 0xffff;
    out_count = out_count + 1;
    for (i = 1; i < 64; i = i + 1) {{
        q = quant_shift[i];
        v = coef[zig[i]] >> q;
        if (v == 0) {{
            run = run + 1;
        }} else {{
            out_codes[out_count] = (run << 8) | (v & 255);
            out_count = out_count + 1;
            run = 0;
        }}
    }}
    out_codes[out_count] = run << 8;
    out_count = out_count + 1;
}}

int main() {{
    int bx; int i; int checksum = 0;
    init_tables();
    out_count = 0;
    dc_pred = 0;
    for (bx = 0; bx < {scale}; bx = bx + 1) {{
        load_block(bx);
        transform();
        quantize_and_rle();
    }}
    for (i = 0; i < out_count; i = i + 1) {{
        checksum = (checksum * 33 + out_codes[i]) & 0xffffff;
    }}
    return checksum;
}}
"""


def ijpeg_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="ijpeg",
        category="int",
        paper_input="vigo.ppm",
        description="8x8 integer transform + quantize + RLE kernels",
        source_fn=_ijpeg_source,
        default_scale=26,
    )


# ---------------------------------------------------------------------------
# li — cons-cell list interpreter, call-intensive
# ---------------------------------------------------------------------------


def _li_source(scale: int) -> str:
    return f"""
// li surrogate: xlisp-style cons-cell kernel. Many tiny recursive
// functions keep offload small for both schemes (§7.2); the inline
// tag-dispatch walk and the GC mark pass supply the branch and
// store-value slices real xlisp has.
int car_mem[16384];
int cdr_mem[16384];
int tag_mem[16384];
int mark_mem[16384];
int free_ptr;
int type_counts;

int cons(int a, int d) {{
    int cell = free_ptr;
    free_ptr = free_ptr + 1;
    car_mem[cell] = a;
    cdr_mem[cell] = d;
    tag_mem[cell] = (a & 3) + 1;
    return cell;
}}

int car(int cell) {{ return car_mem[cell]; }}
int cdr(int cell) {{ return cdr_mem[cell]; }}
int is_nil(int cell) {{ return cell < 0; }}

int build_list(int n) {{
    if (n <= 0) {{ return 0 - 1; }}
    return cons(n, build_list(n - 1));
}}

int sum_list(int lst) {{
    if (is_nil(lst)) {{ return 0; }}
    return car(lst) + sum_list(cdr(lst));
}}

int map_double(int lst) {{
    if (is_nil(lst)) {{ return 0 - 1; }}
    return cons(car(lst) * 2, map_double(cdr(lst)));
}}

int filter_odd(int lst) {{
    if (is_nil(lst)) {{ return 0 - 1; }}
    if (car(lst) & 1) {{
        return cons(car(lst), filter_odd(cdr(lst)));
    }}
    return filter_odd(cdr(lst));
}}

int append_lists(int a, int b) {{
    if (is_nil(a)) {{ return b; }}
    return cons(car(a), append_lists(cdr(a), b));
}}

// inline tag dispatch: loaded tags feed branches, counters feed a
// global store — offloadable even without copies
void count_types(int n) {{
    int i; int t; int fixnums = 0; int conses = 0; int others = 0;
    for (i = 0; i < n; i = i + 1) {{
        t = tag_mem[i];
        if (t == 1) {{ fixnums = fixnums + 1; }}
        else {{
            if (t == 2) {{ conses = conses + 1; }}
            else {{ others = others + 1; }}
        }}
    }}
    type_counts = type_counts + fixnums * 4 + conses * 2 + others;
}}

// GC mark pass: mark bits are load-value -> or -> store-value slices
void gc_mark(int n) {{
    int i;
    for (i = 0; i < n; i = i + 1) {{
        mark_mem[i] = mark_mem[i] | (tag_mem[i] & 1);
    }}
}}

int main() {{
    int round; int lst; int doubled; int odds; int both;
    int checksum = 0;
    type_counts = 0;
    for (round = 0; round < {scale}; round = round + 1) {{
        free_ptr = 0;
        lst = build_list(40);
        doubled = map_double(lst);
        odds = filter_odd(lst);
        both = append_lists(odds, doubled);
        checksum = (checksum + sum_list(both)) & 0xffffff;
        count_types(free_ptr);
        gc_mark(free_ptr);
    }}
    return (checksum + type_counts) & 0xffffff;
}}
"""


def li_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="li",
        category="int",
        paper_input="browse.lsp",
        description="cons-cell list kernel, many tiny recursive functions",
        source_fn=_li_source,
        default_scale=28,
    )


# ---------------------------------------------------------------------------
# m88ksim — instruction-set simulator dispatch loop
# ---------------------------------------------------------------------------


def _m88ksim_source(scale: int) -> str:
    return f"""
// m88ksim surrogate: a tiny RISC ISA simulator. Like the real
// simulator, each case arm re-reads its operands, so the value datapath
// (operands -> ALU result -> simulated register file) and the condition
// flags never share registers with the address datapath — big
// store-value and branch slices, high ILP.
int imem[512];
int regs[32];
int dmem[512];
int sim_pc;
int zero_results;
int neg_results;
int alu_ops;

void gen_program() {{
    int i; int s = 314159;
    for (i = 0; i < 512; i = i + 1) {{
        s = (s * 69069 + 5) & 0x7fffffff;
        imem[i] = s;
    }}
}}

void reset_state() {{
    int i;
    for (i = 0; i < 32; i = i + 1) {{ regs[i] = i * 3 + 1; }}
    for (i = 0; i < 512; i = i + 1) {{ dmem[i] = i ^ 0x55; }}
    sim_pc = 0;
    zero_results = 0;
    neg_results = 0;
    alu_ops = 0;
}}

void simulate(int steps) {{
    int n; int wv; int wi; int op; int rd; int rs1; int rs2;
    int a; int b; int result;
    for (n = 0; n < steps; n = n + 1) {{
        // index fields from one load, value fields from another: the
        // case arms of the real simulator re-read operands the same way
        wi = imem[sim_pc & 511];
        rd = (wi >> 21) & 31;
        rs1 = (wi >> 16) & 31;
        rs2 = (wi >> 11) & 31;
        wv = imem[sim_pc & 511];
        op = (wv >> 26) & 7;
        a = regs[rs1];
        b = regs[rs2];
        result = 0;
        if (op == 0) {{ result = a + b; }}
        if (op == 1) {{ result = a - b; }}
        if (op == 2) {{ result = a & b; }}
        if (op == 3) {{ result = a | b; }}
        if (op == 4) {{ result = a ^ b; }}
        if (op == 5) {{ result = a + (wv & 0xffff); }}
        if (op == 6) {{ result = dmem[(regs[rs1] + (wi & 0xffff)) & 511]; }}
        if (op == 7) {{
            dmem[(regs[rs1] + (wi & 0xffff)) & 511] = b;
            result = b;
        }}
        if (rd != 0) {{ regs[rd] = result; }}
        // condition-flag bookkeeping: pure branch + accumulate slices
        if (result == 0) {{ zero_results = zero_results + 1; }}
        if (result < 0) {{ neg_results = neg_results + 1; }}
        if (op < 6) {{ alu_ops = alu_ops + 1; }}
        sim_pc = sim_pc + 1;
    }}
}}

int main() {{
    int i; int checksum = 0;
    gen_program();
    reset_state();
    simulate({scale} * 64);
    for (i = 0; i < 32; i = i + 1) {{
        checksum = (checksum * 31 + regs[i]) & 0xffffff;
    }}
    for (i = 0; i < 512; i = i + 8) {{
        checksum = (checksum ^ dmem[i]) & 0xffffff;
    }}
    return (checksum + zero_results + neg_results * 3 + alu_ops) & 0xffffff;
}}
"""


def m88ksim_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="m88ksim",
        category="int",
        paper_input="ctl.raw, dhrystone",
        description="tiny-RISC ISA simulator dispatch loop",
        source_fn=_m88ksim_source,
        default_scale=18,
    )


# ---------------------------------------------------------------------------
# perl — hashing and associative lookup (address-bound)
# ---------------------------------------------------------------------------


def _perl_source(scale: int) -> str:
    return f"""
// perl surrogate: symbol-table hashing with chained buckets. Loaded
// values become indices (addresses), so most slices terminate in the
// LdSt slice and the FPa partition stays small — like the interpreter
// loops of real perl. A small scanner pass supplies the modest
// offloadable fraction the paper reports.
int words[2048];
int hash_head[256];
int chain_next[2048];
int chain_key[2048];
int chain_val[2048];
int n_entries;
int class_counts;

void gen_words(int n) {{
    int i; int s = 8675309;
    for (i = 0; i < n; i = i + 1) {{
        s = (s * 1103515245 + 12345) & 0x7fffffff;
        words[i] = (s >> 7) & 1023;
    }}
}}

int hash_word(int w) {{
    int h = w * 33;
    h = h ^ (h >> 7);
    return h & 255;
}}

int lookup_or_insert(int key) {{
    int h = hash_word(key);
    int node = hash_head[h];
    while (node >= 0) {{
        if (chain_key[node] == key) {{
            chain_val[node] = chain_val[node] + 1;
            return node;
        }}
        node = chain_next[node];
    }}
    node = n_entries;
    n_entries = n_entries + 1;
    chain_key[node] = key;
    chain_val[node] = 1;
    chain_next[node] = hash_head[h];
    hash_head[h] = node;
    return node;
}}

// character-class scanning: loaded words feed branches and counters
void classify(int n) {{
    int i; int w; int vowels = 0; int digits = 0; int puncts = 0;
    for (i = 0; i < n; i = i + 1) {{
        w = words[i];
        if ((w & 7) == 3) {{ vowels = vowels + 1; }}
        if ((w & 15) < 4) {{ digits = digits + 1; }}
        if ((w >> 9) & 1) {{ puncts = puncts + 1; }}
    }}
    class_counts = class_counts + vowels * 4 + digits * 2 + puncts;
}}

int main() {{
    int i; int round; int node;
    int checksum = 0;
    gen_words(1024);
    for (i = 0; i < 256; i = i + 1) {{ hash_head[i] = 0 - 1; }}
    n_entries = 0;
    class_counts = 0;
    for (round = 0; round < {scale}; round = round + 1) {{
        for (i = 0; i < 1024; i = i + 1) {{
            node = lookup_or_insert(words[i]);
            checksum = (checksum + chain_val[node]) & 0xffffff;
        }}
        classify(1024);
    }}
    return (checksum + class_counts) & 0xffffff;
}}
"""


def perl_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="perl",
        category="int",
        paper_input="scrabbl.pl",
        description="symbol-table hashing with chained buckets",
        source_fn=_perl_source,
        default_scale=2,
    )
