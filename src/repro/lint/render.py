"""Text and JSON renderings of a :class:`LintResult`.

The text form is one line per diagnostic —

    error: subsystem-consistency: main:body:#12: vf3 is produced ...
        -> route the value through cp_from_comp (§4)

followed by a summary line.  The JSON form is a stable, versioned
document so CI and editor tooling can parse it without tracking
repository internals::

    {"version": 1,
     "summary": {"errors": N, "warnings": N, "notes": N,
                 "rules_run": [...], "ok": bool},
     "diagnostics": [{"rule": ..., "severity": ..., ...}, ...]}
"""

from __future__ import annotations

import json

from repro.lint.diagnostics import LintResult

#: Bumped whenever a field is added/renamed in the JSON document.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult, *, hints: bool = True) -> str:
    """Human-readable rendering, one line per diagnostic plus summary."""
    lines: list[str] = []
    for diag in result.diagnostics:
        lines.append(
            f"{diag.severity}: {diag.rule}: {diag.location}: {diag.message}"
        )
        if diag.instruction is not None:
            lines.append(f"    | {diag.instruction}")
        if hints and diag.hint is not None:
            lines.append(f"    -> {diag.hint}")
    counts = result.counts()
    lines.append(
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['note']} note(s) from {len(result.rules_run)} rule(s)"
    )
    return "\n".join(lines)


def render_json(result: LintResult, *, indent: int | None = 2) -> str:
    """Stable machine-readable rendering (see module docstring)."""
    counts = result.counts()
    document = {
        "version": JSON_SCHEMA_VERSION,
        "summary": {
            "errors": counts["error"],
            "warnings": counts["warning"],
            "notes": counts["note"],
            "rules_run": list(result.rules_run),
            "rules_with_findings": result.rules_with_findings(),
            "ok": result.ok,
        },
        "diagnostics": [d.to_dict() for d in result.diagnostics],
    }
    return json.dumps(document, indent=indent, sort_keys=False)
