"""Abstract-interpretation rules: profit certification and value ranges.

Rule 7 (``profit-certification``) audits advanced partitions with the
independent re-pricing in :mod:`repro.analysis.certify`.  Unlike the
``cost-consistency`` rule — which recounts the communication sets with
the partitioner's own code — the certifier shares nothing with the
partitioner, so it still fails when the shared bookkeeping itself is
wrong (tampered ``S_copy``/``S_dupl``, phantom sites, or a component
whose certified ``Benefit − Overhead`` is negative).

Rule 8 (``value-range``) runs the interval + origin-class analysis of
:mod:`repro.analysis.valueclass`.  Its origin sets propagate through
*every* def-use edge — including ``cp_from_comp`` and plain copies —
which makes it strictly stronger than ``address-slice-int``: a value
computed by an FPa instruction, laundered back to the INT file through
``cp_from_comp`` (or a chain of moves) and then used in a load/store
address is invisible to the taint walk (which stops at the legal
crossing) but is still an FPa-origin address, violating the paper's §4
requirement that the LdSt slice never *depends on* FPa execution.  The
same analysis flags subsystem copies that are dead (interval-proved
never executed) or needlessly copy a compile-time constant.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.certify import certify_partition
from repro.analysis.valueclass import ValueClassResult, analyze_values
from repro.ir.function import Function
from repro.ir.opcodes import FPA_OPCODES, Opcode, OpKind
from repro.ir.registers import ZERO
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintContext, LintRule, register


@register
class ProfitCertificationRule(LintRule):
    """Every advanced partition is certified against the §6.1 cost model
    by an auditor that shares no code with the partitioner."""

    id = "profit-certification"
    description = (
        "advanced partitions re-priced independently: communication "
        "bookkeeping is real and every component's Benefit-Overhead "
        "bound is non-negative"
    )
    requires_partition = True

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        assert ctx.partitions is not None
        for name in sorted(ctx.partitions):
            partition = ctx.partitions[name]
            func = ctx.program.functions.get(name)
            certificate = certify_partition(
                partition, profile=ctx.profile, params=ctx.params
            )
            for message, node in certificate.violations:
                instr = (
                    partition.rdg.instruction(node) if node is not None else None
                )
                yield self.report(
                    message,
                    func=func,
                    instr=instr,
                    hint=(
                        "the partitioner's communication bookkeeping "
                        "disagrees with an independent re-pricing of the "
                        "partition (§6.1); do not trust its Profit numbers"
                    ),
                )


@register
class ValueRangeRule(LintRule):
    """Interval/origin abstract interpretation: no address may carry an
    FPa-origin value (even laundered through ``cp_from_comp``), and
    subsystem copies must be live and non-trivial."""

    id = "value-range"
    description = (
        "abstract interpretation proves load/store addresses free of "
        "FPa-origin values and subsystem copies live and non-constant"
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for func in ctx.program.functions.values():
            yield from self._run_function(func)

    def _run_function(self, func: Function) -> Iterator[Diagnostic]:
        values = analyze_values(func)
        instr_of = {i.uid: i for i in func.instructions()}
        for blk in func.blocks:
            for instr in blk.instructions:
                if instr.is_memory:
                    yield from self._check_address(func, values, instr_of, instr)
                if instr.op in (Opcode.CP_TO_COMP, Opcode.CP_FROM_COMP):
                    yield from self._check_copy(func, values, instr)

    def _check_address(
        self,
        func: Function,
        values: ValueClassResult,
        instr_of: dict[int, object],
        instr,
    ) -> Iterator[Diagnostic]:
        if instr.uid not in values.at_instruction:
            return  # unreachable; reported by the copy/warning checks
        pos = 0 if instr.kind is OpKind.LOAD else 1
        reg = instr.uses[pos]
        if reg == ZERO:
            return
        info = values.value_at(instr, reg)
        for origin_uid in sorted(info.origins):
            producer = instr_of.get(origin_uid)
            if producer is None:
                continue
            fpa = producer.op in FPA_OPCODES
            yield self.report(
                f"address {reg} of {instr.op} carries a value originating "
                f"from the FP-file def {producer.op} #{producer.uid}"
                + ("" if fpa else " (true floating-point producer)"),
                severity=Severity.ERROR if fpa else Severity.WARNING,
                func=func,
                instr=instr,
                hint=(
                    "the LdSt slice must not depend on FPa execution, even "
                    "through cp_from_comp; recompute the address in INT (§4)"
                ),
            )

    def _check_copy(
        self, func: Function, values: ValueClassResult, instr
    ) -> Iterator[Diagnostic]:
        which = "cp_to_comp" if instr.op is Opcode.CP_TO_COMP else "cp_from_comp"
        if instr.uid not in values.at_instruction:
            yield self.report(
                f"{which} copy is never executed (its block is unreachable "
                "under the computed value ranges)",
                severity=Severity.WARNING,
                func=func,
                instr=instr,
                hint="dead communication; delete the copy or the dead branch",
            )
            return
        source = instr.uses[0] if instr.uses else None
        if source is None or source == ZERO:
            return
        interval = values.value_at(instr, source).interval
        if interval.is_constant():
            target_op = "li.a" if instr.op is Opcode.CP_TO_COMP else "li"
            yield self.report(
                f"{which} copies the compile-time constant {interval.lo}",
                severity=Severity.NOTE,
                func=func,
                instr=instr,
                hint=(
                    f"rematerialize with {target_op} {interval.lo} instead of "
                    "paying the cross-subsystem copy latency"
                ),
            )
