"""Partition lint: dataflow-based static verification of partitioned IR.

The structural verifier (:mod:`repro.ir.verify`) checks each instruction
in isolation; this package proves *flow* properties over whole programs
and their pre-rewrite partitions, using the :mod:`repro.analysis`
dataflow machinery:

========================  =============================================
rule id                   property
========================  =============================================
subsystem-consistency     no FP-file value reaches an INT consumer
                          without ``cp_from_comp`` (and vice versa)
address-slice-int         every value feeding a load/store address is
                          INT-resident along all def-use paths
calling-convention        call args / returns / ``fp_params`` agree
                          caller vs. callee program-wide
copy-hygiene              no dead or redundant inter-partition copies
partition-legality        the INT/FPa assignment satisfies the paper's
                          partitioning conditions pre-rewrite
cost-consistency          advanced-scheme S_copy/S_dupl/Profit match a
                          recount from the profile
profit-certification      advanced partitions certified by an
                          independent §6.1 re-pricing (no shared code
                          with the partitioner)
value-range               interval/origin abstract interpretation: no
                          FPa-origin value reaches an address (even via
                          ``cp_from_comp``), subsystem copies are live
                          and non-constant
========================  =============================================

Typical use::

    from repro.lint import lint_program, render_text

    result = lint_program(program, partitions=parts, scheme="advanced")
    if not result.ok:
        print(render_text(result))
"""

from repro.lint.diagnostics import Diagnostic, LintResult, Severity
from repro.lint.registry import (
    LintContext,
    LintRule,
    all_rules,
    partition_rule_ids,
    register,
)
from repro.lint.render import JSON_SCHEMA_VERSION, render_json, render_text
from repro.lint.runner import lint_program

__all__ = [
    "Diagnostic",
    "JSON_SCHEMA_VERSION",
    "LintContext",
    "LintResult",
    "LintRule",
    "Severity",
    "all_rules",
    "lint_program",
    "partition_rule_ids",
    "register",
    "render_json",
    "render_text",
]
