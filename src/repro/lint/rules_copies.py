"""Dead- and redundant-copy rule.

Every ``cp_to_comp``/``cp_from_comp`` is pure overhead the §6.1 cost
model charged for, so a copy whose shadow result nobody reads — or that
duplicates a dominating copy of the same still-valid value — means the
communication bookkeeping and the emitted code have drifted apart.
Liveness of the copied value is established through reaching
definitions (a def with no def-use edge is dead: values only escape a
function through uses — stores, call arguments, returns); redundancy
through dominators plus the reaching-definition sets of source and
destination at both copy points.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.reaching import ReachingDefinitions
from repro.ir.function import Function
from repro.ir.opcodes import OpKind
from repro.ir.registers import Reg
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintContext, LintRule, register


def _reaching_before_copies(
    func: Function, reaching: ReachingDefinitions
) -> dict[int, dict[Reg, frozenset[int]]]:
    """For every copy instruction, the def-site uids of each register
    reaching the program point just before it."""
    snapshots: dict[int, dict[Reg, frozenset[int]]] = {}
    for blk in func.blocks:
        current: dict[Reg, set[int]] = {}
        for site in reaching.reaching_in(blk.label):
            current.setdefault(site.reg, set()).add(site.uid)
        for instr in blk.instructions:
            if instr.kind is OpKind.COPY:
                snapshots[instr.uid] = {
                    reg: frozenset(uids) for reg, uids in current.items()
                }
            for reg in instr.defs:
                current[reg] = {instr.uid}
    return snapshots


@register
class CopyHygieneRule(LintRule):
    """``cp_to_comp``/``cp_from_comp`` whose result is never used, or
    that repeats a dominating copy of the same unchanged value."""

    id = "copy-hygiene"
    description = (
        "no dead inter-partition copies and no copy repeating a "
        "dominating copy of the same value"
    )
    default_severity = Severity.WARNING

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for func in ctx.program.functions.values():
            yield from self._run_function(ctx, func)

    def _run_function(self, ctx: LintContext, func: Function) -> Iterator[Diagnostic]:
        copies = [i for i in func.instructions() if i.kind is OpKind.COPY]
        if not copies:
            return
        reaching = ctx.reaching(func)
        used_defs = {def_uid for def_uid, _use, _pos, _reg in reaching.du_edges()}

        for copy in copies:
            if copy.defs and copy.uid not in used_defs:
                yield self.report(
                    f"the {copy.defs[0]} written by this {copy.op} is never read",
                    func=func,
                    instr=copy,
                    hint="drop the copy: its communication cost buys nothing",
                )

        # redundant copies: same (op, source, destination), the earlier
        # one dominates, and neither source nor destination was redefined
        # in between.
        snapshots = _reaching_before_copies(func, reaching)
        dom = ctx.dominators(func)
        block_of = func.block_of()
        position = {i.uid: pos for pos, i in enumerate(func.instructions())}
        by_key: dict[tuple, list] = {}
        for copy in copies:
            if copy.defs and copy.uses:
                key = (copy.op, copy.uses[0], copy.defs[0])
                by_key.setdefault(key, []).append(copy)

        for (op, src, dst), group in by_key.items():
            group.sort(key=lambda i: position[i.uid])
            for later_idx, later in enumerate(group):
                for earlier in group[:later_idx]:
                    b_early, b_late = block_of[earlier.uid], block_of[later.uid]
                    if b_early == b_late:
                        dominates = position[earlier.uid] < position[later.uid]
                    else:
                        dominates = dom.dominates(b_early, b_late)
                    if not dominates:
                        continue
                    src_same = snapshots[earlier.uid].get(src) == snapshots[
                        later.uid
                    ].get(src)
                    dst_intact = snapshots[later.uid].get(dst) == frozenset(
                        {earlier.uid}
                    )
                    if src_same and dst_intact:
                        yield self.report(
                            f"{op} of {src} repeats the dominating copy "
                            f"#{earlier.uid} with both registers unchanged",
                            func=func,
                            instr=later,
                            hint=f"the value {dst} from #{earlier.uid} is "
                            "still valid here; delete this copy",
                        )
                        break
