"""Calling-convention rule: caller/callee agreement program-wide.

The paper's §6.4 convention is strict: call arguments and return values
cross function boundaries in INT registers, except for parameter
positions the interprocedural extension (§6.6) explicitly retargets to
the FP file via ``fp_params``.  This rule checks that every call site,
every ``param`` definition, every ``ret`` and every ``fp_params``
annotation tell the same story across the whole program.
"""

from __future__ import annotations

from typing import Iterator

from repro.ir.function import Function
from repro.ir.opcodes import OpKind
from repro.ir.registers import RegClass
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import LintContext, LintRule, register


@register
class CallingConventionRule(LintRule):
    """Call arguments, return values and ``fp_params`` annotations agree
    between caller and callee across the whole program."""

    id = "calling-convention"
    description = (
        "call args, return values and fp_params annotations agree "
        "between caller and callee program-wide"
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        program = ctx.program
        if program.entry not in program.functions:
            yield self.report(
                f"entry function {program.entry!r} is not defined",
                hint="define it or set Program.entry to an existing function",
            )
        for func in program.functions.values():
            yield from self._check_signature(ctx, func)
            yield from self._check_returns(func)
            yield from self._check_calls(ctx, func)

    # -- callee side -----------------------------------------------------
    def _check_signature(self, ctx: LintContext, func: Function) -> Iterator[Diagnostic]:
        bad_indices = {i for i in func.fp_params if not 0 <= i < func.n_params}
        if bad_indices:
            yield self.report(
                f"fp_params {sorted(bad_indices)} out of range for "
                f"{func.n_params} parameter(s)",
                func=func,
                hint="fp_params may only name existing parameter indices",
            )
        if func.name == ctx.program.entry and func.n_params != 0:
            yield self.report(
                f"entry function takes {func.n_params} parameter(s)",
                func=func,
                hint="nothing calls the entry: it must take no parameters",
            )
        for param in func.params():
            want = RegClass.FP if param.imm in func.fp_params else RegClass.INT
            if param.defs and param.defs[0].rclass is not want:
                side = (
                    "is annotated fp_params"
                    if want is RegClass.FP
                    else "is not annotated fp_params"
                )
                yield self.report(
                    f"parameter {param.imm} {side} but lands in "
                    f"{param.defs[0]} ({param.defs[0].rclass.name} file)",
                    func=func,
                    instr=param,
                    hint="the param destination class must match fp_params",
                )

    def _check_returns(self, func: Function) -> Iterator[Diagnostic]:
        for blk in func.blocks:
            for instr in blk.instructions:
                if instr.kind is not OpKind.RET:
                    continue
                if func.returns_value and not instr.uses:
                    yield self.report(
                        "function is declared returning but ret carries no value",
                        func=func,
                        block=blk.label,
                        instr=instr,
                    )
                elif not func.returns_value and instr.uses:
                    yield self.report(
                        "function is declared void but ret carries a value",
                        func=func,
                        block=blk.label,
                        instr=instr,
                    )
                for use in instr.uses:
                    if use.rclass is not RegClass.INT:
                        yield self.report(
                            f"return value {use} is in the FP file",
                            func=func,
                            block=blk.label,
                            instr=instr,
                            hint="return values cross in INT registers (§6.4); "
                            "insert cp_from_comp before the ret",
                        )

    # -- caller side -----------------------------------------------------
    def _check_calls(self, ctx: LintContext, func: Function) -> Iterator[Diagnostic]:
        program = ctx.program
        for blk in func.blocks:
            for instr in blk.instructions:
                if instr.kind is not OpKind.CALL:
                    continue
                callee = program.functions.get(instr.target)
                if callee is None:
                    yield self.report(
                        f"call to unknown function {instr.target!r}",
                        func=func,
                        block=blk.label,
                        instr=instr,
                    )
                    continue
                if len(instr.uses) != callee.n_params:
                    yield self.report(
                        f"call passes {len(instr.uses)} argument(s) but "
                        f"{callee.name} takes {callee.n_params}",
                        func=func,
                        block=blk.label,
                        instr=instr,
                    )
                for pos, use in enumerate(instr.uses):
                    if pos >= callee.n_params:
                        break
                    want = (
                        RegClass.FP if pos in callee.fp_params else RegClass.INT
                    )
                    if use.rclass is not want:
                        if want is RegClass.FP:
                            hint = (
                                f"{callee.name} receives parameter {pos} in "
                                "the FP file (fp_params); pass the producer's "
                                "FP register"
                            )
                        else:
                            hint = (
                                "arguments cross in INT registers (§6.4); "
                                "insert cp_from_comp before the call or "
                                "annotate the callee's fp_params"
                            )
                        yield self.report(
                            f"argument {pos} of call to {callee.name} is "
                            f"{use} ({use.rclass.name} file) but the callee "
                            f"expects it in the {want.name} file",
                            func=func,
                            block=blk.label,
                            instr=instr,
                            hint=hint,
                        )
                if instr.defs and not callee.returns_value:
                    yield self.report(
                        f"call captures a result but {callee.name} is void",
                        func=func,
                        block=blk.label,
                        instr=instr,
                    )
                if instr.defs and instr.defs[0].rclass is not RegClass.INT:
                    yield self.report(
                        f"call result {instr.defs[0]} lands in the FP file",
                        func=func,
                        block=blk.label,
                        instr=instr,
                        hint="return values always cross in INT registers (§6.4)",
                    )
