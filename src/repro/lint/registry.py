"""Rule registry and the shared analysis context rules run against.

A rule is a subclass of :class:`LintRule` registered with
:func:`register`.  Rules are pure: they read the :class:`LintContext`
and yield :class:`~repro.lint.diagnostics.Diagnostic` objects, never
mutating the program.  The context lazily computes and caches the
per-function dataflow analyses (reaching definitions, liveness,
dominators) so that several rules over the same function share one
solve.

Rules that need a :class:`~repro.partition.partition.Partition` (the
pre-rewrite partition objects, whose RDGs still reference the live
instructions) declare ``requires_partition = True`` and are skipped when
the caller lints a bare program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Type

from repro.analysis.dominators import DominatorTree, compute_dominators
from repro.analysis.liveness import LivenessResult, compute_liveness
from repro.analysis.reaching import ReachingDefinitions
from repro.errors import ReproError
from repro.ir.function import Function
from repro.ir.printer import print_instruction
from repro.ir.program import Program
from repro.lint.diagnostics import Diagnostic, Severity
from repro.partition.cost import CostParams, ExecutionProfile
from repro.partition.partition import Partition


@dataclass(eq=False, slots=True)
class LintContext:
    """Everything a rule may consult during one lint run.

    Attributes:
        program: The program under analysis (pre- or post-rewrite IR).
        partitions: Function name -> pre-rewrite partition, when the
            caller partitioned the program and wants the partition-level
            rules to run.  ``None`` lints the program alone.
        profile: The execution profile the partitioner used (drives the
            cost-consistency recount); ``None`` falls back to the
            paper's probabilistic estimate, matching the partitioner.
        params: Cost-model weights the partitioner used.
        scheme: ``"basic"`` / ``"advanced"`` when known; individual
            partitions also carry their scheme tag.
    """

    program: Program
    partitions: dict[str, Partition] | None = None
    profile: ExecutionProfile | None = None
    params: CostParams | None = None
    scheme: str | None = None
    _reaching: dict[str, ReachingDefinitions] = field(default_factory=dict)
    _liveness: dict[str, LivenessResult] = field(default_factory=dict)
    _dominators: dict[str, DominatorTree] = field(default_factory=dict)

    def reaching(self, func: Function) -> ReachingDefinitions:
        if func.name not in self._reaching:
            self._reaching[func.name] = ReachingDefinitions(func)
        return self._reaching[func.name]

    def liveness(self, func: Function) -> LivenessResult:
        if func.name not in self._liveness:
            self._liveness[func.name] = compute_liveness(func)
        return self._liveness[func.name]

    def dominators(self, func: Function) -> DominatorTree:
        if func.name not in self._dominators:
            self._dominators[func.name] = compute_dominators(func)
        return self._dominators[func.name]

    def partition_of(self, func: Function) -> Partition | None:
        if self.partitions is None:
            return None
        return self.partitions.get(func.name)


class LintRule:
    """Base class for analysis rules.

    Subclasses set the class attributes and implement :meth:`run`.

    Attributes:
        id: Stable kebab-case identifier used in diagnostics, the CLI's
            ``--rules`` filter, and the JSON output.
        description: One-line summary shown by documentation and tooling.
        default_severity: Severity for :meth:`report` when none is given.
        requires_partition: True when the rule needs pre-rewrite
            :class:`Partition` objects and is skipped without them.
    """

    id: str = ""
    description: str = ""
    default_severity: Severity = Severity.ERROR
    requires_partition: bool = False

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    # -- helpers for subclasses -----------------------------------------
    def report(
        self,
        message: str,
        *,
        severity: Severity | None = None,
        func: Function | None = None,
        block: str | None = None,
        instr=None,
        hint: str | None = None,
    ) -> Diagnostic:
        """Build a diagnostic attributed to this rule."""
        uid = None
        text = None
        if instr is not None:
            uid = instr.uid
            text = print_instruction(instr)
            if block is None and func is not None:
                block = func.block_of().get(instr.uid)
        return Diagnostic(
            rule=self.id,
            severity=self.default_severity if severity is None else severity,
            message=message,
            function=func.name if func is not None else None,
            block=block,
            uid=uid,
            instruction=text,
            hint=hint,
        )


#: All registered rules, in registration order, keyed by rule id.
_REGISTRY: dict[str, LintRule] = {}


def register(rule_cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule (as a singleton instance) to the
    registry.  Rule ids must be unique."""
    if not rule_cls.id:
        raise ReproError(f"lint rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise ReproError(f"duplicate lint rule id {rule_cls.id!r}")
    _REGISTRY[rule_cls.id] = rule_cls()
    return rule_cls


def all_rules() -> list[LintRule]:
    """Every registered rule, in registration order."""
    _ensure_loaded()
    return list(_REGISTRY.values())


def get_rule(rule_id: str) -> LintRule:
    _ensure_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise ReproError(
            f"unknown lint rule {rule_id!r}; available: {sorted(_REGISTRY)}"
        ) from None


def partition_rule_ids() -> list[str]:
    """Ids of the rules that need pre-rewrite :class:`Partition` objects."""
    return [rule.id for rule in all_rules() if rule.requires_partition]


def select_rules(rule_ids: Iterable[str] | None) -> list[LintRule]:
    """Resolve an optional id filter to rule instances (all when None)."""
    if rule_ids is None:
        return all_rules()
    return [get_rule(rule_id) for rule_id in rule_ids]


def _ensure_loaded() -> None:
    """Import the rule modules, populating the registry on first use."""
    from repro.lint import rules_absint  # noqa: F401
    from repro.lint import rules_calls  # noqa: F401
    from repro.lint import rules_copies  # noqa: F401
    from repro.lint import rules_dataflow  # noqa: F401
    from repro.lint import rules_partition  # noqa: F401
