"""Partition-level rules: legality and cost-model consistency.

These rules run only when the caller supplies pre-rewrite
:class:`~repro.partition.partition.Partition` objects (whose RDGs still
reference the live instructions): after
:func:`~repro.partition.rewrite.apply_partition` the RDG is invalidated
and only the program-level rules apply.
"""

from __future__ import annotations

from typing import Iterator

from repro.ir.function import Function
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintContext, LintRule, register
from repro.partition.partition import Partition, iter_partition_violations
from repro.rdg.graph import Node, Pin


def _node_diag_args(partition: Partition, node: Node | None) -> dict:
    """Location keyword arguments for a diagnostic about ``node``."""
    if node is None:
        return {}
    rdg = partition.rdg
    return {
        "block": rdg.block_of.get(node.uid),
        "instr": rdg.instr_of.get(node.uid),
    }


@register
class PartitionLegalityRule(LintRule):
    """The INT/FPa assignment satisfies the partitioning conditions of
    §5.1/§6 before rewrite — pins respected, every cross-partition edge
    mediated, copy/dup/back-copy membership consistent — and, for the
    basic scheme, that no component mixes FPa nodes with address, call
    or return nodes and no communication sets are present at all."""

    id = "partition-legality"
    description = (
        "the INT/FPa assignment satisfies the basic/advanced partitioning "
        "conditions before rewrite"
    )
    requires_partition = True

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for name, partition in sorted((ctx.partitions or {}).items()):
            func = ctx.program.functions.get(name)
            if func is None:
                yield self.report(
                    f"partition refers to unknown function {name!r}",
                )
                continue
            if partition.rdg.func is not func:
                yield self.report(
                    "partition RDG was built for a different function object; "
                    "the partition is stale",
                    func=func,
                    hint="rebuild the RDG and repartition after rewriting",
                )
                continue
            for message, node in iter_partition_violations(partition):
                yield self.report(
                    message,
                    func=func,
                    **_node_diag_args(partition, node),
                )
            if partition.scheme == "basic":
                yield from self._basic_scheme_conditions(func, partition)

    def _basic_scheme_conditions(
        self, func: Function, partition: Partition
    ) -> Iterator[Diagnostic]:
        from repro.partition.basic import components_ignoring_copies

        for label, nodes in (
            ("copy", partition.copies),
            ("duplicate", partition.dups),
            ("back-copy", partition.back_copies),
        ):
            for node in sorted(nodes, key=lambda n: (n.uid, n.part.value)):
                yield self.report(
                    f"basic-scheme partition carries a {label} site {node!r}",
                    func=func,
                    hint="the basic scheme may not add instructions (§5)",
                    **_node_diag_args(partition, node),
                )
        for comp in components_ignoring_copies(partition.rdg):
            pinned_int = [n for n in comp if partition.rdg.pin.get(n) is Pin.INT]
            offenders = [n for n in comp if n in partition.fp]
            if pinned_int and offenders:
                anchor = min(pinned_int, key=lambda n: (n.uid, n.part.value))
                offender = min(offenders, key=lambda n: (n.uid, n.part.value))
                yield self.report(
                    f"FPa node {offender!r} shares a component with "
                    f"INT-pinned node {anchor!r} (address/call/return work)",
                    func=func,
                    hint="under §5.1 a whole undirected component moves or "
                    "stays together; only copies may cross",
                    **_node_diag_args(partition, offender),
                )


@register
class CostConsistencyRule(LintRule):
    """Advanced-scheme Profit bookkeeping matches a recount from the
    profile: the stored S_copy/S_dupl/back-copy sets equal what the §6.2
    decision procedure derives for the final boundary, and every FPa
    component that pays for communication still prices out profitable."""

    id = "cost-consistency"
    description = (
        "S_copy/S_dupl/back-copy sets and component Profit agree with a "
        "recount from the profile"
    )
    requires_partition = True

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        from repro.partition.advanced import recount_communication

        for name, partition in sorted((ctx.partitions or {}).items()):
            if partition.scheme != "advanced":
                continue
            func = ctx.program.functions.get(name)
            if func is None or partition.rdg.func is not func:
                continue  # partition-legality already reported the staleness
            recount = recount_communication(
                partition, profile=ctx.profile, params=ctx.params
            )
            for label, stored, expected in (
                ("S_copy", partition.copies, recount.copies),
                ("S_dupl", partition.dups, recount.dups),
                ("back-copies", partition.back_copies, recount.back_copies),
            ):
                yield from self._compare_sets(
                    func, partition, label, stored, expected
                )
            for comp, profit, uses_communication in recount.component_profits:
                if uses_communication and profit < -1e-9:
                    anchor = min(comp, key=lambda n: (n.uid, n.part.value))
                    yield self.report(
                        f"FPa component around {anchor!r} recounts to "
                        f"Profit {profit:.2f} < 0",
                        severity=Severity.WARNING,
                        func=func,
                        hint="the cost model would evict this component; the "
                        "profile or cost caches have drifted since "
                        "partitioning (§6.1)",
                        **_node_diag_args(partition, anchor),
                    )

    def _compare_sets(
        self,
        func: Function,
        partition: Partition,
        label: str,
        stored: set[Node],
        expected: set[Node],
    ) -> Iterator[Diagnostic]:
        for node in sorted(stored - expected, key=lambda n: (n.uid, n.part.value)):
            yield self.report(
                f"{label} contains {node!r} but the recount does not need it",
                func=func,
                hint="stale communication site: the boundary moved after the "
                "copy/dup sets were computed",
                **_node_diag_args(partition, node),
            )
        for node in sorted(expected - stored, key=lambda n: (n.uid, n.part.value)):
            yield self.report(
                f"{label} is missing {node!r} required by the recount",
                func=func,
                hint="recompute the communication sets for the final "
                "boundary (§6.2)",
                **_node_diag_args(partition, node),
            )
