"""Diagnostic datatypes of the partition linter.

A :class:`Diagnostic` pins a finding to a rule, a severity, and the most
precise program location the rule could determine (function, block,
instruction uid plus its printed form).  Rules may attach a ``hint`` — a
one-line suggestion of the fix the paper's schemes would apply (insert a
``cp_from_comp``, drop a dead ``cp_to_comp``, ...).

A :class:`LintResult` aggregates the diagnostics of one lint run in a
deterministic order so text and JSON renderings are stable across runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; expected one of "
                f"{', '.join(s.name.lower() for s in cls)}"
            ) from None


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One finding of one lint rule.

    Attributes:
        rule: Rule identifier (``"address-slice-int"``, ...).
        severity: How bad the finding is.
        message: Human-readable description of the violation.
        function: Enclosing function name, when known.
        block: Enclosing basic-block label, when known.
        uid: Offending instruction uid within the function, when known.
        instruction: Printed form of the offending instruction.
        hint: Optional one-line fix suggestion.
    """

    rule: str
    severity: Severity
    message: str
    function: str | None = None
    block: str | None = None
    uid: int | None = None
    instruction: str | None = None
    hint: str | None = None

    @property
    def location(self) -> str:
        """``function:block:#uid`` with unknown pieces elided."""
        parts = [p for p in (self.function, self.block) if p is not None]
        if self.uid is not None:
            parts.append(f"#{self.uid}")
        return ":".join(parts) if parts else "<program>"

    def sort_key(self) -> tuple:
        return (
            self.function or "",
            self.block or "",
            -1 if self.uid is None else self.uid,
            self.rule,
            self.message,
            self.hint or "",
        )

    def to_dict(self) -> dict:
        """JSON-ready representation with a stable key order."""
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "function": self.function,
            "block": self.block,
            "uid": self.uid,
            "instruction": self.instruction,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(eq=False, slots=True)
class LintResult:
    """All diagnostics of one lint run.

    Attributes:
        diagnostics: Findings in deterministic order (see :meth:`add`).
        rules_run: Identifiers of every rule that executed, in order.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    rules_run: list[str] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, other: "LintResult") -> None:
        """Merge another result (diagnostics and rules run) into this one."""
        self.diagnostics.extend(other.diagnostics)
        for rule in other.rules_run:
            if rule not in self.rules_run:
                self.rules_run.append(rule)

    def finalize(self) -> "LintResult":
        """Sort diagnostics into the canonical stable order."""
        self.diagnostics.sort(key=Diagnostic.sort_key)
        return self

    # -- queries ---------------------------------------------------------
    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no diagnostic is an error."""
        return not self.errors

    def counts(self) -> dict[str, int]:
        out = {str(s): 0 for s in Severity}
        for d in self.diagnostics:
            out[str(d.severity)] += 1
        return out

    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def failed(self, fail_on: Severity = Severity.ERROR) -> bool:
        """True when any diagnostic is at least ``fail_on`` severe."""
        worst = self.max_severity()
        return worst is not None and worst >= fail_on

    def rules_with_findings(self) -> list[str]:
        return sorted({d.rule for d in self.diagnostics})

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:
        counts = self.counts()
        return (
            f"<LintResult {counts['error']} errors, {counts['warning']} warnings, "
            f"{counts['note']} notes from {len(self.rules_run)} rules>"
        )
