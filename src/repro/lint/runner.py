"""Entry point: run a set of lint rules over a program.

:func:`lint_program` is the one function the pipeline, the CLI and the
tests call.  It builds a :class:`~repro.lint.registry.LintContext`,
executes every selected rule (skipping partition-level rules when no
partitions were supplied), and returns a finalized
:class:`~repro.lint.diagnostics.LintResult`.
"""

from __future__ import annotations

from typing import Iterable

from repro.ir.program import Program
from repro.lint.diagnostics import LintResult
from repro.lint.registry import LintContext, select_rules
from repro.partition.cost import CostParams, ExecutionProfile
from repro.partition.partition import Partition


def lint_program(
    program: Program,
    *,
    partitions: dict[str, Partition] | None = None,
    profile: ExecutionProfile | None = None,
    params: CostParams | None = None,
    scheme: str | None = None,
    rules: Iterable[str] | None = None,
) -> LintResult:
    """Lint ``program``, optionally against its pre-rewrite partitions.

    Args:
        program: Program to analyse (pre- or post-rewrite IR).
        partitions: Function name -> pre-rewrite :class:`Partition`.
            When None, rules with ``requires_partition`` are skipped.
        profile: Execution profile used by the cost-consistency recount;
            None matches a partitioner run without a profile.
        params: Cost-model weights used by the recount.
        scheme: ``"basic"`` / ``"advanced"`` when known.
        rules: Optional iterable of rule ids to restrict the run.

    Returns:
        A finalized (deterministically ordered) :class:`LintResult`.
    """
    ctx = LintContext(
        program=program,
        partitions=partitions,
        profile=profile,
        params=params,
        scheme=scheme,
    )
    result = LintResult()
    for rule in select_rules(rules):
        if rule.requires_partition and not partitions:
            continue
        result.rules_run.append(rule.id)
        for diagnostic in rule.run(ctx):
            result.add(diagnostic)
    return result.finalize()
