"""Dataflow rules: register-file flow and address-slice residency.

Both rules reason about where a *value* physically lives — which
register file the producing instruction writes — and follow it along
def-use chains computed by reaching definitions, across basic blocks and
(through the calling convention) across functions.  This is strictly
stronger than the structural verifier, which only checks each
instruction's operand classes in isolation: a rewrite bug that renames a
definition into the FP file while a consumer keeps reading the INT name
leaves every instruction locally well-formed but breaks the def-use
chain, and only the flow view notices.
"""

from __future__ import annotations

from typing import Iterator

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode, OpKind
from repro.ir.program import Program
from repro.ir.registers import RegClass, ZERO
from repro.ir.verify import expected_def_class, expected_use_class
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintContext, LintRule, register


def produced_file(instr: Instruction, func: Function) -> RegClass | None:
    """Register file the value defined by ``instr`` materializes in, or
    None when the instruction defines nothing.

    This is the flow-side twin of
    :func:`repro.ir.verify.expected_def_class`: the file is a property
    of the *executing subsystem* (an ``.a`` opcode writes the FP file
    regardless of how its destination register is spelled), which is
    exactly what lets the linter catch consistently mis-classed IR.
    """
    if not instr.defs:
        return None
    return expected_def_class(instr, func)


def _callee_fp_params(instr: Instruction, program: Program) -> set[int] | None:
    """``fp_params`` of a call's callee, or None when unresolvable."""
    if instr.kind is not OpKind.CALL:
        return None
    callee = program.functions.get(instr.target)
    return callee.fp_params if callee is not None else None


@register
class SubsystemConsistencyRule(LintRule):
    """No FP-file value may reach an INT consumer except through
    ``cp_from_comp``, and vice versa (paper §4).

    For every def-use edge the file the producer writes must match the
    file the consumer's operand position reads from; call arguments and
    ``param`` definitions link the chains across functions.  Uses whose
    reaching-definition set is empty are reported too: an FP-class
    register with no definition is the signature of a rewrite that
    renamed a def into the shadow file and lost a reader.
    """

    id = "subsystem-consistency"
    description = (
        "FP-file values reach INT consumers only via cp_from_comp (and "
        "INT values reach FPa only via cp_to_comp), proven on def-use "
        "chains"
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for func in ctx.program.functions.values():
            yield from self._run_function(ctx, func)

    def _run_function(self, ctx: LintContext, func: Function) -> Iterator[Diagnostic]:
        reaching = ctx.reaching(func)
        instr_of = {i.uid: i for i in func.instructions()}
        for blk in func.blocks:
            for instr in blk.instructions:
                for pos, reg in enumerate(instr.uses):
                    if reg == ZERO:
                        continue
                    sites = reaching.reaching_defs_of_use(instr, pos)
                    if not sites:
                        severity = (
                            Severity.ERROR
                            if reg.rclass is RegClass.FP
                            else Severity.WARNING
                        )
                        yield self.report(
                            f"{reg} is read but no definition reaches this use",
                            severity=severity,
                            func=func,
                            block=blk.label,
                            instr=instr,
                            hint=(
                                "a partition rewrite renamed the defining "
                                "instruction into the other register file, or "
                                "the value is used before initialization"
                            ),
                        )
                        continue
                    required = expected_use_class(
                        instr, pos, _callee_fp_params(instr, ctx.program)
                    )
                    if required is None:
                        continue
                    for site in sites:
                        producer = instr_of[site.uid]
                        produced = produced_file(producer, func)
                        if produced is None or produced is required:
                            continue
                        fix = (
                            "cp_from_comp"
                            if produced is RegClass.FP
                            else "cp_to_comp"
                        )
                        yield self.report(
                            f"{reg} is produced in the {produced.name} file by "
                            f"{producer.op} #{site.uid} but consumed from the "
                            f"{required.name} file",
                            func=func,
                            block=blk.label,
                            instr=instr,
                            hint=f"route the value through {fix} (§4)",
                        )


#: Instruction kinds whose definition enters the INT file fresh — their
#: inputs live in another domain (memory, the caller's frame), so the
#: address-slice walk stops there.
_SLICE_BARRIERS = (OpKind.LOAD, OpKind.CALL, OpKind.PARAM)


@register
class AddressSliceIntRule(LintRule):
    """Every value transitively feeding a load/store address executes in
    the INT subsystem (paper §4: the LdSt slice never moves to FPa).

    The rule follows each address operand's reaching definitions
    backwards across blocks, through the whole arithmetic slice, and
    flags any producer that writes the FP file.  ``cp_from_comp`` is the
    one legal FPa→INT crossing and stops the walk; load values, call
    results and formal parameters enter the INT file fresh and stop it
    too.
    """

    id = "address-slice-int"
    description = (
        "registers reaching load/store address operands are INT-resident "
        "along every def-use path"
    )

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for func in ctx.program.functions.values():
            yield from self._run_function(ctx, func)

    def _run_function(self, ctx: LintContext, func: Function) -> Iterator[Diagnostic]:
        reaching = ctx.reaching(func)
        instr_of = {i.uid: i for i in func.instructions()}

        # Least fixed point of "an FP-file producer reaches this def
        # without crossing cp_from_comp": start everything clean and
        # propagate taint along def-use edges until stable.
        taint: dict[int, int] = {}  # def uid -> uid of the FPa producer
        changed = True
        while changed:
            changed = False
            for instr in instr_of.values():
                if not instr.defs or instr.uid in taint:
                    continue
                if produced_file(instr, func) is RegClass.FP:
                    taint[instr.uid] = instr.uid
                    changed = True
                    continue
                if instr.op is Opcode.CP_FROM_COMP or instr.kind in _SLICE_BARRIERS:
                    continue  # fresh INT value: inputs do not taint it
                for pos, reg in enumerate(instr.uses):
                    if reg == ZERO:
                        continue
                    for site in reaching.reaching_defs_of_use(instr, pos):
                        if site.uid in taint:
                            taint[instr.uid] = taint[site.uid]
                            changed = True
                            break
                    if instr.uid in taint:
                        break

        for blk in func.blocks:
            for instr in blk.instructions:
                if not instr.is_memory:
                    continue
                pos = 0 if instr.kind is OpKind.LOAD else 1
                reg = instr.uses[pos]
                if reg == ZERO:
                    continue
                for site in reaching.reaching_defs_of_use(instr, pos):
                    if site.uid not in taint:
                        continue
                    producer = instr_of[taint[site.uid]]
                    via = (
                        ""
                        if producer.uid == site.uid
                        else f" via {instr_of[site.uid].op} #{site.uid}"
                    )
                    yield self.report(
                        f"address {reg} of {instr.op} depends on the FP-file "
                        f"value of {producer.op} #{producer.uid}{via}",
                        func=func,
                        block=blk.label,
                        instr=instr,
                        hint=(
                            "address slices must stay in INT; cross back with "
                            "cp_from_comp or keep the slice unpartitioned (§4)"
                        ),
                    )
