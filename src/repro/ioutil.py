"""Shared filesystem primitives for the on-disk stores.

Every durable artifact this package writes — cached cell results,
packed traces, simulation checkpoints, heartbeat files — uses the same
publish discipline: write the full contents to a unique temporary file
in the destination directory, fsync, then :func:`os.replace`.  The
rename is atomic on POSIX, so a reader never observes a torn file and
a crashed writer leaves at worst an ignored ``*.tmp-*`` orphan.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable

#: Minimum age (seconds) before an orphaned ``*.tmp-*`` file is reaped.
#: Young tmp files may belong to a live concurrent writer about to
#: rename them; an hour-old one is debris from a killed process.
DEFAULT_TMP_MAX_AGE = 3600.0


def atomic_write_bytes(
    path: str | os.PathLike,
    data: bytes,
    *,
    fsync: bool = True,
    before_publish: Callable[[], None] | None = None,
) -> None:
    """Atomically publish ``data`` at ``path`` (tmp + ``os.replace``).

    Creates parent directories as needed.  ``before_publish`` runs after
    the temporary file is durably written but *before* the rename — the
    chaos suite hooks a fault point there to model a writer killed
    mid-publish (the reader must then see the previous contents, or
    nothing, never a torn file).  Any failure removes the temporary
    file and re-raises.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=target.parent, prefix=target.name + ".tmp-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        if before_publish is not None:
            before_publish()
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


#: Roots already swept this process — stores are re-opened freely (e.g.
#: ``TraceStore.from_env`` per load), and one sweep per process is enough.
_REAPED_ROOTS: set[str] = set()
_REAPED_LOCK = threading.Lock()


def _after_fork_reinit() -> None:
    # forked pool workers (possibly from a multi-threaded serve daemon)
    # must not inherit a lock captured mid-acquisition
    global _REAPED_LOCK
    _REAPED_LOCK = threading.Lock()


os.register_at_fork(after_in_child=_after_fork_reinit)


def reap_orphan_tmp_files(
    root: str | os.PathLike,
    *,
    max_age: float = DEFAULT_TMP_MAX_AGE,
    now: float | None = None,
    once: bool = True,
) -> int:
    """Delete stale ``*.tmp-*`` orphans under ``root``; returns the count.

    :func:`atomic_write_bytes` removes its temporary file on every
    failure it can observe, but a writer killed outright (SIGKILL, power
    loss, an ``os._exit`` crash fault) leaves the orphan behind.  The
    stores call this on open so long-lived deployments do not accumulate
    debris.  Only files older than ``max_age`` are touched: a younger
    tmp file may belong to a live writer in another process whose
    ``os.replace`` has simply not happened yet.  With ``once`` (the
    default) each root is swept at most once per process, so stores that
    are re-opened per operation stay cheap.  Errors are swallowed —
    reaping is hygiene, never a correctness dependency.
    """
    base = Path(root)
    if once:
        marker = os.fspath(root)
        with _REAPED_LOCK:
            if marker in _REAPED_ROOTS:
                return 0
            _REAPED_ROOTS.add(marker)
    if not base.is_dir():
        return 0
    cutoff = (time.time() if now is None else now) - max_age
    reaped = 0
    try:
        candidates = list(base.rglob("*.tmp-*"))
    except OSError:
        return 0
    for path in candidates:
        try:
            if not path.is_file() or path.stat().st_mtime > cutoff:
                continue
            path.unlink()
            reaped += 1
        except OSError:
            continue
    return reaped
