"""Shared filesystem primitives for the on-disk stores.

Every durable artifact this package writes — cached cell results,
packed traces, simulation checkpoints, heartbeat files — uses the same
publish discipline: write the full contents to a unique temporary file
in the destination directory, fsync, then :func:`os.replace`.  The
rename is atomic on POSIX, so a reader never observes a torn file and
a crashed writer leaves at worst an ignored ``*.tmp-*`` orphan.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable


def atomic_write_bytes(
    path: str | os.PathLike,
    data: bytes,
    *,
    fsync: bool = True,
    before_publish: Callable[[], None] | None = None,
) -> None:
    """Atomically publish ``data`` at ``path`` (tmp + ``os.replace``).

    Creates parent directories as needed.  ``before_publish`` runs after
    the temporary file is durably written but *before* the rename — the
    chaos suite hooks a fault point there to model a writer killed
    mid-publish (the reader must then see the previous contents, or
    nothing, never a torn file).  Any failure removes the temporary
    file and re-raises.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=target.parent, prefix=target.name + ".tmp-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        if before_publish is not None:
            before_publish()
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
