"""Basic blocks and functions.

A :class:`Function` is an ordered list of labelled :class:`BasicBlock`\\ s.
Control falls through from a block to the next one in order unless the
block ends in an unconditional jump or return; a conditional branch at the
end of a block has the branch target and the fall-through successor.
Only the *last* instruction of a block may be a control instruction
(``call`` is not a control instruction here: it returns inline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.ir.instructions import Instruction
from repro.ir.opcodes import OpKind
from repro.ir.registers import Reg, RegClass


@dataclass(eq=False, slots=True)
class BasicBlock:
    """A straight-line sequence of instructions with a unique label."""

    label: str
    instructions: list[Instruction] = field(default_factory=list)

    @property
    def terminator(self) -> Instruction | None:
        """The trailing control instruction, if any."""
        if self.instructions and self.instructions[-1].is_control:
            return self.instructions[-1]
        return None

    @property
    def body(self) -> list[Instruction]:
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.instructions[:-1]
        return self.instructions[:]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label}: {len(self.instructions)} instrs>"


@dataclass(eq=False, slots=True)
class Function:
    """A function: ordered basic blocks plus parameter metadata.

    Attributes:
        name: Function name, unique within a program.
        n_params: Number of formal parameters; the entry block must begin
            with exactly this many ``param`` instructions.
        blocks: Ordered blocks; ``blocks[0]`` is the entry.
        returns_value: Whether ``ret`` instructions carry a value.
    """

    name: str
    n_params: int = 0
    blocks: list[BasicBlock] = field(default_factory=list)
    returns_value: bool = False
    frame_size: int = 0  # bytes of stack frame (spill slots), set by regalloc
    #: Parameter indices received in FP registers — produced by the
    #: interprocedural extension (paper §6.6 future work); empty under
    #: the standard integer calling convention.
    fp_params: set[int] = field(default_factory=set)
    _next_uid: int = 0
    _next_vreg: int = 0

    def block(self, label: str) -> BasicBlock:
        """Look up a block by label; raises KeyError if absent."""
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise KeyError(f"no block {label!r} in function {self.name}")

    def block_index(self, label: str) -> int:
        for i, blk in enumerate(self.blocks):
            if blk.label == label:
                return i
        raise KeyError(f"no block {label!r} in function {self.name}")

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def new_block(self, label: str) -> BasicBlock:
        """Append and return a fresh empty block."""
        if any(b.label == label for b in self.blocks):
            raise ValueError(f"duplicate block label {label!r} in {self.name}")
        blk = BasicBlock(label)
        self.blocks.append(blk)
        return blk

    def new_vreg(self, rclass: RegClass = RegClass.INT, prefix: str | None = None) -> Reg:
        """Allocate a fresh virtual register of the given class."""
        index = self._next_vreg
        self._next_vreg += 1
        if prefix is None:
            prefix = "vf" if rclass is RegClass.FP else "v"
        return Reg(f"{prefix}{index}", rclass, virtual=True)

    def attach(self, instr: Instruction) -> Instruction:
        """Assign a uid to ``instr``, registering it with this function."""
        if instr.uid == -1:
            instr.uid = self._next_uid
            self._next_uid += 1
        return instr

    def renumber(self) -> None:
        """Re-assign dense uids in layout order (after heavy rewriting)."""
        self._next_uid = 0
        for blk in self.blocks:
            for instr in blk.instructions:
                instr.uid = self._next_uid
                self._next_uid += 1

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in layout order."""
        for blk in self.blocks:
            yield from blk.instructions

    def instruction_count(self) -> int:
        return sum(len(blk) for blk in self.blocks)

    def params(self) -> list[Instruction]:
        """The ``param`` pseudo-instructions (entry block, any position),
        ordered by parameter index."""
        out = [i for i in self.entry.instructions if i.kind is OpKind.PARAM]
        out.sort(key=lambda i: i.imm)
        return out

    def block_of(self) -> dict[int, str]:
        """Map instruction uid -> containing block label."""
        mapping: dict[int, str] = {}
        for blk in self.blocks:
            for instr in blk.instructions:
                mapping[instr.uid] = blk.label
        return mapping

    def __repr__(self) -> str:
        return f"<Function {self.name}: {len(self.blocks)} blocks, {self.instruction_count()} instrs>"
