"""Whole-program container: functions plus global data.

Globals live in a flat byte-addressed data segment.  Each
:class:`GlobalVar` is assigned an address when the program is laid out
(:meth:`Program.layout`); ``li`` instructions with a string immediate
resolve to that address at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function

#: Base address of the global data segment (past a null guard page).
DATA_BASE = 0x1000
#: Base address of the stack-like bump region used for guest "allocations".
HEAP_BASE = 0x100000


@dataclass(eq=False, slots=True)
class GlobalVar:
    """A global variable or array in the data segment.

    Attributes:
        name: Symbol name.
        size_bytes: Total size in bytes (arrays: element count * 4).
        init: Optional initial word values (zero-filled otherwise).
        address: Assigned by :meth:`Program.layout`; -1 before layout.
    """

    name: str
    size_bytes: int
    init: list[int] | None = None
    address: int = -1


@dataclass(eq=False, slots=True)
class Program:
    """A complete program: named functions and global variables."""

    functions: dict[str, Function] = field(default_factory=dict)
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    entry: str = "main"

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def add_global(self, name: str, size_bytes: int, init: list[int] | None = None) -> GlobalVar:
        if name in self.globals:
            raise ValueError(f"duplicate global {name!r}")
        var = GlobalVar(name, size_bytes, init)
        self.globals[name] = var
        return var

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function {name!r} in program") from None

    def layout(self) -> None:
        """Assign word-aligned addresses to all globals."""
        addr = DATA_BASE
        for var in self.globals.values():
            var.address = addr
            addr += (var.size_bytes + 3) & ~3

    def global_address(self, name: str) -> int:
        var = self.globals[name]
        if var.address < 0:
            self.layout()
        return var.address

    def instruction_count(self) -> int:
        """Total static instruction count across all functions."""
        return sum(f.instruction_count() for f in self.functions.values())

    def __repr__(self) -> str:
        return (
            f"<Program entry={self.entry!r}, {len(self.functions)} functions, "
            f"{self.instruction_count()} instrs, {len(self.globals)} globals>"
        )
