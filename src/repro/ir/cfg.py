"""Control-flow graph utilities over :class:`~repro.ir.function.Function`.

The CFG is computed on demand from block layout: a block's successors are
its branch/jump targets plus the fall-through block when the terminator
does not unconditionally leave.
"""

from __future__ import annotations

from repro.ir.function import BasicBlock, Function
from repro.ir.opcodes import OpKind


def successors(func: Function, block: BasicBlock) -> list[str]:
    """Successor block labels of ``block`` in layout order semantics."""
    term = block.terminator
    index = func.block_index(block.label)
    fallthrough = func.blocks[index + 1].label if index + 1 < len(func.blocks) else None
    if term is None:
        return [fallthrough] if fallthrough is not None else []
    if term.kind is OpKind.JUMP:
        return [term.target] if term.target is not None else []
    if term.kind is OpKind.RET:
        return []
    # conditional branch: taken target + fall-through
    succ = []
    if term.target is not None:
        succ.append(term.target)
    if fallthrough is not None and fallthrough not in succ:
        succ.append(fallthrough)
    return succ


def predecessors(func: Function) -> dict[str, list[str]]:
    """Map block label -> predecessor labels, for all blocks."""
    preds: dict[str, list[str]] = {blk.label: [] for blk in func.blocks}
    for blk in func.blocks:
        for succ in successors(func, blk):
            if succ not in preds:
                raise KeyError(f"branch to unknown block {succ!r} in {func.name}")
            preds[succ].append(blk.label)
    return preds


def successor_map(func: Function) -> dict[str, list[str]]:
    """Map block label -> successor labels, for all blocks."""
    return {blk.label: successors(func, blk) for blk in func.blocks}


def block_order(func: Function) -> dict[str, int]:
    """Map block label -> layout index."""
    return {blk.label: i for i, blk in enumerate(func.blocks)}


def reverse_postorder(func: Function) -> list[str]:
    """Block labels in reverse postorder from the entry (unreachable
    blocks are appended at the end in layout order so analyses still
    cover them)."""
    succ = successor_map(func)
    visited: set[str] = set()
    postorder: list[str] = []

    def dfs(label: str) -> None:
        stack = [(label, iter(succ[label]))]
        visited.add(label)
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, iter(succ[nxt])))
                    advanced = True
                    break
            if not advanced:
                postorder.append(node)
                stack.pop()

    if func.blocks:
        dfs(func.entry.label)
    order = list(reversed(postorder))
    for blk in func.blocks:
        if blk.label not in visited:
            order.append(blk.label)
    return order


def reachable_blocks(func: Function) -> set[str]:
    """Labels of blocks reachable from the entry."""
    succ = successor_map(func)
    seen: set[str] = set()
    work = [func.entry.label] if func.blocks else []
    while work:
        label = work.pop()
        if label in seen:
            continue
        seen.add(label)
        work.extend(succ[label])
    return seen
