"""MIPS-like intermediate representation.

The IR models a load/store RISC machine close to the SimpleScalar/MIPS
target used by the paper, extended with the 22 *FPa* opcodes that let the
augmented floating-point subsystem execute simple integer operations, plus
the two inter-partition copy instructions (``cp_to_comp`` /
``cp_from_comp``).

Public surface:

* :class:`Reg`, :class:`RegClass` — register model.
* :class:`Opcode`, :data:`OPCODES`, :class:`OpKind` — opcode metadata,
  including each integer opcode's FPa twin.
* :class:`Instruction`, :class:`BasicBlock`, :class:`Function`,
  :class:`Program` — code containers.
* :class:`IRBuilder` — convenience construction API.
* :func:`parse_program`, :func:`print_program` — textual round-trip.
* :func:`verify_function`, :func:`verify_program` — structural checks.
"""

from repro.ir.registers import Reg, RegClass, ZERO, int_reg, fp_reg, virtual_reg
from repro.ir.opcodes import (
    Opcode,
    OpKind,
    OPCODES,
    OpInfo,
    fpa_twin,
    int_twin,
    FPA_OPCODES,
)
from repro.ir.instructions import Instruction
from repro.ir.function import BasicBlock, Function
from repro.ir.program import Program, GlobalVar
from repro.ir.cfg import successors, predecessors, block_order, reverse_postorder
from repro.ir.builder import IRBuilder
from repro.ir.printer import print_instruction, print_function, print_program
from repro.ir.parser import parse_program, parse_function
from repro.ir.verify import verify_function, verify_program

__all__ = [
    "Reg",
    "RegClass",
    "ZERO",
    "int_reg",
    "fp_reg",
    "virtual_reg",
    "Opcode",
    "OpKind",
    "OPCODES",
    "OpInfo",
    "fpa_twin",
    "int_twin",
    "FPA_OPCODES",
    "Instruction",
    "BasicBlock",
    "Function",
    "Program",
    "GlobalVar",
    "successors",
    "predecessors",
    "block_order",
    "reverse_postorder",
    "IRBuilder",
    "print_instruction",
    "print_function",
    "print_program",
    "parse_program",
    "parse_function",
    "verify_function",
    "verify_program",
]
