"""Register model.

Registers come in two architectural classes, mirroring the partitioned
register files of the paper's machine:

* ``RegClass.INT`` — the integer register file (``$0``..``$31``).
* ``RegClass.FP`` — the floating-point register file (``$f0``..``$f31``),
  which in the augmented (FPa) microarchitecture also holds integer values
  operated on by the ``.a`` opcodes.

Before register allocation the compiler works with *virtual* registers
(``v0``, ``v1``, ... and ``vf0``, ``vf1``, ... once a class is known).
A virtual register's class is decided by code partitioning: values produced
by FPa-partition instructions become FP-class, everything else INT-class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RegClass(enum.Enum):
    """Architectural register file a register belongs to."""

    INT = "int"
    FP = "fp"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegClass.{self.name}"


@dataclass(frozen=True, slots=True)
class Reg:
    """A register operand.

    Attributes:
        name: Unique name within a function (``v7``, ``$2``, ``$f4``...).
        rclass: Register file this register lives in.
        virtual: True for compiler temporaries, False for architectural
            registers produced by register allocation (or special registers
            such as ``$zero``).
    """

    name: str
    rclass: RegClass = RegClass.INT
    virtual: bool = True

    def __str__(self) -> str:
        return self.name

    def with_class(self, rclass: RegClass) -> "Reg":
        """Return a copy of this register re-homed to ``rclass``.

        Virtual registers are renamed with a class-specific prefix so that
        the INT and FP versions of the same partitioned value never
        collide (``v3`` -> ``vf3`` when moved to the FP file).
        """
        if rclass is self.rclass:
            return self
        if not self.virtual:
            raise ValueError(f"cannot re-class physical register {self.name}")
        if rclass is RegClass.FP:
            new_name = "vf" + self.name.removeprefix("v")
        else:
            new_name = "v" + self.name.removeprefix("vf")
        return Reg(new_name, rclass, True)


#: The hard-wired zero register of the integer file.
ZERO = Reg("$zero", RegClass.INT, virtual=False)


def int_reg(index: int) -> Reg:
    """Architectural integer register ``$<index>`` (0..31)."""
    if not 0 <= index < 32:
        raise ValueError(f"integer register index out of range: {index}")
    if index == 0:
        return ZERO
    return Reg(f"${index}", RegClass.INT, virtual=False)


def fp_reg(index: int) -> Reg:
    """Architectural floating-point register ``$f<index>`` (0..31)."""
    if not 0 <= index < 32:
        raise ValueError(f"fp register index out of range: {index}")
    return Reg(f"$f{index}", RegClass.FP, virtual=False)


def virtual_reg(index: int, rclass: RegClass = RegClass.INT) -> Reg:
    """Virtual register ``v<index>`` (INT class) or ``vf<index>`` (FP)."""
    prefix = "vf" if rclass is RegClass.FP else "v"
    return Reg(f"{prefix}{index}", rclass, virtual=True)


def parse_reg(text: str) -> Reg:
    """Parse a register name back into a :class:`Reg`.

    Accepts the formats produced by :func:`int_reg`, :func:`fp_reg`,
    :func:`virtual_reg` and the special name ``$zero``.
    """
    if text == "$zero" or text == "$0":
        return ZERO
    if text.startswith("$f"):
        return Reg(text, RegClass.FP, virtual=False)
    if text.startswith("$"):
        return Reg(text, RegClass.INT, virtual=False)
    if text.startswith("vf"):
        return Reg(text, RegClass.FP, virtual=True)
    if text.startswith("v"):
        return Reg(text, RegClass.INT, virtual=True)
    raise ValueError(f"not a register name: {text!r}")
