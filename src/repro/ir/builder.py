"""Fluent construction API for IR functions.

The builder keeps a current insertion block and allocates virtual
registers on demand.  It is the target of the MiniC code generator and is
also convenient for hand-writing IR in tests and examples::

    fn = Function("add3", n_params=1, returns_value=True)
    b = IRBuilder(fn)
    entry = b.new_block("entry")
    b.set_block(entry)
    x = b.param(0)
    r = b.emit_alu(Opcode.ADDIU, x, imm=3)
    b.ret(r)
"""

from __future__ import annotations

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Immediate, Instruction
from repro.ir.opcodes import Opcode, OpKind, OPCODES
from repro.ir.registers import Reg, RegClass


class IRBuilder:
    """Appends instructions to a function, block by block."""

    def __init__(self, func: Function):
        self.func = func
        self._block: BasicBlock | None = None

    # ------------------------------------------------------------------
    # block management
    # ------------------------------------------------------------------
    def new_block(self, label: str) -> BasicBlock:
        """Create a fresh block (does not change the insertion point)."""
        return self.func.new_block(label)

    def set_block(self, block: BasicBlock | str) -> BasicBlock:
        """Move the insertion point to ``block``."""
        if isinstance(block, str):
            block = self.func.block(block)
        self._block = block
        return block

    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise ValueError("no insertion block set")
        return self._block

    def new_vreg(self, rclass: RegClass = RegClass.INT) -> Reg:
        return self.func.new_vreg(rclass)

    # ------------------------------------------------------------------
    # raw emission
    # ------------------------------------------------------------------
    def emit(self, instr: Instruction) -> Instruction:
        """Append ``instr`` to the current block and register it."""
        if self.block.terminator is not None:
            raise ValueError(
                f"block {self.block.label!r} already terminated; cannot append {instr.op}"
            )
        self.func.attach(instr)
        self.block.instructions.append(instr)
        return instr

    # ------------------------------------------------------------------
    # typed helpers
    # ------------------------------------------------------------------
    def param(self, index: int) -> Reg:
        """Emit a formal-parameter definition and return its register."""
        dest = self.new_vreg()
        self.emit(Instruction(Opcode.PARAM, defs=[dest], imm=index))
        return dest

    def li(self, value: int) -> Reg:
        """Materialize an integer constant."""
        dest = self.new_vreg()
        self.emit(Instruction(Opcode.LI, defs=[dest], imm=value))
        return dest

    def li_float(self, value: float) -> Reg:
        """Materialize a float constant in an FP register."""
        dest = self.new_vreg(RegClass.FP)
        self.emit(Instruction(Opcode.LI_S, defs=[dest], imm=value))
        return dest

    def la(self, symbol: str) -> Reg:
        """Materialize the address of a global (``li`` with a symbol)."""
        dest = self.new_vreg()
        self.emit(Instruction(Opcode.LI, defs=[dest], imm=symbol))
        return dest

    def move(self, src: Reg) -> Reg:
        dest = self.new_vreg(src.rclass)
        op = Opcode.MOV_S if src.rclass is RegClass.FP else Opcode.MOVE
        self.emit(Instruction(op, defs=[dest], uses=[src]))
        return dest

    def emit_alu(self, op: Opcode, *srcs: Reg, imm: Immediate = None, dest: Reg | None = None) -> Reg:
        """Emit an ALU/mul/div instruction, allocating the destination.

        The destination register class follows the opcode's subsystem.
        """
        info = OPCODES[op]
        if info.kind not in (OpKind.ALU, OpKind.MUL, OpKind.DIV):
            raise ValueError(f"emit_alu got non-ALU opcode {op}")
        if len(srcs) != info.n_uses:
            raise ValueError(f"{op} expects {info.n_uses} sources, got {len(srcs)}")
        if info.has_imm and imm is None:
            raise ValueError(f"{op} requires an immediate")
        if dest is None:
            rclass = RegClass.FP if info.fp_subsystem else RegClass.INT
            dest = self.new_vreg(rclass)
        self.emit(Instruction(op, defs=[dest], uses=list(srcs), imm=imm))
        return dest

    def load(self, base: Reg, offset: int = 0, op: Opcode = Opcode.LW) -> Reg:
        info = OPCODES[op]
        if info.kind is not OpKind.LOAD:
            raise ValueError(f"load got non-load opcode {op}")
        rclass = RegClass.FP if op is Opcode.LS else RegClass.INT
        dest = self.new_vreg(rclass)
        self.emit(Instruction(op, defs=[dest], uses=[base], imm=offset))
        return dest

    def store(self, value: Reg, base: Reg, offset: int = 0, op: Opcode = Opcode.SW) -> Instruction:
        info = OPCODES[op]
        if info.kind is not OpKind.STORE:
            raise ValueError(f"store got non-store opcode {op}")
        return self.emit(Instruction(op, uses=[value, base], imm=offset))

    def branch(self, op: Opcode, *srcs: Reg, target: str) -> Instruction:
        info = OPCODES[op]
        if info.kind is not OpKind.BRANCH:
            raise ValueError(f"branch got non-branch opcode {op}")
        if len(srcs) != info.n_uses:
            raise ValueError(f"{op} expects {info.n_uses} sources, got {len(srcs)}")
        return self.emit(Instruction(op, uses=list(srcs), target=target))

    def jump(self, target: str) -> Instruction:
        return self.emit(Instruction(Opcode.J, target=target))

    def call(self, callee: str, args: list[Reg], returns_value: bool = False) -> Reg | None:
        """Emit a call; returns the result register if ``returns_value``."""
        defs: list[Reg] = []
        result: Reg | None = None
        if returns_value:
            result = self.new_vreg()
            defs = [result]
        self.emit(Instruction(Opcode.CALL, defs=defs, uses=list(args), target=callee))
        return result

    def ret(self, value: Reg | None = None) -> Instruction:
        uses = [value] if value is not None else []
        return self.emit(Instruction(Opcode.RET, uses=uses))
