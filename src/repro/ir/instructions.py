"""The :class:`Instruction` container.

Operand conventions (fixed positions, checked by the verifier):

* ALU reg-reg: ``defs=[d], uses=[s1, s2]``.
* ALU immediate: ``defs=[d], uses=[s1], imm=k``.
* ``li``/``lui``: ``defs=[d], imm=k`` where ``k`` may be an ``int``, a
  ``float`` (for ``li.s``) or a ``str`` naming a global whose address is
  materialized (the "load address" idiom).
* Loads: ``defs=[value], uses=[base], imm=offset``.
* Stores: ``uses=[value, base], imm=offset`` (value first).
* Branches: ``uses=[s1(, s2)], target=label``.
* ``call``: ``target=function name, uses=args, defs=[] or [retval]``.
* ``ret``: ``uses=[] or [value]``.
* ``param``: ``defs=[formal], imm=parameter index`` — the dummy
  formal-parameter definition node of the paper's §6.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.opcodes import Opcode, OpKind, OPCODES, OpInfo
from repro.ir.registers import Reg

Immediate = int | float | str | None


@dataclass(eq=False, slots=True)
class Instruction:
    """One IR instruction.

    Instructions compare by identity (``eq=False``): the same opcode and
    operands at two program points are distinct RDG nodes.

    Attributes:
        op: The opcode.
        defs: Destination registers (0 or 1 except ``call``).
        uses: Source registers, in the positional order described in the
            module docstring.
        imm: Immediate operand (int/float/global-symbol) when applicable.
        target: Branch label or callee name when applicable.
        uid: Unique id within the enclosing function, assigned when the
            instruction is attached to a block; -1 before that.
    """

    op: Opcode
    defs: list[Reg] = field(default_factory=list)
    uses: list[Reg] = field(default_factory=list)
    imm: Immediate = None
    target: str | None = None
    uid: int = -1

    @property
    def info(self) -> OpInfo:
        """Static metadata for this instruction's opcode."""
        return OPCODES[self.op]

    @property
    def kind(self) -> OpKind:
        return OPCODES[self.op].kind

    @property
    def is_branch(self) -> bool:
        return self.kind is OpKind.BRANCH

    @property
    def is_control(self) -> bool:
        """True for instructions that end or redirect control flow."""
        return self.kind in (OpKind.BRANCH, OpKind.JUMP, OpKind.RET)

    @property
    def is_memory(self) -> bool:
        return self.kind in (OpKind.LOAD, OpKind.STORE)

    @property
    def def_reg(self) -> Reg | None:
        """The single destination register, or None."""
        return self.defs[0] if self.defs else None

    @property
    def store_value(self) -> Reg:
        """The value operand of a store (first use)."""
        if self.kind is not OpKind.STORE:
            raise ValueError(f"{self.op} is not a store")
        return self.uses[0]

    @property
    def address_base(self) -> Reg:
        """The base-address operand of a load or store."""
        if self.kind is OpKind.LOAD:
            return self.uses[0]
        if self.kind is OpKind.STORE:
            return self.uses[1]
        raise ValueError(f"{self.op} is not a memory instruction")

    def copy(self) -> "Instruction":
        """A detached deep-enough copy (fresh operand lists, uid reset)."""
        return Instruction(
            op=self.op,
            defs=list(self.defs),
            uses=list(self.uses),
            imm=self.imm,
            target=self.target,
            uid=-1,
        )

    def replace_use(self, old: Reg, new: Reg) -> int:
        """Replace every occurrence of ``old`` among the uses; returns the
        number of replacements."""
        count = 0
        for i, reg in enumerate(self.uses):
            if reg == old:
                self.uses[i] = new
                count += 1
        return count

    def __repr__(self) -> str:
        from repro.ir.printer import print_instruction

        return f"<{print_instruction(self)} #{self.uid}>"
