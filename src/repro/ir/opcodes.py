"""Opcode definitions and metadata.

The opcode set is a MIPS-like RISC ISA (the paper targets an extended
SimpleScalar/MIPS ISA) with three groups:

1. **Base integer ISA** — ALU ops, shifts, multiply/divide, loads, stores,
   branches, jumps and the call/ret/param pseudo-ops used by the IR's
   explicit-operand calling model.
2. **Base floating-point ISA** — single-precision arithmetic, moves,
   conversions and FP compare-branches.
3. **FPa extension** — exactly 22 new opcodes (the paper's count) that let
   the augmented floating-point subsystem execute simple integer
   operations on FP registers, plus the two inter-partition copy
   instructions ``cp_to_comp`` / ``cp_from_comp`` (which existing ISAs
   already provide, e.g. MIPS ``mtc1``/``mfc1``, so they are not counted
   among the 22).

Integer multiply and divide deliberately have **no** FPa twin: the paper
excludes them to keep the hardware cost low, so any slice containing them
is pinned to the INT subsystem.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.Enum):
    """All opcodes known to the IR. Values are the assembly mnemonics."""

    # --- integer ALU, register-register ---
    ADDU = "addu"
    SUBU = "subu"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLT = "slt"
    SLTU = "sltu"
    SLLV = "sllv"
    SRLV = "srlv"
    SRAV = "srav"
    # --- integer ALU, immediate ---
    ADDIU = "addiu"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    SLTIU = "sltiu"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    LUI = "lui"
    LI = "li"
    MOVE = "move"
    # --- integer multiply / divide (INT subsystem only) ---
    MULT = "mult"
    DIV = "div"
    REM = "rem"
    # --- memory ---
    LW = "lw"
    LB = "lb"
    LBU = "lbu"
    SW = "sw"
    SB = "sb"
    LS = "l.s"  # load word into an FP register (float or offloaded int)
    SS = "s.s"  # store word from an FP register
    # --- control ---
    BEQ = "beq"
    BNE = "bne"
    BLEZ = "blez"
    BGTZ = "bgtz"
    BLTZ = "bltz"
    BGEZ = "bgez"
    J = "j"
    CALL = "call"
    RET = "ret"
    PARAM = "param"
    NOP = "nop"
    # --- floating point (true float operations) ---
    ADD_S = "add.s"
    SUB_S = "sub.s"
    MUL_S = "mul.s"
    DIV_S = "div.s"
    NEG_S = "neg.s"
    MOV_S = "mov.s"
    LI_S = "li.s"
    CVT_S_W = "cvt.s.w"  # int (in FP reg) -> float
    CVT_W_S = "cvt.w.s"  # float -> int (in FP reg)
    BEQ_S = "beq.s"
    BNE_S = "bne.s"
    BLT_S = "blt.s"
    BLE_S = "ble.s"
    # --- FPa extension: the 22 new opcodes ---
    ADDU_A = "addu.a"
    SUBU_A = "subu.a"
    AND_A = "and.a"
    OR_A = "or.a"
    XOR_A = "xor.a"
    SLT_A = "slt.a"
    SLTU_A = "sltu.a"
    SLLV_A = "sllv.a"
    SRAV_A = "srav.a"
    ADDIU_A = "addiu.a"
    ANDI_A = "andi.a"
    SLTI_A = "slti.a"
    SLTIU_A = "sltiu.a"
    SLL_A = "sll.a"
    SRL_A = "srl.a"
    SRA_A = "sra.a"
    LI_A = "li.a"
    MOVE_A = "move.a"
    BEQ_A = "beq.a"
    BNE_A = "bne.a"
    BLEZ_A = "blez.a"
    BLTZ_A = "bltz.a"
    # --- inter-partition copies (pre-existing in real ISAs: mtc1/mfc1) ---
    CP_TO_COMP = "cp_to_comp"  # INT reg -> FP reg
    CP_FROM_COMP = "cp_from_comp"  # FP reg -> INT reg

    def __str__(self) -> str:
        return self.value


class OpKind(enum.Enum):
    """Coarse behavioural category used by analyses and the simulators."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    CALL = "call"
    RET = "ret"
    PARAM = "param"
    COPY = "copy"
    NOP = "nop"


@dataclass(frozen=True, slots=True)
class OpInfo:
    """Static metadata for one opcode.

    Attributes:
        kind: Behavioural category.
        n_uses: Number of register source operands.
        n_defs: Number of register destination operands (0 or 1).
        has_imm: Whether the instruction carries an immediate.
        has_target: Whether it carries a label / function-name target.
        latency: Execution latency in cycles (loads add cache time).
        fp_subsystem: True if the instruction *executes* in the FP / FPa
            subsystem.  Loads and stores always execute (address
            generation + port) in the INT subsystem even when their data
            register is FP-class.
        twin: Mnemonic of the FPa twin for offloadable integer opcodes,
            or of the integer original for ``.a`` opcodes; None otherwise.
    """

    kind: OpKind
    n_uses: int
    n_defs: int
    has_imm: bool = False
    has_target: bool = False
    latency: int = 1
    fp_subsystem: bool = False
    twin: str | None = None


def _int_alu(n_uses: int, twin: str | None, imm: bool = False) -> OpInfo:
    return OpInfo(OpKind.ALU, n_uses, 1, has_imm=imm, twin=twin)


def _fpa_alu(n_uses: int, twin: str, imm: bool = False) -> OpInfo:
    return OpInfo(OpKind.ALU, n_uses, 1, has_imm=imm, fp_subsystem=True, twin=twin)


OPCODES: dict[Opcode, OpInfo] = {
    # integer ALU reg-reg
    Opcode.ADDU: _int_alu(2, "addu.a"),
    Opcode.SUBU: _int_alu(2, "subu.a"),
    Opcode.AND: _int_alu(2, "and.a"),
    Opcode.OR: _int_alu(2, "or.a"),
    Opcode.XOR: _int_alu(2, "xor.a"),
    Opcode.NOR: _int_alu(2, None),  # no FPa twin: not among the 22
    Opcode.SLT: _int_alu(2, "slt.a"),
    Opcode.SLTU: _int_alu(2, "sltu.a"),
    Opcode.SLLV: _int_alu(2, "sllv.a"),
    Opcode.SRLV: _int_alu(2, None),  # no FPa twin: not among the 22
    Opcode.SRAV: _int_alu(2, "srav.a"),
    # integer ALU immediate
    Opcode.ADDIU: _int_alu(1, "addiu.a", imm=True),
    Opcode.ANDI: _int_alu(1, "andi.a", imm=True),
    Opcode.ORI: _int_alu(1, None, imm=True),  # codegen prefers reg-reg `or`
    Opcode.XORI: _int_alu(1, None, imm=True),  # codegen prefers reg-reg `xor`
    Opcode.SLTI: _int_alu(1, "slti.a", imm=True),
    Opcode.SLTIU: _int_alu(1, "sltiu.a", imm=True),
    Opcode.SLL: _int_alu(1, "sll.a", imm=True),
    Opcode.SRL: _int_alu(1, "srl.a", imm=True),
    Opcode.SRA: _int_alu(1, "sra.a", imm=True),
    Opcode.LUI: _int_alu(0, None, imm=True),
    Opcode.LI: _int_alu(0, "li.a", imm=True),
    Opcode.MOVE: _int_alu(1, "move.a"),
    # integer multiply/divide — INT subsystem only (paper: excluded from FPa)
    Opcode.MULT: OpInfo(OpKind.MUL, 2, 1, latency=6),
    Opcode.DIV: OpInfo(OpKind.DIV, 2, 1, latency=12),
    Opcode.REM: OpInfo(OpKind.DIV, 2, 1, latency=12),
    # memory: one address-register use; stores have an extra value use first
    Opcode.LW: OpInfo(OpKind.LOAD, 1, 1, has_imm=True),
    Opcode.LB: OpInfo(OpKind.LOAD, 1, 1, has_imm=True),
    Opcode.LBU: OpInfo(OpKind.LOAD, 1, 1, has_imm=True),
    Opcode.SW: OpInfo(OpKind.STORE, 2, 0, has_imm=True),
    Opcode.SB: OpInfo(OpKind.STORE, 2, 0, has_imm=True),
    Opcode.LS: OpInfo(OpKind.LOAD, 1, 1, has_imm=True),
    Opcode.SS: OpInfo(OpKind.STORE, 2, 0, has_imm=True),
    # control
    Opcode.BEQ: OpInfo(OpKind.BRANCH, 2, 0, has_target=True, twin="beq.a"),
    Opcode.BNE: OpInfo(OpKind.BRANCH, 2, 0, has_target=True, twin="bne.a"),
    Opcode.BLEZ: OpInfo(OpKind.BRANCH, 1, 0, has_target=True, twin="blez.a"),
    Opcode.BGTZ: OpInfo(OpKind.BRANCH, 1, 0, has_target=True, twin=None),
    Opcode.BLTZ: OpInfo(OpKind.BRANCH, 1, 0, has_target=True, twin="bltz.a"),
    Opcode.BGEZ: OpInfo(OpKind.BRANCH, 1, 0, has_target=True, twin=None),
    Opcode.J: OpInfo(OpKind.JUMP, 0, 0, has_target=True),
    Opcode.CALL: OpInfo(OpKind.CALL, -1, -1, has_target=True),  # variadic
    Opcode.RET: OpInfo(OpKind.RET, -1, 0),  # 0 or 1 use
    Opcode.PARAM: OpInfo(OpKind.PARAM, 0, 1, has_imm=True),
    Opcode.NOP: OpInfo(OpKind.NOP, 0, 0),
    # floating point
    Opcode.ADD_S: OpInfo(OpKind.ALU, 2, 1, fp_subsystem=True),
    Opcode.SUB_S: OpInfo(OpKind.ALU, 2, 1, fp_subsystem=True),
    Opcode.MUL_S: OpInfo(OpKind.MUL, 2, 1, latency=6, fp_subsystem=True),
    Opcode.DIV_S: OpInfo(OpKind.DIV, 2, 1, latency=12, fp_subsystem=True),
    Opcode.NEG_S: OpInfo(OpKind.ALU, 1, 1, fp_subsystem=True),
    Opcode.MOV_S: OpInfo(OpKind.ALU, 1, 1, fp_subsystem=True),
    Opcode.LI_S: OpInfo(OpKind.ALU, 0, 1, has_imm=True, fp_subsystem=True),
    Opcode.CVT_S_W: OpInfo(OpKind.ALU, 1, 1, fp_subsystem=True),
    Opcode.CVT_W_S: OpInfo(OpKind.ALU, 1, 1, fp_subsystem=True),
    Opcode.BEQ_S: OpInfo(OpKind.BRANCH, 2, 0, has_target=True, fp_subsystem=True),
    Opcode.BNE_S: OpInfo(OpKind.BRANCH, 2, 0, has_target=True, fp_subsystem=True),
    Opcode.BLT_S: OpInfo(OpKind.BRANCH, 2, 0, has_target=True, fp_subsystem=True),
    Opcode.BLE_S: OpInfo(OpKind.BRANCH, 2, 0, has_target=True, fp_subsystem=True),
    # FPa extension
    Opcode.ADDU_A: _fpa_alu(2, "addu"),
    Opcode.SUBU_A: _fpa_alu(2, "subu"),
    Opcode.AND_A: _fpa_alu(2, "and"),
    Opcode.OR_A: _fpa_alu(2, "or"),
    Opcode.XOR_A: _fpa_alu(2, "xor"),
    Opcode.SLT_A: _fpa_alu(2, "slt"),
    Opcode.SLTU_A: _fpa_alu(2, "sltu"),
    Opcode.SLLV_A: _fpa_alu(2, "sllv"),
    Opcode.SRAV_A: _fpa_alu(2, "srav"),
    Opcode.ADDIU_A: _fpa_alu(1, "addiu", imm=True),
    Opcode.ANDI_A: _fpa_alu(1, "andi", imm=True),
    Opcode.SLTI_A: _fpa_alu(1, "slti", imm=True),
    Opcode.SLTIU_A: _fpa_alu(1, "sltiu", imm=True),
    Opcode.SLL_A: _fpa_alu(1, "sll", imm=True),
    Opcode.SRL_A: _fpa_alu(1, "srl", imm=True),
    Opcode.SRA_A: _fpa_alu(1, "sra", imm=True),
    Opcode.LI_A: _fpa_alu(0, "li", imm=True),
    Opcode.MOVE_A: _fpa_alu(1, "move"),
    Opcode.BEQ_A: OpInfo(OpKind.BRANCH, 2, 0, has_target=True, fp_subsystem=True, twin="beq"),
    Opcode.BNE_A: OpInfo(OpKind.BRANCH, 2, 0, has_target=True, fp_subsystem=True, twin="bne"),
    Opcode.BLEZ_A: OpInfo(OpKind.BRANCH, 1, 0, has_target=True, fp_subsystem=True, twin="blez"),
    Opcode.BLTZ_A: OpInfo(OpKind.BRANCH, 1, 0, has_target=True, fp_subsystem=True, twin="bltz"),
    # copies
    Opcode.CP_TO_COMP: OpInfo(OpKind.COPY, 1, 1),
    Opcode.CP_FROM_COMP: OpInfo(OpKind.COPY, 1, 1, fp_subsystem=True),
}

#: The FPa extension opcodes (exactly 22, matching the paper's count).
FPA_OPCODES: frozenset[Opcode] = frozenset(
    op for op, info in OPCODES.items() if info.fp_subsystem and info.twin is not None
)

_BY_NAME: dict[str, Opcode] = {op.value: op for op in Opcode}


def opcode_by_name(name: str) -> Opcode:
    """Look up an opcode by its mnemonic; raises KeyError if unknown."""
    return _BY_NAME[name]


def fpa_twin(op: Opcode) -> Opcode | None:
    """The ``.a`` twin of an integer opcode, or None if not offloadable.

    Returns None for opcodes that already execute in the FP subsystem and
    for integer opcodes the FPa extension does not cover (mul/div, nor,
    variable shifts, byte memory ops, ...).
    """
    info = OPCODES[op]
    if info.fp_subsystem or info.twin is None:
        return None
    return _BY_NAME[info.twin]


def int_twin(op: Opcode) -> Opcode | None:
    """The integer original of an ``.a`` opcode, or None."""
    info = OPCODES[op]
    if not info.fp_subsystem or info.twin is None:
        return None
    return _BY_NAME[info.twin]


def is_offloadable(op: Opcode) -> bool:
    """True if the opcode has an FPa twin (can execute in FPa)."""
    return fpa_twin(op) is not None
