"""Parser for the textual IR format produced by :mod:`repro.ir.printer`.

The grammar is line-oriented:

* ``global NAME SIZE [= w0 w1 ...]``
* ``func NAME(NPARAMS) [returns] {`` ... ``}``
* ``LABEL:`` starts a block.
* One instruction per line, in the printer's format.  ``#`` starts a
  comment running to end of line.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.ir.function import Function
from repro.ir.instructions import Immediate, Instruction
from repro.ir.opcodes import Opcode, OpKind, OPCODES, opcode_by_name
from repro.ir.program import Program
from repro.ir.registers import Reg, parse_reg

_FUNC_RE = re.compile(
    r"^func\s+(\w+)\((\d+)\)\s*(returns)?\s*(?:fp\[([0-9,]+)\])?\s*\{$"
)
_GLOBAL_RE = re.compile(r"^global\s+(\w+)\s+(\d+)(?:\s*=\s*(.*))?$")
_LABEL_RE = re.compile(r"^(\w+):$")
_CALL_RE = re.compile(r"^(?:(\S+)\s*=\s*)?call\s+(\w+)\((.*)\)$")


def _parse_imm(token: str, line: int) -> Immediate:
    if token.startswith("@"):
        return token[1:]
    try:
        return int(token, 0)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        raise ParseError(f"bad immediate {token!r}", line) from None


def _parse_operands(text: str, line: int) -> list[str]:
    text = text.strip()
    if not text:
        return []
    return [tok.strip() for tok in text.split(",")]


def _parse_reg(token: str, line: int) -> Reg:
    """Like :func:`parse_reg` but raising a located ParseError."""
    try:
        return parse_reg(token)
    except ValueError as exc:
        raise ParseError(str(exc), line) from None


def parse_instruction(text: str, line: int = 0) -> Instruction:
    """Parse a single instruction line (without indentation)."""
    try:
        return _parse_instruction(text, line)
    except (ValueError, IndexError) as exc:
        # malformed operand lists (wrong arity, bad integers) surface as
        # located parse errors, never as internal exceptions
        raise ParseError(f"malformed instruction: {exc}", line) from None


def _parse_instruction(text: str, line: int) -> Instruction:
    text = text.split("#", 1)[0].strip()
    call_match = _CALL_RE.match(text)
    if call_match:
        dest, callee, argtext = call_match.groups()
        args = [_parse_reg(tok, line) for tok in _parse_operands(argtext, line)]
        defs = [_parse_reg(dest, line)] if dest else []
        return Instruction(Opcode.CALL, defs=defs, uses=args, target=callee)

    defs: list[Reg] = []
    if "=" in text:
        dest_text, text = text.split("=", 1)
        defs = [_parse_reg(dest_text.strip(), line)]
        text = text.strip()

    parts = text.split(None, 1)
    if not parts:
        raise ParseError("empty instruction", line)
    mnemonic = parts[0]
    try:
        op = opcode_by_name(mnemonic)
    except KeyError:
        raise ParseError(f"unknown opcode {mnemonic!r}", line) from None
    operands = _parse_operands(parts[1] if len(parts) > 1 else "", line)
    info = OPCODES[op]
    kind = info.kind

    if kind is OpKind.RET:
        uses = [_parse_reg(operands[0], line)] if operands else []
        return Instruction(op, uses=uses)
    if kind is OpKind.PARAM:
        return Instruction(op, defs=defs, imm=int(operands[0]))
    if kind is OpKind.JUMP:
        return Instruction(op, target=operands[0])
    if kind is OpKind.BRANCH:
        *srcs, target = operands
        return Instruction(op, uses=[_parse_reg(s, line) for s in srcs], target=target)
    if kind is OpKind.STORE:
        if len(operands) == 2:
            operands.append("0")
        value, base, offset = operands
        return Instruction(
            op, uses=[_parse_reg(value, line), _parse_reg(base, line)], imm=_parse_imm(offset, line)
        )
    if kind is OpKind.LOAD:
        if len(operands) == 1:
            operands.append("0")
        base, offset = operands
        return Instruction(op, defs=defs, uses=[_parse_reg(base, line)], imm=_parse_imm(offset, line))
    if kind is OpKind.NOP:
        return Instruction(op)

    # ALU / MUL / DIV / COPY
    imm: Immediate = None
    if info.has_imm:
        if not operands:
            raise ParseError(f"{mnemonic} requires an immediate", line)
        imm = _parse_imm(operands[-1], line)
        operands = operands[:-1]
    uses = [_parse_reg(tok, line) for tok in operands]
    if info.n_uses >= 0 and len(uses) != info.n_uses:
        raise ParseError(
            f"{mnemonic} expects {info.n_uses} register sources, got {len(uses)}", line
        )
    return Instruction(op, defs=defs, uses=uses, imm=imm)


def parse_function(text: str) -> Function:
    """Parse a single ``func ... { }`` body; convenience for tests."""
    program = parse_program(text)
    if len(program.functions) != 1:
        raise ParseError(f"expected exactly one function, got {len(program.functions)}")
    return next(iter(program.functions.values()))


def parse_program(text: str, entry: str = "main") -> Program:
    """Parse a whole program from text."""
    program = Program(entry=entry)
    func: Function | None = None
    current_label: str | None = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if func is None:
            match = _GLOBAL_RE.match(line)
            if match:
                name, size, init_text = match.groups()
                try:
                    init = (
                        [int(w, 0) for w in init_text.split()] if init_text else None
                    )
                    program.add_global(name, int(size), init)
                except ValueError as exc:
                    raise ParseError(f"bad global declaration: {exc}", lineno) from None
                continue
            match = _FUNC_RE.match(line)
            if match:
                name, n_params, returns, fp_list = match.groups()
                func = Function(name, n_params=int(n_params), returns_value=bool(returns))
                if fp_list:
                    func.fp_params = {int(i) for i in fp_list.split(",")}
                current_label = None
                continue
            raise ParseError(f"expected global or func, got {line!r}", lineno)
        if line == "}":
            try:
                program.add_function(func)
            except ValueError as exc:
                raise ParseError(str(exc), lineno) from None
            func = None
            continue
        match = _LABEL_RE.match(line)
        if match:
            current_label = match.group(1)
            try:
                func.new_block(current_label)
            except ValueError as exc:
                raise ParseError(str(exc), lineno) from None
            continue
        if current_label is None:
            raise ParseError("instruction before any block label", lineno)
        instr = parse_instruction(line, lineno)
        func.attach(instr)
        func.block(current_label).instructions.append(instr)

    if func is not None:
        raise ParseError(f"unterminated function {func.name!r}")
    program.layout()
    return program
