"""Textual rendering of IR.

The format round-trips through :mod:`repro.ir.parser`::

    func main(0) {
    entry:
      v0 = li 5
      v1 = addiu v0, 1
      v2 = lw v1, 8
      sw v2, v1, 4
      bne v0, v1, entry
      ret
    }

Conventions: ``dest = op srcs..., imm`` for value-producing instructions,
``op srcs..., label`` for branches, ``call callee(args...)`` for calls,
``sw value, base, offset`` for stores, ``@name`` for global symbols used
as immediates.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import OpKind
from repro.ir.program import Program


def _imm_str(imm: int | float | str) -> str:
    if isinstance(imm, str):
        return f"@{imm}"
    return repr(imm) if isinstance(imm, float) else str(imm)


def print_instruction(instr: Instruction) -> str:
    """Render one instruction (no indentation, no uid)."""
    kind = instr.kind
    if kind is OpKind.CALL:
        args = ", ".join(str(r) for r in instr.uses)
        call = f"call {instr.target}({args})"
        if instr.defs:
            return f"{instr.defs[0]} = {call}"
        return call
    if kind is OpKind.RET:
        return f"ret {instr.uses[0]}" if instr.uses else "ret"
    if kind is OpKind.PARAM:
        return f"{instr.defs[0]} = param {instr.imm}"
    if kind is OpKind.JUMP:
        return f"j {instr.target}"
    if kind is OpKind.BRANCH:
        srcs = ", ".join(str(r) for r in instr.uses)
        return f"{instr.op} {srcs}, {instr.target}"
    if kind is OpKind.STORE:
        value, base = instr.uses
        return f"{instr.op} {value}, {base}, {_imm_str(instr.imm or 0)}"
    if kind is OpKind.LOAD:
        return f"{instr.defs[0]} = {instr.op} {instr.uses[0]}, {_imm_str(instr.imm or 0)}"
    if kind is OpKind.NOP:
        return "nop"
    # ALU / MUL / DIV / COPY
    parts = [str(r) for r in instr.uses]
    if instr.info.has_imm:
        parts.append(_imm_str(instr.imm if instr.imm is not None else 0))
    operands = ", ".join(parts)
    if instr.defs:
        return f"{instr.defs[0]} = {instr.op} {operands}".rstrip()
    return f"{instr.op} {operands}".rstrip()


def print_function(func: Function) -> str:
    """Render a whole function."""
    header = f"func {func.name}({func.n_params})"
    if func.returns_value:
        header += " returns"
    if func.fp_params:
        header += " fp[" + ",".join(str(i) for i in sorted(func.fp_params)) + "]"
    lines = [header + " {"]
    for blk in func.blocks:
        lines.append(f"{blk.label}:")
        for instr in blk.instructions:
            lines.append(f"  {print_instruction(instr)}")
    lines.append("}")
    return "\n".join(lines)


def print_program(program: Program) -> str:
    """Render a whole program, globals first."""
    lines = []
    for var in program.globals.values():
        decl = f"global {var.name} {var.size_bytes}"
        if var.init:
            decl += " = " + " ".join(str(w) for w in var.init)
        lines.append(decl)
    if program.globals:
        lines.append("")
    for func in program.functions.values():
        lines.append(print_function(func))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
