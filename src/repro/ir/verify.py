"""Structural verification of IR.

The verifier catches the mistakes that are cheap to make while building or
rewriting IR and expensive to debug downstream: wrong operand counts,
register-class mismatches against the opcode's subsystem, control
instructions in the middle of a block, branches to unknown labels, calls
to unknown functions with the wrong arity, and uses of the hard-wired
zero register as a destination.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode, OpKind
from repro.ir.program import Program
from repro.ir.registers import RegClass, ZERO


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise IRError(message)


def _expected_def_class(instr: Instruction, func: Function) -> RegClass | None:
    """Register class the destination must have, or None if unconstrained."""
    op, info = instr.op, instr.info
    if op is Opcode.CP_TO_COMP:
        return RegClass.FP
    if op is Opcode.CP_FROM_COMP:
        return RegClass.INT
    if op is Opcode.LS:
        return RegClass.FP
    if info.kind is OpKind.LOAD:
        return RegClass.INT
    if info.kind is OpKind.PARAM:
        # standard convention is INT; the interprocedural extension may
        # receive selected parameters directly in FP registers
        return RegClass.FP if instr.imm in func.fp_params else RegClass.INT
    if info.kind is OpKind.CALL:
        return RegClass.INT  # return values always cross in INT registers
    if info.kind in (OpKind.ALU, OpKind.MUL, OpKind.DIV):
        return RegClass.FP if info.fp_subsystem else RegClass.INT
    return None


def verify_instruction(instr: Instruction, func: Function, labels: set[str]) -> None:
    """Verify one instruction in the context of its function."""
    info = instr.info
    where = f"{func.name}: {instr!r}"

    if info.n_uses >= 0:
        _check(len(instr.uses) == info.n_uses, f"{where}: expected {info.n_uses} uses")
    if info.n_defs >= 0:
        _check(len(instr.defs) == info.n_defs, f"{where}: expected {info.n_defs} defs")
    if info.has_imm:
        _check(instr.imm is not None, f"{where}: missing immediate")
    if info.has_target:
        _check(instr.target is not None, f"{where}: missing target")

    for d in instr.defs:
        _check(d != ZERO, f"{where}: writes $zero")

    expected = _expected_def_class(instr, func)
    if expected is not None:
        for d in instr.defs:
            _check(d.rclass is expected, f"{where}: def {d} must be {expected.name}-class")

    # use-class constraints
    if instr.op is Opcode.CP_TO_COMP:
        _check(instr.uses[0].rclass is RegClass.INT, f"{where}: cp_to_comp reads INT reg")
    elif instr.op is Opcode.CP_FROM_COMP:
        _check(instr.uses[0].rclass is RegClass.FP, f"{where}: cp_from_comp reads FP reg")
    elif info.kind is OpKind.LOAD:
        _check(instr.uses[0].rclass is RegClass.INT, f"{where}: load base must be INT-class")
    elif info.kind is OpKind.STORE:
        _check(instr.uses[1].rclass is RegClass.INT, f"{where}: store base must be INT-class")
        value_class = RegClass.FP if instr.op is Opcode.SS else RegClass.INT
        _check(
            instr.uses[0].rclass is value_class,
            f"{where}: store value must be {value_class.name}-class",
        )
    elif info.kind is OpKind.CALL:
        pass  # argument classes depend on the callee; checked in verify_function
    elif info.kind is OpKind.RET:
        _check(len(instr.uses) <= 1, f"{where}: ret takes at most one value")
        for use in instr.uses:
            _check(use.rclass is RegClass.INT, f"{where}: return value must be INT-class")
    elif info.kind in (OpKind.ALU, OpKind.MUL, OpKind.DIV, OpKind.BRANCH):
        want = RegClass.FP if info.fp_subsystem else RegClass.INT
        for use in instr.uses:
            _check(
                use.rclass is want,
                f"{where}: use {use} must be {want.name}-class for {instr.op}",
            )

    if info.has_target and info.kind in (OpKind.BRANCH, OpKind.JUMP):
        _check(instr.target in labels, f"{where}: branch to unknown label {instr.target!r}")


def verify_function(func: Function, program: Program | None = None) -> None:
    """Verify block structure and every instruction of ``func``."""
    _check(bool(func.blocks), f"{func.name}: function has no blocks")
    labels = {blk.label for blk in func.blocks}
    _check(len(labels) == len(func.blocks), f"{func.name}: duplicate block labels")

    seen_uids: set[int] = set()
    for blk in func.blocks:
        for i, instr in enumerate(blk.instructions):
            _check(instr.uid >= 0, f"{func.name}: unattached instruction in {blk.label}")
            _check(instr.uid not in seen_uids, f"{func.name}: duplicate uid {instr.uid}")
            seen_uids.add(instr.uid)
            if instr.is_control:
                _check(
                    i == len(blk.instructions) - 1,
                    f"{func.name}: control instruction mid-block in {blk.label}",
                )
            verify_instruction(instr, func, labels)

    params = func.params()
    _check(
        len(params) == func.n_params,
        f"{func.name}: expected {func.n_params} param instructions, found {len(params)}",
    )
    indices = sorted(p.imm for p in params)
    _check(
        indices == list(range(func.n_params)),
        f"{func.name}: param indices must be 0..{func.n_params - 1}",
    )
    for blk in func.blocks[1:]:
        for instr in blk.instructions:
            _check(
                instr.kind is not OpKind.PARAM,
                f"{func.name}: param instruction outside the entry block",
            )

    if program is not None:
        for instr in func.instructions():
            if instr.kind is OpKind.CALL:
                _check(
                    instr.target in program.functions,
                    f"{func.name}: call to unknown function {instr.target!r}",
                )
                callee = program.functions[instr.target]
                _check(
                    len(instr.uses) == callee.n_params,
                    f"{func.name}: call to {instr.target} with {len(instr.uses)} args, "
                    f"expected {callee.n_params}",
                )
                for pos, use in enumerate(instr.uses):
                    want = (
                        RegClass.FP if pos in callee.fp_params else RegClass.INT
                    )
                    _check(
                        use.rclass is want,
                        f"{func.name}: argument {pos} of call to {instr.target} "
                        f"must be {want.name}-class",
                    )
                if instr.defs:
                    _check(
                        callee.returns_value,
                        f"{func.name}: {instr.target} does not return a value",
                    )
            if isinstance(instr.imm, str):
                _check(
                    instr.imm in program.globals,
                    f"{func.name}: reference to unknown global {instr.imm!r}",
                )


def verify_program(program: Program) -> None:
    """Verify every function plus whole-program properties."""
    _check(program.entry in program.functions, f"entry {program.entry!r} not defined")
    entry = program.functions[program.entry]
    _check(entry.n_params == 0, "entry function must take no parameters")
    for func in program.functions.values():
        verify_function(func, program)
