"""Structural verification of IR.

The verifier catches the mistakes that are cheap to make while building or
rewriting IR and expensive to debug downstream: wrong operand counts,
register-class mismatches against the opcode's subsystem, control
instructions in the middle of a block, branches to unknown labels, calls
to unknown functions with the wrong arity, and uses of the hard-wired
zero register as a destination.

The per-operand register-class rules live in :func:`expected_def_class`
and :func:`expected_use_class` so that the partition linter
(:mod:`repro.lint`) checks flow-level facts against exactly the same
class table the structural verifier enforces point-wise.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode, OpKind
from repro.ir.program import Program
from repro.ir.registers import RegClass, ZERO


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise IRError(message)


def expected_def_class(instr: Instruction, func: Function) -> RegClass | None:
    """Register class the destination must have, or None if unconstrained."""
    op, info = instr.op, instr.info
    if op is Opcode.CP_TO_COMP:
        return RegClass.FP
    if op is Opcode.CP_FROM_COMP:
        return RegClass.INT
    if op is Opcode.LS:
        return RegClass.FP
    if info.kind is OpKind.LOAD:
        return RegClass.INT
    if info.kind is OpKind.PARAM:
        # standard convention is INT; the interprocedural extension may
        # receive selected parameters directly in FP registers
        return RegClass.FP if instr.imm in func.fp_params else RegClass.INT
    if info.kind is OpKind.CALL:
        return RegClass.INT  # return values always cross in INT registers
    if info.kind in (OpKind.ALU, OpKind.MUL, OpKind.DIV):
        return RegClass.FP if info.fp_subsystem else RegClass.INT
    return None


def expected_use_class(
    instr: Instruction,
    pos: int,
    callee_fp_params: set[int] | None = None,
) -> RegClass | None:
    """Register class use operand ``pos`` must have, or None if unconstrained.

    For ``call`` instructions the argument classes depend on the callee:
    pass the callee's ``fp_params`` set when it is known, or None to
    leave call arguments unconstrained (intra-function checking).
    """
    op, info = instr.op, instr.info
    kind = info.kind
    if op is Opcode.CP_TO_COMP:
        return RegClass.INT  # source is read from the integer file
    if op is Opcode.CP_FROM_COMP:
        return RegClass.FP  # source is read from the FP file
    if kind is OpKind.LOAD:
        return RegClass.INT  # the single use is the base address
    if kind is OpKind.STORE:
        if pos == 1:
            return RegClass.INT  # base address
        return RegClass.FP if op is Opcode.SS else RegClass.INT  # value
    if kind is OpKind.CALL:
        if callee_fp_params is None:
            return None
        return RegClass.FP if pos in callee_fp_params else RegClass.INT
    if kind is OpKind.RET:
        return RegClass.INT  # return values always cross in INT registers
    if kind in (OpKind.ALU, OpKind.MUL, OpKind.DIV, OpKind.BRANCH):
        return RegClass.FP if info.fp_subsystem else RegClass.INT
    return None


def _use_class_message(
    instr: Instruction, pos: int, want: RegClass, where: str
) -> str:
    """Error text for a use-class violation, kept specific per operand role."""
    kind = instr.kind
    if kind is OpKind.LOAD:
        return f"{where}: load base must be {want.name}-class"
    if kind is OpKind.STORE:
        role = "base" if pos == 1 else "value"
        return f"{where}: store {role} must be {want.name}-class"
    if kind is OpKind.RET:
        return f"{where}: return value must be {want.name}-class"
    return (
        f"{where}: use {instr.uses[pos]} must be {want.name}-class for {instr.op}"
    )


def verify_instruction(instr: Instruction, func: Function, labels: set[str]) -> None:
    """Verify one instruction in the context of its function."""
    info = instr.info
    where = f"{func.name}: {instr!r}"

    if info.n_uses >= 0:
        _check(len(instr.uses) == info.n_uses, f"{where}: expected {info.n_uses} uses")
    if info.n_defs >= 0:
        _check(len(instr.defs) == info.n_defs, f"{where}: expected {info.n_defs} defs")
    if info.has_imm:
        _check(instr.imm is not None, f"{where}: missing immediate")
    if info.has_target:
        _check(instr.target is not None, f"{where}: missing target")

    for d in instr.defs:
        _check(d != ZERO, f"{where}: writes $zero")

    expected = expected_def_class(instr, func)
    if expected is not None:
        for d in instr.defs:
            _check(d.rclass is expected, f"{where}: def {d} must be {expected.name}-class")

    if info.kind is OpKind.RET:
        _check(len(instr.uses) <= 1, f"{where}: ret takes at most one value")

    # use-class constraints, one shared table for every operand position
    # (call arguments are callee-dependent and checked in verify_function)
    for pos, use in enumerate(instr.uses):
        want = expected_use_class(instr, pos)
        if want is not None:
            _check(use.rclass is want, _use_class_message(instr, pos, want, where))

    if info.has_target and info.kind in (OpKind.BRANCH, OpKind.JUMP):
        _check(instr.target in labels, f"{where}: branch to unknown label {instr.target!r}")


def verify_function(func: Function, program: Program | None = None) -> None:
    """Verify block structure and every instruction of ``func``."""
    _check(bool(func.blocks), f"{func.name}: function has no blocks")
    labels = {blk.label for blk in func.blocks}
    _check(len(labels) == len(func.blocks), f"{func.name}: duplicate block labels")

    seen_uids: set[int] = set()
    for blk in func.blocks:
        for i, instr in enumerate(blk.instructions):
            _check(instr.uid >= 0, f"{func.name}: unattached instruction in {blk.label}")
            _check(instr.uid not in seen_uids, f"{func.name}: duplicate uid {instr.uid}")
            seen_uids.add(instr.uid)
            if instr.is_control:
                _check(
                    i == len(blk.instructions) - 1,
                    f"{func.name}: control instruction mid-block in {blk.label}",
                )
            verify_instruction(instr, func, labels)

    params = func.params()
    _check(
        len(params) == func.n_params,
        f"{func.name}: expected {func.n_params} param instructions, found {len(params)}",
    )
    indices = sorted(p.imm for p in params)
    _check(
        indices == list(range(func.n_params)),
        f"{func.name}: param indices must be 0..{func.n_params - 1}",
    )
    for blk in func.blocks[1:]:
        for instr in blk.instructions:
            _check(
                instr.kind is not OpKind.PARAM,
                f"{func.name}: param instruction outside the entry block",
            )

    if program is not None:
        for instr in func.instructions():
            if instr.kind is OpKind.CALL:
                _check(
                    instr.target in program.functions,
                    f"{func.name}: call to unknown function {instr.target!r}",
                )
                callee = program.functions[instr.target]
                _check(
                    len(instr.uses) == callee.n_params,
                    f"{func.name}: call to {instr.target} with {len(instr.uses)} args, "
                    f"expected {callee.n_params}",
                )
                for pos, use in enumerate(instr.uses):
                    want = expected_use_class(instr, pos, callee.fp_params)
                    _check(
                        use.rclass is want,
                        f"{func.name}: argument {pos} of call to {instr.target} "
                        f"must be {want.name}-class",
                    )
                if instr.defs:
                    _check(
                        callee.returns_value,
                        f"{func.name}: {instr.target} does not return a value",
                    )
            if isinstance(instr.imm, str):
                _check(
                    instr.imm in program.globals,
                    f"{func.name}: reference to unknown global {instr.imm!r}",
                )


def verify_program(program: Program) -> None:
    """Verify every function plus whole-program properties."""
    _check(program.entry in program.functions, f"entry {program.entry!r} not defined")
    entry = program.functions[program.entry]
    _check(entry.n_params == 0, "entry function must take no parameters")
    for func in program.functions.values():
        verify_function(func, program)
