"""Process-local progress reporting for long-running pipeline stages.

The bench harness supervises worker processes with a progress-aware
watchdog (see ``docs/robustness.md``): a cell that keeps making
progress has its deadline extended, a stalled one is killed early.  The
signal comes from here — pipeline code calls :func:`report_progress`
with whatever counters it has (pipeline ``stage`` transitions, dynamic
instructions ``executed`` by the interpreter, ``cycles``/``retired``
from the timing simulator, checkpoint events), and whoever set a sink
for this process decides what to do with the fields.

With no sink installed — every direct library use — reporting is a
near-free no-op: one global read and a ``None`` check.  The bench pool
worker installs a :class:`~repro.bench.heartbeat.HeartbeatWriter` so
the supervising parent can watch the counters advance from outside the
process.
"""

from __future__ import annotations

from typing import Protocol


class ProgressSink(Protocol):
    def update(self, **fields) -> None: ...


_SINK: ProgressSink | None = None


def set_progress_sink(sink: ProgressSink | None) -> None:
    """Install (or with ``None`` remove) this process's progress sink."""
    global _SINK
    _SINK = sink


def progress_sink() -> ProgressSink | None:
    """The currently installed sink, if any."""
    return _SINK


def report_progress(**fields) -> None:
    """Forward progress counters to the installed sink (no-op without one).

    Callers on hot paths should rate-limit their own calls (e.g. every
    few thousand simulated cycles); sinks additionally throttle actual
    I/O by wall clock.
    """
    if _SINK is not None:
        _SINK.update(**fields)
