"""MiniC abstract syntax tree.

Nodes are plain dataclasses.  Semantic analysis annotates expression
nodes in place with a ``type`` attribute (``"int"`` or ``"float"``) that
code generation consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

Type = str  # "int" | "float" | "void"


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Expr:
    """Base class; ``type`` is filled in by semantic analysis."""

    line: int = 0
    type: Type | None = field(default=None, compare=False)


@dataclass(eq=False)
class IntLit(Expr):
    value: int = 0


@dataclass(eq=False)
class FloatLit(Expr):
    value: float = 0.0


@dataclass(eq=False)
class Name(Expr):
    name: str = ""


@dataclass(eq=False)
class Index(Expr):
    """Array element ``name[index]`` (arrays are global)."""

    name: str = ""
    index: Expr | None = None


@dataclass(eq=False)
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass(eq=False)
class Unary(Expr):
    op: str = ""
    operand: Expr | None = None


@dataclass(eq=False)
class Binary(Expr):
    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass(eq=False)
class Cast(Expr):
    """Explicit ``(int)e`` / ``(float)e``."""

    target: Type = "int"
    operand: Expr | None = None


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Stmt:
    line: int = 0


@dataclass(eq=False)
class VarDecl(Stmt):
    """Local scalar declaration, optionally initialized."""

    name: str = ""
    var_type: Type = "int"
    init: Expr | None = None


@dataclass(eq=False)
class Assign(Stmt):
    target: Name | Index | None = None
    value: Expr | None = None


@dataclass(eq=False)
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass(eq=False)
class If(Stmt):
    cond: Expr | None = None
    then_body: "Block | None" = None
    else_body: "Block | None" = None


@dataclass(eq=False)
class While(Stmt):
    cond: Expr | None = None
    body: "Block | None" = None


@dataclass(eq=False)
class For(Stmt):
    init: Stmt | None = None  # VarDecl or Assign
    cond: Expr | None = None
    step: Stmt | None = None  # Assign or ExprStmt
    body: "Block | None" = None


@dataclass(eq=False)
class Return(Stmt):
    value: Expr | None = None


@dataclass(eq=False)
class Break(Stmt):
    pass


@dataclass(eq=False)
class Continue(Stmt):
    pass


@dataclass(eq=False)
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class GlobalDecl:
    name: str
    var_type: Type
    array_size: int | None = None  # None for scalars
    init: list[int | float] | None = None
    line: int = 0


@dataclass(eq=False)
class ParamDecl:
    name: str
    var_type: Type
    line: int = 0


@dataclass(eq=False)
class FuncDecl:
    name: str
    ret_type: Type
    params: list[ParamDecl]
    body: Block
    line: int = 0


@dataclass(eq=False)
class TranslationUnit:
    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FuncDecl] = field(default_factory=list)
