"""MiniC recursive-descent parser.

Grammar (EBNF-ish)::

    unit        := (global_decl | func_decl)*
    global_decl := type IDENT ('[' INT ']')? ('=' init)? ';'
    init        := literal | '{' literal (',' literal)* '}'
    func_decl   := (type | 'void') IDENT '(' params? ')' block
    params      := type IDENT (',' type IDENT)*
    block       := '{' stmt* '}'
    stmt        := var_decl | assign ';' | 'if' ... | 'while' ... |
                   'for' ... | 'return' expr? ';' | 'break' ';' |
                   'continue' ';' | block | expr ';'
    expr        := logical_or  (with C precedence below)

Precedence, loosest first: ``||``, ``&&``, ``|``, ``^``, ``&``,
equality, relational, shifts, additive, multiplicative, unary, postfix.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.minic.astnodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Cast,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDecl,
    GlobalDecl,
    If,
    Index,
    IntLit,
    Name,
    ParamDecl,
    Return,
    Stmt,
    TranslationUnit,
    Unary,
    VarDecl,
    While,
)
from repro.minic.lexer import Token, TokenKind, tokenize

_TYPE_KEYWORDS = ("int", "float")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def check(self, text: str) -> bool:
        return self.current.text == text and self.current.kind in (
            TokenKind.PUNCT,
            TokenKind.KEYWORD,
        )

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            tok = self.current
            raise ParseError(
                f"expected {text!r}, found {tok.text or '<eof>'!r}", tok.line, tok.column
            )
        return self.advance()

    def expect_ident(self) -> Token:
        tok = self.current
        if tok.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected identifier, found {tok.text or '<eof>'!r}",
                tok.line,
                tok.column,
            )
        return self.advance()

    # -- declarations ------------------------------------------------------
    def parse_unit(self) -> TranslationUnit:
        unit = TranslationUnit()
        while self.current.kind is not TokenKind.EOF:
            tok = self.current
            if tok.text not in ("int", "float", "void"):
                raise ParseError(
                    f"expected declaration, found {tok.text!r}", tok.line, tok.column
                )
            decl_type = self.advance().text
            name = self.expect_ident()
            if self.check("("):
                unit.functions.append(self._func_rest(decl_type, name))
            else:
                if decl_type == "void":
                    raise ParseError("void variables are not allowed", name.line)
                unit.globals.append(self._global_rest(decl_type, name))
        return unit

    def _global_rest(self, decl_type: str, name: Token) -> GlobalDecl:
        array_size: int | None = None
        init: list[int | float] | None = None
        if self.accept("["):
            size_tok = self.advance()
            if size_tok.kind is not TokenKind.INT_LIT:
                raise ParseError("array size must be an integer literal", size_tok.line)
            array_size = size_tok.value
            self.expect("]")
        if self.accept("="):
            if self.accept("{"):
                init = [self._literal_value()]
                while self.accept(","):
                    init.append(self._literal_value())
                self.expect("}")
            else:
                init = [self._literal_value()]
        self.expect(";")
        return GlobalDecl(name.text, decl_type, array_size, init, line=name.line)

    def _literal_value(self) -> int | float:
        negative = self.accept("-")
        tok = self.advance()
        if tok.kind not in (TokenKind.INT_LIT, TokenKind.FLOAT_LIT):
            raise ParseError("expected literal initializer", tok.line, tok.column)
        value = tok.value
        return -value if negative else value

    def _func_rest(self, ret_type: str, name: Token) -> FuncDecl:
        self.expect("(")
        params: list[ParamDecl] = []
        if not self.check(")"):
            while True:
                tok = self.current
                if tok.text not in _TYPE_KEYWORDS:
                    raise ParseError(
                        f"expected parameter type, found {tok.text!r}",
                        tok.line,
                        tok.column,
                    )
                ptype = self.advance().text
                pname = self.expect_ident()
                params.append(ParamDecl(pname.text, ptype, line=pname.line))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return FuncDecl(name.text, ret_type, params, body, line=name.line)

    # -- statements ----------------------------------------------------------
    def parse_block(self) -> Block:
        start = self.expect("{")
        stmts: list[Stmt] = []
        while not self.check("}"):
            if self.current.kind is TokenKind.EOF:
                raise ParseError("unterminated block", start.line)
            stmts.append(self.parse_stmt())
        self.expect("}")
        return Block(line=start.line, statements=stmts)

    def parse_stmt(self) -> Stmt:
        tok = self.current
        if tok.text in _TYPE_KEYWORDS:
            return self._var_decl()
        if tok.text == "if":
            return self._if_stmt()
        if tok.text == "while":
            return self._while_stmt()
        if tok.text == "for":
            return self._for_stmt()
        if tok.text == "return":
            self.advance()
            value = None if self.check(";") else self.parse_expr()
            self.expect(";")
            return Return(line=tok.line, value=value)
        if tok.text == "break":
            self.advance()
            self.expect(";")
            return Break(line=tok.line)
        if tok.text == "continue":
            self.advance()
            self.expect(";")
            return Continue(line=tok.line)
        if tok.text == "{":
            return self.parse_block()
        stmt = self._assign_or_expr()
        self.expect(";")
        return stmt

    def _var_decl(self) -> VarDecl:
        var_type = self.advance().text
        name = self.expect_ident()
        init = None
        if self.accept("="):
            init = self.parse_expr()
        self.expect(";")
        return VarDecl(line=name.line, name=name.text, var_type=var_type, init=init)

    def _if_stmt(self) -> If:
        tok = self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_body = self._stmt_as_block()
        else_body = None
        if self.accept("else"):
            else_body = self._stmt_as_block()
        return If(line=tok.line, cond=cond, then_body=then_body, else_body=else_body)

    def _while_stmt(self) -> While:
        tok = self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        return While(line=tok.line, cond=cond, body=self._stmt_as_block())

    def _for_stmt(self) -> For:
        tok = self.expect("for")
        self.expect("(")
        init: Stmt | None = None
        if not self.check(";"):
            if self.current.text in _TYPE_KEYWORDS:
                init = self._var_decl()  # consumes the ';'
            else:
                init = self._assign_or_expr()
                self.expect(";")
        else:
            self.expect(";")
        cond = None if self.check(";") else self.parse_expr()
        self.expect(";")
        step = None if self.check(")") else self._assign_or_expr()
        self.expect(")")
        return For(line=tok.line, init=init, cond=cond, step=step, body=self._stmt_as_block())

    def _stmt_as_block(self) -> Block:
        stmt = self.parse_stmt()
        if isinstance(stmt, Block):
            return stmt
        return Block(line=stmt.line, statements=[stmt])

    def _assign_or_expr(self) -> Stmt:
        expr = self.parse_expr()
        if self.check("="):
            if not isinstance(expr, (Name, Index)):
                tok = self.current
                raise ParseError("assignment target must be a variable or array element",
                                 tok.line, tok.column)
            self.advance()
            value = self.parse_expr()
            return Assign(line=expr.line, target=expr, value=value)
        return ExprStmt(line=expr.line, expr=expr)

    # -- expressions (precedence climbing) ---------------------------------
    _LEVELS: list[list[str]] = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", "<=", ">", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def parse_expr(self) -> Expr:
        return self._binary(0)

    def _binary(self, level: int) -> Expr:
        if level >= len(self._LEVELS):
            return self._unary()
        ops = self._LEVELS[level]
        left = self._binary(level + 1)
        while self.current.kind is TokenKind.PUNCT and self.current.text in ops:
            op = self.advance().text
            right = self._binary(level + 1)
            left = Binary(line=left.line, op=op, left=left, right=right)
        return left

    def _unary(self) -> Expr:
        tok = self.current
        if tok.kind is TokenKind.PUNCT and tok.text in ("-", "!", "~"):
            self.advance()
            operand = self._unary()
            return Unary(line=tok.line, op=tok.text, operand=operand)
        # cast: '(' type ')' unary
        if tok.text == "(" and self.tokens[self.pos + 1].text in _TYPE_KEYWORDS \
                and self.tokens[self.pos + 2].text == ")":
            self.advance()
            target = self.advance().text
            self.expect(")")
            operand = self._unary()
            return Cast(line=tok.line, target=target, operand=operand)
        return self._postfix()

    def _postfix(self) -> Expr:
        tok = self.current
        if tok.kind is TokenKind.INT_LIT:
            self.advance()
            return IntLit(line=tok.line, value=tok.value)
        if tok.kind is TokenKind.FLOAT_LIT:
            self.advance()
            return FloatLit(line=tok.line, value=tok.value)
        if tok.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if tok.kind is TokenKind.IDENT:
            name = self.advance()
            if self.accept("("):
                args: list[Expr] = []
                if not self.check(")"):
                    args.append(self.parse_expr())
                    while self.accept(","):
                        args.append(self.parse_expr())
                self.expect(")")
                return Call(line=name.line, name=name.text, args=args)
            if self.accept("["):
                index = self.parse_expr()
                self.expect("]")
                return Index(line=name.line, name=name.text, index=index)
            return Name(line=name.line, name=name.text)
        raise ParseError(
            f"expected expression, found {tok.text or '<eof>'!r}", tok.line, tok.column
        )


def parse(source: str) -> TranslationUnit:
    """Parse MiniC source text into an AST."""
    return _Parser(tokenize(source)).parse_unit()
