"""MiniC compilation driver."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ir.program import Program
from repro.ir.verify import verify_program
from repro.minic.codegen import generate
from repro.minic.parser import parse
from repro.minic.sema import analyze

if TYPE_CHECKING:
    from repro.analysis.warnings import AnalysisWarning


def compile_source(
    source: str,
    optimize: bool = True,
    warnings: "list[AnalysisWarning] | None" = None,
) -> Program:
    """Compile MiniC source text to a verified IR program.

    Args:
        source: MiniC source text.
        optimize: Run the machine-independent optimization pipeline
            (constant folding, copy propagation, local CSE, dead-code
            elimination, jump simplification) — the paper partitions
            *after* these run.
        warnings: Optional sink: when given, the advisory
            abstract-interpretation warnings (unreachable blocks,
            fuel-unbounded loops) of the final IR are appended to it.
            Warnings never fail compilation.

    Returns:
        A verified :class:`~repro.ir.program.Program`.
    """
    unit = parse(source)
    info = analyze(unit)
    program = generate(unit, info)
    verify_program(program)
    if optimize:
        from repro.opt.pipeline import optimize_program

        optimize_program(program)
        verify_program(program)
    if warnings is not None:
        from repro.analysis.warnings import analyze_program

        warnings.extend(analyze_program(program))
    return program
