"""MiniC compilation driver."""

from __future__ import annotations

from repro.ir.program import Program
from repro.ir.verify import verify_program
from repro.minic.codegen import generate
from repro.minic.parser import parse
from repro.minic.sema import analyze


def compile_source(source: str, optimize: bool = True) -> Program:
    """Compile MiniC source text to a verified IR program.

    Args:
        source: MiniC source text.
        optimize: Run the machine-independent optimization pipeline
            (constant folding, copy propagation, local CSE, dead-code
            elimination, jump simplification) — the paper partitions
            *after* these run.

    Returns:
        A verified :class:`~repro.ir.program.Program`.
    """
    unit = parse(source)
    info = analyze(unit)
    program = generate(unit, info)
    verify_program(program)
    if optimize:
        from repro.opt.pipeline import optimize_program

        optimize_program(program)
        verify_program(program)
    return program
