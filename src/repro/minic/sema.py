"""MiniC semantic analysis.

Two passes: collect global and function signatures (so forward and
recursive calls work), then type-check every function body, annotating
each expression node with its ``type``.

Type rules (deliberately stricter than C):

* ``int`` and ``float`` only; mixing promotes ``int`` to ``float`` in
  arithmetic and comparisons, and assignment of ``int`` into ``float``
  converts implicitly — but narrowing ``float`` to ``int`` requires an
  explicit ``(int)`` cast.
* ``%``, shifts, bitwise and logical operators are ``int``-only.
* Function parameters and return values must be ``int`` (or ``void``
  return): the machine's calling convention passes values in integer
  registers, which is precisely the constraint the paper's partitioner
  has to work around (§6.4).  Float data crosses functions via globals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SemanticError
from repro.minic.astnodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Cast,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDecl,
    If,
    Index,
    IntLit,
    Name,
    Return,
    Stmt,
    TranslationUnit,
    Unary,
    VarDecl,
    While,
)

_INT_ONLY_OPS = {"%", "<<", ">>", "&", "|", "^", "&&", "||"}
_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}
_ARITH = {"+", "-", "*", "/"}


@dataclass(frozen=True, slots=True)
class GlobalInfo:
    name: str
    type: str
    is_array: bool
    size: int  # element count (1 for scalars)


@dataclass(frozen=True, slots=True)
class FuncSig:
    name: str
    ret_type: str
    param_types: tuple[str, ...]


@dataclass(eq=False, slots=True)
class ProgramInfo:
    """Symbol information produced by :func:`analyze`."""

    globals: dict[str, GlobalInfo] = field(default_factory=dict)
    functions: dict[str, FuncSig] = field(default_factory=dict)


def _err(message: str, line: int) -> SemanticError:
    return SemanticError(f"line {line}: {message}")


class _Checker:
    def __init__(self, info: ProgramInfo):
        self.info = info
        self.locals: dict[str, str] = {}
        self.func: FuncDecl | None = None
        self.loop_depth = 0

    # -- expressions -------------------------------------------------------
    def check_expr(self, expr: Expr) -> str:
        method = getattr(self, "_expr_" + type(expr).__name__)
        expr.type = method(expr)
        return expr.type

    def _expr_IntLit(self, expr: IntLit) -> str:
        return "int"

    def _expr_FloatLit(self, expr: FloatLit) -> str:
        return "float"

    def _expr_Name(self, expr: Name) -> str:
        if expr.name in self.locals:
            return self.locals[expr.name]
        info = self.info.globals.get(expr.name)
        if info is None:
            raise _err(f"undeclared variable {expr.name!r}", expr.line)
        if info.is_array:
            raise _err(f"array {expr.name!r} used without an index", expr.line)
        return info.type

    def _expr_Index(self, expr: Index) -> str:
        info = self.info.globals.get(expr.name)
        if info is None or not info.is_array:
            raise _err(f"{expr.name!r} is not a global array", expr.line)
        if self.check_expr(expr.index) != "int":
            raise _err("array index must be int", expr.line)
        return info.type

    def _expr_Call(self, expr: Call) -> str:
        sig = self.info.functions.get(expr.name)
        if sig is None:
            raise _err(f"call to undeclared function {expr.name!r}", expr.line)
        if len(expr.args) != len(sig.param_types):
            raise _err(
                f"{expr.name}() expects {len(sig.param_types)} arguments, "
                f"got {len(expr.args)}",
                expr.line,
            )
        for arg in expr.args:
            if self.check_expr(arg) != "int":
                raise _err("function arguments must be int", arg.line)
        if sig.ret_type == "void":
            return "void"
        return sig.ret_type

    def _expr_Unary(self, expr: Unary) -> str:
        operand_type = self.check_expr(expr.operand)
        if operand_type == "void":
            raise _err("void value in expression", expr.line)
        if expr.op == "-":
            return operand_type
        if operand_type != "int":
            raise _err(f"operator {expr.op!r} requires int", expr.line)
        return "int"

    def _expr_Binary(self, expr: Binary) -> str:
        left = self.check_expr(expr.left)
        right = self.check_expr(expr.right)
        if "void" in (left, right):
            raise _err("void value in expression", expr.line)
        op = expr.op
        if op in _INT_ONLY_OPS:
            if left != "int" or right != "int":
                raise _err(f"operator {op!r} requires int operands", expr.line)
            return "int"
        if op in _COMPARISONS:
            return "int"
        if op in _ARITH:
            return "float" if "float" in (left, right) else "int"
        raise _err(f"unknown operator {op!r}", expr.line)

    def _expr_Cast(self, expr: Cast) -> str:
        operand_type = self.check_expr(expr.operand)
        if operand_type == "void":
            raise _err("cannot cast void", expr.line)
        return expr.target

    # -- statements ----------------------------------------------------------
    def check_stmt(self, stmt: Stmt) -> None:
        method = getattr(self, "_stmt_" + type(stmt).__name__)
        method(stmt)

    def _stmt_Block(self, stmt: Block) -> None:
        for inner in stmt.statements:
            self.check_stmt(inner)

    def _stmt_VarDecl(self, stmt: VarDecl) -> None:
        if stmt.name in self.locals:
            raise _err(f"redeclaration of {stmt.name!r}", stmt.line)
        if stmt.name in self.info.globals:
            raise _err(f"{stmt.name!r} shadows a global", stmt.line)
        if stmt.init is not None:
            init_type = self.check_expr(stmt.init)
            self._check_assignable(stmt.var_type, init_type, stmt.line)
        self.locals[stmt.name] = stmt.var_type

    def _check_assignable(self, target: str, value: str, line: int) -> None:
        if value == "void":
            raise _err("cannot assign a void value", line)
        if target == value:
            return
        if target == "float" and value == "int":
            return  # implicit widening
        raise _err(
            f"cannot assign {value} to {target} (use an explicit cast)", line
        )

    def _stmt_Assign(self, stmt: Assign) -> None:
        target_type = self.check_expr(stmt.target)
        value_type = self.check_expr(stmt.value)
        self._check_assignable(target_type, value_type, stmt.line)

    def _stmt_ExprStmt(self, stmt: ExprStmt) -> None:
        self.check_expr(stmt.expr)

    def _stmt_If(self, stmt: If) -> None:
        self.check_expr(stmt.cond)
        self.check_stmt(stmt.then_body)
        if stmt.else_body is not None:
            self.check_stmt(stmt.else_body)

    def _stmt_While(self, stmt: While) -> None:
        self.check_expr(stmt.cond)
        self.loop_depth += 1
        self.check_stmt(stmt.body)
        self.loop_depth -= 1

    def _stmt_For(self, stmt: For) -> None:
        if stmt.init is not None:
            self.check_stmt(stmt.init)
        if stmt.cond is not None:
            self.check_expr(stmt.cond)
        if stmt.step is not None:
            self.check_stmt(stmt.step)
        self.loop_depth += 1
        self.check_stmt(stmt.body)
        self.loop_depth -= 1

    def _stmt_Return(self, stmt: Return) -> None:
        ret = self.func.ret_type
        if stmt.value is None:
            if ret != "void":
                raise _err(f"{self.func.name} must return a value", stmt.line)
            return
        if ret == "void":
            raise _err(f"{self.func.name} returns void", stmt.line)
        value_type = self.check_expr(stmt.value)
        if value_type != ret:
            raise _err(f"return type mismatch: {value_type} vs {ret}", stmt.line)

    def _stmt_Break(self, stmt: Break) -> None:
        if not self.loop_depth:
            raise _err("break outside a loop", stmt.line)

    def _stmt_Continue(self, stmt: Continue) -> None:
        if not self.loop_depth:
            raise _err("continue outside a loop", stmt.line)

    # -- functions -----------------------------------------------------------
    def check_function(self, func: FuncDecl) -> None:
        self.func = func
        self.locals = {}
        self.loop_depth = 0
        for param in func.params:
            if param.var_type != "int":
                raise _err("parameters must be int (floats cross functions "
                           "via globals)", param.line)
            if param.name in self.locals:
                raise _err(f"duplicate parameter {param.name!r}", param.line)
            self.locals[param.name] = param.var_type
        self.check_stmt(func.body)


def analyze(unit: TranslationUnit) -> ProgramInfo:
    """Type-check ``unit`` in place; returns symbol information."""
    info = ProgramInfo()
    for decl in unit.globals:
        if decl.name in info.globals:
            raise _err(f"duplicate global {decl.name!r}", decl.line)
        size = decl.array_size if decl.array_size is not None else 1
        if size <= 0:
            raise _err(f"array {decl.name!r} must have positive size", decl.line)
        if decl.init and len(decl.init) > size:
            raise _err(f"too many initializers for {decl.name!r}", decl.line)
        info.globals[decl.name] = GlobalInfo(
            decl.name, decl.var_type, decl.array_size is not None, size
        )
    for func in unit.functions:
        if func.name in info.functions or func.name in info.globals:
            raise _err(f"duplicate definition of {func.name!r}", func.line)
        if func.ret_type == "float":
            raise _err("functions must return int or void (floats cross "
                       "functions via globals)", func.line)
        info.functions[func.name] = FuncSig(
            func.name,
            func.ret_type,
            tuple(p.var_type for p in func.params),
        )
    if "main" not in info.functions:
        raise SemanticError("program has no main() function")
    if info.functions["main"].param_types:
        raise SemanticError("main() must take no parameters")

    checker = _Checker(info)
    for func in unit.functions:
        checker.check_function(func)
    return info
