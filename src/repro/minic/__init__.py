"""MiniC: a small C-like language and its compiler to the IR.

The paper's compiler infrastructure was gcc 2.7.1 retargeted to
SimpleScalar; MiniC plays that role here.  The language is deliberately
small but expressive enough to write the SPECINT95 surrogate workloads:

* types ``int`` (32-bit, wrapping) and ``float``; ``void`` returns;
* global scalars and arrays (``int a[100];``), function-local scalars;
* ``if``/``else``, ``while``, ``for``, ``break``, ``continue``,
  ``return``;
* the usual C operators including short-circuit ``&&``/``||``, plus
  explicit ``(int)``/``(float)`` casts;
* functions with ``int`` parameters and returns (floats cross function
  boundaries through globals, matching the integer calling conventions
  the paper's partitioner must respect).

Pipeline: :mod:`lexer` -> :mod:`parser` (AST in :mod:`astnodes`) ->
:mod:`sema` (type checking + annotation) -> :mod:`codegen` (IR).
"""

from repro.minic.lexer import tokenize, Token, TokenKind
from repro.minic.parser import parse
from repro.minic.sema import analyze
from repro.minic.codegen import generate
from repro.minic.compile import compile_source

__all__ = [
    "tokenize",
    "Token",
    "TokenKind",
    "parse",
    "analyze",
    "generate",
    "compile_source",
]
