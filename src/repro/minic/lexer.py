"""MiniC lexer.

Produces a flat token list.  ``//`` and ``/* */`` comments are skipped;
character literals become integer literals; float literals require a
decimal point or exponent.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "int",
    "float",
    "void",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
}


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT_LIT = "int"
    FLOAT_LIT = "float"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    value: int | float | None
    line: int
    column: int

    def __repr__(self) -> str:
        return f"<{self.kind.value} {self.text!r} @{self.line}:{self.column}>"


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<float>(\d+\.\d*|\.\d+)([eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<int>\d+)
  | (?P<char>'(\\.|[^'\\])')
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<punct><<=?|>>=?|<=|>=|==|!=|&&|\|\||[-+*/%<>=!~&|^(){}\[\];,])
    """,
    re.VERBOSE | re.DOTALL,
)

_ESCAPES = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39, '"': 34, "r": 13}


def tokenize(source: str) -> list[Token]:
    """Tokenize MiniC source; raises :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(source)
    while pos < n:
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError(f"unexpected character {source[pos]!r}", line, column)
        text = match.group(0)
        kind_name = match.lastgroup
        column = pos - line_start + 1
        if kind_name in ("ws", "line_comment", "block_comment"):
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = pos + text.rindex("\n") + 1
        elif kind_name == "float":
            tokens.append(Token(TokenKind.FLOAT_LIT, text, float(text), line, column))
        elif kind_name == "hex":
            tokens.append(Token(TokenKind.INT_LIT, text, int(text, 16), line, column))
        elif kind_name == "int":
            tokens.append(Token(TokenKind.INT_LIT, text, int(text), line, column))
        elif kind_name == "char":
            body = text[1:-1]
            if body.startswith("\\"):
                esc = body[1]
                if esc not in _ESCAPES:
                    raise ParseError(f"unknown escape {body!r}", line, column)
                value = _ESCAPES[esc]
            else:
                value = ord(body)
            tokens.append(Token(TokenKind.INT_LIT, text, value, line, column))
        elif kind_name == "ident":
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, None, line, column))
        else:  # punct
            tokens.append(Token(TokenKind.PUNCT, text, None, line, column))
        pos = match.end()
    tokens.append(Token(TokenKind.EOF, "", None, line, pos - line_start + 1))
    return tokens
