"""MiniC to IR code generation.

Notable lowering choices (they matter for partitionability, §4 of the
paper — branch slices should be offloadable):

* Conditional control flow is lowered to ``beq``/``bne`` (equality) and
  ``slt``-family + ``blez`` (orderings) — all of which have FPa twins —
  never ``bgtz``/``bgez`` or comparisons against ``$zero`` (the FP file
  has no zero register, so such nodes would be pinned to INT).
* Shift-by-constant uses the immediate forms (offloadable); ``~`` is
  ``xor`` with a materialized ``-1`` rather than ``nor`` or ``xori``
  (neither of which has a twin), and boolean negation is ``sltiu t, 1``.
* int->float conversion materializes the value in the FP file with
  ``cp_to_comp`` + ``cvt.s.w``; float->int uses ``cvt.w.s`` +
  ``cp_from_comp``.  These pre-existing copies are legal partition
  crossings.
* Locals are mutable virtual registers (multiple definitions, as in
  real compiler output before SSA-less register allocation); every
  local is zero-initialized at declaration when no initializer is
  given, keeping interpreter semantics defined.
"""

from __future__ import annotations

from repro.errors import SemanticError
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.program import Program
from repro.ir.registers import Reg, RegClass
from repro.minic.astnodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Cast,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDecl,
    If,
    Index,
    IntLit,
    Name,
    Return,
    Stmt,
    TranslationUnit,
    Unary,
    VarDecl,
    While,
)
from repro.minic.sema import ProgramInfo

_INT_BIN_REG = {
    "+": Opcode.ADDU,
    "-": Opcode.SUBU,
    "*": Opcode.MULT,
    "/": Opcode.DIV,
    "%": Opcode.REM,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SLLV,
    ">>": Opcode.SRAV,
}
# '|' and '^' deliberately use the reg-reg forms even for literal
# operands: `ori`/`xori` have no FPa twin, while `or`/`xor` (fed by an
# offloadable `li`) keep the slice partitionable.
_INT_BIN_IMM = {
    "+": Opcode.ADDIU,
    "&": Opcode.ANDI,
    "<<": Opcode.SLL,
    ">>": Opcode.SRA,
}
_FLOAT_BIN = {
    "+": Opcode.ADD_S,
    "-": Opcode.SUB_S,
    "*": Opcode.MUL_S,
    "/": Opcode.DIV_S,
}


class _FuncGen:
    """Generates IR for one function body."""

    def __init__(self, program: Program, info: ProgramInfo, func_decl: FuncDecl):
        self.program = program
        self.info = info
        self.decl = func_decl
        self.func = Function(
            func_decl.name,
            n_params=len(func_decl.params),
            returns_value=func_decl.ret_type != "void",
        )
        self.builder = IRBuilder(self.func)
        self.locals: dict[str, tuple[Reg, str]] = {}
        self._label_n = 0
        self._break_stack: list[str] = []
        self._continue_stack: list[str] = []

    def new_label(self, hint: str) -> str:
        self._label_n += 1
        return f"{hint}{self._label_n}"

    def start_block(self, label: str):
        return self.builder.set_block(self.builder.new_block(label))

    # -- top level -----------------------------------------------------------
    def run(self) -> Function:
        b = self.builder
        b.set_block(b.new_block("entry"))
        for i, param in enumerate(self.decl.params):
            reg = b.param(i)
            self.locals[param.name] = (reg, param.var_type)
        self.gen_stmt(self.decl.body)
        if self.builder.block.terminator is None:
            if self.func.returns_value:
                b.ret(b.li(0))  # implicit return 0, C-style main
            else:
                b.ret()
        return self.func

    # -- conversions -----------------------------------------------------------
    def coerce(self, reg: Reg, from_type: str, to_type: str) -> Reg:
        """Convert ``reg`` between int and float representations."""
        if from_type == to_type:
            return reg
        b = self.builder
        if from_type == "int" and to_type == "float":
            moved = b.new_vreg(RegClass.FP)
            b.emit(Instruction(Opcode.CP_TO_COMP, defs=[moved], uses=[reg]))
            return b.emit_alu(Opcode.CVT_S_W, moved)
        if from_type == "float" and to_type == "int":
            truncated = b.emit_alu(Opcode.CVT_W_S, reg)
            out = b.new_vreg(RegClass.INT)
            b.emit(Instruction(Opcode.CP_FROM_COMP, defs=[out], uses=[truncated]))
            return out
        raise SemanticError(f"cannot convert {from_type} to {to_type}")

    # -- expressions -------------------------------------------------------------
    def gen_expr(self, expr: Expr) -> Reg:
        method = getattr(self, "_gen_" + type(expr).__name__)
        return method(expr)

    def _gen_IntLit(self, expr: IntLit) -> Reg:
        return self.builder.li(expr.value)

    def _gen_FloatLit(self, expr: FloatLit) -> Reg:
        return self.builder.li_float(expr.value)

    def _gen_Name(self, expr: Name) -> Reg:
        if expr.name in self.locals:
            return self.locals[expr.name][0]
        b = self.builder
        base = b.la(expr.name)
        op = Opcode.LS if expr.type == "float" else Opcode.LW
        return b.load(base, 0, op)

    def _element_address(self, expr: Index) -> Reg:
        b = self.builder
        base = b.la(expr.name)
        index = self.gen_expr(expr.index)
        offset = b.emit_alu(Opcode.SLL, index, imm=2)
        return b.emit_alu(Opcode.ADDU, base, offset)

    def _gen_Index(self, expr: Index) -> Reg:
        addr = self._element_address(expr)
        op = Opcode.LS if expr.type == "float" else Opcode.LW
        return self.builder.load(addr, 0, op)

    def _gen_Call(self, expr: Call) -> Reg:
        args = [self.gen_expr(arg) for arg in expr.args]
        result = self.builder.call(expr.name, args, returns_value=True)
        return result

    def _gen_Cast(self, expr: Cast) -> Reg:
        value = self.gen_expr(expr.operand)
        return self.coerce(value, expr.operand.type, expr.target)

    def _gen_Unary(self, expr: Unary) -> Reg:
        b = self.builder
        if expr.op == "-":
            operand = self.gen_expr(expr.operand)
            if expr.type == "float":
                return b.emit_alu(Opcode.NEG_S, operand)
            zero = b.li(0)
            return b.emit_alu(Opcode.SUBU, zero, operand)
        if expr.op == "~":
            operand = self.gen_expr(expr.operand)
            ones = b.li(-1)
            return b.emit_alu(Opcode.XOR, operand, ones)
        # '!' — logical negation of an int
        operand = self.gen_expr(expr.operand)
        return b.emit_alu(Opcode.SLTIU, operand, imm=1)

    def _gen_Binary(self, expr: Binary) -> Reg:
        op = expr.op
        if op in ("&&", "||"):
            return self._materialize_cond(expr)
        left_t, right_t = expr.left.type, expr.right.type
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if "float" in (left_t, right_t):
                return self._materialize_cond(expr)
            return self._int_comparison_value(expr)
        if expr.type == "float":
            left = self.coerce(self.gen_expr(expr.left), left_t, "float")
            right = self.coerce(self.gen_expr(expr.right), right_t, "float")
            return self.builder.emit_alu(_FLOAT_BIN[op], left, right)
        return self._int_arith(expr)

    def _int_arith(self, expr: Binary) -> Reg:
        b = self.builder
        op = expr.op
        left = self.gen_expr(expr.left)
        if (
            isinstance(expr.right, IntLit)
            and op in _INT_BIN_IMM
            and -32768 <= expr.right.value < 32768
        ):
            imm = expr.right.value
            if op == "<<" or op == ">>":
                imm &= 31
            return b.emit_alu(_INT_BIN_IMM[op], left, imm=imm)
        if op == "-" and isinstance(expr.right, IntLit) and -32767 <= expr.right.value <= 32768:
            return b.emit_alu(Opcode.ADDIU, left, imm=-expr.right.value)
        right = self.gen_expr(expr.right)
        return b.emit_alu(_INT_BIN_REG[op], left, right)

    def _int_comparison_value(self, expr: Binary) -> Reg:
        """Materialize an int comparison as a 0/1 value."""
        b = self.builder
        op = expr.op
        left = self.gen_expr(expr.left)
        if op == "<" and isinstance(expr.right, IntLit) and -32768 <= expr.right.value < 32768:
            return b.emit_alu(Opcode.SLTI, left, imm=expr.right.value)
        if op == ">=" and isinstance(expr.right, IntLit) and -32768 <= expr.right.value < 32768:
            lt = b.emit_alu(Opcode.SLTI, left, imm=expr.right.value)
            return b.emit_alu(Opcode.SLTIU, lt, imm=1)
        right = self.gen_expr(expr.right)
        if op == "<":
            return b.emit_alu(Opcode.SLT, left, right)
        if op == ">":
            return b.emit_alu(Opcode.SLT, right, left)
        if op == "<=":
            gt = b.emit_alu(Opcode.SLT, right, left)
            return b.emit_alu(Opcode.SLTIU, gt, imm=1)
        if op == ">=":
            lt = b.emit_alu(Opcode.SLT, left, right)
            return b.emit_alu(Opcode.SLTIU, lt, imm=1)
        diff = b.emit_alu(Opcode.XOR, left, right)
        equal = b.emit_alu(Opcode.SLTIU, diff, imm=1)
        if op == "==":
            return equal
        return b.emit_alu(Opcode.SLTIU, equal, imm=1)

    def _materialize_cond(self, expr: Expr) -> Reg:
        """Evaluate a boolean expression into a 0/1 register through
        control flow (used for ``&&``/``||`` and float comparisons in
        value contexts)."""
        b = self.builder
        result = b.new_vreg(RegClass.INT)
        true_label = self.new_label("bt")
        false_label = self.new_label("bf")
        join_label = self.new_label("bj")
        self.gen_cond(expr, true_label, false_label)
        self.start_block(true_label)
        b.emit(Instruction(Opcode.LI, defs=[result], imm=1))
        b.jump(join_label)
        self.start_block(false_label)
        b.emit(Instruction(Opcode.LI, defs=[result], imm=0))
        b.jump(join_label)
        self.start_block(join_label)
        return result

    # -- conditions -----------------------------------------------------------
    def gen_cond(self, expr: Expr, true_label: str, false_label: str) -> None:
        """Emit branching code for a condition; terminates the current
        block with explicit control flow to both labels."""
        b = self.builder
        if isinstance(expr, Unary) and expr.op == "!":
            self.gen_cond(expr.operand, false_label, true_label)
            return
        if isinstance(expr, Binary) and expr.op == "&&":
            mid = self.new_label("and")
            self.gen_cond(expr.left, mid, false_label)
            self.start_block(mid)
            self.gen_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, Binary) and expr.op == "||":
            mid = self.new_label("or")
            self.gen_cond(expr.left, true_label, mid)
            self.start_block(mid)
            self.gen_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, Binary) and expr.op in ("==", "!=", "<", "<=", ">", ">="):
            if "float" in (expr.left.type, expr.right.type):
                self._float_cond(expr, true_label, false_label)
            else:
                self._int_cond(expr, true_label, false_label)
            return
        # generic truthiness of an int value: t != 0
        value = self.gen_expr(expr)
        if expr.type == "float":
            zero = b.li_float(0.0)
            b.branch(Opcode.BNE_S, value, zero, target=true_label)
        else:
            is_zero = b.emit_alu(Opcode.SLTIU, value, imm=1)
            b.branch(Opcode.BLEZ, is_zero, target=true_label)
        self._jump_from_new_block(false_label)

    def _jump_from_new_block(self, label: str) -> None:
        """After a conditional branch, emit the fall-through jump from a
        fresh block (a block may hold only one control instruction)."""
        self.start_block(self.new_label("ft"))
        self.builder.jump(label)

    def _int_cond(self, expr: Binary, true_label: str, false_label: str) -> None:
        b = self.builder
        op = expr.op
        left = self.gen_expr(expr.left)
        if op in ("==", "!="):
            right = self.gen_expr(expr.right)
            branch = Opcode.BEQ if op == "==" else Opcode.BNE
            b.branch(branch, left, right, target=true_label)
            self._jump_from_new_block(false_label)
            return
        # orderings via slt + blez (blez t <=> t == 0 for 0/1 t)
        use_imm = isinstance(expr.right, IntLit) and -32768 <= expr.right.value < 32768
        if op == "<":
            if use_imm:
                flag = b.emit_alu(Opcode.SLTI, left, imm=expr.right.value)
            else:
                flag = b.emit_alu(Opcode.SLT, left, self.gen_expr(expr.right))
            b.branch(Opcode.BLEZ, flag, target=false_label)
            self._jump_from_new_block(true_label)
        elif op == ">=":
            if use_imm:
                flag = b.emit_alu(Opcode.SLTI, left, imm=expr.right.value)
            else:
                flag = b.emit_alu(Opcode.SLT, left, self.gen_expr(expr.right))
            b.branch(Opcode.BLEZ, flag, target=true_label)
            self._jump_from_new_block(false_label)
        elif op == ">":
            flag = b.emit_alu(Opcode.SLT, self.gen_expr(expr.right), left)
            b.branch(Opcode.BLEZ, flag, target=false_label)
            self._jump_from_new_block(true_label)
        else:  # <=
            flag = b.emit_alu(Opcode.SLT, self.gen_expr(expr.right), left)
            b.branch(Opcode.BLEZ, flag, target=true_label)
            self._jump_from_new_block(false_label)

    def _float_cond(self, expr: Binary, true_label: str, false_label: str) -> None:
        b = self.builder
        left = self.coerce(self.gen_expr(expr.left), expr.left.type, "float")
        right = self.coerce(self.gen_expr(expr.right), expr.right.type, "float")
        op = expr.op
        if op == "==":
            b.branch(Opcode.BEQ_S, left, right, target=true_label)
        elif op == "!=":
            b.branch(Opcode.BNE_S, left, right, target=true_label)
        elif op == "<":
            b.branch(Opcode.BLT_S, left, right, target=true_label)
        elif op == "<=":
            b.branch(Opcode.BLE_S, left, right, target=true_label)
        elif op == ">":
            b.branch(Opcode.BLT_S, right, left, target=true_label)
        else:  # >=
            b.branch(Opcode.BLE_S, right, left, target=true_label)
        self._jump_from_new_block(false_label)

    # -- statements ---------------------------------------------------------
    def gen_stmt(self, stmt: Stmt) -> None:
        method = getattr(self, "_stmt_" + type(stmt).__name__)
        method(stmt)

    def _stmt_Block(self, stmt: Block) -> None:
        for inner in stmt.statements:
            if self.builder.block.terminator is not None:
                # dead code after break/continue/return: emit into an
                # unreachable block to stay structurally valid
                self.start_block(self.new_label("dead"))
            self.gen_stmt(inner)

    def _assign_into(self, dest: Reg, value: Reg) -> None:
        op = Opcode.MOV_S if dest.rclass is RegClass.FP else Opcode.MOVE
        self.builder.emit(Instruction(op, defs=[dest], uses=[value]))

    def _stmt_VarDecl(self, stmt: VarDecl) -> None:
        b = self.builder
        rclass = RegClass.FP if stmt.var_type == "float" else RegClass.INT
        reg = b.new_vreg(rclass)
        self.locals[stmt.name] = (reg, stmt.var_type)
        if stmt.init is not None:
            value = self.coerce(self.gen_expr(stmt.init), stmt.init.type, stmt.var_type)
            self._assign_into(reg, value)
        elif stmt.var_type == "float":
            b.emit(Instruction(Opcode.LI_S, defs=[reg], imm=0.0))
        else:
            b.emit(Instruction(Opcode.LI, defs=[reg], imm=0))

    def _stmt_Assign(self, stmt: Assign) -> None:
        b = self.builder
        target = stmt.target
        if isinstance(target, Name) and target.name in self.locals:
            reg, var_type = self.locals[target.name]
            value = self.coerce(self.gen_expr(stmt.value), stmt.value.type, var_type)
            self._assign_into(reg, value)
            return
        value_type = "float" if target.type == "float" else "int"
        value = self.coerce(self.gen_expr(stmt.value), stmt.value.type, value_type)
        if isinstance(target, Name):  # global scalar
            base = b.la(target.name)
            b.store(value, base, 0, Opcode.SS if value_type == "float" else Opcode.SW)
        else:  # global array element
            addr = self._element_address(target)
            b.store(value, addr, 0, Opcode.SS if value_type == "float" else Opcode.SW)

    def _stmt_ExprStmt(self, stmt: ExprStmt) -> None:
        expr = stmt.expr
        if isinstance(expr, Call):
            args = [self.gen_expr(arg) for arg in expr.args]
            self.builder.call(expr.name, args, returns_value=False)
            return
        self.gen_expr(expr)

    def _stmt_If(self, stmt: If) -> None:
        then_label = self.new_label("then")
        end_label = self.new_label("endif")
        else_label = self.new_label("else") if stmt.else_body else end_label
        self.gen_cond(stmt.cond, then_label, else_label)
        self.start_block(then_label)
        self.gen_stmt(stmt.then_body)
        if self.builder.block.terminator is None:
            self.builder.jump(end_label)
        if stmt.else_body is not None:
            self.start_block(else_label)
            self.gen_stmt(stmt.else_body)
            if self.builder.block.terminator is None:
                self.builder.jump(end_label)
        self.start_block(end_label)

    def _stmt_While(self, stmt: While) -> None:
        cond_label = self.new_label("wcond")
        body_label = self.new_label("wbody")
        exit_label = self.new_label("wexit")
        if self.builder.block.terminator is None:
            self.builder.jump(cond_label)
        self.start_block(cond_label)
        self.gen_cond(stmt.cond, body_label, exit_label)
        self._break_stack.append(exit_label)
        self._continue_stack.append(cond_label)
        self.start_block(body_label)
        self.gen_stmt(stmt.body)
        if self.builder.block.terminator is None:
            self.builder.jump(cond_label)
        self._break_stack.pop()
        self._continue_stack.pop()
        self.start_block(exit_label)

    def _stmt_For(self, stmt: For) -> None:
        cond_label = self.new_label("fcond")
        body_label = self.new_label("fbody")
        step_label = self.new_label("fstep")
        exit_label = self.new_label("fexit")
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        if self.builder.block.terminator is None:
            self.builder.jump(cond_label)
        self.start_block(cond_label)
        if stmt.cond is not None:
            self.gen_cond(stmt.cond, body_label, exit_label)
        else:
            self.builder.jump(body_label)
        self._break_stack.append(exit_label)
        self._continue_stack.append(step_label)
        self.start_block(body_label)
        self.gen_stmt(stmt.body)
        if self.builder.block.terminator is None:
            self.builder.jump(step_label)
        self._break_stack.pop()
        self._continue_stack.pop()
        self.start_block(step_label)
        if stmt.step is not None:
            self.gen_stmt(stmt.step)
        self.builder.jump(cond_label)
        self.start_block(exit_label)

    def _stmt_Return(self, stmt: Return) -> None:
        if stmt.value is None:
            self.builder.ret()
            return
        value = self.gen_expr(stmt.value)
        self.builder.ret(value)

    def _stmt_Break(self, stmt: Break) -> None:
        self.builder.jump(self._break_stack[-1])

    def _stmt_Continue(self, stmt: Continue) -> None:
        self.builder.jump(self._continue_stack[-1])


def generate(unit: TranslationUnit, info: ProgramInfo) -> Program:
    """Generate an IR :class:`Program` from a type-checked AST."""
    program = Program(entry="main")
    for decl in unit.globals:
        size = (decl.array_size if decl.array_size is not None else 1) * 4
        init = list(decl.init) if decl.init else None
        program.add_global(decl.name, size, init)
    for func_decl in unit.functions:
        program.add_function(_FuncGen(program, info, func_decl).run())
    program.layout()
    return program
