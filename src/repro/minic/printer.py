"""MiniC pretty-printer: AST back to parseable source text.

The inverse of :mod:`repro.minic.parser`, used by the workload
generator framework (:mod:`repro.gen`) to emit builder-constructed
programs and by the fuzz shrinker to re-render candidate reductions.

The output is *normalized*: four-space indentation, one statement per
line, every operand of a binary expression parenthesized only when
precedence requires it.  Normalization makes the printer a fixpoint of
``parse``: for any AST, ``print_unit(parse(print_unit(ast)))`` equals
``print_unit(ast)`` byte for byte (the parse→print→parse round-trip
property test in ``tests/minic/test_printer_roundtrip.py`` holds the
two directions together).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.minic.astnodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Cast,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDecl,
    GlobalDecl,
    If,
    Index,
    IntLit,
    Name,
    Return,
    Stmt,
    TranslationUnit,
    Unary,
    VarDecl,
    While,
)

#: Binding strength per binary operator, tighter = larger.  Mirrors the
#: parser's ``_LEVELS`` table (loosest first there).
_PRECEDENCE: dict[str, int] = {}
for _level, _ops in enumerate(
    [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", "<=", ">", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]
):
    for _op in _ops:
        _PRECEDENCE[_op] = _level

#: Binding strength of unary operators / casts (tighter than any binary).
_UNARY_LEVEL = max(_PRECEDENCE.values()) + 1


def _float_text(value: float) -> str:
    """A float literal the lexer tokenizes back to the same value.

    The lexer requires a ``.`` in float literals, so integral values
    print as ``1.0`` rather than ``1``; ``repr`` covers the rest
    losslessly.
    """
    text = repr(float(value))
    if "." not in text and "e" not in text and "inf" not in text and "nan" not in text:
        text += ".0"
    return text


def print_expr(expr: Expr) -> str:
    """Render one expression (minimally parenthesized)."""
    return _expr(expr, 0)


def _expr(expr: Expr, parent_level: int) -> str:
    if isinstance(expr, IntLit):
        # negative literals only arise from constructed ASTs (the parser
        # builds Unary('-')); render them re-parseably
        if expr.value < 0:
            return _wrap(f"0 - {-expr.value}", _PRECEDENCE["-"], parent_level)
        return str(expr.value)
    if isinstance(expr, FloatLit):
        return _float_text(expr.value)
    if isinstance(expr, Name):
        return expr.name
    if isinstance(expr, Index):
        return f"{expr.name}[{_expr(expr.index, 0)}]"
    if isinstance(expr, Call):
        args = ", ".join(_expr(arg, 0) for arg in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, Unary):
        operand = _expr(expr.operand, _UNARY_LEVEL)
        return _wrap(f"{expr.op}{operand}", _UNARY_LEVEL, parent_level)
    if isinstance(expr, Cast):
        operand = _expr(expr.operand, _UNARY_LEVEL)
        return _wrap(f"({expr.target}){operand}", _UNARY_LEVEL, parent_level)
    if isinstance(expr, Binary):
        level = _PRECEDENCE.get(expr.op)
        if level is None:
            raise ReproError(f"unknown binary operator {expr.op!r}")
        # left-associative: the left child may share this level, the
        # right child must bind strictly tighter to reproduce the tree
        left = _expr(expr.left, level)
        right = _expr(expr.right, level + 1)
        return _wrap(f"{left} {expr.op} {right}", level, parent_level)
    raise ReproError(f"unknown expression node {type(expr).__name__}")


def _wrap(text: str, level: int, parent_level: int) -> str:
    return f"({text})" if level < parent_level else text


def _stmt_lines(stmt: Stmt, indent: int) -> list[str]:
    pad = "    " * indent
    if isinstance(stmt, VarDecl):
        if stmt.init is None:
            return [f"{pad}{stmt.var_type} {stmt.name};"]
        return [f"{pad}{stmt.var_type} {stmt.name} = {print_expr(stmt.init)};"]
    if isinstance(stmt, Assign):
        return [f"{pad}{print_expr(stmt.target)} = {print_expr(stmt.value)};"]
    if isinstance(stmt, ExprStmt):
        return [f"{pad}{print_expr(stmt.expr)};"]
    if isinstance(stmt, Return):
        if stmt.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {print_expr(stmt.value)};"]
    if isinstance(stmt, Break):
        return [f"{pad}break;"]
    if isinstance(stmt, Continue):
        return [f"{pad}continue;"]
    if isinstance(stmt, Block):
        lines = [f"{pad}{{"]
        for inner in stmt.statements:
            lines.extend(_stmt_lines(inner, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, If):
        lines = [f"{pad}if ({print_expr(stmt.cond)}) {{"]
        for inner in stmt.then_body.statements:
            lines.extend(_stmt_lines(inner, indent + 1))
        if stmt.else_body is not None:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.else_body.statements:
                lines.extend(_stmt_lines(inner, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while ({print_expr(stmt.cond)}) {{"]
        for inner in stmt.body.statements:
            lines.extend(_stmt_lines(inner, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, For):
        init = _clause(stmt.init)
        cond = "" if stmt.cond is None else print_expr(stmt.cond)
        step = _clause(stmt.step)
        lines = [f"{pad}for ({init}; {cond}; {step}) {{"]
        for inner in stmt.body.statements:
            lines.extend(_stmt_lines(inner, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    raise ReproError(f"unknown statement node {type(stmt).__name__}")


def _clause(stmt: Stmt | None) -> str:
    """A for-header init/step clause, without the trailing ``;``."""
    if stmt is None:
        return ""
    [line] = _stmt_lines(stmt, 0)
    return line[:-1] if line.endswith(";") else line


def _literal_text(value: int | float) -> str:
    if isinstance(value, float):
        return _float_text(value)
    return str(value)


def print_global(decl: GlobalDecl) -> str:
    text = f"{decl.var_type} {decl.name}"
    if decl.array_size is not None:
        text += f"[{decl.array_size}]"
    if decl.init is not None:
        if decl.array_size is not None or len(decl.init) > 1:
            text += " = {" + ", ".join(_literal_text(v) for v in decl.init) + "}"
        else:
            text += f" = {_literal_text(decl.init[0])}"
    return text + ";"


def print_function(func: FuncDecl) -> str:
    params = ", ".join(f"{p.var_type} {p.name}" for p in func.params)
    lines = [f"{func.ret_type} {func.name}({params}) {{"]
    for stmt in func.body.statements:
        lines.extend(_stmt_lines(stmt, 1))
    lines.append("}")
    return "\n".join(lines)


def print_unit(unit: TranslationUnit) -> str:
    """Render a whole translation unit as normalized MiniC source."""
    chunks = [print_global(g) for g in unit.globals]
    chunks.extend(print_function(f) for f in unit.functions)
    return "\n\n".join(chunks) + "\n"


__all__ = ["print_expr", "print_function", "print_global", "print_unit"]
