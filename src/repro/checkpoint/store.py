"""Checkpoint slots: naming, persistence, fault hooks.

A *slot* is the single on-disk checkpoint for one simulation, keyed by
``sha256(trace_key + machine-config hash)`` and stored under
``<root>/<key[:2]>/<key>.rck``.  Each save overwrites the slot via the
shared atomic-write helper, so at any instant the slot holds either the
previous complete checkpoint or the new one — a writer killed
mid-publish (the chaos suite's SIGKILL scenario) can only lose the
*latest* snapshot, never corrupt the slot.

Reads are defensive: missing, torn, corrupt or wrong-bindings files are
a *cold restart* (``load`` returns ``None``), never an error.  The
``ckpt_write``/``ckpt_read`` fault sites let ``REPRO_FAULTS`` inject
errors, crashes and byte corruption at both ends; the write path
additionally exposes a ``<label>@publish`` fault point between the
durable temp write and the rename, which is exactly where a kill must
leave the previous checkpoint intact.

Knobs (both also settable through ``repro bench``):

* ``REPRO_CKPT_CYCLES`` — snapshot period in simulated cycles
  (``0``/unset = checkpointing off);
* ``REPRO_CKPT_DIR`` — slot directory (default ``.repro-ckpt``).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path

from repro.errors import CheckpointError
from repro.faults import corrupt_point, fault_point
from repro.ioutil import atomic_write_bytes
from repro.checkpoint.codec import CKPT_FORMAT_VERSION, decode_checkpoint, encode_checkpoint

#: Snapshot period in simulated cycles; 0/unset disables checkpointing.
CKPT_CYCLES_ENV = "REPRO_CKPT_CYCLES"

#: Directory holding checkpoint slots.
CKPT_DIR_ENV = "REPRO_CKPT_DIR"

DEFAULT_CKPT_DIR = ".repro-ckpt"


def checkpoint_interval() -> int:
    """The configured snapshot period (cycles); 0 when disabled."""
    try:
        return max(0, int(os.environ.get(CKPT_CYCLES_ENV, "0")))
    except (TypeError, ValueError):
        return 0


def config_sha256(config, perfect_branches: bool = False) -> str:
    """Hash of every machine parameter a checkpoint's state depends on."""
    payload = {
        "machine": asdict(config),
        "perfect_branches": perfect_branches,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CheckpointStore:
    """Directory of checkpoint slots with atomic overwrites."""

    SUFFIX = ".rck"

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}{self.SUFFIX}"

    def load(self, key: str, bindings: dict, label: str = "") -> dict | None:
        """The decoded state, or ``None`` on miss, damage or staleness."""
        fault_point("ckpt_read", label)
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        # chaos hook: REPRO_FAULTS can flip bytes here, proving restore
        # treats stored checkpoints as untrusted input (cold restart)
        data = corrupt_point("ckpt_read", data, label=label or key)
        try:
            return decode_checkpoint(data, bindings)
        except CheckpointError:
            return None

    def save(self, key: str, state: dict, bindings: dict, label: str = "") -> None:
        """Atomically publish ``state`` into the slot (best effort).

        An unwritable store degrades to a no-op — checkpointing is a
        recovery optimization, never a correctness dependency.  Fault
        hooks: the plain ``ckpt_write`` point fires on entry (and a
        ``corrupt`` clause scrambles the encoded bytes, which the next
        ``load`` must refuse); ``<label>@publish`` fires between the
        durable temp-file write and the rename, modelling a worker
        killed mid-publish.
        """
        fault_point("ckpt_write", label)
        data = encode_checkpoint(state, bindings)
        data = corrupt_point("ckpt_write", data, label=label or key)
        try:
            atomic_write_bytes(
                self.path_for(key),
                data,
                before_publish=lambda: fault_point("ckpt_write", f"{label}@publish"),
            )
        except OSError:
            pass

    def discard(self, key: str) -> None:
        """Remove the slot (a completed simulation has no use for it)."""
        try:
            os.unlink(self.path_for(key))
        except OSError:
            pass


class CheckpointSlot:
    """One simulation's handle on its checkpoint: key, bindings, period.

    ``bindings`` ties the slot to the exact (trace, machine config,
    code version) triple; ``interval`` is the snapshot period in
    simulated cycles the :class:`~repro.sim.pipeline.TimingSimulator`
    honours.
    """

    def __init__(
        self,
        store: CheckpointStore,
        key: str,
        bindings: dict,
        *,
        interval: int,
        label: str = "",
    ) -> None:
        self.store = store
        self.key = key
        self.bindings = bindings
        self.interval = interval
        self.label = label

    def load(self) -> dict | None:
        return self.store.load(self.key, self.bindings, self.label)

    def save(self, state: dict) -> None:
        self.store.save(self.key, state, self.bindings, self.label)

    def clear(self) -> None:
        self.store.discard(self.key)


def slot_from_env(
    trace_key: str,
    config,
    *,
    perfect_branches: bool = False,
    label: str = "",
) -> CheckpointSlot | None:
    """The environment-configured slot for one simulation, or ``None``.

    Returns ``None`` unless ``REPRO_CKPT_CYCLES`` is a positive
    integer.  The slot key hashes the trace key with the machine-config
    hash; the bindings additionally pin the code version, so checkpoints
    never survive a code change.
    """
    interval = checkpoint_interval()
    if interval <= 0:
        return None
    from repro.bench.cache import code_fingerprint

    root = os.environ.get(CKPT_DIR_ENV, "").strip() or DEFAULT_CKPT_DIR
    config_sha = config_sha256(config, perfect_branches)
    key = hashlib.sha256(f"{trace_key}:{config_sha}".encode("utf-8")).hexdigest()
    bindings = {
        "format_version": CKPT_FORMAT_VERSION,
        "trace_key": trace_key,
        "config_sha256": config_sha,
        "code_version": code_fingerprint(),
    }
    return CheckpointSlot(
        CheckpointStore(root), key, bindings, interval=interval, label=label
    )
